#include "dp/nir_attack.h"

#include <cmath>

namespace recpriv::dp {

Result<AttackReport> RunRatioAttack(CountQueryEngine& engine,
                                    const recpriv::table::Predicate& q1,
                                    const recpriv::table::Predicate& q2,
                                    size_t trials, Rng& rng) {
  AttackReport report;
  report.true_ans1 = engine.TrueCount(q1);
  report.true_ans2 = engine.TrueCount(q2);
  if (report.true_ans1 == 0) {
    return Status::InvalidArgument("Q1 has zero support; Conf undefined");
  }
  report.true_confidence = static_cast<double>(report.true_ans2) /
                           static_cast<double>(report.true_ans1);
  report.trials = trials;

  std::vector<double> confs, errs1, errs2;
  confs.reserve(trials);
  errs1.reserve(trials);
  errs2.reserve(trials);
  const double x = static_cast<double>(report.true_ans1);
  const double y = static_cast<double>(report.true_ans2);
  for (size_t i = 0; i < trials; ++i) {
    const double noisy1 = engine.NoisyCount(q1, rng);
    const double noisy2 = engine.NoisyCount(q2, rng);
    confs.push_back(noisy2 / noisy1);
    errs1.push_back(std::abs(x - noisy1) / x);
    if (y > 0.0) errs2.push_back(std::abs(y - noisy2) / y);
  }
  report.conf = stats::Summarize(confs);
  report.rel_err_q1 = stats::Summarize(errs1);
  report.rel_err_q2 = stats::Summarize(errs2);

  const double b = engine.mechanism().scale();
  report.predicted = stats::ApproximateRatioMoments(
      {x, y, engine.mechanism().variance()});
  report.bias_bound = stats::LaplaceRatioBiasBound(b, x);
  report.variance_bound = stats::LaplaceRatioVarianceBound(b, x);
  return report;
}

}  // namespace recpriv::dp
