// Interactive noisy count-query engine over a raw table — the adversary's
// interface in the paper's Section 2 construction.

#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "dp/laplace_mechanism.h"
#include "table/predicate.h"
#include "table/table.h"

namespace recpriv::dp {

/// Answers conjunctive count queries over a table, exactly or with Laplace
/// noise, tracking the cumulative epsilon spent.
class CountQueryEngine {
 public:
  /// The engine does not own the table; it must outlive the engine.
  CountQueryEngine(const recpriv::table::Table* data,
                   LaplaceMechanism mechanism)
      : data_(data), mechanism_(mechanism) {}

  /// Exact count of rows matching `pred` (all attributes, SA included).
  uint64_t TrueCount(const recpriv::table::Predicate& pred) const;

  /// Noisy answer TrueCount + Lap(b). Each call spends the mechanism's
  /// epsilon (sequential composition).
  double NoisyCount(const recpriv::table::Predicate& pred, Rng& rng);

  const LaplaceMechanism& mechanism() const { return mechanism_; }
  /// Total epsilon consumed by NoisyCount calls so far.
  double epsilon_spent() const { return epsilon_spent_; }
  size_t queries_answered() const { return queries_answered_; }

 private:
  const recpriv::table::Table* data_;
  LaplaceMechanism mechanism_;
  double epsilon_spent_ = 0.0;
  size_t queries_answered_ = 0;
};

}  // namespace recpriv::dp
