// The epsilon-differential-privacy Laplace mechanism (paper §1.1, §2).
//
// A count query answered as a + xi with xi ~ Lap(b), b = Delta/epsilon,
// satisfies epsilon-differential privacy for query sensitivity Delta. The
// paper's attack scenario answers two count queries in a row, so Delta = 2
// throughout its experiments.

#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/result.h"

namespace recpriv::dp {

/// Laplace output-perturbation mechanism.
class LaplaceMechanism {
 public:
  /// Creates a mechanism with privacy parameter `epsilon` and query
  /// sensitivity `sensitivity` (both > 0); noise scale b = sensitivity/eps.
  static Result<LaplaceMechanism> Make(double epsilon, double sensitivity);

  /// Creates a mechanism directly from a noise scale b > 0.
  static Result<LaplaceMechanism> FromScale(double scale_b);

  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }
  /// Noise scale b = sensitivity / epsilon.
  double scale() const { return scale_; }
  /// Noise variance V = 2 b^2.
  double variance() const { return 2.0 * scale_ * scale_; }

  /// Returns true_answer + Lap(b). Not clamped or rounded: the mechanism's
  /// raw real-valued release, as the paper analyses it.
  double NoisyAnswer(double true_answer, Rng& rng) const;

 private:
  LaplaceMechanism(double epsilon, double sensitivity, double scale)
      : epsilon_(epsilon), sensitivity_(sensitivity), scale_(scale) {}

  double epsilon_;
  double sensitivity_;
  double scale_;
};

}  // namespace recpriv::dp
