// The non-independent-reasoning (NIR) ratio attack on differentially
// private answers (paper §1.1 Example 1 and §2).
//
// The adversary knows the target's public attributes t.NA and issues
//   Q1: NA = t.NA                     (noisy answer X = x + xi_1)
//   Q2: NA = t.NA AND SA = sa        (noisy answer Y = y + xi_2)
// and gauges Conf = y/x by Conf' = Y/X. With fixed-scale noise, Y/X -> y/x
// as x grows (Corollary 1), so a high-confidence rule leaks.

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "dp/count_query_engine.h"
#include "stats/descriptive.h"
#include "stats/ratio_estimator.h"

namespace recpriv::dp {

/// Aggregates over repeated attack trials — the rows of the paper's Table 1.
struct AttackReport {
  double true_confidence = 0.0;  ///< Conf = ans2/ans1 on the raw data
  uint64_t true_ans1 = 0;        ///< x
  uint64_t true_ans2 = 0;        ///< y
  size_t trials = 0;
  recpriv::stats::Summary conf;        ///< Conf' = Y/X across trials
  recpriv::stats::Summary rel_err_q1;  ///< |ans1 - ans1'| / ans1
  recpriv::stats::Summary rel_err_q2;  ///< |ans2 - ans2'| / ans2
  /// Lemma 1 / Corollary 2 predictions for this setting.
  recpriv::stats::RatioMoments predicted;
  double bias_bound = 0.0;      ///< 2 (b/x)^2
  double variance_bound = 0.0;  ///< 4 (b/x)^2
};

/// Runs `trials` independent attack rounds: each draws fresh noisy answers
/// for Q1 and Q2 through `engine` and records Conf' and the relative answer
/// errors. Fails if Q1 has a zero true count.
Result<AttackReport> RunRatioAttack(CountQueryEngine& engine,
                                    const recpriv::table::Predicate& q1,
                                    const recpriv::table::Predicate& q2,
                                    size_t trials, Rng& rng);

}  // namespace recpriv::dp
