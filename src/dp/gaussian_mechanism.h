// The (epsilon, delta)-differential-privacy Gaussian mechanism [20], cited
// by the paper in §2 as another fixed-variance noise distribution to which
// Corollary 1 applies: for ANY zero-mean, fixed-variance noise, Y/X -> y/x
// as the query answer grows, so the NIR ratio attack works unchanged.
//
// Standard calibration (Dwork et al.): for delta in (0, 1),
//   sigma = sensitivity * sqrt(2 ln(1.25 / delta)) / epsilon.

#pragma once

#include "common/random.h"
#include "common/result.h"

namespace recpriv::dp {

/// Gaussian output-perturbation mechanism.
class GaussianMechanism {
 public:
  /// Calibrates sigma for (epsilon, delta)-DP with the given sensitivity.
  /// Requires epsilon > 0, delta in (0, 1), sensitivity > 0.
  static Result<GaussianMechanism> Make(double epsilon, double delta,
                                        double sensitivity);

  /// Builds directly from a noise standard deviation sigma > 0.
  static Result<GaussianMechanism> FromSigma(double sigma);

  double epsilon() const { return epsilon_; }
  double delta() const { return delta_; }
  double sigma() const { return sigma_; }
  /// Noise variance V = sigma^2 (the Corollary-1 "fixed variance").
  double variance() const { return sigma_ * sigma_; }

  /// Returns true_answer + N(0, sigma^2).
  double NoisyAnswer(double true_answer, Rng& rng) const;

 private:
  GaussianMechanism(double epsilon, double delta, double sigma)
      : epsilon_(epsilon), delta_(delta), sigma_(sigma) {}

  double epsilon_;
  double delta_;
  double sigma_;
};

}  // namespace recpriv::dp
