#include "dp/laplace_mechanism.h"

namespace recpriv::dp {

Result<LaplaceMechanism> LaplaceMechanism::Make(double epsilon,
                                                double sensitivity) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be > 0");
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be > 0");
  }
  return LaplaceMechanism(epsilon, sensitivity, sensitivity / epsilon);
}

Result<LaplaceMechanism> LaplaceMechanism::FromScale(double scale_b) {
  if (scale_b <= 0.0) return Status::InvalidArgument("scale must be > 0");
  // epsilon/sensitivity are presentational here; scale is what matters.
  return LaplaceMechanism(1.0 / scale_b, 1.0, scale_b);
}

double LaplaceMechanism::NoisyAnswer(double true_answer, Rng& rng) const {
  return true_answer + SampleLaplace(rng, scale_);
}

}  // namespace recpriv::dp
