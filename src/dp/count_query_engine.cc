#include "dp/count_query_engine.h"

namespace recpriv::dp {

uint64_t CountQueryEngine::TrueCount(
    const recpriv::table::Predicate& pred) const {
  return pred.CountMatches(*data_);
}

double CountQueryEngine::NoisyCount(const recpriv::table::Predicate& pred,
                                    Rng& rng) {
  ++queries_answered_;
  epsilon_spent_ += mechanism_.epsilon();
  return mechanism_.NoisyAnswer(static_cast<double>(TrueCount(pred)), rng);
}

}  // namespace recpriv::dp
