#include "dp/gaussian_mechanism.h"

#include <cmath>

namespace recpriv::dp {

Result<GaussianMechanism> GaussianMechanism::Make(double epsilon, double delta,
                                                  double sensitivity) {
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be > 0");
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0,1)");
  }
  if (sensitivity <= 0.0) {
    return Status::InvalidArgument("sensitivity must be > 0");
  }
  const double sigma =
      sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
  return GaussianMechanism(epsilon, delta, sigma);
}

Result<GaussianMechanism> GaussianMechanism::FromSigma(double sigma) {
  if (sigma <= 0.0) return Status::InvalidArgument("sigma must be > 0");
  return GaussianMechanism(1.0, 1e-5, sigma);
}

double GaussianMechanism::NoisyAnswer(double true_answer, Rng& rng) const {
  return true_answer + SampleNormal(rng, 0.0, sigma_);
}

}  // namespace recpriv::dp
