#include "query/count_query.h"

namespace recpriv::query {

uint64_t TrueAnswer(const CountQuery& q,
                    const recpriv::table::GroupIndex& index) {
  uint64_t ans = 0;
  for (size_t gi : index.MatchingGroups(q.na_predicate)) {
    ans += index.groups()[gi].sa_counts[q.sa_code];
  }
  return ans;
}

double Selectivity(const CountQuery& q,
                   const recpriv::table::GroupIndex& index) {
  if (index.num_records() == 0) return 0.0;
  return static_cast<double>(TrueAnswer(q, index)) /
         static_cast<double>(index.num_records());
}

}  // namespace recpriv::query
