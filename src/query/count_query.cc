#include "query/count_query.h"

namespace recpriv::query {

uint64_t TrueAnswer(const CountQuery& q,
                    const recpriv::table::FlatGroupIndex& index) {
  return index.CountAnswer(q.na_predicate, q.sa_code);
}

double Selectivity(const CountQuery& q,
                   const recpriv::table::FlatGroupIndex& index) {
  if (index.num_records() == 0) return 0.0;
  return static_cast<double>(TrueAnswer(q, index)) /
         static_cast<double>(index.num_records());
}

}  // namespace recpriv::query
