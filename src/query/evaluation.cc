#include "query/evaluation.h"

#include <cmath>

#include "perturb/mle.h"
#include "perturb/uniform_perturbation.h"

namespace recpriv::query {

using recpriv::core::PrivacyParams;
using recpriv::core::SpsCountsResult;
using recpriv::perturb::UniformPerturbation;
using recpriv::table::FlatGroupIndex;

Result<PerturbedGroups> PerturbAllGroups(const FlatGroupIndex& index,
                                         double retention_p, Rng& rng) {
  const UniformPerturbation up{retention_p,
                               index.schema()->sa_domain_size()};
  RECPRIV_RETURN_NOT_OK(up.Validate());
  PerturbedGroups out;
  out.observed.reserve(index.num_groups());
  out.sizes.reserve(index.num_groups());
  for (size_t gi = 0; gi < index.num_groups(); ++gi) {
    RECPRIV_ASSIGN_OR_RETURN(
        std::vector<uint64_t> obs,
        recpriv::perturb::PerturbCounts(up, index.sa_counts(gi), rng));
    uint64_t size = 0;
    for (uint64_t c : obs) size += c;
    out.observed.push_back(std::move(obs));
    out.sizes.push_back(size);
  }
  return out;
}

Result<PerturbedGroups> SpsAllGroups(const FlatGroupIndex& index,
                                     const PrivacyParams& params, Rng& rng) {
  RECPRIV_RETURN_NOT_OK(params.Validate());
  if (params.domain_m != index.schema()->sa_domain_size()) {
    return Status::InvalidArgument(
        "params.domain_m does not match the index's SA domain");
  }
  PerturbedGroups out;
  out.observed.reserve(index.num_groups());
  out.sizes.reserve(index.num_groups());
  out.sps_stats.num_groups = index.num_groups();
  for (size_t gi = 0; gi < index.num_groups(); ++gi) {
    RECPRIV_ASSIGN_OR_RETURN(
        SpsCountsResult r,
        recpriv::core::SpsPerturbGroupCounts(params, index.sa_counts(gi),
                                             rng));
    uint64_t size = 0;
    for (uint64_t c : r.observed) size += c;
    out.sps_stats.records_in += index.group_size(gi);
    out.sps_stats.records_out += size;
    if (r.sampled) {
      ++out.sps_stats.groups_sampled;
      out.sps_stats.records_sampled += r.sample_size;
    }
    out.observed.push_back(std::move(r.observed));
    out.sizes.push_back(size);
  }
  return out;
}

EvaluationResult EvaluateRelativeError(const std::vector<CountQuery>& pool,
                                       const FlatGroupIndex& index,
                                       const PerturbedGroups& perturbed,
                                       double retention_p) {
  // Hoisted out of the query loop: one operator for the whole pool.
  const UniformPerturbation up{retention_p,
                               index.schema()->sa_domain_size()};
  EvaluationResult result;
  double total_err = 0.0;
  // Scratch hoisted out of the query loop: the match list is rebuilt for
  // every query of the pool, so reusing these buffers turns a per-query
  // allocation into an amortized no-op; the memory dies with the call.
  recpriv::table::AnswerScratch scratch;
  std::vector<uint32_t> matches;
  for (const CountQuery& q : pool) {
    uint64_t ans = 0;
    uint64_t observed_sa = 0;
    uint64_t s_star = 0;
    index.MatchingGroupsInto(q.na_predicate, scratch, matches);
    for (uint32_t gi : matches) {
      ans += index.sa_count(gi, q.sa_code);
      observed_sa += perturbed.observed[gi][q.sa_code];
      s_star += perturbed.sizes[gi];
    }
    if (ans == 0) {
      ++result.skipped_zero_answer;
      continue;
    }
    const double est = recpriv::perturb::MleCount(up, observed_sa, s_star);
    total_err += std::abs(est - static_cast<double>(ans)) /
                 static_cast<double>(ans);
    ++result.queries_evaluated;
  }
  if (result.queries_evaluated > 0) {
    result.mean_relative_error =
        total_err / static_cast<double>(result.queries_evaluated);
  }
  return result;
}

}  // namespace recpriv::query
