// Canonical encoding and hashing of count queries, used by the serving
// layer's answer cache (serve/answer_cache.h): two CountQuerys that denote
// the same WHERE clause — regardless of the order their conditions were
// bound or how the Predicate was built — produce byte-identical keys, so a
// cache keyed by (release epoch, canonical key) is a true semantic cache.
//
// Encoding: for each bound NA condition in ascending attribute order, the
// attribute index and code as 4-byte little-endian words; then a 0xFF
// sentinel byte and the SA code (predicate-only keys stop at the sentinel).
// Attribute order is already canonical because Predicate stores conditions
// per attribute slot, not in bind order.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "query/count_query.h"
#include "table/predicate.h"

namespace recpriv::query {

/// Canonical byte key of the NA conditions only (no SA condition).
std::string CanonicalPredicateKey(const recpriv::table::Predicate& pred);

/// Canonical byte key of the whole query (NA conditions + SA code).
std::string CanonicalKey(const CountQuery& q);

/// 64-bit FNV-1a over arbitrary bytes.
uint64_t HashBytes(std::string_view bytes);

/// HashBytes(CanonicalKey(q)) — a well-mixed 64-bit query fingerprint.
uint64_t CanonicalHash(const CountQuery& q);

}  // namespace recpriv::query
