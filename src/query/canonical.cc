#include "query/canonical.h"

namespace recpriv::query {

namespace {

void AppendU32(std::string& out, uint32_t v) {
  out.push_back(char(v & 0xFF));
  out.push_back(char((v >> 8) & 0xFF));
  out.push_back(char((v >> 16) & 0xFF));
  out.push_back(char((v >> 24) & 0xFF));
}

}  // namespace

std::string CanonicalPredicateKey(const recpriv::table::Predicate& pred) {
  std::string key;
  key.reserve(pred.num_bound() * 8);
  for (size_t attr = 0; attr < pred.num_attributes(); ++attr) {
    if (!pred.is_bound(attr)) continue;
    AppendU32(key, static_cast<uint32_t>(attr));
    AppendU32(key, pred.code(attr));
  }
  return key;
}

std::string CanonicalKey(const CountQuery& q) {
  std::string key = CanonicalPredicateKey(q.na_predicate);
  key.push_back('\xFF');
  AppendU32(key, q.sa_code);
  return key;
}

uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

uint64_t CanonicalHash(const CountQuery& q) {
  return HashBytes(CanonicalKey(q));
}

}  // namespace recpriv::query
