// Count queries of the paper's utility evaluation (Eq. 11):
//
//   SELECT COUNT(*) FROM D WHERE A1 = a1 AND ... AND Ad = ad AND SA = sa
//
// The NA conditions are a Predicate (SA left unbound); the SA condition is
// held separately because reconstruction estimates SA frequencies from the
// matched records' observed histogram rather than filtering rows.

#pragma once

#include <cstdint>

#include "table/flat_group_index.h"
#include "table/predicate.h"

namespace recpriv::query {

/// One conjunctive count query with an SA condition.
struct CountQuery {
  recpriv::table::Predicate na_predicate;  ///< NA conditions only
  uint32_t sa_code = 0;                    ///< the SA = sa_i condition
  size_t dimensionality = 0;               ///< d = number of NA conditions

  explicit CountQuery(size_t num_attributes)
      : na_predicate(num_attributes) {}
};

/// Exact answer over the raw data, via the personal-group index:
/// sum of sa_counts[sa] over the groups matching the NA conditions.
uint64_t TrueAnswer(const CountQuery& q,
                    const recpriv::table::FlatGroupIndex& index);

/// ans / |D|, the query's selectivity.
double Selectivity(const CountQuery& q,
                   const recpriv::table::FlatGroupIndex& index);

}  // namespace recpriv::query
