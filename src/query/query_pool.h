// Random count-query pool generation (paper §6.1).
//
// "We generated a pool of 5,000 count queries with the query dimensionality
//  d in {1,2,3} and with the selectivity ans/|D| >= 0.1%. For each query, we
//  selected d from {1,2,3}, selected d attributes from NA without
//  replacement, selected a value ai in dom(Ai) for each selected attribute,
//  and finally selected a value sai in dom(SA). All selections are random
//  with equal probability."
//
// Queries are drawn from the ORIGINAL attribute domains (real-life queries),
// then rewritten onto the generalized schema via core::MapPredicate for
// evaluation on aggregated personal groups, as the paper does.

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/generalization.h"
#include "query/count_query.h"
#include "table/flat_group_index.h"

namespace recpriv::query {

/// Knobs of the pool generator; defaults are the paper's settings.
struct QueryPoolConfig {
  size_t pool_size = 5000;
  std::vector<size_t> dimensionalities = {1, 2, 3};
  double min_selectivity = 0.001;  ///< 0.1%
  /// Abort guard: stop after this many candidate draws even if the pool is
  /// not full (degenerate domains could make 0.1% unreachable).
  size_t max_attempts = 2'000'000;
};

/// Generates the pool against the raw data's group index (original values,
/// original selectivity). May return fewer than pool_size queries when
/// max_attempts is exhausted.
Result<std::vector<CountQuery>> GenerateQueryPool(
    const recpriv::table::FlatGroupIndex& raw_index,
    const QueryPoolConfig& config, Rng& rng);

/// Rewrites every query's NA values onto the generalized schema.
Result<std::vector<CountQuery>> MapQueryPool(
    const recpriv::core::Generalization& plan,
    const std::vector<CountQuery>& pool);

}  // namespace recpriv::query
