#include "query/query_pool.h"

namespace recpriv::query {

using recpriv::table::FlatGroupIndex;
using recpriv::table::Schema;

Result<std::vector<CountQuery>> GenerateQueryPool(
    const FlatGroupIndex& raw_index, const QueryPoolConfig& config, Rng& rng) {
  if (config.pool_size == 0) {
    return Status::InvalidArgument("pool_size must be positive");
  }
  if (config.dimensionalities.empty()) {
    return Status::InvalidArgument("at least one dimensionality required");
  }
  const Schema& schema = *raw_index.schema();
  const auto& pub = raw_index.public_indices();
  for (size_t d : config.dimensionalities) {
    if (d == 0 || d > pub.size()) {
      return Status::InvalidArgument(
          "dimensionality must be in [1, #public attributes]");
    }
  }

  // Posting-list index: candidate selectivity checks dominate pool
  // generation on large raw indexes (tens of thousands of groups).
  recpriv::table::GroupPostingIndex postings(raw_index);
  const double num_records = static_cast<double>(raw_index.num_records());
  // One scratch for the whole generation loop — millions of selectivity
  // checks reuse its buffers instead of allocating per candidate.
  recpriv::table::AnswerScratch scratch;

  std::vector<CountQuery> pool;
  pool.reserve(config.pool_size);
  size_t attempts = 0;
  while (pool.size() < config.pool_size && attempts < config.max_attempts) {
    ++attempts;
    // d uniformly from the allowed dimensionalities.
    const size_t d = config.dimensionalities[rng.NextUint64(
        config.dimensionalities.size())];
    CountQuery q(schema.num_attributes());
    q.dimensionality = d;
    // d public attributes without replacement, a random value for each.
    std::vector<uint64_t> chosen =
        SampleWithoutReplacement(rng, pub.size(), d);
    for (uint64_t k : chosen) {
      const size_t attr = pub[k];
      const size_t dom = schema.attribute(attr).domain.size();
      if (dom == 0) continue;
      q.na_predicate.Bind(attr, static_cast<uint32_t>(rng.NextUint64(dom)));
    }
    // One SA value.
    q.sa_code = static_cast<uint32_t>(
        rng.NextUint64(schema.sa_domain_size()));
    const double selectivity =
        static_cast<double>(
            postings.CountAnswer(q.na_predicate, q.sa_code, scratch)) /
        num_records;
    if (selectivity >= config.min_selectivity) {
      pool.push_back(std::move(q));
    }
  }
  if (pool.empty()) {
    return Status::FailedPrecondition(
        "query-pool generation produced no query above the selectivity "
        "floor");
  }
  return pool;
}

Result<std::vector<CountQuery>> MapQueryPool(
    const recpriv::core::Generalization& plan,
    const std::vector<CountQuery>& pool) {
  std::vector<CountQuery> mapped;
  mapped.reserve(pool.size());
  for (const CountQuery& q : pool) {
    CountQuery g(q.na_predicate.num_attributes());
    RECPRIV_ASSIGN_OR_RETURN(g.na_predicate,
                             recpriv::core::MapPredicate(plan, q.na_predicate));
    g.sa_code = q.sa_code;  // SA is never generalized
    g.dimensionality = q.dimensionality;
    mapped.push_back(std::move(g));
  }
  return mapped;
}

}  // namespace recpriv::query
