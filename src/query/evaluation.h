// Utility evaluation of perturbed data against a count-query pool
// (paper §6.1): est = |S*| F' over the matched aggregated personal groups,
// relative error |est - ans| / ans, averaged over the pool.

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/reconstruction_privacy.h"
#include "core/sps.h"
#include "query/count_query.h"
#include "table/flat_group_index.h"

namespace recpriv::query {

/// Per-personal-group observed SA histograms of a perturbed release —
/// the count-level representation of D* (UP) or D*_2 (SPS). Parallel to
/// the group ids of the FlatGroupIndex it was produced from (which are
/// also the group ids of the legacy GroupIndex: both sort groups in
/// NA-lexicographic order).
struct PerturbedGroups {
  std::vector<std::vector<uint64_t>> observed;
  /// |g*| per group (sum of the observed histogram).
  std::vector<uint64_t> sizes;
  /// SPS bookkeeping (zeros for plain UP).
  recpriv::core::SpsStats sps_stats;
};

/// Plain uniform perturbation of every group (the paper's UP baseline).
Result<PerturbedGroups> PerturbAllGroups(
    const recpriv::table::FlatGroupIndex& index, double retention_p, Rng& rng);

/// SPS of every group (the paper's proposed method).
Result<PerturbedGroups> SpsAllGroups(
    const recpriv::table::FlatGroupIndex& index,
    const recpriv::core::PrivacyParams& params, Rng& rng);

/// Outcome of evaluating one pool against one perturbed release.
struct EvaluationResult {
  double mean_relative_error = 0.0;
  size_t queries_evaluated = 0;
  /// Queries skipped because their true answer was zero (cannot happen for
  /// pools with a positive selectivity floor over the same index).
  size_t skipped_zero_answer = 0;
};

/// Evaluates the pool: for each query, ans from the raw histograms of
/// `index`, est = |S*| F' from `perturbed` restricted to the matching
/// groups (Lemma 2(ii) with the matched |S*|).
EvaluationResult EvaluateRelativeError(
    const std::vector<CountQuery>& pool,
    const recpriv::table::FlatGroupIndex& index,
    const PerturbedGroups& perturbed, double retention_p);

}  // namespace recpriv::query
