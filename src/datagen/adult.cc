#include "datagen/adult.h"

#include <cmath>
#include <memory>

#include "datagen/effective_model.h"
#include "table/schema.h"

namespace recpriv::datagen {

using recpriv::table::Attribute;
using recpriv::table::Schema;
using recpriv::table::Table;

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// The fixed generative model. All constants are calibrated against the
/// published UCI ADULT marginals (see adult.h header comment); the
/// advanced-degree class is mildly inflated (4.0% vs 3.0%) so the Example-1
/// cell reaches the paper's support of ~500 records.
struct AdultModel {
  ClassedAttribute education;
  ClassedAttribute occupation;
  ClassedAttribute race;
  ClassedAttribute gender;

  // Effective-class joint: E marginal, then O|E, R|E, G|E.
  std::vector<double> p_educlass;
  std::vector<std::vector<double>> p_occ_given_edu;   // 7 x 4
  std::vector<double> p_race0_given_edu;              // P(R = class 0 | E)
  std::vector<double> p_male_given_edu;               // P(G = male | E)

  // Income model: P(>50K | E,O,R,G) = sigmoid(bE + bO + bR + bG + c).
  std::vector<double> beta_e{-4.2, -1.55, -0.9, -0.45, 0.35, 0.9, 1.6};
  std::vector<double> beta_o{1.2, 0.3, -0.75, -2.0};
  std::vector<double> beta_r{0.2, -0.3};
  std::vector<double> beta_g{0.5, -0.6};  // male, female
  double intercept = 0.0;

  std::unique_ptr<AliasSampler> educlass_sampler;
  std::vector<AliasSampler> occ_given_edu_samplers;

  double HighIncomeProb(size_t e, size_t o, size_t r, size_t g) const {
    return Sigmoid(beta_e[e] + beta_o[o] + beta_r[r] + beta_g[g] + intercept);
  }

  /// Analytic expected fraction of ">50K" over the class joint.
  double ExpectedHighIncome() const {
    double total = 0.0;
    for (size_t e = 0; e < p_educlass.size(); ++e) {
      for (size_t o = 0; o < beta_o.size(); ++o) {
        for (size_t r = 0; r < 2; ++r) {
          const double pr = r == 0 ? p_race0_given_edu[e]
                                   : 1.0 - p_race0_given_edu[e];
          for (size_t g = 0; g < 2; ++g) {
            const double pg = g == 0 ? p_male_given_edu[e]
                                     : 1.0 - p_male_given_edu[e];
            total += p_educlass[e] * p_occ_given_edu[e][o] * pr * pg *
                     HighIncomeProb(e, o, r, g);
          }
        }
      }
    }
    return total;
  }
};

const AdultModel& GetModel() {
  static const AdultModel* model = [] {
    auto* mdl = new AdultModel();
    // Education: 16 values in 7 effective classes; within-class weights are
    // the UCI marginals (percent).
    mdl->education =
        ClassedAttribute::Make(
            "Education",
            {
                {{"Preschool", "1st-4th", "5th-6th", "7th-8th"},
                 {0.8, 0.9, 1.0, 2.0}},
                {{"9th", "10th", "11th", "12th"}, {1.6, 2.8, 3.6, 1.3}},
                {{"HS-grad"}, {1.0}},
                {{"Some-college", "Assoc-voc", "Assoc-acdm"},
                 {22.4, 4.2, 3.3}},
                {{"Bachelors"}, {1.0}},
                {{"Masters"}, {1.0}},
                {{"Prof-school", "Doctorate"}, {2.64, 1.36}},
            })
            .ValueOrDie();
    // Occupation: 14 values in 4 classes.
    mdl->occupation =
        ClassedAttribute::Make(
            "Occupation",
            {
                {{"Prof-specialty", "Exec-managerial"}, {16.0, 10.3}},
                {{"Tech-support", "Sales", "Protective-serv", "Craft-repair"},
                 {3.1, 12.1, 2.1, 13.5}},
                {{"Adm-clerical", "Machine-op-inspct", "Transport-moving",
                  "Farming-fishing", "Armed-Forces"},
                 {12.5, 6.6, 5.2, 3.3, 1.0}},
                {{"Other-service", "Handlers-cleaners", "Priv-house-serv"},
                 {10.9, 4.6, 1.0}},
            })
            .ValueOrDie();
    // Race: 5 values in 2 classes.
    mdl->race = ClassedAttribute::Make(
                    "Race",
                    {
                        {{"White", "Asian-Pac-Islander"}, {85.5, 3.0}},
                        {{"Black", "Amer-Indian-Eskimo", "Other"},
                         {9.4, 1.0, 1.1}},
                    })
                    .ValueOrDie();
    // Gender: identity partition.
    mdl->gender = ClassedAttribute::Make("Gender",
                                         {
                                             {{"Male"}, {1.0}},
                                             {{"Female"}, {1.0}},
                                         })
                      .ValueOrDie();

    mdl->p_educlass = {0.037, 0.093, 0.323, 0.289, 0.164, 0.054, 0.040};
    double norm = 0.0;
    for (double p : mdl->p_educlass) norm += p;
    for (double& p : mdl->p_educlass) p /= norm;

    mdl->p_occ_given_edu = {
        {0.03, 0.27, 0.38, 0.32},  // lower elementary
        {0.05, 0.30, 0.37, 0.28},  // some high school
        {0.12, 0.34, 0.35, 0.19},  // HS-grad
        {0.25, 0.35, 0.28, 0.12},  // some college / associate
        {0.55, 0.27, 0.13, 0.05},  // bachelors
        {0.72, 0.17, 0.08, 0.03},  // masters
        {0.92, 0.05, 0.02, 0.01},  // prof-school / doctorate
    };
    mdl->p_race0_given_edu = {0.80, 0.84, 0.87, 0.89, 0.91, 0.92, 0.93};
    mdl->p_male_given_edu = {0.62, 0.64, 0.66, 0.68, 0.70, 0.73, 0.80};

    // Calibrate the intercept so E[>50K] = 24.78% (UCI value).
    double lo = -8.0, hi = 8.0;
    for (int iter = 0; iter < 100; ++iter) {
      mdl->intercept = 0.5 * (lo + hi);
      if (mdl->ExpectedHighIncome() < 0.2478) {
        lo = mdl->intercept;
      } else {
        hi = mdl->intercept;
      }
    }

    mdl->educlass_sampler = std::make_unique<AliasSampler>(mdl->p_educlass);
    for (const auto& row : mdl->p_occ_given_edu) {
      mdl->occ_given_edu_samplers.emplace_back(row);
    }
    return mdl;
  }();
  return *model;
}

}  // namespace

Result<Table> GenerateAdult(const AdultConfig& config, Rng& rng) {
  if (config.num_records == 0) {
    return Status::InvalidArgument("num_records must be positive");
  }
  const AdultModel& mdl = GetModel();

  std::vector<Attribute> attrs;
  attrs.push_back(Attribute{"Education", mdl.education.dictionary()});
  attrs.push_back(Attribute{"Occupation", mdl.occupation.dictionary()});
  attrs.push_back(Attribute{"Race", mdl.race.dictionary()});
  attrs.push_back(Attribute{"Gender", mdl.gender.dictionary()});
  recpriv::table::Dictionary income;
  income.GetOrAdd("<=50K");
  income.GetOrAdd(">50K");
  attrs.push_back(Attribute{"Income", std::move(income)});
  RECPRIV_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs), 4));
  Table t(std::make_shared<Schema>(std::move(schema)));
  t.Reserve(config.num_records);

  std::vector<uint32_t> row(5);
  for (size_t i = 0; i < config.num_records; ++i) {
    const uint32_t e =
        static_cast<uint32_t>(mdl.educlass_sampler->Sample(rng));
    const uint32_t o =
        static_cast<uint32_t>(mdl.occ_given_edu_samplers[e].Sample(rng));
    const uint32_t r = rng.NextBernoulli(mdl.p_race0_given_edu[e]) ? 0 : 1;
    const uint32_t g = rng.NextBernoulli(mdl.p_male_given_edu[e]) ? 0 : 1;
    row[0] = mdl.education.SampleValue(e, rng);
    row[1] = mdl.occupation.SampleValue(o, rng);
    row[2] = mdl.race.SampleValue(r, rng);
    row[3] = mdl.gender.SampleValue(g, rng);
    row[4] = rng.NextBernoulli(mdl.HighIncomeProb(e, o, r, g)) ? 1 : 0;
    t.AppendRowUnchecked(row);
  }
  return t;
}

AdultModelInfo GetAdultModelInfo(const AdultConfig& config) {
  const AdultModel& mdl = GetModel();
  AdultModelInfo info;
  info.intercept = mdl.intercept;
  info.expected_high_income = mdl.ExpectedHighIncome();
  // Example-1 cell: educlass 6 (advanced), occclass 0 (professional),
  // raceclass 0, male.
  info.headline_confidence = mdl.HighIncomeProb(6, 0, 0, 0);
  const double p_cell =
      mdl.p_educlass[6] *
      mdl.education.WithinClassShare(
          mdl.education.dictionary().GetCode("Prof-school").ValueOrDie()) *
      mdl.p_occ_given_edu[6][0] *
      mdl.occupation.WithinClassShare(
          mdl.occupation.dictionary().GetCode("Prof-specialty").ValueOrDie()) *
      mdl.p_race0_given_edu[6] *
      mdl.race.WithinClassShare(
          mdl.race.dictionary().GetCode("White").ValueOrDie()) *
      mdl.p_male_given_edu[6];
  info.headline_expected_support =
      p_cell * static_cast<double>(config.num_records);
  return info;
}

}  // namespace recpriv::datagen
