// Calibrated synthetic ADULT generator (substitution for the UCI extract —
// see DESIGN.md §4).
//
// Schema (paper §6.1): Education (16 values), Occupation (14), Race (5),
// Gender (2), and the sensitive attribute Income ("<=50K" / ">50K", m = 2).
//
// Generative model (effective classes; see effective_model.h):
//   educlass   E in 7 classes over the 16 education values
//   occclass   O in 4 classes over the 14 occupations
//   raceclass  R in 2 classes over the 5 races
//   gender     G in 2 classes (identity partition)
//   E ~ marginal; O|E, R|E, G|E conditionals; raw value | class ~ fixed
//   within-class split (independent of everything else);
//   Income ~ Bernoulli( sigmoid(beta_E + beta_O + beta_R + beta_G + c) )
// with the intercept c calibrated analytically so the expected fraction of
// ">50K" equals the UCI value 24.78%. The advanced-degree/professional/
// white/male cell is tuned so the Example-1 rule
//   {Prof-school, Prof-specialty, White, Male} -> >50K
// has support around 500 and confidence around 0.84.
//
// Because Income depends on the class labels only, the chi-squared merge of
// §3.4 should rediscover the 7/4/2/2 class partition of Table 4.

#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace recpriv::datagen {

/// Generator knobs.
struct AdultConfig {
  size_t num_records = 45222;  ///< paper's complete-record count
};

/// The fitted model constants, exposed for tests and documentation.
struct AdultModelInfo {
  double intercept = 0.0;            ///< calibrated c
  double expected_high_income = 0.0; ///< analytic P(>50K) after calibration
  double headline_confidence = 0.0;  ///< P(>50K | Example-1 cell)
  double headline_expected_support = 0.0;  ///< expected Q1 count
};

/// Generates a synthetic ADULT table. Attribute order: Education,
/// Occupation, Race, Gender, Income (SA = Income).
Result<recpriv::table::Table> GenerateAdult(const AdultConfig& config,
                                            Rng& rng);

/// Returns the calibrated model constants for `config`.
AdultModelInfo GetAdultModelInfo(const AdultConfig& config);

}  // namespace recpriv::datagen
