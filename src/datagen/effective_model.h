// Effective-class attribute machinery shared by the synthetic generators.
//
// The paper's §3.4 preprocessing merges attribute values with the same
// impact on SA. Our generators invert that: each attribute is specified as
// a partition into *effective classes*; raw values are drawn from a fixed
// within-class distribution independent of everything else, and SA depends
// on classes only. Consequently (a) every raw value of one class has an
// identical conditional SA distribution — the chi-squared merge should
// recover the class partition — and (b) the post-aggregation group
// structure of Tables 4-5 is emergent, not hard-coded.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "table/dictionary.h"

namespace recpriv::datagen {

/// One effective class: its member raw values and their within-class
/// relative weights.
struct EffectiveClass {
  std::vector<std::string> values;
  std::vector<double> weights;  ///< same length as values, positive
};

/// An attribute partitioned into effective classes.
class ClassedAttribute {
 public:
  /// Builds from a class list; raw-value codes are assigned in class order.
  static Result<ClassedAttribute> Make(std::string name,
                                       std::vector<EffectiveClass> classes);

  const std::string& name() const { return name_; }
  size_t num_classes() const { return class_samplers_.size(); }
  size_t num_values() const { return value_class_.size(); }

  /// Dictionary of the raw values (for schema construction).
  const recpriv::table::Dictionary& dictionary() const { return dict_; }

  /// Effective class of a raw-value code.
  uint32_t ClassOf(uint32_t value_code) const { return value_class_[value_code]; }

  /// Samples a raw-value code given its effective class.
  uint32_t SampleValue(uint32_t class_id, Rng& rng) const;

  /// Global within-class weight share of a raw value (its probability
  /// conditioned on its class).
  double WithinClassShare(uint32_t value_code) const {
    return within_share_[value_code];
  }

 private:
  std::string name_;
  recpriv::table::Dictionary dict_;
  std::vector<uint32_t> value_class_;
  std::vector<double> within_share_;
  std::vector<AliasSampler> class_samplers_;
  std::vector<std::vector<uint32_t>> class_values_;
};

}  // namespace recpriv::datagen
