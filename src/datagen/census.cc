#include "datagen/census.h"

#include <cmath>
#include <memory>
#include <string>

#include "table/schema.h"

namespace recpriv::datagen {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::Schema;
using recpriv::table::Table;

namespace {

constexpr size_t kNumOccupations = 50;
constexpr int kAgeMin = 18;
constexpr int kAgeMax = 94;  // 77 distinct ages
constexpr size_t kNumAges = kAgeMax - kAgeMin + 1;

const std::vector<std::string> kGenderValues = {"Male", "Female"};
const std::vector<double> kGenderWeights = {52, 48};

const std::vector<std::string> kEducationValues = {
    "HS-grad",    "Some-college", "Bachelors", "Masters",  "11th",
    "Assoc-voc",  "Assoc-acdm",   "10th",      "7th-8th",  "Prof-school",
    "9th",        "12th",         "Doctorate", "5th-6th"};
const std::vector<double> kEducationWeights = {46, 20, 12, 5, 3.5, 2.5, 2,
                                               2, 1.5, 1.5, 1.5, 1, 1, 1};

const std::vector<std::string> kMaritalValues = {
    "Married-civ-spouse", "Never-married",      "Divorced",
    "Separated",          "Widowed",            "Married-spouse-absent"};
const std::vector<double> kMaritalWeights = {60, 20, 9, 4, 4, 3};

// All race shares kept >= 4% so the pairwise chi-squared tests retain
// power even on the 100K sample (see DESIGN.md).
const std::vector<std::string> kRaceValues = {
    "White", "Black",  "Hispanic", "Asian",   "Amer-Indian",
    "Pacific-Islander", "Multiracial", "Other-A", "Other-B"};
const std::vector<double> kRaceWeights = {52, 14, 9, 7, 4.5, 4, 3.5, 3, 3};

/// Deterministic tilt in [-alpha, alpha] for (attribute, value, occupation),
/// derived by hashing through SplitMix64 so the "population" is stable
/// across dataset sizes and runs.
double Tilt(uint64_t model_seed, uint64_t attr_id, uint64_t value,
            uint64_t occ, double alpha) {
  uint64_t state = model_seed ^ (attr_id * 0x9E3779B97F4A7C15ULL) ^
                   (value * 0xC2B2AE3D27D4EB4FULL) ^
                   (occ * 0x165667B19E3779F9ULL);
  const double u =
      static_cast<double>(SplitMix64Next(state) >> 11) * 0x1.0p-53;
  return alpha * (2.0 * u - 1.0);
}

struct CensusModel {
  std::unique_ptr<AliasSampler> age;
  std::unique_ptr<AliasSampler> gender;
  std::unique_ptr<AliasSampler> education;
  std::unique_ptr<AliasSampler> marital;
  std::unique_ptr<AliasSampler> race;
  /// One occupation sampler per (gender, education, marital, race) combo —
  /// 2 x 14 x 6 x 9 = 1512 of them. Age carries no tilt by design.
  std::vector<AliasSampler> occupation_by_combo;

  static size_t ComboId(size_t g, size_t e, size_t m, size_t r) {
    return ((g * kEducationValues.size() + e) * kMaritalValues.size() + m) *
               kRaceValues.size() +
           r;
  }

  explicit CensusModel(const CensusConfig& config) {
    // Age marginal: flat through the 40s, tapering to the 90s.
    std::vector<double> age_weights(kNumAges);
    for (size_t i = 0; i < kNumAges; ++i) {
      const int a = kAgeMin + static_cast<int>(i);
      age_weights[i] = a <= 45 ? 1.0
                               : 1.0 - 0.85 * (a - 45) / double(kAgeMax - 45);
    }
    age = std::make_unique<AliasSampler>(age_weights);
    gender = std::make_unique<AliasSampler>(kGenderWeights);
    education = std::make_unique<AliasSampler>(kEducationWeights);
    marital = std::make_unique<AliasSampler>(kMaritalWeights);
    race = std::make_unique<AliasSampler>(kRaceWeights);

    occupation_by_combo.reserve(2 * kEducationValues.size() *
                                kMaritalValues.size() * kRaceValues.size());
    std::vector<double> weights(kNumOccupations);
    for (size_t g = 0; g < kGenderValues.size(); ++g) {
      for (size_t e = 0; e < kEducationValues.size(); ++e) {
        for (size_t m = 0; m < kMaritalValues.size(); ++m) {
          for (size_t r = 0; r < kRaceValues.size(); ++r) {
            for (size_t o = 0; o < kNumOccupations; ++o) {
              const double t =
                  Tilt(config.model_seed, 1, g, o, config.tilt_alpha) +
                  Tilt(config.model_seed, 2, e, o, config.tilt_alpha) +
                  Tilt(config.model_seed, 3, m, o, config.tilt_alpha) +
                  Tilt(config.model_seed, 4, r, o, config.tilt_alpha);
              weights[o] = std::exp(t);
            }
            occupation_by_combo.emplace_back(weights);
          }
        }
      }
    }
  }
};

Result<Dictionary> MakeDictionary(const std::vector<std::string>& values) {
  return Dictionary::FromValues(values);
}

}  // namespace

Result<Table> GenerateCensus(const CensusConfig& config, Rng& rng) {
  if (config.num_records == 0) {
    return Status::InvalidArgument("num_records must be positive");
  }
  if (config.tilt_alpha < 0.0) {
    return Status::InvalidArgument("tilt_alpha must be non-negative");
  }
  CensusModel model(config);

  std::vector<Attribute> attrs;
  std::vector<std::string> age_values;
  for (int a = kAgeMin; a <= kAgeMax; ++a) {
    age_values.push_back(std::to_string(a));
  }
  RECPRIV_ASSIGN_OR_RETURN(Dictionary age_dict, MakeDictionary(age_values));
  attrs.push_back(Attribute{"Age", std::move(age_dict)});
  RECPRIV_ASSIGN_OR_RETURN(Dictionary gender_dict,
                           MakeDictionary(kGenderValues));
  attrs.push_back(Attribute{"Gender", std::move(gender_dict)});
  RECPRIV_ASSIGN_OR_RETURN(Dictionary edu_dict,
                           MakeDictionary(kEducationValues));
  attrs.push_back(Attribute{"Education", std::move(edu_dict)});
  RECPRIV_ASSIGN_OR_RETURN(Dictionary marital_dict,
                           MakeDictionary(kMaritalValues));
  attrs.push_back(Attribute{"Marital", std::move(marital_dict)});
  RECPRIV_ASSIGN_OR_RETURN(Dictionary race_dict, MakeDictionary(kRaceValues));
  attrs.push_back(Attribute{"Race", std::move(race_dict)});
  std::vector<std::string> occ_values;
  for (size_t o = 0; o < kNumOccupations; ++o) {
    std::string name = "Occ-";
    if (o < 10) name += "0";
    name += std::to_string(o);
    occ_values.push_back(std::move(name));
  }
  RECPRIV_ASSIGN_OR_RETURN(Dictionary occ_dict, MakeDictionary(occ_values));
  attrs.push_back(Attribute{"Occupation", std::move(occ_dict)});

  RECPRIV_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(attrs), 5));
  Table t(std::make_shared<Schema>(std::move(schema)));
  t.Reserve(config.num_records);

  std::vector<uint32_t> row(6);
  for (size_t i = 0; i < config.num_records; ++i) {
    const size_t g = model.gender->Sample(rng);
    const size_t e = model.education->Sample(rng);
    const size_t m = model.marital->Sample(rng);
    const size_t r = model.race->Sample(rng);
    row[0] = static_cast<uint32_t>(model.age->Sample(rng));
    row[1] = static_cast<uint32_t>(g);
    row[2] = static_cast<uint32_t>(e);
    row[3] = static_cast<uint32_t>(m);
    row[4] = static_cast<uint32_t>(r);
    row[5] = static_cast<uint32_t>(
        model.occupation_by_combo[CensusModel::ComboId(g, e, m, r)].Sample(
            rng));
    t.AppendRowUnchecked(row);
  }
  return t;
}

}  // namespace recpriv::datagen
