// Synthetic CENSUS generator (substitution for the 500K-record CENSUS data
// of [28][22] used in paper §6.1 — see DESIGN.md §4).
//
// Schema: Age (77 values, 18-94), Gender (2), Education (14), Marital (6),
// Race (9), and the sensitive attribute Occupation (50 values, "balanced").
//
// Generative model: the five public attributes are sampled independently
// from fixed marginals. Occupation is drawn from a tilted-softmax model
//
//   P(occ = o | gender, edu, marital, race)
//       ~ exp( t_gender[o] + t_edu[o] + t_marital[o] + t_race[o] )
//
// where each attribute value carries a deterministic pseudo-random tilt
// vector with entries in [-alpha, +alpha]. Age carries NO tilt, so
// Occupation is independent of Age and the chi-squared merge collapses Age
// 77 -> 1 (Table 5), while every value of the other four attributes has a
// distinct impact on Occupation and stays unmerged (2 x 14 x 6 x 9 = 1512
// generalized personal groups). Small alpha keeps the 50 occupation values
// balanced, as the paper describes.

#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace recpriv::datagen {

/// Generator knobs; defaults reproduce the paper's 300K default dataset
/// shape at any requested size.
struct CensusConfig {
  size_t num_records = 300000;
  /// Tilt amplitude: 0 makes Occupation independent of everything; larger
  /// values separate the per-value conditional distributions more.
  double tilt_alpha = 0.4;
  /// Seed of the deterministic tilt vectors (NOT of the record sampling —
  /// that comes from the Rng). Fixed so that different dataset sizes share
  /// one underlying population, as in the paper's 100K..500K samples.
  uint64_t model_seed = 0x9E24C0DE5EEDULL;
};

/// Generates a synthetic CENSUS table. Attribute order: Age, Gender,
/// Education, Marital, Race, Occupation (SA = Occupation).
Result<recpriv::table::Table> GenerateCensus(const CensusConfig& config,
                                             Rng& rng);

}  // namespace recpriv::datagen
