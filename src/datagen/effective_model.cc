#include "datagen/effective_model.h"

namespace recpriv::datagen {

Result<ClassedAttribute> ClassedAttribute::Make(
    std::string name, std::vector<EffectiveClass> classes) {
  if (classes.empty()) {
    return Status::InvalidArgument("attribute needs at least one class");
  }
  ClassedAttribute attr;
  attr.name_ = std::move(name);
  for (uint32_t ci = 0; ci < classes.size(); ++ci) {
    const EffectiveClass& cls = classes[ci];
    if (cls.values.empty() || cls.values.size() != cls.weights.size()) {
      return Status::InvalidArgument(
          "class values/weights must be non-empty and aligned");
    }
    double total = 0.0;
    for (double w : cls.weights) {
      if (w <= 0.0) {
        return Status::InvalidArgument("class weights must be positive");
      }
      total += w;
    }
    std::vector<uint32_t> member_codes;
    for (size_t vi = 0; vi < cls.values.size(); ++vi) {
      if (attr.dict_.Contains(cls.values[vi])) {
        return Status::AlreadyExists("duplicate raw value: " + cls.values[vi]);
      }
      uint32_t code = attr.dict_.GetOrAdd(cls.values[vi]);
      member_codes.push_back(code);
      attr.value_class_.push_back(ci);
      attr.within_share_.push_back(cls.weights[vi] / total);
    }
    attr.class_values_.push_back(std::move(member_codes));
    attr.class_samplers_.emplace_back(cls.weights);
  }
  return attr;
}

uint32_t ClassedAttribute::SampleValue(uint32_t class_id, Rng& rng) const {
  RECPRIV_DCHECK(class_id < class_samplers_.size());
  size_t k = class_samplers_[class_id].Sample(rng);
  return class_values_[class_id][k];
}

}  // namespace recpriv::datagen
