#include "datagen/simple.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "table/schema.h"

namespace recpriv::datagen {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::Schema;
using recpriv::table::Table;

namespace {

Result<Table> BuildSkeleton(const SimpleDatasetSpec& spec) {
  if (spec.sa_domain.size() < 2) {
    return Status::InvalidArgument("SA domain must have m >= 2 values");
  }
  std::vector<Attribute> attrs;
  for (const auto& name : spec.public_attributes) {
    attrs.push_back(Attribute{name, Dictionary()});
  }
  RECPRIV_ASSIGN_OR_RETURN(Dictionary sa_dict,
                           Dictionary::FromValues(spec.sa_domain));
  attrs.push_back(Attribute{spec.sensitive_attribute, std::move(sa_dict)});
  RECPRIV_ASSIGN_OR_RETURN(
      Schema schema, Schema::Make(std::move(attrs), attrs.size() - 1));
  return Table(std::make_shared<Schema>(std::move(schema)));
}

Status ValidateGroup(const SimpleDatasetSpec& spec, const GroupSpec& g) {
  if (g.na_values.size() != spec.public_attributes.size()) {
    return Status::InvalidArgument("group NA arity mismatch");
  }
  if (g.sa_weights.size() != spec.sa_domain.size()) {
    return Status::InvalidArgument("group SA weight arity mismatch");
  }
  double total = 0.0;
  for (double w : g.sa_weights) {
    if (w < 0.0) return Status::InvalidArgument("negative SA weight");
    total += w;
  }
  if (g.count > 0 && total <= 0.0) {
    return Status::InvalidArgument("group needs a positive SA weight");
  }
  return Status::OK();
}

/// Emits `count` rows for group `g` with the given per-SA-value counts.
void EmitGroup(Table& t, const SimpleDatasetSpec& spec, const GroupSpec& g,
               const std::vector<uint64_t>& sa_counts) {
  std::vector<uint32_t> row(t.num_columns());
  for (size_t a = 0; a < g.na_values.size(); ++a) {
    row[a] = t.schema()->attribute(a).domain.GetOrAdd(g.na_values[a]);
  }
  (void)spec;
  for (size_t sa = 0; sa < sa_counts.size(); ++sa) {
    row[t.num_columns() - 1] = static_cast<uint32_t>(sa);
    for (uint64_t k = 0; k < sa_counts[sa]; ++k) t.AppendRowUnchecked(row);
  }
}

}  // namespace

Result<Table> GenerateSimple(const SimpleDatasetSpec& spec, Rng& rng) {
  RECPRIV_ASSIGN_OR_RETURN(Table t, BuildSkeleton(spec));
  for (const GroupSpec& g : spec.groups) {
    RECPRIV_RETURN_NOT_OK(ValidateGroup(spec, g));
    if (g.count == 0) continue;
    std::vector<uint64_t> sa_counts(spec.sa_domain.size(), 0);
    AliasSampler sampler(g.sa_weights);
    for (size_t k = 0; k < g.count; ++k) ++sa_counts[sampler.Sample(rng)];
    EmitGroup(t, spec, g, sa_counts);
  }
  return t;
}

Result<Table> GenerateSimpleExact(const SimpleDatasetSpec& spec) {
  RECPRIV_ASSIGN_OR_RETURN(Table t, BuildSkeleton(spec));
  for (const GroupSpec& g : spec.groups) {
    RECPRIV_RETURN_NOT_OK(ValidateGroup(spec, g));
    if (g.count == 0) continue;
    // Largest-remainder apportionment of g.count over the SA weights.
    double total = std::accumulate(g.sa_weights.begin(), g.sa_weights.end(),
                                   0.0);
    std::vector<uint64_t> sa_counts(spec.sa_domain.size(), 0);
    std::vector<std::pair<double, size_t>> remainders;
    uint64_t assigned = 0;
    for (size_t sa = 0; sa < g.sa_weights.size(); ++sa) {
      const double exact = static_cast<double>(g.count) *
                           (g.sa_weights[sa] / total);
      sa_counts[sa] = static_cast<uint64_t>(std::floor(exact));
      assigned += sa_counts[sa];
      remainders.emplace_back(exact - std::floor(exact), sa);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (size_t i = 0; assigned < g.count; ++i, ++assigned) {
      ++sa_counts[remainders[i % remainders.size()].second];
    }
    EmitGroup(t, spec, g, sa_counts);
  }
  return t;
}

}  // namespace recpriv::datagen
