// Small hand-specified dataset builder — the Example-2 style tables
// (Gender, Job, Disease) used by tests and the example applications.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace recpriv::datagen {

/// One personal-group specification: fixed NA values, a record count, and
/// an SA distribution to sample from (weights need not be normalized).
struct GroupSpec {
  std::vector<std::string> na_values;  ///< one per public attribute
  size_t count = 0;
  std::vector<double> sa_weights;      ///< one per SA domain value
};

/// A full dataset specification.
struct SimpleDatasetSpec {
  std::vector<std::string> public_attributes;  ///< names
  std::string sensitive_attribute;             ///< name
  std::vector<std::string> sa_domain;          ///< SA values (m >= 2)
  std::vector<GroupSpec> groups;
};

/// Builds a table by sampling each group's SA values from its distribution.
/// Public-attribute dictionaries are built from the values that occur.
Result<recpriv::table::Table> GenerateSimple(const SimpleDatasetSpec& spec,
                                             Rng& rng);

/// Deterministic variant: SA counts are apportioned by largest remainder
/// instead of sampled, so group frequencies match the weights exactly.
Result<recpriv::table::Table> GenerateSimpleExact(
    const SimpleDatasetSpec& spec);

}  // namespace recpriv::datagen
