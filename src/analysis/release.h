// Self-describing releases: a published CSV plus a JSON manifest recording
// everything a consumer needs to reconstruct correctly — the mechanism
// parameters (p, m), the privacy specification (lambda, delta), the
// sensitive attribute, and the generalization mapping that was applied.
//
// Without the manifest a consumer must be told p and m out of band; with
// it, `LoadRelease` + `Reconstructor` is a complete analyst toolchain.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/reconstructor.h"
#include "common/json.h"
#include "common/result.h"
#include "core/generalization.h"
#include "core/reconstruction_privacy.h"
#include "perturb/uniform_perturbation.h"
#include "table/flat_group_index.h"
#include "table/table.h"

namespace recpriv::analysis {

/// Everything shipped to the consumer.
struct ReleaseBundle {
  recpriv::table::Table data;
  recpriv::core::PrivacyParams params;
  std::string sensitive_attribute;
  /// Generalized value names per attribute (empty when no generalization
  /// was applied): generalization[attr] lists the merged-value labels.
  std::vector<std::vector<std::string>> generalization;
};

/// Writes `bundle.data` to `<basename>.csv` and the manifest to
/// `<basename>.manifest.json`.
Status WriteRelease(const ReleaseBundle& bundle, const std::string& basename);

/// Loads a release written by WriteRelease. Errors when the manifest and
/// CSV disagree (schema arity, SA name, SA domain size).
Result<ReleaseBundle> LoadRelease(const std::string& basename);

/// Builds the manifest JSON (exposed for tests and for embedding).
recpriv::JsonValue BuildManifest(const ReleaseBundle& bundle);

/// Convenience: a Reconstructor configured from a loaded bundle.
Result<Reconstructor> MakeReconstructor(const ReleaseBundle& bundle);

/// Provenance of a served snapshot: where its data came from and how long
/// each stage of making it queryable took. Surfaced through the serving
/// layer's `stats` op so an operator can see, per release, whether it was
/// built from memory, parsed from CSV, or mapped from a binary snapshot.
struct SnapshotSource {
  /// "memory" (published in-process), "csv" (LoadRelease), "snapshot"
  /// (mmap'd from a persisted .rps file — see src/store/), or
  /// "incremental" (delta-merge republish — ReleaseStore::PublishIncremental).
  std::string kind = "memory";
  double open_ms = 0.0;   ///< map + validate + decode manifest ("snapshot")
  double parse_ms = 0.0;  ///< CSV + manifest parse ("csv")
  double build_ms = 0.0;  ///< group-index and/or posting-index build
  uint64_t bytes_mapped = 0;  ///< mmap'd bytes kept alive ("snapshot")
};

/// An immutable, query-ready view of one published release: the bundle plus
/// its columnar personal-group index and posting index, built once at
/// publish time and shared (via shared_ptr<const>) by every concurrent
/// reader. The group index is built over the *perturbed* release table, so
/// its per-group SA histograms are exactly the observed counts O* a
/// consumer reconstructs from (Lemma 2). `epoch` distinguishes
/// republications of the same named release — the serving layer keys its
/// answer cache on it.
struct ReleaseSnapshot {
  ReleaseSnapshot(ReleaseBundle bundle_in, uint64_t epoch_in)
      : bundle(std::move(bundle_in)), epoch(epoch_in) {}
  /// Non-copyable and non-movable: `postings` refers to `index` by address,
  /// so a snapshot must stay at the address it was built at — it is only
  /// ever handled through a stable shared_ptr.
  ReleaseSnapshot(const ReleaseSnapshot&) = delete;
  ReleaseSnapshot& operator=(const ReleaseSnapshot&) = delete;

  ReleaseBundle bundle;
  recpriv::table::FlatGroupIndex index;
  std::unique_ptr<const recpriv::table::GroupPostingIndex> postings;
  /// The release's perturbation operator (p, m), validated once at
  /// snapshot time so per-answer reconstruction never re-validates.
  recpriv::perturb::UniformPerturbation up{0.5, 2};
  uint64_t epoch = 0;
  /// XXH64 chained over the answer-determining content: the index's
  /// storage sections plus (p, m). Two snapshots answer every count query
  /// identically iff these agree, so the serving layer keys its answer
  /// cache on this instead of the epoch number — an epoch number can be
  /// reused with different data (Drop followed by OpenSnapshot of a
  /// same-epoch file, e.g. via replication or restart recovery), and a
  /// digest-keyed cache can never serve answers from the dropped data.
  uint64_t content_digest = 0;
  SnapshotSource source;
  /// Keepalive for storage `index` borrows instead of owning — an mmap'd
  /// snapshot file, type-erased so this layer needs no dependency on the
  /// store. Null when the index owns its arrays.
  std::shared_ptr<const void> backing;
};

/// Builds a snapshot: validates the bundle's params against its schema,
/// indexes the release table, and freezes everything behind a const
/// pointer. `source` carries provenance already accrued by the caller
/// (e.g. CSV parse time); index build time is added to its build_ms.
Result<std::shared_ptr<const ReleaseSnapshot>> SnapshotRelease(
    ReleaseBundle bundle, uint64_t epoch, SnapshotSource source = {});

/// Assembles a snapshot around an already-built index (the store's open
/// path hands in one reconstructed over mmap'd storage): validates the
/// bundle's params, builds the posting index (adding its cost to
/// source.build_ms), and freezes everything behind a const pointer.
/// `backing` must keep any memory `index` borrows alive.
Result<std::shared_ptr<const ReleaseSnapshot>> AssembleSnapshot(
    ReleaseBundle bundle, uint64_t epoch, recpriv::table::FlatGroupIndex index,
    SnapshotSource source, std::shared_ptr<const void> backing = nullptr);

}  // namespace recpriv::analysis
