// Self-describing releases: a published CSV plus a JSON manifest recording
// everything a consumer needs to reconstruct correctly — the mechanism
// parameters (p, m), the privacy specification (lambda, delta), the
// sensitive attribute, and the generalization mapping that was applied.
//
// Without the manifest a consumer must be told p and m out of band; with
// it, `LoadRelease` + `Reconstructor` is a complete analyst toolchain.

#pragma once

#include <string>

#include "analysis/reconstructor.h"
#include "common/json.h"
#include "common/result.h"
#include "core/generalization.h"
#include "core/reconstruction_privacy.h"
#include "table/table.h"

namespace recpriv::analysis {

/// Everything shipped to the consumer.
struct ReleaseBundle {
  recpriv::table::Table data;
  recpriv::core::PrivacyParams params;
  std::string sensitive_attribute;
  /// Generalized value names per attribute (empty when no generalization
  /// was applied): generalization[attr] lists the merged-value labels.
  std::vector<std::vector<std::string>> generalization;
};

/// Writes `bundle.data` to `<basename>.csv` and the manifest to
/// `<basename>.manifest.json`.
Status WriteRelease(const ReleaseBundle& bundle, const std::string& basename);

/// Loads a release written by WriteRelease. Errors when the manifest and
/// CSV disagree (schema arity, SA name, SA domain size).
Result<ReleaseBundle> LoadRelease(const std::string& basename);

/// Builds the manifest JSON (exposed for tests and for embedding).
recpriv::JsonValue BuildManifest(const ReleaseBundle& bundle);

/// Convenience: a Reconstructor configured from a loaded bundle.
Result<Reconstructor> MakeReconstructor(const ReleaseBundle& bundle);

}  // namespace recpriv::analysis
