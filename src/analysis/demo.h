// The canonical synthetic demo release: the Job/City/Disease dataset every
// serving-surface consumer shares — recpriv_serve --demo, the concurrency
// bench, and the wire fuzz/stress suites all build the SAME release from
// this one helper, so a change to its shape (domains, group mix, privacy
// parameters) cannot silently diverge between the tool and the tests that
// claim to exercise it.

#pragma once

#include <cstdint>

#include "analysis/release.h"
#include "common/result.h"

namespace recpriv::analysis {

/// Builds an SPS-perturbed release over four Job x City groups with SA
/// domain {flu, hiv, bc}. `base_group_size` scales the dataset: the groups
/// hold 4x, 3x, 2x, and 1x that many records (the tool and bench use 1000
/// -> ~10k records; the fuzz/stress tests use 100 -> ~1k). `seed` drives
/// the SPS perturbation, so distinct seeds give releases with genuinely
/// different observed counts — what a republish-under-test needs.
Result<ReleaseBundle> MakeDemoReleaseBundle(uint64_t seed,
                                            size_t base_group_size = 1000);

}  // namespace recpriv::analysis
