#include "analysis/release.h"

#include <bit>
#include <fstream>
#include <sstream>

#include "common/checksum.h"
#include "common/json.h"
#include "common/timer.h"
#include "table/csv.h"

namespace recpriv::analysis {

using recpriv::core::PrivacyParams;
using recpriv::table::Table;

namespace {

/// Chains one typed array into a running XXH64 (the hash family of
/// repl/digest — see src/repl/digest.h): the previous digest seeds the
/// next block, so section order matters and a zero-length section still
/// advances the chain.
template <typename T>
uint64_t ChainHash(uint64_t seed, std::span<const T> data) {
  return XxHash64(data.data(), data.size() * sizeof(T), seed);
}

/// Content digest of a snapshot's answer-determining state: every index
/// storage section plus the perturbation operator (p, m). Deliberately
/// excludes the epoch — the digest identifies what the snapshot answers,
/// not which publish produced it.
uint64_t ComputeContentDigest(const recpriv::table::FlatGroupIndex& index,
                              const recpriv::perturb::UniformPerturbation& up) {
  const recpriv::table::FlatGroupIndex::Storage s = index.storage();
  const uint64_t dims[3] = {s.packed ? 1u : 0u, s.num_groups, s.num_records};
  uint64_t d = XxHash64(dims, sizeof(dims), /*seed=*/0);
  d = ChainHash(d, s.packed_keys);
  d = ChainHash(d, s.na_codes);
  d = ChainHash(d, s.sa_counts);
  d = ChainHash(d, s.row_offsets);
  d = ChainHash(d, s.row_values);
  const uint64_t params[2] = {std::bit_cast<uint64_t>(up.retention_p),
                              uint64_t(up.domain_m)};
  d = XxHash64(params, sizeof(params), d);
  return d;
}

}  // namespace

JsonValue BuildManifest(const ReleaseBundle& bundle) {
  JsonValue root = JsonValue::Object();
  root.Set("format", JsonValue::String("recpriv-release"));
  root.Set("version", JsonValue::Int(1));

  JsonValue mechanism = JsonValue::Object();
  mechanism.Set("type", JsonValue::String("uniform-perturbation-sps"));
  mechanism.Set("retention_p", JsonValue::Number(bundle.params.retention_p));
  mechanism.Set("domain_m",
                JsonValue::Int(int64_t(bundle.params.domain_m)));
  root.Set("mechanism", std::move(mechanism));

  JsonValue privacy = JsonValue::Object();
  privacy.Set("criterion", JsonValue::String("reconstruction-privacy"));
  privacy.Set("lambda", JsonValue::Number(bundle.params.lambda));
  privacy.Set("delta", JsonValue::Number(bundle.params.delta));
  root.Set("privacy", std::move(privacy));

  root.Set("sensitive_attribute",
           JsonValue::String(bundle.sensitive_attribute));
  root.Set("num_records", JsonValue::Int(int64_t(bundle.data.num_rows())));

  JsonValue attrs = JsonValue::Array();
  const auto& schema = *bundle.data.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    JsonValue attr = JsonValue::Object();
    attr.Set("name", JsonValue::String(schema.attribute(a).name));
    attr.Set("domain_size",
             JsonValue::Int(int64_t(schema.attribute(a).domain.size())));
    attr.Set("sensitive", JsonValue::Bool(schema.is_sensitive(a)));
    attrs.Append(std::move(attr));
  }
  root.Set("attributes", std::move(attrs));

  if (!bundle.generalization.empty()) {
    JsonValue gen = JsonValue::Array();
    for (const auto& merged : bundle.generalization) {
      JsonValue per_attr = JsonValue::Array();
      for (const auto& name : merged) {
        per_attr.Append(JsonValue::String(name));
      }
      gen.Append(std::move(per_attr));
    }
    root.Set("generalized_values", std::move(gen));
  }
  return root;
}

Status WriteRelease(const ReleaseBundle& bundle, const std::string& basename) {
  RECPRIV_RETURN_NOT_OK(bundle.params.Validate());
  if (bundle.params.domain_m != bundle.data.schema()->sa_domain_size()) {
    return Status::InvalidArgument(
        "params.domain_m does not match the release's SA domain");
  }
  RECPRIV_RETURN_NOT_OK(
      recpriv::table::WriteCsv(bundle.data, basename + ".csv"));
  std::ofstream manifest(basename + ".manifest.json");
  if (!manifest) {
    return Status::IOError("cannot write manifest: " + basename +
                           ".manifest.json");
  }
  manifest << BuildManifest(bundle).ToString(/*indent=*/2) << "\n";
  if (!manifest) return Status::IOError("short write to manifest");
  return Status::OK();
}

Result<ReleaseBundle> LoadRelease(const std::string& basename) {
  std::ifstream in(basename + ".manifest.json");
  if (!in) {
    return Status::IOError("cannot open manifest: " + basename +
                           ".manifest.json");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  RECPRIV_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(buffer.str()));

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* format, root.Get("format"));
  RECPRIV_ASSIGN_OR_RETURN(std::string format_name, format->AsString());
  if (format_name != "recpriv-release") {
    return Status::InvalidArgument("not a recpriv release manifest");
  }

  PrivacyParams params;
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* mechanism, root.Get("mechanism"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* p_node,
                           mechanism->Get("retention_p"));
  RECPRIV_ASSIGN_OR_RETURN(params.retention_p, p_node->AsDouble());
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* m_node,
                           mechanism->Get("domain_m"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t m, m_node->AsInt());
  params.domain_m = size_t(m);
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* privacy, root.Get("privacy"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* lambda_node,
                           privacy->Get("lambda"));
  RECPRIV_ASSIGN_OR_RETURN(params.lambda, lambda_node->AsDouble());
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* delta_node,
                           privacy->Get("delta"));
  RECPRIV_ASSIGN_OR_RETURN(params.delta, delta_node->AsDouble());

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* sa_node,
                           root.Get("sensitive_attribute"));
  RECPRIV_ASSIGN_OR_RETURN(std::string sensitive, sa_node->AsString());

  recpriv::table::CsvReadOptions read_options;
  read_options.sensitive_attribute = sensitive;
  read_options.missing_token.clear();  // releases have no missing values
  RECPRIV_ASSIGN_OR_RETURN(Table data,
                           recpriv::table::ReadCsv(basename + ".csv",
                                                   read_options));
  if (data.schema()->sa_domain_size() > params.domain_m) {
    return Status::InvalidArgument(
        "release CSV has more SA values than the manifest's domain_m");
  }
  // The CSV may not exercise every SA value; pad the dictionary so the
  // reconstruction domain matches the manifest.
  // (Padding with reserved names keeps codes stable for observed values.)
  while (data.schema()->sa_domain_size() < params.domain_m) {
    data.schema()->sensitive().domain.GetOrAdd(
        "__unseen_" +
        std::to_string(data.schema()->sa_domain_size()));
  }

  ReleaseBundle bundle{std::move(data), params, std::move(sensitive), {}};
  if (root.Has("generalized_values")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* gen,
                             root.Get("generalized_values"));
    for (size_t a = 0; a < gen->size(); ++a) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* per_attr, gen->At(a));
      std::vector<std::string> names;
      for (size_t i = 0; i < per_attr->size(); ++i) {
        RECPRIV_ASSIGN_OR_RETURN(const JsonValue* name, per_attr->At(i));
        RECPRIV_ASSIGN_OR_RETURN(std::string s, name->AsString());
        names.push_back(std::move(s));
      }
      bundle.generalization.push_back(std::move(names));
    }
  }
  return bundle;
}

Result<Reconstructor> MakeReconstructor(const ReleaseBundle& bundle) {
  return Reconstructor::Make(bundle.params.retention_p,
                             bundle.params.domain_m);
}

Result<std::shared_ptr<const ReleaseSnapshot>> SnapshotRelease(
    ReleaseBundle bundle, uint64_t epoch, SnapshotSource source) {
  RECPRIV_RETURN_NOT_OK(bundle.params.Validate());
  if (bundle.params.domain_m != bundle.data.schema()->sa_domain_size()) {
    return Status::InvalidArgument(
        "params.domain_m does not match the release's SA domain");
  }
  WallTimer timer;
  recpriv::table::FlatGroupIndex index =
      recpriv::table::FlatGroupIndex::Build(bundle.data);
  source.build_ms += timer.Millis();
  return AssembleSnapshot(std::move(bundle), epoch, std::move(index),
                          std::move(source));
}

Result<std::shared_ptr<const ReleaseSnapshot>> AssembleSnapshot(
    ReleaseBundle bundle, uint64_t epoch, recpriv::table::FlatGroupIndex index,
    SnapshotSource source, std::shared_ptr<const void> backing) {
  RECPRIV_RETURN_NOT_OK(bundle.params.Validate());
  if (bundle.params.domain_m != bundle.data.schema()->sa_domain_size()) {
    return Status::InvalidArgument(
        "params.domain_m does not match the release's SA domain");
  }
  auto snap = std::make_shared<ReleaseSnapshot>(std::move(bundle), epoch);
  snap->index = std::move(index);
  WallTimer timer;
  snap->postings =
      std::make_unique<recpriv::table::GroupPostingIndex>(snap->index);
  source.build_ms += timer.Millis();
  snap->source = std::move(source);
  snap->backing = std::move(backing);
  snap->up = recpriv::perturb::UniformPerturbation{
      snap->bundle.params.retention_p, snap->bundle.params.domain_m};
  RECPRIV_RETURN_NOT_OK(snap->up.Validate());
  snap->content_digest = ComputeContentDigest(snap->index, snap->up);
  return std::shared_ptr<const ReleaseSnapshot>(std::move(snap));
}

}  // namespace recpriv::analysis
