// Consumer-side reconstruction toolkit. The paper's §3.1 notes that with
// data perturbation "the reconstruction is performed by the user himself";
// this module is that user's API: given a published release and the public
// perturbation parameters (p, m), estimate frequencies/counts of SA values
// over any sub-population, with standard errors and normal-approximation
// confidence intervals.
//
// Estimator (Lemma 2): F' = (O*/|S| - (1-p)/m) / p, unbiased.
// Uncertainty: O* is a Poisson-binomial sum; the plug-in variance
// |S| q(1-q) with q = O*/|S| yields SE(F') = sqrt(|S| q(1-q)) / (|S| p).
// NOTE: for SPS releases the effective number of independent trials in a
// sampled group is s_g < |S|, so these intervals are *optimistic* for
// within-single-group estimates — exactly the designed personal-
// reconstruction penalty. For aggregate estimates spanning many groups the
// interval is accurate, per Theorem 5.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "perturb/uniform_perturbation.h"
#include "table/flat_group_index.h"
#include "table/predicate.h"
#include "table/table.h"

namespace recpriv::analysis {

/// One reconstructed quantity with its uncertainty.
struct Estimate {
  double frequency = 0.0;      ///< F', the MLE of the true frequency
  double count = 0.0;          ///< |S| * F', the estimated true count
  double std_error = 0.0;      ///< plug-in SE of F'
  double ci_low = 0.0;         ///< CI lower end (frequency scale)
  double ci_high = 0.0;        ///< CI upper end (frequency scale)
  uint64_t subset_size = 0;    ///< |S*|: released records matched
  uint64_t observed_count = 0; ///< O*: matched records showing the value
};

/// Reconstructs statistics from a perturbed release.
class Reconstructor {
 public:
  /// `retention_p` and `domain_m` are the published mechanism parameters.
  static Result<Reconstructor> Make(double retention_p, size_t domain_m);

  /// Frequency of `sa_code` among release rows matching the NA conditions
  /// of `predicate` (SA conditions in the predicate are rejected: the
  /// released SA is noise, filtering on it would bias the estimate).
  Result<Estimate> EstimateFrequency(const recpriv::table::Table& release,
                                     const recpriv::table::Predicate& predicate,
                                     uint32_t sa_code,
                                     double confidence = 0.95) const;

  /// Whole SA distribution for the matched sub-population.
  Result<std::vector<Estimate>> EstimateDistribution(
      const recpriv::table::Table& release,
      const recpriv::table::Predicate& predicate,
      double confidence = 0.95) const;

  /// Index-backed variants: identical estimates computed from a
  /// FlatGroupIndex of the release instead of a row scan — the fused
  /// histogram-sum kernel makes repeated reconstructions over the same
  /// release O(|G|) (or O(log |G|) when fully bound) instead of O(|D|)
  /// per call. The index must be built over the same released table.
  Result<Estimate> EstimateFrequency(
      const recpriv::table::FlatGroupIndex& index,
      const recpriv::table::Predicate& predicate, uint32_t sa_code,
      double confidence = 0.95) const;

  Result<std::vector<Estimate>> EstimateDistribution(
      const recpriv::table::FlatGroupIndex& index,
      const recpriv::table::Predicate& predicate,
      double confidence = 0.95) const;

  /// Direct form over an already-computed observed histogram.
  Result<Estimate> FromObserved(uint64_t observed_count, uint64_t subset_size,
                                double confidence = 0.95) const;

  double retention_p() const { return up_.retention_p; }
  size_t domain_m() const { return up_.domain_m; }

 private:
  explicit Reconstructor(recpriv::perturb::UniformPerturbation up) : up_(up) {}
  recpriv::perturb::UniformPerturbation up_;
};

}  // namespace recpriv::analysis
