#include "analysis/demo.h"

#include <utility>

#include "common/random.h"
#include "core/sps.h"
#include "datagen/simple.h"

namespace recpriv::analysis {

Result<ReleaseBundle> MakeDemoReleaseBundle(uint64_t seed,
                                            size_t base_group_size) {
  datagen::SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back(
      datagen::GroupSpec{{"eng", "north"}, 4 * base_group_size, {70, 20, 10}});
  spec.groups.push_back(
      datagen::GroupSpec{{"eng", "south"}, 3 * base_group_size, {70, 20, 10}});
  spec.groups.push_back(
      datagen::GroupSpec{{"law", "north"}, 2 * base_group_size, {20, 30, 50}});
  spec.groups.push_back(
      datagen::GroupSpec{{"law", "south"}, 1 * base_group_size, {20, 30, 50}});
  RECPRIV_ASSIGN_OR_RETURN(table::Table raw,
                           datagen::GenerateSimpleExact(spec));

  core::PrivacyParams params;
  params.domain_m = raw.schema()->sa_domain_size();
  Rng rng(seed);
  RECPRIV_ASSIGN_OR_RETURN(core::SpsTableResult sps,
                           core::SpsPerturbTable(params, raw, rng));
  return ReleaseBundle{std::move(sps.table), params,
                       spec.sensitive_attribute, {}};
}

}  // namespace recpriv::analysis
