#include "analysis/reconstructor.h"

#include <cmath>

#include "perturb/mle.h"
#include "stats/special_functions.h"

namespace recpriv::analysis {

using recpriv::perturb::UniformPerturbation;
using recpriv::table::Predicate;
using recpriv::table::Table;

Result<Reconstructor> Reconstructor::Make(double retention_p,
                                          size_t domain_m) {
  UniformPerturbation up{retention_p, domain_m};
  RECPRIV_RETURN_NOT_OK(up.Validate());
  return Reconstructor(up);
}

Result<Estimate> Reconstructor::FromObserved(uint64_t observed_count,
                                             uint64_t subset_size,
                                             double confidence) const {
  if (observed_count > subset_size) {
    return Status::InvalidArgument("observed count exceeds subset size");
  }
  if (confidence <= 0.0 || confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  Estimate e;
  e.subset_size = subset_size;
  e.observed_count = observed_count;
  if (subset_size == 0) return e;

  e.frequency = recpriv::perturb::MleFrequency(up_, observed_count,
                                               subset_size);
  e.count = e.frequency * static_cast<double>(subset_size);
  const double n = static_cast<double>(subset_size);
  const double q = static_cast<double>(observed_count) / n;
  // Plug-in Poisson-binomial variance of O*; delta method through Lemma 2.
  e.std_error = std::sqrt(n * q * (1.0 - q)) / (n * up_.retention_p);
  const double z = stats::NormalQuantile(0.5 + confidence / 2.0);
  e.ci_low = e.frequency - z * e.std_error;
  e.ci_high = e.frequency + z * e.std_error;
  return e;
}

Result<Estimate> Reconstructor::EstimateFrequency(const Table& release,
                                                  const Predicate& predicate,
                                                  uint32_t sa_code,
                                                  double confidence) const {
  const size_t sa_col = release.schema()->sensitive_index();
  if (predicate.num_attributes() != release.schema()->num_attributes()) {
    return Status::InvalidArgument("predicate arity mismatch");
  }
  if (predicate.is_bound(sa_col)) {
    return Status::InvalidArgument(
        "predicate must not constrain the sensitive attribute; the released "
        "SA is perturbed and filtering on it biases reconstruction");
  }
  if (sa_code >= up_.domain_m) {
    return Status::OutOfRange("sa_code outside the SA domain");
  }
  uint64_t observed = 0, size = 0;
  for (size_t r = 0; r < release.num_rows(); ++r) {
    if (!predicate.Matches(release, r)) continue;
    ++size;
    observed += (release.at(r, sa_col) == sa_code);
  }
  return FromObserved(observed, size, confidence);
}

Result<Estimate> Reconstructor::EstimateFrequency(
    const recpriv::table::FlatGroupIndex& index, const Predicate& predicate,
    uint32_t sa_code, double confidence) const {
  const size_t sa_col = index.schema()->sensitive_index();
  if (predicate.num_attributes() != index.schema()->num_attributes()) {
    return Status::InvalidArgument("predicate arity mismatch");
  }
  if (predicate.is_bound(sa_col)) {
    return Status::InvalidArgument(
        "predicate must not constrain the sensitive attribute; the released "
        "SA is perturbed and filtering on it biases reconstruction");
  }
  if (sa_code >= up_.domain_m) {
    return Status::OutOfRange("sa_code outside the SA domain");
  }
  uint64_t observed = 0, size = 0;
  index.AnswerInto(predicate, sa_code, &observed, &size);
  return FromObserved(observed, size, confidence);
}

Result<std::vector<Estimate>> Reconstructor::EstimateDistribution(
    const recpriv::table::FlatGroupIndex& index, const Predicate& predicate,
    double confidence) const {
  const size_t sa_col = index.schema()->sensitive_index();
  if (predicate.num_attributes() != index.schema()->num_attributes()) {
    return Status::InvalidArgument("predicate arity mismatch");
  }
  if (predicate.is_bound(sa_col)) {
    return Status::InvalidArgument(
        "predicate must not constrain the sensitive attribute");
  }
  if (index.sa_domain() > up_.domain_m) {
    return Status::InvalidArgument(
        "release SA domain exceeds the reconstructor's domain_m");
  }
  // One matching pass, then |G_match| histogram-row adds.
  std::vector<uint64_t> observed(up_.domain_m, 0);
  uint64_t size = 0;
  std::vector<uint32_t> match_scratch;
  index.MatchingGroupsInto(predicate, match_scratch);
  for (uint32_t gi : match_scratch) {
    const auto row = index.sa_counts(gi);
    for (size_t sa = 0; sa < row.size(); ++sa) observed[sa] += row[sa];
    size += index.group_size(gi);
  }
  std::vector<Estimate> out;
  out.reserve(up_.domain_m);
  for (size_t sa = 0; sa < up_.domain_m; ++sa) {
    RECPRIV_ASSIGN_OR_RETURN(Estimate e,
                             FromObserved(observed[sa], size, confidence));
    out.push_back(e);
  }
  return out;
}

Result<std::vector<Estimate>> Reconstructor::EstimateDistribution(
    const Table& release, const Predicate& predicate,
    double confidence) const {
  const size_t sa_col = release.schema()->sensitive_index();
  if (predicate.num_attributes() != release.schema()->num_attributes()) {
    return Status::InvalidArgument("predicate arity mismatch");
  }
  if (predicate.is_bound(sa_col)) {
    return Status::InvalidArgument(
        "predicate must not constrain the sensitive attribute");
  }
  std::vector<uint64_t> observed(up_.domain_m, 0);
  uint64_t size = 0;
  for (size_t r = 0; r < release.num_rows(); ++r) {
    if (!predicate.Matches(release, r)) continue;
    ++size;
    uint32_t code = release.at(r, sa_col);
    if (code >= up_.domain_m) {
      return Status::InvalidArgument(
          "release SA domain exceeds the reconstructor's domain_m");
    }
    ++observed[code];
  }
  std::vector<Estimate> out;
  out.reserve(up_.domain_m);
  for (size_t sa = 0; sa < up_.domain_m; ++sa) {
    RECPRIV_ASSIGN_OR_RETURN(Estimate e,
                             FromObserved(observed[sa], size, confidence));
    out.push_back(e);
  }
  return out;
}

}  // namespace recpriv::analysis
