#include "stats/chi_squared.h"

#include <cmath>

#include "stats/special_functions.h"

namespace recpriv::stats {

Result<ChiSquaredTestResult> TwoSampleBinnedChiSquared(
    const std::vector<uint64_t>& counts_a,
    const std::vector<uint64_t>& counts_b, double significance) {
  if (counts_a.size() != counts_b.size()) {
    return Status::InvalidArgument("histograms must have equal bin counts");
  }
  if (counts_a.empty()) {
    return Status::InvalidArgument("histograms must be non-empty");
  }
  if (significance <= 0.0 || significance >= 1.0) {
    return Status::InvalidArgument("significance must be in (0,1)");
  }
  double total_a = 0.0;
  double total_b = 0.0;
  for (uint64_t c : counts_a) total_a += static_cast<double>(c);
  for (uint64_t c : counts_b) total_b += static_cast<double>(c);
  if (total_a == 0.0 || total_b == 0.0) {
    return Status::InvalidArgument("each histogram needs a positive total");
  }

  const double ratio_ab = std::sqrt(total_b / total_a);
  const double ratio_ba = std::sqrt(total_a / total_b);
  double chi2 = 0.0;
  for (size_t j = 0; j < counts_a.size(); ++j) {
    const double oa = static_cast<double>(counts_a[j]);
    const double ob = static_cast<double>(counts_b[j]);
    if (oa == 0.0 && ob == 0.0) continue;  // empty bin: no information
    const double diff = ratio_ab * oa - ratio_ba * ob;
    chi2 += diff * diff / (oa + ob);
  }

  ChiSquaredTestResult r;
  r.statistic = chi2;
  r.df = static_cast<double>(counts_a.size());  // paper: df = m
  r.critical_value = ChiSquaredQuantile(1.0 - significance, r.df);
  r.p_value = 1.0 - ChiSquaredCdf(chi2, r.df);
  r.reject_null = chi2 > r.critical_value;
  return r;
}

Result<bool> SameImpactOnSA(const std::vector<uint64_t>& counts_a,
                            const std::vector<uint64_t>& counts_b,
                            double significance) {
  RECPRIV_ASSIGN_OR_RETURN(
      ChiSquaredTestResult r,
      TwoSampleBinnedChiSquared(counts_a, counts_b, significance));
  return !r.reject_null;
}

}  // namespace recpriv::stats
