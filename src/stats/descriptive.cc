#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace recpriv::stats {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::standard_error() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

Summary Summarize(const std::vector<double>& values) {
  RunningStats rs;
  for (double v : values) rs.Add(v);
  Summary s;
  s.count = rs.count();
  if (s.count == 0) return s;
  s.mean = rs.mean();
  s.variance = rs.variance();
  s.stddev = rs.stddev();
  s.standard_error = rs.standard_error();
  s.min = rs.min();
  s.max = rs.max();
  return s;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace recpriv::stats
