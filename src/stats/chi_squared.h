// Two-sample binned chi-squared test for "same impact on SA" (paper §3.4).
//
// Given two binned SA histograms O = [o_1..o_m] and O' = [o'_1..o'_m]
// (unequal totals allowed), the paper computes, per Numerical Recipes [26]:
//
//   chi^2 = sum_j ( sqrt(|O'|/|O|) o_j - sqrt(|O|/|O'|) o'_j )^2
//                 / ( o_j + o'_j )                                  (Eq. 4)
//
// with degrees of freedom m and conventional significance 0.05. The null
// hypothesis "both samples come from the same distribution" is rejected
// when chi^2 exceeds the chi-squared quantile at 1 - significance.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace recpriv::stats {

/// Outcome of one two-sample binned chi-squared test.
struct ChiSquaredTestResult {
  double statistic = 0.0;      ///< the Eq. (4) chi^2 value
  double critical_value = 0.0; ///< quantile at (1 - significance), df = m
  double p_value = 1.0;        ///< Pr[chi^2_df >= statistic]
  double df = 0.0;             ///< degrees of freedom used (= m, per paper)
  bool reject_null = false;    ///< true => distributions differ
};

/// Runs the Eq. (4) test on two histograms over the same m bins.
///
/// Bins where both counts are zero contribute nothing (the summand is 0/0;
/// Numerical Recipes omits such bins). The paper fixes df = m for the
/// unequal-total two-sample case; we follow that. Errors when the
/// histograms differ in length or either total is zero.
Result<ChiSquaredTestResult> TwoSampleBinnedChiSquared(
    const std::vector<uint64_t>& counts_a,
    const std::vector<uint64_t>& counts_b, double significance = 0.05);

/// Convenience: true iff the test fails to reject, i.e. the two value
/// distributions are consistent with one underlying distribution and the
/// corresponding NA values should be merged (connected in the merge graph).
Result<bool> SameImpactOnSA(const std::vector<uint64_t>& counts_a,
                            const std::vector<uint64_t>& counts_b,
                            double significance = 0.05);

}  // namespace recpriv::stats
