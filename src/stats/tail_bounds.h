// Classical tail bounds for sums of independent Poisson trials, alongside
// the Chernoff bound of chernoff.h. The paper (§4.2) names Markov's and
// Chebyshev's inequalities as the early upper bounds that the Chernoff
// bound supersedes; implementing them lets the bench suite quantify how
// much tighter the Chernoff form is — the justification for Contribution 3.
//
// For X a sum of independent Poisson trials with mu = E[X] and
// sigma^2 = Var[X] <= mu:
//
//   Markov:     Pr[(X-mu)/mu >  omega] <= 1 / (1 + omega)
//   Chebyshev:  Pr[|X-mu|/mu >  omega] <= sigma^2 / (omega mu)^2
//                                      <= 1 / (omega^2 mu)
//
// Both are distribution-free given the stated moments; Chernoff additionally
// uses independence for its exponential decay.

#pragma once

namespace recpriv::stats {

/// Markov bound on the upper relative tail: 1/(1+omega), for omega > 0.
/// (Pr[X > (1+omega) mu] <= E[X] / ((1+omega) mu).)
double MarkovUpperTail(double omega);

/// Chebyshev bound on the two-sided relative tail using Var[X] <= mu for
/// Poisson-trial sums: 1/(omega^2 mu). Requires omega > 0, mu > 0.
double ChebyshevTail(double omega, double mu);

/// Chebyshev bound with an explicit variance: variance/(omega mu)^2.
double ChebyshevTailWithVariance(double omega, double mu, double variance);

/// Bound comparison record for one (omega, mu) point.
struct TailBoundComparison {
  double omega = 0.0;
  double mu = 0.0;
  double markov = 1.0;
  double chebyshev = 1.0;
  double chernoff_upper = 1.0;
  double chernoff_lower = 1.0;  ///< only meaningful for omega <= 1
};

/// Evaluates all bounds at one point (values above 1 are clamped to 1 —
/// a probability bound above 1 is vacuous).
TailBoundComparison CompareTailBounds(double omega, double mu);

}  // namespace recpriv::stats
