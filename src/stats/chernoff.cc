#include "stats/chernoff.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace recpriv::stats {

double ChernoffUpperTail(double omega, double mu) {
  RECPRIV_DCHECK(omega > 0.0) << "omega must be positive";
  RECPRIV_DCHECK(mu >= 0.0);
  return std::exp(-omega * omega * mu / (2.0 + omega));
}

double ChernoffLowerTail(double omega, double mu) {
  RECPRIV_DCHECK(omega > 0.0 && omega <= 1.0)
      << "lower-tail omega must be in (0,1], got " << omega;
  RECPRIV_DCHECK(mu >= 0.0);
  return std::exp(-omega * omega * mu / 2.0);
}

double ExpectedObservedCount(const GroupBoundParams& g) {
  return g.group_size *
         (g.frequency * g.retention + (1.0 - g.retention) / g.domain_size);
}

double OmegaForLambda(const GroupBoundParams& g, double lambda) {
  RECPRIV_DCHECK(g.frequency > 0.0) << "omega conversion requires f > 0";
  const double pf = g.retention * g.frequency;
  return lambda * pf / (pf + (1.0 - g.retention) / g.domain_size);
}

double LambdaForOmega(const GroupBoundParams& g, double omega) {
  RECPRIV_DCHECK(g.frequency > 0.0);
  const double pf = g.retention * g.frequency;
  return omega * (pf + (1.0 - g.retention) / g.domain_size) / pf;
}

double MaxLambdaForLowerTail(const GroupBoundParams& g) {
  RECPRIV_DCHECK(g.frequency > 0.0);
  return 1.0 +
         ((1.0 - g.retention) / g.domain_size) / (g.retention * g.frequency);
}

double MleUpperTailBound(const GroupBoundParams& g, double lambda) {
  return ChernoffUpperTail(OmegaForLambda(g, lambda),
                           ExpectedObservedCount(g));
}

double MleLowerTailBound(const GroupBoundParams& g, double lambda) {
  return ChernoffLowerTail(OmegaForLambda(g, lambda),
                           ExpectedObservedCount(g));
}

double MleBestTailBound(const GroupBoundParams& g, double lambda) {
  const double omega = OmegaForLambda(g, lambda);
  const double mu = ExpectedObservedCount(g);
  const double upper = ChernoffUpperTail(omega, mu);
  if (omega > 1.0) return upper;  // lower-tail form out of range
  // For omega in (0,1], L <= U always (exponent mu w^2/2 >= mu w^2/(2+w)).
  return std::min(upper, ChernoffLowerTail(omega, mu));
}

}  // namespace recpriv::stats
