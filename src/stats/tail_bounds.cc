#include "stats/tail_bounds.h"

#include <algorithm>

#include "common/logging.h"
#include "stats/chernoff.h"

namespace recpriv::stats {

double MarkovUpperTail(double omega) {
  RECPRIV_DCHECK(omega > 0.0);
  return 1.0 / (1.0 + omega);
}

double ChebyshevTail(double omega, double mu) {
  RECPRIV_DCHECK(omega > 0.0 && mu > 0.0);
  return 1.0 / (omega * omega * mu);
}

double ChebyshevTailWithVariance(double omega, double mu, double variance) {
  RECPRIV_DCHECK(omega > 0.0 && mu > 0.0 && variance >= 0.0);
  return variance / ((omega * mu) * (omega * mu));
}

TailBoundComparison CompareTailBounds(double omega, double mu) {
  TailBoundComparison c;
  c.omega = omega;
  c.mu = mu;
  c.markov = std::min(1.0, MarkovUpperTail(omega));
  c.chebyshev = std::min(1.0, ChebyshevTail(omega, mu));
  c.chernoff_upper = std::min(1.0, ChernoffUpperTail(omega, mu));
  c.chernoff_lower =
      omega <= 1.0 ? std::min(1.0, ChernoffLowerTail(omega, mu)) : 1.0;
  return c;
}

}  // namespace recpriv::stats
