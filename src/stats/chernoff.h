// Chernoff tail bounds for sums of independent Poisson trials (Theorem 3)
// and the bound conversion between observed-count error and MLE error
// (Theorem 2 / Corollary 3 of the paper).
//
// For X = X_1 + ... + X_n independent Poisson trials, mu = E[X]:
//
//   Pr[(X - mu)/mu >  omega] < U(omega, mu) = exp(-omega^2 mu / (2 + omega)),
//       omega in (0, inf)                                         (Eq. 5)
//   Pr[(X - mu)/mu < -omega] < L(omega, mu) = exp(-omega^2 mu / 2),
//       omega in (0, 1]                                           (Eq. 6)
//
// Theorem 2 converts a bound at relative observed-count error omega into a
// bound at relative MLE error lambda = omega * mu / (|S| p f); equivalently
// omega(lambda) = lambda p f / (p f + (1 - p)/m), independent of |S|.

#pragma once

namespace recpriv::stats {

/// Chernoff upper-tail bound U(omega, mu) = exp(-omega^2 mu / (2 + omega)).
/// Requires omega > 0, mu >= 0.
double ChernoffUpperTail(double omega, double mu);

/// Chernoff lower-tail bound L(omega, mu) = exp(-omega^2 mu / 2).
/// Requires omega in (0, 1], mu >= 0.
double ChernoffLowerTail(double omega, double mu);

/// Parameters tying a personal group's SA value to its tail bounds.
struct GroupBoundParams {
  double group_size;  ///< |S| = number of (perturbed) records
  double frequency;   ///< f = actual frequency of the SA value in S
  double retention;   ///< p = retention probability
  double domain_size; ///< m = |SA|
};

/// E[O*] = |S| (f p + (1 - p)/m)  (Lemma 2(i)).
double ExpectedObservedCount(const GroupBoundParams& g);

/// omega(lambda) = lambda |S| p f / mu = lambda p f / (p f + (1-p)/m)
/// (Theorem 2, with mu from Lemma 2(i)). Requires f > 0.
double OmegaForLambda(const GroupBoundParams& g, double lambda);

/// Inverse of OmegaForLambda: lambda(omega) = omega mu / (|S| p f).
double LambdaForOmega(const GroupBoundParams& g, double omega);

/// Largest lambda for which the lower-tail bound applies, i.e. the lambda
/// mapping to omega = 1: lambda_max = 1 + ((1-p)/m) / (p f)  (Corollary 4).
double MaxLambdaForLowerTail(const GroupBoundParams& g);

/// Corollary 3 upper bound on Pr[(F' - f)/f > lambda]: U(omega(lambda), mu).
double MleUpperTailBound(const GroupBoundParams& g, double lambda);

/// Corollary 3 upper bound on Pr[(F' - f)/f < -lambda]: L(omega(lambda), mu).
/// Valid when omega(lambda) <= 1 (guaranteed for lambda <= MaxLambda...).
double MleLowerTailBound(const GroupBoundParams& g, double lambda);

/// min{U, L} over the two tails — the "best upper bound" the adversary can
/// place on a lambda-relative reconstruction error (Definition 3 uses the
/// smaller of the two). When omega(lambda) > 1 the lower-tail bound does
/// not apply and the upper-tail bound alone is returned.
double MleBestTailBound(const GroupBoundParams& g, double lambda);

}  // namespace recpriv::stats
