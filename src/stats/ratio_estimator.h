// Taylor-expansion moments of the ratio of two noisy counts (paper §2).
//
// For noisy answers X = x + xi_1, Y = y + xi_2 with zero-mean, variance-V,
// uncorrelated noises (Lemma 1):
//
//   E[Y/X]   ~  (y/x) (1 + V/x^2)
//   Var[Y/X] ~  (V/x^2) (1 + y^2/x^2)
//
// Specializing to Laplace(b) noise, V = 2 b^2 and y <= x (Corollary 2):
//
//   |E[Y/X] - y/x| <= 2 (b/x)^2      Var[Y/X] <= 4 (b/x)^2
//
// The quantity 2 (b/x)^2 (Table 2) is the paper's disclosure-condition
// indicator: when it is small, the adversary's ratio estimate Y/X reliably
// tracks the true confidence y/x.

#pragma once

namespace recpriv::stats {

/// Inputs to the ratio-moment approximation.
struct RatioMomentInputs {
  double x;               ///< true answer of the denominator query Q1 (x != 0)
  double y;               ///< true answer of the numerator query Q2
  double noise_variance;  ///< V = Var[xi_i], common to both noises
};

/// Approximate moments of Y/X per Lemma 1.
struct RatioMoments {
  double mean;      ///< E[Y/X] approximation
  double variance;  ///< Var[Y/X] approximation
  double bias;      ///< mean - y/x
};

/// Lemma 1 Taylor approximation. Requires inputs.x != 0.
RatioMoments ApproximateRatioMoments(const RatioMomentInputs& inputs);

/// Corollary 2(i): bound 2 (b/x)^2 on |E[Y/X] - y/x| under Laplace(b).
double LaplaceRatioBiasBound(double scale_b, double x);

/// Corollary 2(ii): bound 4 (b/x)^2 on Var[Y/X] under Laplace(b).
double LaplaceRatioVarianceBound(double scale_b, double x);

/// Paper's rule of thumb: disclosure plausible when b/x <= threshold
/// (default 1/20, giving 2 (b/x)^2 <= 1/200).
bool DisclosureLikely(double scale_b, double x, double threshold = 0.05);

}  // namespace recpriv::stats
