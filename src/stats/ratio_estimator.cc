#include "stats/ratio_estimator.h"

#include <cmath>

#include "common/logging.h"

namespace recpriv::stats {

RatioMoments ApproximateRatioMoments(const RatioMomentInputs& in) {
  RECPRIV_CHECK(in.x != 0.0) << "ratio moments undefined for x = 0";
  const double r = in.y / in.x;
  const double v_over_x2 = in.noise_variance / (in.x * in.x);
  RatioMoments m;
  m.mean = r * (1.0 + v_over_x2);
  m.variance = v_over_x2 * (1.0 + r * r);
  m.bias = m.mean - r;
  return m;
}

double LaplaceRatioBiasBound(double scale_b, double x) {
  RECPRIV_CHECK(x != 0.0);
  const double ratio = scale_b / x;
  return 2.0 * ratio * ratio;
}

double LaplaceRatioVarianceBound(double scale_b, double x) {
  RECPRIV_CHECK(x != 0.0);
  const double ratio = scale_b / x;
  return 4.0 * ratio * ratio;
}

bool DisclosureLikely(double scale_b, double x, double threshold) {
  if (x <= 0.0) return false;
  return scale_b / x <= threshold;
}

}  // namespace recpriv::stats
