// Special functions needed by the statistical machinery: log-gamma,
// regularized incomplete gamma, chi-squared CDF/quantile, error function.
//
// Implemented from scratch following the classical algorithms (Lanczos
// approximation; series/continued-fraction split for the incomplete gamma,
// as in Numerical Recipes [26] which the paper itself cites for the chi^2
// test machinery).

#pragma once

namespace recpriv::stats {

/// ln Gamma(x) for x > 0 (Lanczos approximation, ~15 significant digits).
double LogGamma(double x);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a),
/// for a > 0, x >= 0. P is the CDF of Gamma(shape=a, scale=1).
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// CDF of the chi-squared distribution with `df` degrees of freedom at x.
/// Requires df > 0, x >= 0.
double ChiSquaredCdf(double x, double df);

/// Quantile (inverse CDF) of the chi-squared distribution: smallest x with
/// CDF(x) >= prob. Requires df > 0 and prob in (0, 1).
/// ChiSquaredQuantile(0.95, m) is the paper's "expected value of chi^2" at
/// significance 0.05 with df = m.
double ChiSquaredQuantile(double prob, double df);

/// Error function erf(x) (Abramowitz-Stegun 7.1.26-grade rational approx
/// refined by the incomplete-gamma identity; ~1e-12 accuracy).
double Erf(double x);

/// Standard normal CDF.
double NormalCdf(double x);

/// Standard normal quantile (inverse CDF) for prob in (0, 1); bisection on
/// NormalCdf. NormalQuantile(0.975) ~ 1.95996.
double NormalQuantile(double prob);

}  // namespace recpriv::stats
