// Descriptive statistics used throughout the experiment harness:
// mean, (sample) variance, standard deviation, and the standard error of
// the mean — the "Mean" and "SE" columns of the paper's Table 1.

#pragma once

#include <cstddef>
#include <vector>

namespace recpriv::stats {

/// Streaming accumulator (Welford) for mean / variance / SE.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 when n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean: stddev / sqrt(n); 0 when n < 2.
  double standard_error() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double standard_error = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Summarizes `values` (empty input yields an all-zero Summary).
Summary Summarize(const std::vector<double>& values);

/// Arithmetic mean (0 for empty input).
double Mean(const std::vector<double>& values);

}  // namespace recpriv::stats
