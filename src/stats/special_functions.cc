#include "stats/special_functions.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace recpriv::stats {

namespace {

// Lanczos coefficients (g = 7, n = 9), standard published set.
constexpr double kLanczos[9] = {
    0.99999999999980993,  676.5203681218851,     -1259.1392167224028,
    771.32342877765313,   -176.61502916214059,   12.507343278686905,
    -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};

// Series representation of P(a, x): converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued-fraction representation of Q(a, x): converges for x >= a + 1.
// Modified Lentz's method.
double GammaQContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
  RECPRIV_CHECK(x > 0.0) << "LogGamma requires x > 0, got " << x;
  if (x < 0.5) {
    // Reflection formula keeps the Lanczos argument >= 0.5.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  double xx = x - 1.0;
  double acc = kLanczos[0];
  for (int i = 1; i < 9; ++i) acc += kLanczos[i] / (xx + i);
  double t = xx + 7.5;  // g + 0.5
  return 0.5 * std::log(2.0 * M_PI) + (xx + 0.5) * std::log(t) - t +
         std::log(acc);
}

double RegularizedGammaP(double a, double x) {
  RECPRIV_CHECK(a > 0.0 && x >= 0.0)
      << "RegularizedGammaP domain: a > 0, x >= 0 (a=" << a << ", x=" << x
      << ")";
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  RECPRIV_CHECK(a > 0.0 && x >= 0.0)
      << "RegularizedGammaQ domain: a > 0, x >= 0";
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquaredCdf(double x, double df) {
  RECPRIV_CHECK(df > 0.0) << "chi-squared df must be positive";
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

double ChiSquaredQuantile(double prob, double df) {
  RECPRIV_CHECK(prob > 0.0 && prob < 1.0)
      << "chi-squared quantile prob must be in (0,1), got " << prob;
  RECPRIV_CHECK(df > 0.0);
  // Bracket then bisect; the CDF is strictly increasing and cheap.
  double lo = 0.0;
  double hi = df + 10.0 * std::sqrt(2.0 * df) + 10.0;
  while (ChiSquaredCdf(hi, df) < prob) {
    hi *= 2.0;
    RECPRIV_CHECK(hi < 1e12) << "chi-squared quantile bracket failed";
  }
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (ChiSquaredCdf(mid, df) < prob) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double Erf(double x) {
  // erf(x) = P(1/2, x^2) with the sign of x.
  if (x == 0.0) return 0.0;
  double v = RegularizedGammaP(0.5, x * x);
  return x > 0.0 ? v : -v;
}

double NormalCdf(double x) { return 0.5 * (1.0 + Erf(x / std::sqrt(2.0))); }

double NormalQuantile(double prob) {
  RECPRIV_CHECK(prob > 0.0 && prob < 1.0)
      << "normal quantile prob must be in (0,1), got " << prob;
  double lo = -40.0, hi = 40.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (NormalCdf(mid) < prob) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-13) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace recpriv::stats
