#include "exp/sweeps.h"

namespace recpriv::exp {

using recpriv::core::PrivacyParams;
using recpriv::query::CountQuery;
using recpriv::table::GroupIndex;

std::string AxisName(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kRetentionP:
      return "p";
    case SweepAxis::kLambda:
      return "lambda";
    case SweepAxis::kDelta:
      return "delta";
  }
  return "?";
}

std::vector<double> DefaultAxisValues(SweepAxis axis) {
  if (axis == SweepAxis::kRetentionP) {
    return {0.1, 0.3, 0.5, 0.7, 0.9};
  }
  return {0.1, 0.2, 0.3, 0.4, 0.5};
}

PrivacyParams ParamsAt(SweepAxis axis, double value, size_t m) {
  PrivacyParams params = DefaultParams(m);
  switch (axis) {
    case SweepAxis::kRetentionP:
      params.retention_p = value;
      break;
    case SweepAxis::kLambda:
      params.lambda = value;
      break;
    case SweepAxis::kDelta:
      params.delta = value;
      break;
  }
  return params;
}

ViolationSweep SweepViolations(const GroupIndex& index, SweepAxis axis,
                               const std::vector<double>& values) {
  ViolationSweep sweep;
  sweep.axis_values = values;
  for (double v : values) {
    ViolationPoint point =
        MeasureViolation(index, ParamsAt(axis, v,
                                         index.schema()->sa_domain_size()));
    sweep.vg.push_back(point.vg);
    sweep.vr.push_back(point.vr);
  }
  return sweep;
}

Result<ErrorSweep> SweepErrors(const recpriv::table::FlatGroupIndex& index,
                               const std::vector<CountQuery>& pool,
                               SweepAxis axis,
                               const std::vector<double>& values, size_t runs,
                               uint64_t seed) {
  ErrorSweep sweep;
  sweep.axis_values = values;
  Rng rng(seed);
  for (double v : values) {
    RECPRIV_ASSIGN_OR_RETURN(
        ErrorPoint point,
        MeasureRelativeError(index, pool,
                             ParamsAt(axis, v,
                                      index.schema()->sa_domain_size()),
                             runs, rng));
    sweep.up_error.push_back(point.up.mean);
    sweep.sps_error.push_back(point.sps.mean);
    sweep.up_se.push_back(point.up.standard_error);
    sweep.sps_se.push_back(point.sps.standard_error);
  }
  return sweep;
}

}  // namespace recpriv::exp
