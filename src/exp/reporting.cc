#include "exp/reporting.h"

#include <algorithm>
#include <fstream>
#include <iomanip>

#include "common/logging.h"
#include "common/string_util.h"

namespace recpriv::exp {

void AsciiTable::AddRow(std::vector<std::string> cells) {
  RECPRIV_CHECK(cells.size() == headers_.size())
      << "row arity " << cells.size() << " != header arity "
      << headers_.size();
  rows_.push_back(std::move(cells));
}

void AsciiTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(int(widths[c]))
         << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  os << std::string(total + 2 * (headers_.size() - 1), '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

Status AsciiTable::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << Join(headers_, ",") << "\n";
  for (const auto& row : rows_) out << Join(row, ",") << "\n";
  return Status::OK();
}

void PrintBanner(std::ostream& os, const std::string& title,
                 const std::string& paper_reference) {
  os << "\n" << std::string(72, '=') << "\n";
  os << title << "\n";
  os << "reproduces: " << paper_reference << "\n";
  os << std::string(72, '=') << "\n";
}

void PrintSeries(std::ostream& os, const std::string& x_name,
                 const std::vector<std::string>& x_labels,
                 const std::vector<Series>& series, int decimals) {
  size_t name_width = x_name.size();
  for (const auto& s : series) name_width = std::max(name_width, s.name.size());
  size_t cell = 8;
  for (const auto& l : x_labels) cell = std::max(cell, l.size() + 2);

  os << std::left << std::setw(int(name_width)) << x_name;
  for (const auto& l : x_labels) os << std::right << std::setw(int(cell)) << l;
  os << "\n";
  for (const auto& s : series) {
    RECPRIV_CHECK(s.values.size() == x_labels.size())
        << "series " << s.name << " length mismatch";
    os << std::left << std::setw(int(name_width)) << s.name;
    for (double v : s.values) {
      os << std::right << std::setw(int(cell)) << std::fixed
         << std::setprecision(decimals) << v;
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
}

}  // namespace recpriv::exp
