#include "exp/experiment.h"

#include <cstdlib>

#include "datagen/adult.h"
#include "datagen/census.h"
#include "query/query_pool.h"

namespace recpriv::exp {

using recpriv::core::Generalization;
using recpriv::core::PrivacyParams;
using recpriv::query::CountQuery;
using recpriv::table::FlatGroupIndex;
using recpriv::table::GroupIndex;
using recpriv::table::Table;

bool FullScale() {
  const char* v = std::getenv("RECPRIV_FULL");
  return v != nullptr && std::string(v) == "1";
}

size_t NumRuns(size_t dflt) {
  const char* v = std::getenv("RECPRIV_RUNS");
  if (v == nullptr) return dflt;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<size_t>(parsed) : dflt;
}

PrivacyParams DefaultParams(size_t m) {
  PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = m;
  return params;
}

namespace {

Result<PreparedDataset> Prepare(Table raw, size_t pool_size, uint64_t seed) {
  RECPRIV_ASSIGN_OR_RETURN(Generalization plan,
                           recpriv::core::ComputeGeneralization(raw));
  RECPRIV_ASSIGN_OR_RETURN(Table generalized,
                           recpriv::core::ApplyGeneralization(plan, raw));
  GroupIndex raw_index = GroupIndex::Build(raw);
  GroupIndex index = GroupIndex::Build(generalized);
  FlatGroupIndex flat_index = FlatGroupIndex::Build(generalized);

  std::vector<CountQuery> pool;
  if (pool_size > 0) {
    Rng pool_rng(seed ^ 0xBADC0DEBEEFULL);
    recpriv::query::QueryPoolConfig config;
    config.pool_size = pool_size;
    // The paper draws queries from the original NA values, then replaces
    // them with aggregated values for evaluation (§6.1). Pool generation
    // runs millions of selectivity probes, so it gets a columnar index of
    // the raw table (transient: only the pool survives).
    const FlatGroupIndex flat_raw = FlatGroupIndex::Build(raw);
    RECPRIV_ASSIGN_OR_RETURN(
        std::vector<CountQuery> raw_pool,
        recpriv::query::GenerateQueryPool(flat_raw, config, pool_rng));
    RECPRIV_ASSIGN_OR_RETURN(pool,
                             recpriv::query::MapQueryPool(plan, raw_pool));
  }
  return PreparedDataset{std::move(raw),        std::move(plan),
                         std::move(generalized), std::move(raw_index),
                         std::move(index),      std::move(flat_index),
                         std::move(pool)};
}

}  // namespace

Result<PreparedDataset> PrepareAdult(size_t num_records, size_t pool_size,
                                     uint64_t seed) {
  Rng rng(seed);
  recpriv::datagen::AdultConfig config;
  config.num_records = num_records;
  RECPRIV_ASSIGN_OR_RETURN(Table raw,
                           recpriv::datagen::GenerateAdult(config, rng));
  return Prepare(std::move(raw), pool_size, seed);
}

Result<PreparedDataset> PrepareCensus(size_t num_records, size_t pool_size,
                                      uint64_t seed) {
  Rng rng(seed);
  recpriv::datagen::CensusConfig config;
  config.num_records = num_records;
  RECPRIV_ASSIGN_OR_RETURN(Table raw,
                           recpriv::datagen::GenerateCensus(config, rng));
  return Prepare(std::move(raw), pool_size, seed);
}

ViolationPoint MeasureViolation(const GroupIndex& index,
                                const PrivacyParams& params) {
  recpriv::core::ViolationReport report =
      recpriv::core::AuditViolations(index, params);
  return ViolationPoint{report.GroupViolationRate(),
                        report.RecordViolationRate()};
}

Result<ErrorPoint> MeasureRelativeError(const FlatGroupIndex& index,
                                        const std::vector<CountQuery>& pool,
                                        const PrivacyParams& params,
                                        size_t runs, Rng& rng) {
  if (pool.empty()) {
    return Status::InvalidArgument("query pool is empty");
  }
  std::vector<double> up_errors, sps_errors;
  ErrorPoint point;
  for (size_t run = 0; run < runs; ++run) {
    Rng run_rng = rng.Fork();
    RECPRIV_ASSIGN_OR_RETURN(
        recpriv::query::PerturbedGroups up_groups,
        recpriv::query::PerturbAllGroups(index, params.retention_p, run_rng));
    up_errors.push_back(
        recpriv::query::EvaluateRelativeError(pool, index, up_groups,
                                              params.retention_p)
            .mean_relative_error);
    RECPRIV_ASSIGN_OR_RETURN(
        recpriv::query::PerturbedGroups sps_groups,
        recpriv::query::SpsAllGroups(index, params, run_rng));
    sps_errors.push_back(
        recpriv::query::EvaluateRelativeError(pool, index, sps_groups,
                                              params.retention_p)
            .mean_relative_error);
    point.sps_sampled_group_fraction =
        sps_groups.sps_stats.SampledGroupFraction();
  }
  point.up = recpriv::stats::Summarize(up_errors);
  point.sps = recpriv::stats::Summarize(sps_errors);
  return point;
}

}  // namespace recpriv::exp
