// Parameter sweeps behind Figures 2-5: vary one of {p, lambda, delta}
// while the others stay at the paper defaults, and report the violation
// rates (Figures 2 & 4) or the UP/SPS relative query errors (Figures 3 & 5)
// at each point.

#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"

namespace recpriv::exp {

/// Which privacy parameter the sweep varies.
enum class SweepAxis { kRetentionP, kLambda, kDelta };

/// Human-readable axis name ("p", "lambda", "delta").
std::string AxisName(SweepAxis axis);

/// Paper sweep values (Table 6): p in {0.1..0.9}, lambda/delta in
/// {0.1..0.5}.
std::vector<double> DefaultAxisValues(SweepAxis axis);

/// Returns the default params with `axis` set to `value`.
recpriv::core::PrivacyParams ParamsAt(SweepAxis axis, double value, size_t m);

/// One violation sweep: v_g and v_r at each axis value.
struct ViolationSweep {
  std::vector<double> axis_values;
  std::vector<double> vg;
  std::vector<double> vr;
};
ViolationSweep SweepViolations(const recpriv::table::GroupIndex& index,
                               SweepAxis axis,
                               const std::vector<double>& values);

/// One error sweep: mean relative error of UP and SPS at each axis value.
struct ErrorSweep {
  std::vector<double> axis_values;
  std::vector<double> up_error;
  std::vector<double> sps_error;
  std::vector<double> up_se;
  std::vector<double> sps_se;
};
Result<ErrorSweep> SweepErrors(
    const recpriv::table::FlatGroupIndex& index,
    const std::vector<recpriv::query::CountQuery>& pool, SweepAxis axis,
    const std::vector<double>& values, size_t runs, uint64_t seed);

}  // namespace recpriv::exp
