// Paper-style reporting: aligned ASCII tables (for the paper's Tables) and
// x/series listings (for the paper's Figures), plus CSV export.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"

namespace recpriv::exp {

/// Simple column-aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with padded columns and a header separator.
  void Print(std::ostream& os) const;

  /// Writes headers + rows as CSV.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner: the experiment id and the paper artifact it
/// regenerates.
void PrintBanner(std::ostream& os, const std::string& title,
                 const std::string& paper_reference);

/// One named series over a shared x-axis (a paper "figure" as text).
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Prints x-axis labels and every series, aligned; e.g.
///   p      0.1    0.3    0.5 ...
///   vg     0.85   0.86   0.85 ...
void PrintSeries(std::ostream& os, const std::string& x_name,
                 const std::vector<std::string>& x_labels,
                 const std::vector<Series>& series, int decimals = 4);

}  // namespace recpriv::exp
