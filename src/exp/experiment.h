// Shared experiment plumbing for the bench harness: scaled-vs-paper-scale
// sizing, prepared datasets (generate -> generalize -> index -> query pool),
// and the violation / relative-error measurements behind Figures 2-5.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/generalization.h"
#include "core/reconstruction_privacy.h"
#include "core/violation.h"
#include "query/count_query.h"
#include "query/evaluation.h"
#include "stats/descriptive.h"
#include "table/flat_group_index.h"
#include "table/group_index.h"
#include "table/table.h"

namespace recpriv::exp {

/// True when RECPRIV_FULL=1: run paper-scale dataset sizes / pool sizes.
/// The default is a faithful but smaller configuration so that the whole
/// bench suite completes in minutes.
bool FullScale();

/// Number of randomized runs per measurement point: RECPRIV_RUNS override,
/// else `dflt` (the paper uses 10).
size_t NumRuns(size_t dflt = 10);

/// Paper default privacy parameters (Table 6 boldface): p=0.5, lambda=0.3,
/// delta=0.3, with `m` filled in per dataset.
recpriv::core::PrivacyParams DefaultParams(size_t m);

/// A dataset prepared for the paper's evaluation pipeline.
struct PreparedDataset {
  recpriv::table::Table raw;             ///< original D
  recpriv::core::Generalization plan;    ///< chi-squared merge plan (§3.4)
  recpriv::table::Table generalized;     ///< D on generalized NA values
  recpriv::table::GroupIndex raw_index;  ///< personal groups of raw D
  recpriv::table::GroupIndex index;      ///< generalized personal groups
  /// Columnar view of the generalized groups (same group ids as `index`):
  /// the scan-bound evaluation pipeline runs on this layout.
  recpriv::table::FlatGroupIndex flat_index;
  std::vector<recpriv::query::CountQuery> pool;  ///< mapped query pool
};

/// Generates and prepares the synthetic ADULT dataset.
/// pool_size == 0 skips query-pool generation (violation-only benches).
Result<PreparedDataset> PrepareAdult(size_t num_records, size_t pool_size,
                                     uint64_t seed);

/// Generates and prepares the synthetic CENSUS dataset.
Result<PreparedDataset> PrepareCensus(size_t num_records, size_t pool_size,
                                      uint64_t seed);

/// v_g and v_r of one (dataset, params) point — Figures 2 & 4.
struct ViolationPoint {
  double vg = 0.0;
  double vr = 0.0;
};
ViolationPoint MeasureViolation(const recpriv::table::GroupIndex& index,
                                const recpriv::core::PrivacyParams& params);

/// Average relative query error over `runs` randomized releases for the UP
/// baseline and for SPS — Figures 3 & 5.
struct ErrorPoint {
  recpriv::stats::Summary up;   ///< mean relative error per run, summarized
  recpriv::stats::Summary sps;
  double sps_sampled_group_fraction = 0.0;  ///< diagnostics, last run
};
Result<ErrorPoint> MeasureRelativeError(
    const recpriv::table::FlatGroupIndex& index,
    const std::vector<recpriv::query::CountQuery>& pool,
    const recpriv::core::PrivacyParams& params, size_t runs, Rng& rng);

}  // namespace recpriv::exp
