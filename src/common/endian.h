// Explicit little-endian encode/decode helpers — the byte-order seam of
// the on-disk snapshot format (src/store/). Every multi-byte scalar that
// crosses a file boundary goes through these functions, never through a
// pointer cast, so readers perform no unaligned wide loads and the format
// stays well-defined on any host.
//
// The bulk array sections of a snapshot are NOT funneled through these
// helpers — they are mmap'd and used in place, which is only valid when
// the host's native order matches the format's (little-endian). Callers
// gate that with HostIsLittleEndian() and fail fast otherwise; see
// store/snapshot_format.h for the on-disk endianness tag.

#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace recpriv {

/// True when native byte order matches the snapshot format's (LE).
constexpr bool HostIsLittleEndian() {
  return std::endian::native == std::endian::little;
}

/// Appends `v` to `out` in little-endian order.
inline void StoreLE32(uint32_t v, uint8_t* out) {
  out[0] = uint8_t(v);
  out[1] = uint8_t(v >> 8);
  out[2] = uint8_t(v >> 16);
  out[3] = uint8_t(v >> 24);
}

inline void StoreLE64(uint64_t v, uint8_t* out) {
  StoreLE32(uint32_t(v), out);
  StoreLE32(uint32_t(v >> 32), out + 4);
}

/// Reads a little-endian scalar from `in` byte by byte — safe at any
/// alignment on any host.
inline uint32_t LoadLE32(const uint8_t* in) {
  return uint32_t(in[0]) | uint32_t(in[1]) << 8 | uint32_t(in[2]) << 16 |
         uint32_t(in[3]) << 24;
}

inline uint64_t LoadLE64(const uint8_t* in) {
  return uint64_t(LoadLE32(in)) | uint64_t(LoadLE32(in + 4)) << 32;
}

}  // namespace recpriv
