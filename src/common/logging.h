// Minimal leveled logging + CHECK macros (Arrow/RocksDB flavour).
//
// RECPRIV_CHECK(cond) << "message";   aborts when cond is false.
// RECPRIV_DCHECK(cond)                same, compiled out in NDEBUG builds.
// RECPRIV_LOG(INFO) << "message";     leveled logging to stderr.

#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace recpriv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level below which RECPRIV_LOG output is suppressed.
/// Default is kWarning so library users are not spammed.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line; emits (and possibly aborts) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed operands for disabled DCHECKs.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace recpriv

#define RECPRIV_LOG(LEVEL)                                      \
  ::recpriv::internal::LogMessage(::recpriv::LogLevel::k##LEVEL, \
                                  __FILE__, __LINE__)

#define RECPRIV_CHECK(cond)  \
  if (cond) {                \
  } else /* NOLINT */        \
    RECPRIV_LOG(Fatal) << "Check failed: " #cond " "

#define RECPRIV_CHECK_OK(expr)                        \
  if (::recpriv::Status _st = (expr); _st.ok()) {     \
  } else /* NOLINT */                                 \
    RECPRIV_LOG(Fatal) << "Status not OK: " << _st.ToString() << " "

#ifdef NDEBUG
#define RECPRIV_DCHECK(cond) \
  while (false) ::recpriv::internal::NullStream()
#else
#define RECPRIV_DCHECK(cond) RECPRIV_CHECK(cond)
#endif
