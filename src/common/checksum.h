// Content checksums for the on-disk snapshot format (src/store/).
//
// XxHash64 is the 64-bit xxHash (XXH64) algorithm: non-cryptographic,
// byte-order independent output for the same input bytes, and fast enough
// (~GB/s, 32-byte stripes) that checksumming every section of a
// multi-hundred-megabyte snapshot at open time stays far below the CSV
// parse + index rebuild it replaces. All multi-byte reads go through
// memcpy, so the routine is alignment-safe on any host.

#pragma once

#include <cstddef>
#include <cstdint>

namespace recpriv {

/// XXH64 of `data[0..len)` with the given seed.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed = 0);

}  // namespace recpriv
