// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports --name=value, --name value, and boolean --name / --no-name.
// Unknown flags are errors; positional arguments are collected in order.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace recpriv {

/// Parsed command line: flag map + positional arguments.
class FlagSet {
 public:
  /// Parses argv (skipping argv[0]). "--" ends flag parsing.
  static Result<FlagSet> Parse(int argc, const char* const* argv);

  /// As above, but flags named in `boolean_flags` never consume the next
  /// token as their value: "--demo NAME=BASENAME" parses as the bare
  /// boolean --demo followed by the positional NAME=BASENAME, instead of
  /// silently becoming demo="NAME=BASENAME". "--demo=false" and
  /// "--no-demo" still work. Tools should declare every boolean flag they
  /// accept here.
  static Result<FlagSet> Parse(int argc, const char* const* argv,
                               const std::vector<std::string>& boolean_flags);

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  /// String flag, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Typed accessors; error when present but unparseable.
  Result<double> GetDouble(const std::string& name, double fallback) const;
  Result<int64_t> GetInt(const std::string& name, int64_t fallback) const;
  Result<bool> GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags present (for unknown-flag validation by the tool).
  std::vector<std::string> FlagNames() const;

 private:
  std::map<std::string, std::string> flags_;  // "" means bare boolean
  std::vector<std::string> positional_;
};

}  // namespace recpriv
