// Work-stealing thread pool for the serving and evaluation hot paths.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (cache
// locality) and steals FIFO from the front of a sibling's deque when its own
// runs dry, so coarse chunks submitted together spread across workers even
// when the submitter round-robins unevenly. All randomized recpriv operators
// take an explicit Rng&, so tasks that need randomness must fork a child
// generator per task before submission — the pool itself never touches
// global state.
//
// ParallelFor is the main entry point: it splits [begin, end) into
// grain-sized chunks, runs them on the pool, and blocks the caller until
// every chunk finished. A single-threaded pool (or a range no larger than
// one grain) runs inline, so callers need no special small-input path.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace recpriv {

/// Fixed-size work-stealing thread pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains nothing: outstanding tasks are completed before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn` on the next worker's deque (round-robin).
  void Submit(std::function<void()> fn);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Runs fn(lo, hi) over disjoint chunks covering [begin, end), each at
  /// most `grain` long, in parallel; blocks until all chunks are done.
  /// `fn` must be safe to call concurrently from pool threads. Runs inline
  /// when the pool has one worker, the range fits in a single grain, or
  /// the caller is itself a task of this pool (nested use would deadlock).
  /// An external caller PARTICIPATES: it drains chunks alongside the
  /// workers, so the call completes even when every worker is busy or
  /// blocked — ParallelFor itself can never deadlock.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Chunk size that yields ~4 chunks per worker over `total` items (load
  /// balancing without excessive task overhead); at least `min_grain`.
  size_t GrainFor(size_t total, size_t min_grain = 1) const;

 private:
  void WorkerLoop(size_t worker_id);
  /// Pops a task for `worker_id`: own deque back first (LIFO), then steals
  /// from the front of the others (FIFO). Requires mu_ held.
  bool PopTask(size_t worker_id, std::function<void()>& task);

  // One mutex guards all deques: tasks here are coarse (whole query-batch
  // chunks), so queue contention is negligible next to task runtime and a
  // single lock keeps the stealing protocol trivially correct.
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers: work available or stop
  std::condition_variable idle_cv_;   ///< waiters: pending_ reached zero
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> threads_;
  size_t next_queue_ = 0;  ///< round-robin submission cursor
  size_t pending_ = 0;     ///< queued + running tasks
  bool stop_ = false;
};

}  // namespace recpriv
