// Minimal JSON value model, writer, and recursive-descent parser — used by
// the release manifest (analysis/release.h) so published data is
// self-describing. Supports the full JSON grammar except surrogate-pair
// \u escapes (non-BMP characters), which are rejected on parse.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace recpriv {

/// A JSON document node: null, bool, number (double), string, array, or
/// object (string-keyed, sorted for deterministic output).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  /// Integer-exact number nodes: the full int64/uint64 value survives
  /// serialize -> parse -> accessor round trips bit-exactly, even above
  /// 2^53 where a double would silently round. `AsDouble` still works
  /// (nearest double) for consumers that do arithmetic.
  static JsonValue Int(int64_t v);
  static JsonValue Uint(uint64_t v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; error when the node has a different type.
  Result<bool> AsBool() const;
  Result<double> AsDouble() const;
  Result<int64_t> AsInt() const;
  /// Integer-exact accessor for unsigned wire fields (epochs, offsets,
  /// byte counts, counters): INVALID_ARGUMENT on non-integral, negative,
  /// or out-of-range values — including integral doubles above 2^53,
  /// which are not exact and must not be silently trusted.
  Result<uint64_t> AsUint64() const;
  Result<std::string> AsString() const;
  /// Zero-copy view of a string node — for payload-sized strings (wire
  /// chunk data) where AsString's copy would be a measurable pass. The
  /// view is valid only while this node is alive and unmodified.
  Result<std::string_view> AsStringView() const;

  /// Array operations.
  JsonValue& Append(JsonValue v);        ///< requires is_array()
  size_t size() const;                   ///< array/object element count
  Result<const JsonValue*> At(size_t i) const;  ///< array index

  /// Object operations.
  JsonValue& Set(const std::string& key, JsonValue v);  ///< requires object
  bool Has(const std::string& key) const;
  Result<const JsonValue*> Get(const std::string& key) const;
  /// Keys of an object in sorted order; empty for non-objects.
  std::vector<std::string> Keys() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  std::string ToString(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  /// Exact-integer sidecar for number nodes built by Int/Uint or parsed
  /// from pure integer syntax: magnitude + sign hold the value losslessly
  /// while number_ keeps the nearest double for AsDouble.
  bool exact_int_ = false;
  bool negative_ = false;
  uint64_t magnitude_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  void WriteTo(std::string& out, int indent, int depth) const;
};

/// Required-field accessors with uniform, user-facing error messages —
/// shared by every JSON codec in the tree (the wire protocol, scenario
/// files, manifests), so "missing field" and "wrong type" always read the
/// same and never drift between decoders.
Result<const JsonValue*> RequireField(const JsonValue& obj,
                                      const std::string& key);
Result<std::string> RequireString(const JsonValue& obj,
                                  const std::string& key);
Result<int64_t> RequireInt(const JsonValue& obj, const std::string& key);
/// Integer-exact required accessor for unsigned wire fields; rejects
/// non-integral, negative, and beyond-exact-range values.
Result<uint64_t> RequireUint64(const JsonValue& obj, const std::string& key);
Result<double> RequireDouble(const JsonValue& obj, const std::string& key);

}  // namespace recpriv
