#include "common/json.h"

#include <array>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace recpriv {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = static_cast<double>(i);
  v.exact_int_ = true;
  v.negative_ = i < 0;
  v.magnitude_ = i < 0 ? uint64_t(-(i + 1)) + 1 : uint64_t(i);
  return v;
}

JsonValue JsonValue::Uint(uint64_t u) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = static_cast<double>(u);
  v.exact_int_ = true;
  v.negative_ = false;
  v.magnitude_ = u;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

Result<bool> JsonValue::AsBool() const {
  if (!is_bool()) return Status::InvalidArgument("JSON value is not a bool");
  return bool_;
}

Result<double> JsonValue::AsDouble() const {
  if (!is_number()) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  return number_;
}

Result<int64_t> JsonValue::AsInt() const {
  if (!is_number()) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  if (exact_int_) {
    if (negative_) {
      // INT64_MIN's magnitude (2^63) is representable; anything larger
      // is not.
      if (magnitude_ > uint64_t(INT64_MAX) + 1) {
        return Status::InvalidArgument("JSON integer out of int64 range");
      }
      return magnitude_ == uint64_t(INT64_MAX) + 1
                 ? INT64_MIN
                 : -int64_t(magnitude_);
    }
    if (magnitude_ > uint64_t(INT64_MAX)) {
      return Status::InvalidArgument("JSON integer out of int64 range");
    }
    return int64_t(magnitude_);
  }
  if (number_ != std::floor(number_)) {
    return Status::InvalidArgument("JSON number is not an integer");
  }
  return static_cast<int64_t>(number_);
}

Result<uint64_t> JsonValue::AsUint64() const {
  if (!is_number()) {
    return Status::InvalidArgument("JSON value is not a number");
  }
  if (exact_int_) {
    if (negative_ && magnitude_ > 0) {
      return Status::InvalidArgument("JSON integer is negative");
    }
    return magnitude_;
  }
  // A non-exact node came from a double (programmatic Number(), or float
  // syntax like 1e3 on the wire). Integral values up to 2^53 are exactly
  // representable and safe; past that the double has already rounded, so
  // trusting it would silently corrupt 64-bit epochs/offsets/counters.
  if (number_ != std::floor(number_)) {
    return Status::InvalidArgument("JSON number is not an integer");
  }
  if (number_ < 0) {
    return Status::InvalidArgument("JSON integer is negative");
  }
  if (number_ > 9007199254740992.0) {  // 2^53
    return Status::InvalidArgument(
        "JSON number exceeds the integer-exact range of a double");
  }
  return static_cast<uint64_t>(number_);
}

Result<std::string> JsonValue::AsString() const {
  if (!is_string()) {
    return Status::InvalidArgument("JSON value is not a string");
  }
  return string_;
}

Result<std::string_view> JsonValue::AsStringView() const {
  if (!is_string()) {
    return Status::InvalidArgument("JSON value is not a string");
  }
  return std::string_view(string_);
}

JsonValue& JsonValue::Append(JsonValue v) {
  RECPRIV_CHECK(is_array()) << "Append on non-array JSON value";
  array_.push_back(std::move(v));
  return array_.back();
}

size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

Result<const JsonValue*> JsonValue::At(size_t i) const {
  if (!is_array()) return Status::InvalidArgument("JSON value is not array");
  if (i >= array_.size()) return Status::OutOfRange("JSON array index");
  return &array_[i];
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  RECPRIV_CHECK(is_object()) << "Set on non-object JSON value";
  return object_[key] = std::move(v);
}

bool JsonValue::Has(const std::string& key) const {
  return is_object() && object_.count(key) > 0;
}

Result<const JsonValue*> JsonValue::Get(const std::string& key) const {
  if (!is_object()) {
    return Status::InvalidArgument("JSON value is not an object");
  }
  auto it = object_.find(key);
  if (it == object_.end()) return Status::NotFound("JSON key: " + key);
  return &it->second;
}

std::vector<std::string> JsonValue::Keys() const {
  std::vector<std::string> keys;
  if (!is_object()) return keys;
  keys.reserve(object_.size());
  for (const auto& [key, value] : object_) keys.push_back(key);
  return keys;
}

namespace {

void EscapeCharInto(char c, std::string& out);

void EscapeInto(const std::string& s, std::string& out) {
  out += '"';
  // Bulk path: copy maximal runs needing no escape in one append. Large
  // payload strings (base64 snapshot chunks) are all-clean, so this is one
  // memcpy; the per-char switch below only ever sees the rare dirty byte.
  // A lookup table keeps the scan at one load per byte, branch-free.
  static constexpr auto kDirty = [] {
    std::array<bool, 256> t{};
    for (int c = 0; c < 0x20; ++c) t[size_t(c)] = true;
    t[size_t('"')] = true;
    t[size_t('\\')] = true;
    return t;
  }();
  size_t start = 0;
  size_t i = 0;
  auto flush = [&](size_t end) {
    if (end > start) out.append(s, start, end - start);
  };
  for (; i < s.size(); ++i) {
    if (!kDirty[static_cast<unsigned char>(s[i])]) continue;
    flush(i);
    start = i + 1;
    EscapeCharInto(s[i], out);
  }
  flush(i);
  out += '"';
}

void EscapeCharInto(char c, std::string& out) {
  {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void NumberInto(double v, std::string& out) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

void JsonValue::WriteTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (exact_int_) {
        if (negative_ && magnitude_ > 0) out += '-';
        out += std::to_string(magnitude_);
      } else {
        NumberInto(number_, out);
      }
      break;
    case Type::kString:
      EscapeInto(string_, out);
      break;
    case Type::kArray: {
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        array_[i].WriteTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      size_t i = 0;
      for (const auto& [key, value] : object_) {
        if (i++ > 0) out += ',';
        newline(depth + 1);
        EscapeInto(key, out);
        out += indent > 0 ? ": " : ":";
        value.WriteTo(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::ToString(int indent) const {
  std::string out;
  WriteTo(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string view with position.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    RECPRIV_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::IOError("JSON parse error at offset " +
                           std::to_string(pos_) + ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      RECPRIV_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::String(std::move(s));
    }
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      RECPRIV_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after key");
      RECPRIV_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    for (;;) {
      RECPRIV_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      // Bulk path: a large payload string (a base64 snapshot chunk) is one
      // clean run to the closing quote — memchr to the next quote, then
      // check the run for a backslash, and copy it in one append instead
      // of a char at a time. (find_first_of walks per char; memchr is the
      // difference between ~200 MB/s and memory bandwidth on this path.)
      const char* base = text_.data();
      const char* quote = static_cast<const char*>(
          std::memchr(base + pos_, '"', text_.size() - pos_));
      if (quote == nullptr) break;
      size_t stop = size_t(quote - base);
      if (const char* esc = static_cast<const char*>(
              std::memchr(base + pos_, '\\', stop - pos_));
          esc != nullptr) {
        stop = size_t(esc - base);
      }
      if (stop > pos_) {
        out.append(text_, pos_, stop - pos_);
        pos_ = stop;
      }
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= unsigned(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= unsigned(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= unsigned(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate-pair escapes are not supported");
          }
          // UTF-8 encode the BMP code point.
          if (code < 0x80) {
            out += char(code);
          } else if (code < 0x800) {
            out += char(0xC0 | (code >> 6));
            out += char(0x80 | (code & 0x3F));
          } else {
            out += char(0xE0 | (code >> 12));
            out += char(0x80 | ((code >> 6) & 0x3F));
            out += char(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue::Bool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue::Bool(false);
    }
    return Error("bad literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue::Null();
    }
    return Error("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    // Pure integer syntax (optional sign, digits only) is kept exact when
    // it fits 64 bits, so epochs/offsets/counters above 2^53 survive the
    // wire bit-for-bit instead of rounding through a double.
    const bool neg = token[0] == '-';
    const std::string_view digits =
        std::string_view(token).substr(neg ? 1 : 0);
    const bool integer_syntax =
        !digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string_view::npos;
    if (integer_syntax) {
      errno = 0;
      char* iend = nullptr;
      const unsigned long long mag =
          std::strtoull(digits.data(), &iend, 10);
      if (errno == 0 && iend == digits.data() + digits.size() &&
          (!neg || mag <= 9223372036854775808ULL)) {
        JsonValue v = JsonValue::Uint(uint64_t(mag));
        if (neg && mag > 0) {
          v = JsonValue::Int(mag == 9223372036854775808ULL
                                 ? INT64_MIN
                                 : -int64_t(mag));
        }
        return v;
      }
      // Out of 64-bit range: fall through to the double path below.
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::Number(v);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}


Result<const JsonValue*> RequireField(const JsonValue& obj,
                                      const std::string& key) {
  if (!obj.is_object() || !obj.Has(key)) {
    return Status::InvalidArgument("missing required field '" + key + "'");
  }
  return obj.Get(key);
}

Result<std::string> RequireString(const JsonValue& obj,
                                  const std::string& key) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node, RequireField(obj, key));
  if (!node->is_string()) {
    return Status::InvalidArgument("'" + key + "' must be a string");
  }
  return node->AsString();
}

Result<int64_t> RequireInt(const JsonValue& obj, const std::string& key) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node, RequireField(obj, key));
  auto value = node->AsInt();
  if (!value.ok()) {
    return Status::InvalidArgument("'" + key + "' must be an integer");
  }
  return *value;
}

Result<uint64_t> RequireUint64(const JsonValue& obj, const std::string& key) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node, RequireField(obj, key));
  auto value = node->AsUint64();
  if (!value.ok()) {
    return Status::InvalidArgument("'" + key + "' must be a non-negative " +
                                   "64-bit integer (" +
                                   value.status().message() + ")");
  }
  return *value;
}

Result<double> RequireDouble(const JsonValue& obj, const std::string& key) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node, RequireField(obj, key));
  auto value = node->AsDouble();
  if (!value.ok()) {
    return Status::InvalidArgument("'" + key + "' must be a number");
  }
  return *value;
}

}  // namespace recpriv
