// Result<T>: value-or-Status, in the style of arrow::Result.
//
// A Result<T> holds either a T (status is OK) or a non-OK Status. Accessing
// the value of an errored Result aborts with the status message, so callers
// either check ok() / use ValueOr, or treat errors as programming bugs.

#pragma once

#include <cstdlib>
#include <optional>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace recpriv {

/// Value-or-error return type for fallible functions that produce a T.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    RECPRIV_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the held value; aborts if this Result holds an error.
  const T& ValueOrDie() const& {
    RECPRIV_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    RECPRIV_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T&& ValueOrDie() && {
    RECPRIV_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Dereference sugar: `*result` / `result->member`.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define RECPRIV_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto RECPRIV_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!RECPRIV_CONCAT_(_res_, __LINE__).ok())         \
    return RECPRIV_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(RECPRIV_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define RECPRIV_CONCAT_IMPL_(a, b) a##b
#define RECPRIV_CONCAT_(a, b) RECPRIV_CONCAT_IMPL_(a, b)

}  // namespace recpriv
