#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

#include "common/string_util.h"

namespace recpriv {

Result<FlagSet> FlagSet::Parse(int argc, const char* const* argv) {
  return Parse(argc, argv, {});
}

Result<FlagSet> FlagSet::Parse(int argc, const char* const* argv,
                               const std::vector<std::string>& boolean_flags) {
  const auto is_boolean = [&boolean_flags](const std::string& name) {
    return std::find(boolean_flags.begin(), boolean_flags.end(), name) !=
           boolean_flags.end();
  };
  FlagSet fs;
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (flags_done || !StartsWith(arg, "--")) {
      fs.positional_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      fs.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    if (StartsWith(body, "no-") && is_boolean(body.substr(3))) {
      fs.flags_[body.substr(3)] = "false";
      continue;
    }
    if (is_boolean(body)) {
      // A declared boolean never consumes the next token, so
      // "--demo NAME=BASENAME" keeps NAME=BASENAME positional.
      fs.flags_[body] = "";
      continue;
    }
    // "--name value" when the next token is not a flag; else bare boolean.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      fs.flags_[body] = argv[++i];
    } else if (StartsWith(body, "no-")) {
      fs.flags_[body.substr(3)] = "false";
    } else {
      fs.flags_[body] = "";
    }
  }
  return fs;
}

std::string FlagSet::GetString(const std::string& name,
                               const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

Result<double> FlagSet::GetDouble(const std::string& name,
                                  double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return v;
}

Result<int64_t> FlagSet::GetInt(const std::string& name,
                                int64_t fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects an integer, got '" + it->second +
                                   "'");
  }
  return static_cast<int64_t>(v);
}

Result<bool> FlagSet::GetBool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string v = ToLower(it->second);
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return Status::InvalidArgument("flag --" + name +
                                 " expects a boolean, got '" + it->second +
                                 "'");
}

std::vector<std::string> FlagSet::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

}  // namespace recpriv
