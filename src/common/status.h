// Status: lightweight error propagation in the style of Arrow/RocksDB.
//
// The recpriv public API never throws across module boundaries; fallible
// operations return a Status (or a Result<T>, see result.h). Status is cheap
// to copy in the OK case (single enum) and carries a message otherwise.

#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace recpriv {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed a value outside the documented domain
  kOutOfRange,        ///< index / key outside a container
  kNotFound,          ///< lookup failed (attribute, value, file, ...)
  kAlreadyExists,     ///< duplicate insertion into a keyed container
  kIOError,           ///< filesystem / parse failure
  kFailedPrecondition,///< object not in the required state for the call
  kInternal,          ///< invariant violation inside the library
  kNotImplemented,    ///< declared but intentionally unimplemented path
  kUnavailable,       ///< transiently out of capacity; retrying may succeed
  kDataLoss,          ///< persisted data is corrupt or unreadable
  kResourceExhausted, ///< per-tenant quota exceeded; retrying later may succeed
  kDeadlineExceeded,  ///< the request's deadline passed before it was served
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: an OK singleton or a code + message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller of the enclosing function.
#define RECPRIV_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::recpriv::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace recpriv
