// Deterministic pseudo-random number generation for all randomized operators.
//
// Every randomized operation in recpriv (perturbation, sampling, noise,
// workload generation) takes an explicit Rng&, so experiments are exactly
// reproducible from a single master seed. The generator is xoshiro256++
// (Blackman & Vigna), seeded through SplitMix64; both are implemented here
// from the published reference algorithms, no <random> engine is used.
//
// Distribution samplers are free functions over Rng so that their sequence
// is stable across standard-library versions (std::normal_distribution etc.
// are implementation-defined and would break golden tests).

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace recpriv {

/// SplitMix64 step: used for seeding and for deriving child seeds.
uint64_t SplitMix64Next(uint64_t& state);

/// xoshiro256++ PRNG. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words via SplitMix64 from `seed`.
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 raw bits.
  uint64_t operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection method).
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Derives an independent child generator; deterministic in call order.
  /// Used to give each experiment run / group its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Samples Laplace(b) noise: density (1/2b) exp(-|x|/b). Requires b > 0.
double SampleLaplace(Rng& rng, double scale_b);

/// Samples a standard normal via Box-Muller (polar form).
double SampleNormal(Rng& rng, double mean = 0.0, double stddev = 1.0);

/// Samples Binomial(n, p) by explicit Bernoulli summation for small n and a
/// waiting-time (geometric skip) method for larger n. Exact distribution.
uint64_t SampleBinomial(Rng& rng, uint64_t n, double p);

/// Samples an index in [0, weights.size()) proportionally to weights.
/// Linear scan; requires at least one positive weight.
size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights);

/// Samples a Hypergeometric(population, successes, draws) variate: the
/// number of "success" items in `draws` draws without replacement from a
/// population containing `successes` successes. Exact sequential method,
/// O(draws). Requires successes <= population and draws <= population.
uint64_t SampleHypergeometric(Rng& rng, uint64_t population,
                              uint64_t successes, uint64_t draws);

/// Alias-method sampler for repeated draws from one discrete distribution.
/// Build is O(k); each Sample is O(1).
class AliasSampler {
 public:
  /// Builds the alias table from (unnormalized, non-negative) weights with
  /// at least one positive entry.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability weight[i]/sum(weights).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

/// Fisher-Yates shuffle of `v` in place.
template <typename T>
void Shuffle(Rng& rng, std::vector<T>& v) {
  for (size_t i = v.size(); i > 1; --i) {
    size_t j = rng.NextUint64(i);
    std::swap(v[i - 1], v[j]);
  }
}

/// Samples `k` distinct indices from [0, n) without replacement
/// (Floyd's algorithm); result is unsorted. Requires k <= n.
std::vector<uint64_t> SampleWithoutReplacement(Rng& rng, uint64_t n,
                                               uint64_t k);

}  // namespace recpriv
