// Disjoint-set union (union by size + path halving), used by the
// chi-squared merge graph's connected components (paper §3.4).

#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace recpriv {

/// Classic union-find over indices [0, n).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of `x`'s component.
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the components of `a` and `b`; returns true when they were
  /// previously distinct.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  size_t ComponentSize(size_t x) { return size_[Find(x)]; }

  /// Number of distinct components.
  size_t NumComponents() {
    size_t n = 0;
    for (size_t i = 0; i < parent_.size(); ++i) n += (Find(i) == i);
    return n;
  }

  /// Dense relabeling: component id in [0, NumComponents()) per element,
  /// numbered by first appearance.
  std::vector<uint32_t> DenseLabels() {
    std::vector<uint32_t> labels(parent_.size(), UINT32_MAX);
    std::vector<uint32_t> root_label(parent_.size(), UINT32_MAX);
    uint32_t next = 0;
    for (size_t i = 0; i < parent_.size(); ++i) {
      size_t r = Find(i);
      if (root_label[r] == UINT32_MAX) root_label[r] = next++;
      labels[i] = root_label[r];
    }
    return labels;
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

}  // namespace recpriv
