#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"

namespace recpriv {

uint64_t SplitMix64Next(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
  // xoshiro256++ requires a non-zero state; SplitMix64 of any seed gives one
  // with overwhelming probability, but guard the adversarial case anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextUint64(uint64_t n) {
  RECPRIV_DCHECK(n > 0) << "NextUint64 bound must be positive";
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  RECPRIV_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>((*this)());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() {
  // Derive a child seed from the parent's stream; advances the parent.
  return Rng((*this)() ^ 0xD1B54A32D192ED03ULL);
}

double SampleLaplace(Rng& rng, double scale_b) {
  RECPRIV_DCHECK(scale_b > 0.0) << "Laplace scale must be positive";
  // Inverse CDF on u in (-1/2, 1/2): x = -b * sgn(u) * ln(1 - 2|u|).
  double u = rng.NextDouble() - 0.5;
  double sign = (u < 0.0) ? -1.0 : 1.0;
  double a = std::max(1e-300, 1.0 - 2.0 * std::abs(u));
  return -scale_b * sign * std::log(a);
}

double SampleNormal(Rng& rng, double mean, double stddev) {
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * rng.NextDouble() - 1.0;
    v = 2.0 * rng.NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  return mean + stddev * u * factor;
}

uint64_t SampleBinomial(Rng& rng, uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  bool flipped = false;
  if (p > 0.5) {  // sample failures instead, keeps expected work low
    p = 1.0 - p;
    flipped = true;
  }
  uint64_t successes = 0;
  if (n * p < 32.0) {
    // First waiting-time method: count how many geometric inter-success
    // gaps fit into n trials. Each success consumes (failures before it)+1
    // trials. E[#iterations] = n*p + 1.
    const double log_q = std::log1p(-p);
    double trials_used = 0.0;
    for (;;) {
      const double failures =
          std::floor(std::log(1.0 - rng.NextDouble()) / log_q);
      trials_used += failures + 1.0;
      if (trials_used > static_cast<double>(n)) break;
      ++successes;
      if (successes == n) break;
    }
  } else {
    // Plain Bernoulli loop; used only when n*p is moderate anyway, and the
    // waiting-time path handles the sparse regime.
    for (uint64_t i = 0; i < n; ++i) successes += rng.NextBernoulli(p);
  }
  return flipped ? n - successes : successes;
}

size_t SampleDiscrete(Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    RECPRIV_DCHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  RECPRIV_CHECK(total > 0.0) << "SampleDiscrete requires a positive weight";
  double r = rng.NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point round-off: return the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

uint64_t SampleHypergeometric(Rng& rng, uint64_t population,
                              uint64_t successes, uint64_t draws) {
  RECPRIV_CHECK(successes <= population && draws <= population)
      << "hypergeometric parameters out of range";
  // Sequential exact sampling: at each draw the success probability is the
  // fraction of successes left in the remaining population.
  uint64_t got = 0;
  uint64_t remaining_successes = successes;
  uint64_t remaining_population = population;
  for (uint64_t d = 0; d < draws; ++d) {
    if (remaining_successes == 0) break;
    if (remaining_successes == remaining_population) {
      got += draws - d;  // everything left is a success
      break;
    }
    if (rng.NextBernoulli(static_cast<double>(remaining_successes) /
                          static_cast<double>(remaining_population))) {
      ++got;
      --remaining_successes;
    }
    --remaining_population;
  }
  return got;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t k = weights.size();
  RECPRIV_CHECK(k > 0) << "AliasSampler requires at least one weight";
  double total = 0.0;
  for (double w : weights) {
    RECPRIV_CHECK(w >= 0.0) << "AliasSampler weight must be non-negative";
    total += w;
  }
  RECPRIV_CHECK(total > 0.0) << "AliasSampler requires a positive weight";

  prob_.assign(k, 0.0);
  alias_.assign(k, 0);
  std::vector<double> scaled(k);
  for (size_t i = 0; i < k; ++i) scaled[i] = weights[i] * k / total;

  std::vector<uint32_t> small, large;
  small.reserve(k);
  large.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

size_t AliasSampler::Sample(Rng& rng) const {
  size_t i = rng.NextUint64(prob_.size());
  return rng.NextDouble() < prob_[i] ? i : alias_[i];
}

std::vector<uint64_t> SampleWithoutReplacement(Rng& rng, uint64_t n,
                                               uint64_t k) {
  RECPRIV_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  // Floyd's algorithm: k iterations, O(k) memory.
  std::unordered_set<uint64_t> chosen;
  std::vector<uint64_t> out;
  out.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = rng.NextUint64(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace recpriv
