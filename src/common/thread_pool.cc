#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace recpriv {

namespace {
/// The pool whose worker is executing on this thread, if any — lets
/// ParallelFor detect nested use and run inline instead of deadlocking.
thread_local const ThreadPool* current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.resize(num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(fn));
    next_queue_ = (next_queue_ + 1) % queues_.size();
    ++pending_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::PopTask(size_t worker_id, std::function<void()>& task) {
  auto& own = queues_[worker_id];
  if (!own.empty()) {
    task = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (size_t k = 1; k < queues_.size(); ++k) {
    auto& victim = queues_[(worker_id + k) % queues_.size()];
    if (!victim.empty()) {
      task = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  current_pool = this;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::function<void()> task;
    if (PopTask(worker_id, task)) {
      lock.unlock();
      task();
      lock.lock();
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    if (stop_) return;
    work_cv_.wait(lock);
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

size_t ThreadPool::GrainFor(size_t total, size_t min_grain) const {
  const size_t target_chunks = std::max<size_t>(1, num_threads() * 4);
  return std::max(min_grain, (total + target_chunks - 1) / target_chunks);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(1, grain);
  // Nested use (a pool task calling ParallelFor on its own pool) would
  // deadlock: the caller would block on chunks only blocked workers could
  // drain. Run inline instead — correct, just not extra-parallel.
  if (num_threads() == 1 || end - begin <= grain || current_pool == this) {
    fn(begin, end);
    return;
  }
  // Shared chunk cursor, drained by helper tasks AND by the caller: the
  // caller claims chunks like any worker instead of parking on a latch, so
  // the loop completes even if every pool worker is busy or blocked (e.g.
  // parked inside a MicroBatcher follower wait) — a non-pool caller can
  // never deadlock here, it just ends up doing the work itself.
  struct ForJob {
    const std::function<void(size_t, size_t)>* fn;
    size_t begin, end, grain;
    size_t num_chunks;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> done_chunks{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto job = std::make_shared<ForJob>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = (end - begin + grain - 1) / grain;
  const auto run_chunks = [job] {
    for (;;) {
      const size_t c = job->next_chunk.fetch_add(1);
      if (c >= job->num_chunks) return;
      const size_t lo = job->begin + c * job->grain;
      const size_t hi = std::min(job->end, lo + job->grain);
      (*job->fn)(lo, hi);
      if (job->done_chunks.fetch_add(1) + 1 == job->num_chunks) {
        // Lock-then-notify so the wakeup cannot slip between the caller's
        // predicate check and its wait.
        std::lock_guard<std::mutex> lock(job->mu);
        job->cv.notify_all();
      }
    }
  };
  // The caller takes one share; helpers cover the rest. Late helpers that
  // find the cursor exhausted return without touching `fn`.
  const size_t helpers = std::min(num_threads(), job->num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) Submit(run_chunks);
  run_chunks();
  std::unique_lock<std::mutex> lock(job->mu);
  job->cv.wait(lock, [&] {
    return job->done_chunks.load() == job->num_chunks;
  });
}

}  // namespace recpriv
