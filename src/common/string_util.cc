#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace recpriv {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string FormatPercent(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, v * 100.0);
  return buf;
}

std::string FormatWithCommas(int64_t v) {
  bool neg = v < 0;
  uint64_t u = neg ? static_cast<uint64_t>(-(v + 1)) + 1 : static_cast<uint64_t>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (neg) out += '-';
  return {out.rbegin(), out.rend()};
}

namespace {

constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Decode table: 0..63 for alphabet bytes, 64 for '=', 255 for invalid.
constexpr uint8_t Base64Value(char c) {
  if (c >= 'A' && c <= 'Z') return uint8_t(c - 'A');
  if (c >= 'a' && c <= 'z') return uint8_t(c - 'a' + 26);
  if (c >= '0' && c <= '9') return uint8_t(c - '0' + 52);
  if (c == '+') return 62;
  if (c == '/') return 63;
  if (c == '=') return 64;
  return 255;
}

}  // namespace

std::string Base64Encode(const uint8_t* data, size_t n) {
  // Sized up front and written through a raw pointer: this sits on the
  // replication wire's per-chunk path, where amortized push_back growth
  // and its branch noise are measurable at snapshot-image sizes.
  std::string out(((n + 2) / 3) * 4, '\0');
  char* p = out.data();
  size_t i = 0;
  for (; i + 3 <= n; i += 3) {
    const uint32_t v = uint32_t(data[i]) << 16 | uint32_t(data[i + 1]) << 8 |
                       uint32_t(data[i + 2]);
    *p++ = kBase64Alphabet[(v >> 18) & 0x3F];
    *p++ = kBase64Alphabet[(v >> 12) & 0x3F];
    *p++ = kBase64Alphabet[(v >> 6) & 0x3F];
    *p++ = kBase64Alphabet[v & 0x3F];
  }
  if (i + 1 == n) {
    const uint32_t v = uint32_t(data[i]) << 16;
    *p++ = kBase64Alphabet[(v >> 18) & 0x3F];
    *p++ = kBase64Alphabet[(v >> 12) & 0x3F];
    *p++ = '=';
    *p++ = '=';
  } else if (i + 2 == n) {
    const uint32_t v = uint32_t(data[i]) << 16 | uint32_t(data[i + 1]) << 8;
    *p++ = kBase64Alphabet[(v >> 18) & 0x3F];
    *p++ = kBase64Alphabet[(v >> 12) & 0x3F];
    *p++ = kBase64Alphabet[(v >> 6) & 0x3F];
    *p++ = '=';
  }
  return out;
}

Result<std::vector<uint8_t>> Base64Decode(std::string_view encoded) {
  if (encoded.size() % 4 != 0) {
    return Status::InvalidArgument(
        "base64: length must be a multiple of 4 (got " +
        std::to_string(encoded.size()) + ")");
  }
  std::vector<uint8_t> out;
  out.reserve((encoded.size() / 4) * 3);
  // Fast path for every group but the last (only the last may carry
  // padding): sized writes through a raw pointer, one validity check per
  // group. The strict per-slot loop below handles the tail and reports
  // exact offsets for invalid input.
  size_t i = 0;
  if (encoded.size() > 4) {
    const size_t full = encoded.size() - 4;
    out.resize((full / 4) * 3);
    uint8_t* p = out.data();
    for (; i < full; i += 4) {
      const uint8_t a = Base64Value(encoded[i]);
      const uint8_t b = Base64Value(encoded[i + 1]);
      const uint8_t c = Base64Value(encoded[i + 2]);
      const uint8_t d = Base64Value(encoded[i + 3]);
      // 64 (padding) is as invalid here as 255: pre-tail groups are full.
      if ((a | b | c | d) >= 64) break;
      const uint32_t bits = uint32_t(a) << 18 | uint32_t(b) << 12 |
                            uint32_t(c) << 6 | uint32_t(d);
      *p++ = uint8_t(bits >> 16);
      *p++ = uint8_t(bits >> 8);
      *p++ = uint8_t(bits);
    }
    out.resize(size_t(p - out.data()));
    if (i < full) {
      // Re-walk the offending group below for the precise error (or, when
      // the byte was misplaced padding, the matching message).
      for (int k = 0; k < 4; ++k) {
        const uint8_t v = Base64Value(encoded[i + k]);
        if (v == 255) {
          return Status::InvalidArgument(
              "base64: invalid character at offset " +
              std::to_string(i + k));
        }
        if (v == 64) {
          // '=' (decode value 64) in a non-final group: padding may only
          // appear in the last group, so this byte is an error, with the
          // same exact-offset contract as an invalid character.
          return Status::InvalidArgument(
              "base64: misplaced padding at offset " + std::to_string(i + k));
        }
      }
    }
  }
  for (; i < encoded.size(); i += 4) {
    uint8_t v[4];
    int pad = 0;
    for (int k = 0; k < 4; ++k) {
      v[k] = Base64Value(encoded[i + k]);
      if (v[k] == 255) {
        return Status::InvalidArgument("base64: invalid character at offset " +
                                       std::to_string(i + k));
      }
      if (v[k] == 64) {  // '='
        // Padding is legal only in the last group's final one or two slots.
        const bool last_group = i + 4 == encoded.size();
        if (!last_group || k < 2) {
          return Status::InvalidArgument(
              "base64: misplaced padding at offset " + std::to_string(i + k));
        }
        ++pad;
      } else if (pad > 0) {
        return Status::InvalidArgument(
            "base64: data after padding at offset " + std::to_string(i + k));
      }
    }
    const uint32_t bits = uint32_t(v[0] & 0x3F) << 18 |
                          uint32_t(v[1] & 0x3F) << 12 |
                          uint32_t(v[2] & 0x3F) << 6 | uint32_t(v[3] & 0x3F);
    out.push_back(uint8_t(bits >> 16));
    if (pad < 2) out.push_back(uint8_t(bits >> 8));
    if (pad < 1) out.push_back(uint8_t(bits));
  }
  return out;
}

}  // namespace recpriv
