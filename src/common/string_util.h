// Small string helpers shared by CSV parsing, reporting, and tests.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace recpriv {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

/// Formats a double with `digits` significant digits (for table printing).
std::string FormatDouble(double v, int digits = 6);

/// Formats v as a percentage string, e.g. 0.1234 -> "12.34%".
std::string FormatPercent(double v, int decimals = 2);

/// Thousands-separated integer, e.g. 45222 -> "45,222".
std::string FormatWithCommas(int64_t v);

/// Standard base64 (RFC 4648, with '=' padding). Used to carry binary
/// snapshot chunks inside JSON wire frames (serve/wire.h "fetch_snapshot")
/// without leaving the line-delimited text protocol.
std::string Base64Encode(const uint8_t* data, size_t n);

/// Inverse of Base64Encode. Rejects characters outside the alphabet,
/// misplaced padding, and truncated groups — a corrupted chunk must fail
/// loudly, not decode to different bytes.
Result<std::vector<uint8_t>> Base64Decode(std::string_view encoded);

}  // namespace recpriv
