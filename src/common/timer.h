// Wall-clock timer for experiment reporting.

#pragma once

#include <chrono>

namespace recpriv {

/// Measures elapsed wall time since construction or the last Reset().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds as a double.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds as a double.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace recpriv
