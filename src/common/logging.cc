#include "common/logging.h"

#include <atomic>
#include <cstdlib>

namespace recpriv {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace recpriv
