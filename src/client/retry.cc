#include "client/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

namespace recpriv::client {

bool IsRetryableCode(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnavailable:
    case ErrorCode::kResourceExhausted:
    case ErrorCode::kIoError:  // TcpTransport maps EOF/timeouts here
      return true;
    case ErrorCode::kOk:
    case ErrorCode::kInvalidRequest:
    case ErrorCode::kOutOfRange:
    case ErrorCode::kNotFound:
    case ErrorCode::kAlreadyExists:
    case ErrorCode::kStaleEpoch:
    case ErrorCode::kInternal:
    case ErrorCode::kUnsupported:
    case ErrorCode::kMalformed:
    case ErrorCode::kDataLoss:
    case ErrorCode::kDeadlineExceeded:
      return false;
  }
  return false;
}

namespace {

/// A dead transport needs a fresh connection; a quota rejection does not.
bool NeedsReconnect(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kIoError;
}

}  // namespace

Result<std::unique_ptr<RetryingClient>> RetryingClient::Create(
    Factory factory, RetryPolicy policy) {
  if (factory == nullptr) {
    return Status::InvalidArgument("retrying client needs a factory");
  }
  if (policy.max_retries < 0 || policy.initial_backoff_ms < 0 ||
      policy.multiplier < 1.0 || policy.max_backoff_ms < 0) {
    return Status::InvalidArgument(
        "retry policy: retries/backoffs must be non-negative and the "
        "multiplier >= 1");
  }
  RECPRIV_ASSIGN_OR_RETURN(std::unique_ptr<Client> inner, factory());
  return std::unique_ptr<RetryingClient>(
      new RetryingClient(std::move(factory), policy, std::move(inner)));
}

double BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng& jitter) {
  double base = policy.initial_backoff_ms;
  for (int i = 0; i < attempt; ++i) base *= policy.multiplier;
  base = std::min(base, double(policy.max_backoff_ms));
  // Multiplicative jitter in [0.5, 1.0): desynchronizes a fleet of clients
  // without ever waiting longer than the deterministic schedule.
  return base * (0.5 + 0.5 * jitter.NextDouble());
}

void RetryingClient::Backoff(int attempt) {
  const double jittered = BackoffDelayMs(policy_, attempt, jitter_);
  if (jittered <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(jittered));
}

template <typename T>
Result<T> RetryingClient::RunWithRetry(
    const std::function<Result<T>(Client&)>& op) {
  Result<T> result = Status::Internal("retry loop never ran");
  for (int attempt = 0; attempt <= policy_.max_retries; ++attempt) {
    ++stats_.attempts;
    if (attempt > 0) ++stats_.retries;
    if (inner_ == nullptr) {
      auto rebuilt = factory_();
      if (!rebuilt.ok()) {
        // Connecting itself failed; treat like any retryable failure.
        result = rebuilt.status();
        if (attempt < policy_.max_retries) Backoff(attempt);
        continue;
      }
      inner_ = std::move(*rebuilt);
      ++stats_.reconnects;
    }
    result = op(*inner_);
    if (result.ok()) {
      if (attempt > 0) ++stats_.retried_ok;
      return result;
    }
    const ErrorCode code = ErrorCodeFromStatus(result.status());
    if (!IsRetryableCode(code)) return result;
    if (NeedsReconnect(code)) inner_.reset();
    if (attempt < policy_.max_retries) Backoff(attempt);
  }
  ++stats_.exhausted;
  return result;
}

Result<std::vector<ReleaseDescriptor>> RetryingClient::List() {
  return RunWithRetry<std::vector<ReleaseDescriptor>>(
      [](Client& c) { return c.List(); });
}

Result<BatchAnswer> RetryingClient::Query(const QueryRequest& request) {
  return RunWithRetry<BatchAnswer>(
      [&request](Client& c) { return c.Query(request); });
}

Result<ReleaseSchema> RetryingClient::GetSchema(
    const std::string& release, std::optional<uint64_t> epoch) {
  return RunWithRetry<ReleaseSchema>(
      [&release, &epoch](Client& c) { return c.GetSchema(release, epoch); });
}

Result<ServerStats> RetryingClient::Stats() {
  return RunWithRetry<ServerStats>([](Client& c) { return c.Stats(); });
}

Result<ReleaseDescriptor> RetryingClient::Publish(const std::string& name,
                                                  const std::string& basename) {
  return RunWithRetry<ReleaseDescriptor>(
      [&name, &basename](Client& c) { return c.Publish(name, basename); });
}

Result<ReleaseDescriptor> RetryingClient::Drop(const std::string& name) {
  return RunWithRetry<ReleaseDescriptor>(
      [&name](Client& c) { return c.Drop(name); });
}

}  // namespace recpriv::client
