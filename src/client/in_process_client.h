// InProcessClient: the embedded backend of recpriv::client::Client.
//
// Wraps a ReleaseStore + QueryEngine directly and routes every call
// through the same typed service layer (serve/service.h) the wire front
// end dispatches into — so an embedded caller and a remote caller hit
// byte-for-byte the same lookup, validation, and evaluation code, and a
// program can be developed against this backend and deployed against
// LineProtocolClient unchanged.
//
// Thread-safety follows the engine's: the store and engine are safe for
// concurrent use, so one InProcessClient may be shared across threads.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/release.h"
#include "client/client.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"

namespace recpriv::client {

class InProcessClient : public Client {
 public:
  /// Wraps an existing engine (shared with e.g. a wire front end serving
  /// the same store).
  explicit InProcessClient(std::shared_ptr<serve::QueryEngine> engine);

  /// Hosts a fresh engine over `store` — the self-contained embedded setup.
  explicit InProcessClient(std::shared_ptr<serve::ReleaseStore> store,
                           serve::QueryEngineOptions options = {});

  Result<std::vector<ReleaseDescriptor>> List() override;
  Result<BatchAnswer> Query(const QueryRequest& request) override;
  Result<ReleaseSchema> GetSchema(
      const std::string& release,
      std::optional<uint64_t> epoch = std::nullopt) override;
  Result<ServerStats> Stats() override;
  Result<ReleaseDescriptor> Publish(const std::string& name,
                                    const std::string& basename) override;
  Result<ReleaseDescriptor> Drop(const std::string& name) override;

  /// In-process extra: publishes an in-memory bundle (bundles do not
  /// cross the wire, so this is not part of the Client contract).
  Result<ReleaseDescriptor> PublishBundle(
      const std::string& name, recpriv::analysis::ReleaseBundle bundle);

  serve::QueryEngine& engine() { return *engine_; }

 private:
  std::shared_ptr<serve::QueryEngine> engine_;
};

}  // namespace recpriv::client
