// Typed request/response contract of the serving layer — the structs a
// consumer program works with instead of raw protocol JSON.
//
// These types are shared by every access path: the wire codec
// (serve/wire.cc) encodes/decodes them, the typed service layer
// (serve/service.h) produces them, and both client backends
// (client/in_process_client.h, client/line_protocol_client.h) return them.
// A program written against them runs unchanged embedded or remote.
//
// Errors cross the wire as a stable (code, message) pair — see ApiError —
// so remote callers can branch on the same taxonomy an in-process caller
// gets from Status, without parsing message strings.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace recpriv::client {

/// Stable wire error taxonomy. Every value maps 1:1 to a StatusCode (the
/// in-process error vocabulary), so the two client backends report the
/// same error for the same failure. kMalformed is the one wire-layer
/// refinement: a request line that is not valid JSON (an in-process caller
/// can never produce one).
enum class ErrorCode {
  kOk = 0,
  kInvalidRequest,  ///< kInvalidArgument: value outside the documented domain
  kOutOfRange,      ///< kOutOfRange: index / key outside a container
  kNotFound,        ///< kNotFound: unknown release, attribute, value, file
  kAlreadyExists,   ///< kAlreadyExists: duplicate insertion
  kIoError,         ///< kIOError: filesystem / parse failure
  kStaleEpoch,      ///< kFailedPrecondition: pinned epoch no longer retained
  kInternal,        ///< kInternal: invariant violation inside the server
  kUnsupported,     ///< kNotImplemented: protocol version / operation
  kMalformed,       ///< request line was not parseable JSON (wire only)
  kUnavailable,     ///< kUnavailable: server at max_connections; retry later
  kDataLoss,        ///< kDataLoss: a persisted snapshot is corrupt/unreadable
  kResourceExhausted,  ///< kResourceExhausted: tenant over quota; retry later
  kDeadlineExceeded,   ///< kDeadlineExceeded: deadline passed; shed unserved
};

/// Stable wire name of a code, e.g. "STALE_EPOCH".
std::string_view ErrorCodeName(ErrorCode code);

/// Inverse of ErrorCodeName; nullopt for unknown names.
std::optional<ErrorCode> ErrorCodeFromName(std::string_view name);

/// The taxonomy mapping (see the enum comments). OK maps to kOk.
ErrorCode ErrorCodeFromStatus(const Status& status);

/// A failed operation as it crosses the API boundary.
struct ApiError {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  /// The Status an in-process caller would have seen (kMalformed becomes
  /// kIOError: the line never reached the JSON layer intact).
  Status ToStatus() const;
  static ApiError FromStatus(const Status& status);
};

/// One count query at the string level of the release's own schema:
/// WHERE attr = value AND ... AND SA = sa (Eq. 11). Attribute and value
/// names resolve against the served snapshot's dictionaries server-side,
/// so clients need no out-of-band knowledge of the generator — fetch the
/// domains with Client::GetSchema.
struct QuerySpec {
  std::vector<std::pair<std::string, std::string>> where;
  std::string sa;
};

/// A batch of count queries against one release. When `epoch` is set the
/// batch is answered from that retained snapshot (see
/// serve/release_store.h), so a multi-request analysis session reads a
/// consistent release across concurrent republishes.
struct QueryRequest {
  std::string release;
  std::optional<uint64_t> epoch;
  std::vector<QuerySpec> queries;
  /// Tenant the request is accounted against for quota admission. Empty
  /// means the default tenant — the bucket every legacy/undeclared session
  /// shares (see serve/admission.h).
  std::string tenant;
  /// Relative deadline budget in milliseconds. When set, the serving side
  /// fast-fails the batch with DEADLINE_EXCEEDED once the budget has
  /// elapsed instead of occupying the engine pool past its usefulness.
  std::optional<int64_t> deadline_ms;
};

/// One query's answer: the observed perturbed count O*, the matched
/// release size |S*|, and the MLE reconstruction est = |S*| F' (Lemma 2).
struct AnswerRow {
  uint64_t observed = 0;
  uint64_t matched_size = 0;
  double estimate = 0.0;
  bool cached = false;
};

/// One batch's answers plus serving diagnostics.
struct BatchAnswer {
  std::string release;
  uint64_t epoch = 0;  ///< snapshot epoch the batch was served from
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  std::vector<AnswerRow> answers;  ///< parallel to QueryRequest::queries
};

/// Serving-visible metadata of one named release.
struct ReleaseDescriptor {
  std::string name;
  uint64_t epoch = 0;
  uint64_t num_records = 0;
  uint64_t num_groups = 0;
  uint64_t retained_epochs = 1;  ///< snapshots pinnable right now
  uint64_t oldest_epoch = 0;     ///< smallest epoch still pinnable
};

/// One attribute of a release schema: its name, whether it is the
/// sensitive attribute, and its full value domain in code order.
struct AttributeInfo {
  std::string name;
  bool sensitive = false;
  std::vector<std::string> values;
};

/// A release's public/sensitive attributes and domain values — everything
/// needed to build QuerySpecs without out-of-band knowledge.
struct ReleaseSchema {
  std::string release;
  uint64_t epoch = 0;
  std::vector<AttributeInfo> attributes;
};

/// Answer-cache counters of the serving process.
struct CacheStats {
  uint64_t size = 0;
  uint64_t capacity = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Counters of the network front end (serve/server.h): connection
/// admission, per-op request counts, and protocol hygiene. Present in
/// ServerStats only when the stats request was answered by a process with
/// a TCP front end — an in-process or stdin-served engine has none.
struct TransportStats {
  uint64_t connections_active = 0;
  uint64_t connections_accepted = 0;  ///< admitted sessions, lifetime
  uint64_t connections_rejected = 0;  ///< refused at max_connections
  uint64_t sessions_v2 = 0;           ///< sessions that sent a v2 request
  uint64_t requests = 0;              ///< request lines answered, all ops
  uint64_t errors = 0;                ///< responses with ok:false
  uint64_t malformed_lines = 0;       ///< lines that were not valid JSON
  uint64_t oversized_lines = 0;       ///< lines dropped by the read bound
  uint64_t idle_disconnects = 0;      ///< sessions dropped by idle timeout
  uint64_t epoch_pins = 0;            ///< requests that pinned an epoch
  std::map<std::string, uint64_t> ops;  ///< per-op request counts
};

/// Counters of the micro-batching query scheduler (serve/micro_batcher.h).
/// Present in ServerStats only when the serving engine was started with a
/// non-zero batch window (recpriv_serve --batch-window-us).
struct SchedulerStats {
  uint64_t window_us = 0;              ///< configured collection window
  uint64_t submissions = 0;            ///< Submit calls, lifetime
  uint64_t coalesced_submissions = 0;  ///< submissions that joined a batch
  uint64_t batches = 0;                ///< fused engine evaluations
  uint64_t batched_queries = 0;        ///< queries across all fused batches
  uint64_t max_batch_queries = 0;      ///< largest fused batch (queries)
  uint64_t max_batch_submissions = 0;  ///< largest fused batch (submissions)
};

/// Provenance of one served release: which path produced its snapshot
/// ("memory" published in-process, "csv" parsed from a release file,
/// "snapshot" mapped from a persisted binary snapshot) and what each stage
/// of making it queryable cost.
struct StoreReleaseStats {
  std::string release;
  uint64_t epoch = 0;
  std::string source;           ///< "memory" | "csv" | "snapshot"
  double open_ms = 0.0;         ///< map + verify + decode ("snapshot")
  double parse_ms = 0.0;        ///< CSV + manifest parse ("csv")
  double build_ms = 0.0;        ///< index / posting build
  uint64_t bytes_mapped = 0;    ///< mmap'd bytes held alive ("snapshot")
};

/// Admission counters of one tenant's token bucket (serve/admission.h).
struct TenantCounters {
  uint64_t admitted = 0;  ///< query batches admitted past the bucket
  uint64_t rejected = 0;  ///< batches refused with RESOURCE_EXHAUSTED
  uint64_t shed = 0;      ///< batches fast-failed with DEADLINE_EXCEEDED
};

/// Per-tenant quota admission counters. Present in ServerStats only when
/// the serving engine was started with a tenant quota
/// (recpriv_serve --quota-qps).
struct TenantStats {
  double quota_qps = 0.0;    ///< configured refill rate (queries/second)
  double quota_burst = 0.0;  ///< configured bucket depth (queries)
  std::map<std::string, TenantCounters> tenants;
};

/// One retained epoch as advertised by the replication subscribe stream:
/// its number and the content digest ("xxh64:<hex>", repl/digest.h) of its
/// serialized snapshot image.
struct EpochDigest {
  uint64_t epoch = 0;
  std::string digest;
};

/// One release's retained-epoch window in a subscribe listing,
/// epoch-ascending; back() is the served epoch.
struct SubscribedRelease {
  std::string name;
  std::vector<EpochDigest> epochs;
};

/// The response of the "subscribe" wire op: the full epoch listing at
/// subscription time. Every later change arrives as an EpochEvent pushed
/// on the same session.
struct Subscription {
  std::vector<SubscribedRelease> releases;
};

/// One pushed replication event (wire shape: {"v":2,"event":"epoch",...}).
/// kPublish announces a newly served epoch (digest set); kRetire an epoch
/// aged out of the retention window; kDrop a retired release (epoch = the
/// last served epoch).
struct EpochEvent {
  enum class Kind { kPublish, kRetire, kDrop };
  Kind kind = Kind::kPublish;
  std::string release;
  uint64_t epoch = 0;
  std::string digest;  ///< set for kPublish; empty otherwise
};

/// One chunk of a snapshot transfer (the "fetch_snapshot" wire op). The
/// chunk bytes are base64 inside the JSON frame; `digest` is the whole
/// file's content digest so the fetcher can verify the reassembled image.
struct SnapshotChunk {
  std::string release;
  uint64_t epoch = 0;
  uint64_t offset = 0;       ///< first byte of `data` within the file
  uint64_t total_bytes = 0;  ///< full serialized image size
  std::string digest;        ///< whole-image digest ("xxh64:<hex>")
  std::vector<uint8_t> data;
  bool eof = false;  ///< offset + data.size() == total_bytes
};

/// Counters and staleness bounds of a follower's replication link
/// (repl/replicator.h). Present in ServerStats only when the serving
/// process is following a primary (recpriv_serve --follow), so golden
/// transcripts of non-replicating servers are unchanged.
struct ReplicationStats {
  std::string primary;        ///< "host:port" being followed
  bool connected = false;     ///< the subscribe stream is live right now
  uint64_t events_seen = 0;   ///< pushed epoch events processed
  uint64_t snapshots_fetched = 0;  ///< completed fetch_snapshot transfers
  uint64_t bytes_fetched = 0;      ///< snapshot payload bytes received
  uint64_t installs = 0;           ///< epochs installed into the local store
  uint64_t drops = 0;              ///< releases dropped to mirror the primary
  uint64_t digest_mismatches = 0;  ///< transfers rejected as DATA_LOSS
  uint64_t reconnects = 0;         ///< connection lifetimes after the first
  uint64_t resyncs = 0;            ///< full listings reconciled
  /// Bounded staleness, observable per the tentpole contract: how many
  /// published-but-not-yet-installed epochs the follower knows about, and
  /// the age in ms of the oldest such epoch (0 when fully caught up).
  uint64_t lag_epochs = 0;
  double lag_ms = 0.0;
};

/// Engine-wide counters plus per-release serving metadata.
struct ServerStats {
  uint64_t threads = 0;
  CacheStats cache;
  std::vector<ReleaseDescriptor> releases;
  std::optional<SchedulerStats> scheduler;  ///< see SchedulerStats
  std::optional<TransportStats> transport;  ///< see TransportStats
  std::vector<StoreReleaseStats> store;     ///< see StoreReleaseStats
  std::optional<TenantStats> tenants;       ///< see TenantStats
  std::optional<ReplicationStats> replication;  ///< see ReplicationStats
};

}  // namespace recpriv::client
