#include "client/line_protocol_client.h"

#include <chrono>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "serve/wire.h"

namespace recpriv::client {

Result<std::string> IoStreamTransport::RoundTrip(
    const std::string& request_line) {
  out_ << request_line << "\n" << std::flush;
  if (!out_.good()) {
    return Status::IOError("line transport: write failed (peer gone?)");
  }
  std::string response;
  if (!std::getline(in_, response)) {
    return Status::IOError("line transport: no response (peer closed)");
  }
  return response;
}

Result<std::string> LoopbackTransport::RoundTrip(
    const std::string& request_line) {
  return serve::HandleRequestLine(request_line, engine_);
}

Result<std::string> FaultInjectingTransport::RoundTrip(
    const std::string& request_line) {
  if (dead_) {
    return Status::Unavailable(
        "fault injection: transport was disconnected; reconnect");
  }
  switch (injector_->SampleWrite()) {
    case net::FaultKind::kNone:
    case net::FaultKind::kShortWrite:  // no byte-level split without a socket
      break;
    case net::FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(injector_->options().delay_ms));
      break;
    case net::FaultKind::kDrop:
      dead_ = true;
      return Status::Unavailable("fault injection: request dropped");
    case net::FaultKind::kDisconnect:
      dead_ = true;
      return Status::Unavailable(
          "fault injection: connection closed before the request");
    case net::FaultKind::kTruncate:
      dead_ = true;
      return Status::Unavailable(
          "fault injection: request truncated mid-line");
  }
  return inner_->RoundTrip(request_line);
}

LineProtocolClient::LineProtocolClient(
    std::unique_ptr<LineTransport> transport)
    : transport_(std::move(transport)) {}

LineProtocolClient::LineProtocolClient(std::istream& responses,
                                       std::ostream& requests)
    : transport_(std::make_unique<IoStreamTransport>(responses, requests)) {}

Result<JsonValue> LineProtocolClient::RoundTrip(const JsonValue& request,
                                                uint64_t id) {
  RECPRIV_ASSIGN_OR_RETURN(std::string response_line,
                           transport_->RoundTrip(request.ToString()));
  return serve::wire::ParseResponse(response_line, id);
}

Result<std::vector<ReleaseDescriptor>> LineProtocolClient::List() {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(JsonValue response,
                           RoundTrip(serve::wire::EncodeListRequest(id), id));
  return serve::wire::DecodeListResponse(response);
}

Result<BatchAnswer> LineProtocolClient::Query(const QueryRequest& request) {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeQueryRequest(request, id), id));
  return serve::wire::DecodeQueryResponse(response);
}

Result<ReleaseSchema> LineProtocolClient::GetSchema(
    const std::string& release, std::optional<uint64_t> epoch) {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeSchemaRequest(release, epoch, id), id));
  return serve::wire::DecodeSchemaResponse(response);
}

Result<ServerStats> LineProtocolClient::Stats() {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(JsonValue response,
                           RoundTrip(serve::wire::EncodeStatsRequest(id), id));
  return serve::wire::DecodeStatsResponse(response);
}

Result<ReleaseDescriptor> LineProtocolClient::Publish(
    const std::string& name, const std::string& basename) {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodePublishRequest(name, basename, id), id));
  return serve::wire::DecodePublishResponse(response);
}

Result<ReleaseDescriptor> LineProtocolClient::Drop(const std::string& name) {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeDropRequest(name, id), id));
  return serve::wire::DecodeDropResponse(response);
}

}  // namespace recpriv::client
