#include "client/line_protocol_client.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "serve/wire.h"

namespace recpriv::client {

namespace {

/// How long a RoundTrip keeps reading for its response after absorbing a
/// pushed event line; matches TcpTransportOptions::response_timeout_ms.
constexpr int kResponseBehindEventsTimeoutMs = 60000;

}  // namespace

Result<std::optional<std::string>> LineTransport::ReadPushedLine(
    int /*timeout_ms*/) {
  return Status::NotImplemented(
      "this transport does not carry pushed lines (subscribe needs a live "
      "TCP connection)");
}

Status LineTransport::SetBinaryFrame(bool /*binary*/) {
  return Status::NotImplemented(
      "this transport cannot switch its session framing");
}

Result<std::string> IoStreamTransport::RoundTrip(
    const std::string& request_line) {
  out_ << request_line << "\n" << std::flush;
  if (!out_.good()) {
    return Status::IOError("line transport: write failed (peer gone?)");
  }
  std::string response;
  if (!std::getline(in_, response)) {
    return Status::IOError("line transport: no response (peer closed)");
  }
  return response;
}

Result<std::string> LoopbackTransport::RoundTrip(
    const std::string& request_line) {
  return serve::HandleRequestLine(request_line, engine_, context_, nullptr);
}

Result<std::string> FaultInjectingTransport::RoundTrip(
    const std::string& request_line) {
  if (dead_) {
    return Status::Unavailable(
        "fault injection: transport was disconnected; reconnect");
  }
  switch (injector_->SampleWrite()) {
    case net::FaultKind::kNone:
    case net::FaultKind::kShortWrite:  // no byte-level split without a socket
      break;
    case net::FaultKind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(injector_->options().delay_ms));
      break;
    case net::FaultKind::kDrop:
      dead_ = true;
      return Status::Unavailable("fault injection: request dropped");
    case net::FaultKind::kDisconnect:
      dead_ = true;
      return Status::Unavailable(
          "fault injection: connection closed before the request");
    case net::FaultKind::kTruncate:
      dead_ = true;
      return Status::Unavailable(
          "fault injection: request truncated mid-line");
  }
  return inner_->RoundTrip(request_line);
}

LineProtocolClient::LineProtocolClient(
    std::unique_ptr<LineTransport> transport)
    : transport_(std::move(transport)) {}

LineProtocolClient::LineProtocolClient(std::istream& responses,
                                       std::ostream& requests)
    : transport_(std::make_unique<IoStreamTransport>(responses, requests)) {}

Result<JsonValue> LineProtocolClient::RoundTrip(const JsonValue& request,
                                                uint64_t id) {
  RECPRIV_ASSIGN_OR_RETURN(std::string response_line,
                           transport_->RoundTrip(request.ToString()));
  // A subscribed session may receive pushed event lines in place of the
  // response; absorb each one and keep reading until the real response
  // (or anything malformed — ParseResponse rules on that) shows up.
  for (;;) {
    Result<JsonValue> parsed = JsonValue::Parse(response_line);
    if (!parsed.ok() || !serve::wire::IsEventLine(*parsed)) {
      return serve::wire::ParseResponse(response_line, id);
    }
    RECPRIV_RETURN_NOT_OK(AbsorbEvent(*parsed));
    RECPRIV_ASSIGN_OR_RETURN(
        std::optional<std::string> next,
        transport_->ReadPushedLine(kResponseBehindEventsTimeoutMs));
    if (!next.has_value()) {
      return Status::IOError(
          "line protocol: response never arrived behind pushed events");
    }
    response_line = std::move(*next);
  }
}

Status LineProtocolClient::AbsorbEvent(const JsonValue& line) {
  RECPRIV_ASSIGN_OR_RETURN(EpochEvent event,
                           serve::wire::DecodeEpochEvent(line));
  switch (event.kind) {
    case EpochEvent::Kind::kPublish: {
      uint64_t& latest = latest_epoch_[event.release];
      latest = std::max(latest, event.epoch);
      break;
    }
    case EpochEvent::Kind::kRetire: {
      // Satellite: push-based stale-epoch invalidation. The server just
      // told us this epoch left the retention window — clear a matching
      // pin now instead of learning it from the next query's STALE_EPOCH.
      auto it = pins_.find(event.release);
      if (it != pins_.end() && it->second == event.epoch) {
        pins_.erase(it);
        ++pin_invalidations_;
      }
      break;
    }
    case EpochEvent::Kind::kDrop: {
      if (pins_.erase(event.release) > 0) ++pin_invalidations_;
      latest_epoch_.erase(event.release);
      break;
    }
  }
  pending_events_.push_back(std::move(event));
  return Status::OK();
}

Result<std::vector<ReleaseDescriptor>> LineProtocolClient::List() {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(JsonValue response,
                           RoundTrip(serve::wire::EncodeListRequest(id), id));
  return serve::wire::DecodeListResponse(response);
}

Result<BatchAnswer> LineProtocolClient::Query(const QueryRequest& request) {
  const uint64_t id = next_id_++;
  // An explicit epoch in the request wins; otherwise a live pin fills it
  // in, so a pinned session reads a consistent release without each call
  // site threading the epoch through.
  QueryRequest effective = request;
  if (!effective.epoch.has_value()) {
    auto it = pins_.find(effective.release);
    if (it != pins_.end()) effective.epoch = it->second;
  }
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeQueryRequest(effective, id), id));
  return serve::wire::DecodeQueryResponse(response);
}

Result<ReleaseSchema> LineProtocolClient::GetSchema(
    const std::string& release, std::optional<uint64_t> epoch) {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeSchemaRequest(release, epoch, id), id));
  return serve::wire::DecodeSchemaResponse(response);
}

Result<ServerStats> LineProtocolClient::Stats() {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(JsonValue response,
                           RoundTrip(serve::wire::EncodeStatsRequest(id), id));
  return serve::wire::DecodeStatsResponse(response);
}

Result<ReleaseDescriptor> LineProtocolClient::Publish(
    const std::string& name, const std::string& basename) {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodePublishRequest(name, basename, id), id));
  return serve::wire::DecodePublishResponse(response);
}

Result<ReleaseDescriptor> LineProtocolClient::Drop(const std::string& name) {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeDropRequest(name, id), id));
  return serve::wire::DecodeDropResponse(response);
}

Result<bool> LineProtocolClient::NegotiateBinaryFrame() {
  if (!transport_->SupportsBinaryFrame()) return false;
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeHelloRequest("binary", id), id));
  RECPRIV_ASSIGN_OR_RETURN(std::string frame,
                           serve::wire::DecodeHelloResponse(response));
  if (frame != "binary") return false;
  RECPRIV_RETURN_NOT_OK(transport_->SetBinaryFrame(true));
  return true;
}

Result<Subscription> LineProtocolClient::Subscribe() {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeSubscribeRequest(id), id));
  return serve::wire::DecodeSubscribeResponse(response);
}

Result<std::vector<EpochEvent>> LineProtocolClient::PollEvents(
    int timeout_ms) {
  // Block only for the first line and only when nothing is buffered;
  // after that, drain whatever has already arrived without waiting.
  int wait_ms = pending_events_.empty() ? timeout_ms : 0;
  for (;;) {
    RECPRIV_ASSIGN_OR_RETURN(std::optional<std::string> line,
                             transport_->ReadPushedLine(wait_ms));
    if (!line.has_value()) break;
    RECPRIV_ASSIGN_OR_RETURN(JsonValue parsed, JsonValue::Parse(*line));
    if (!serve::wire::IsEventLine(parsed)) {
      return Status::Internal(
          "line protocol: unsolicited non-event line on an idle session: " +
          *line);
    }
    RECPRIV_RETURN_NOT_OK(AbsorbEvent(parsed));
    wait_ms = 0;
  }
  std::vector<EpochEvent> drained;
  drained.swap(pending_events_);
  return drained;
}

Result<SnapshotChunk> LineProtocolClient::FetchSnapshotChunk(
    const std::string& release, uint64_t epoch, uint64_t offset,
    uint64_t max_bytes) {
  const uint64_t id = next_id_++;
  RECPRIV_ASSIGN_OR_RETURN(
      JsonValue response,
      RoundTrip(serve::wire::EncodeFetchSnapshotRequest(release, epoch, offset,
                                                        max_bytes, id),
                id));
  // On a binary-framed session the chunk rides as the response frame's raw
  // attachment; the decoder falls back to "data_b64" when there is none.
  return serve::wire::DecodeFetchSnapshotResponse(response,
                                                  transport_->LastAttachment());
}

void LineProtocolClient::Pin(const std::string& release, uint64_t epoch) {
  pins_[release] = epoch;
}

std::optional<uint64_t> LineProtocolClient::PinnedEpoch(
    const std::string& release) const {
  auto it = pins_.find(release);
  if (it == pins_.end()) return std::nullopt;
  return it->second;
}

void LineProtocolClient::ClearPin(const std::string& release) {
  pins_.erase(release);
}

std::optional<uint64_t> LineProtocolClient::LatestKnownEpoch(
    const std::string& release) const {
  auto it = latest_epoch_.find(release);
  if (it == latest_epoch_.end()) return std::nullopt;
  return it->second;
}

}  // namespace recpriv::client
