#include "client/in_process_client.h"

#include <utility>

#include "serve/service.h"

namespace recpriv::client {

InProcessClient::InProcessClient(std::shared_ptr<serve::QueryEngine> engine)
    : engine_(std::move(engine)) {}

InProcessClient::InProcessClient(std::shared_ptr<serve::ReleaseStore> store,
                                 serve::QueryEngineOptions options)
    : engine_(std::make_shared<serve::QueryEngine>(std::move(store),
                                                   options)) {}

Result<std::vector<ReleaseDescriptor>> InProcessClient::List() {
  return serve::ListReleases(*engine_);
}

Result<BatchAnswer> InProcessClient::Query(const QueryRequest& request) {
  return serve::ExecuteQuery(*engine_, request);
}

Result<ReleaseSchema> InProcessClient::GetSchema(
    const std::string& release, std::optional<uint64_t> epoch) {
  return serve::DescribeRelease(*engine_, release, epoch);
}

Result<ServerStats> InProcessClient::Stats() {
  return serve::CollectStats(*engine_);
}

Result<ReleaseDescriptor> InProcessClient::Publish(
    const std::string& name, const std::string& basename) {
  return serve::PublishFromFile(*engine_, name, basename);
}

Result<ReleaseDescriptor> InProcessClient::Drop(const std::string& name) {
  return serve::DropRelease(*engine_, name);
}

Result<ReleaseDescriptor> InProcessClient::PublishBundle(
    const std::string& name, recpriv::analysis::ReleaseBundle bundle) {
  return serve::PublishBundle(*engine_, name, std::move(bundle));
}

}  // namespace recpriv::client
