// LineProtocolClient: the remote backend of recpriv::client::Client —
// speaks wire protocol v2 (serve/wire.h), one JSON request line out, one
// JSON response line back, over a pluggable LineTransport.
//
// Every request carries a monotonically increasing correlation id; the
// client verifies the server's id echo before trusting a success
// response, and maps structured wire errors back onto the same Status
// taxonomy InProcessClient reports — so the two backends are
// interchangeable down to their error codes.
//
// Transports:
//  * IoStreamTransport — an (istream, ostream) pair, e.g. pipes to the
//    stdin/stdout of a recpriv_serve process.
//  * LoopbackTransport — dispatches each line through a local engine's
//    wire front end with no process boundary; full protocol round-trip
//    (encode -> parse -> dispatch -> encode -> parse) in-process. The
//    reference harness for protocol tests and examples.
//
// A LineProtocolClient serializes one request at a time and is not
// thread-safe; give each session its own client (the paper's consumption
// model — analysts each querying an immutable release — makes sessions
// naturally independent).
//
// Push streams: after Subscribe(), the server interleaves epoch-event
// lines (no "id"/"ok" — see wire::IsEventLine) into the session. The
// client routes them transparently: a RoundTrip that reads an event line
// buffers it and keeps reading until the real response arrives, and
// PollEvents() drains buffered plus newly arrived events. Pushed retire/
// drop events proactively clear a matching epoch pin, so a subscribed
// session never sends a query it already knows will answer STALE_EPOCH.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/json.h"
#include "net/fault_injector.h"
#include "serve/query_engine.h"
#include "serve/wire.h"

namespace recpriv::client {

/// One request line out, one response line back.
class LineTransport {
 public:
  virtual ~LineTransport() = default;
  /// Sends `request_line` (no trailing newline) and returns the
  /// corresponding response line, or an error when the peer is gone.
  virtual Result<std::string> RoundTrip(const std::string& request_line) = 0;
  /// Waits up to `timeout_ms` for a line the server sent without being
  /// asked (a pushed event, or a late response after events displaced
  /// it); nullopt on timeout. Only transports with a live full-duplex
  /// connection can carry pushes; the default says so with UNSUPPORTED.
  virtual Result<std::optional<std::string>> ReadPushedLine(int timeout_ms);

  // --- binary framing (wire "hello" negotiation) ---------------------------

  /// True when this transport can switch its session to binary frames
  /// (net/line_channel.h). Stream/loopback transports cannot.
  virtual bool SupportsBinaryFrame() const { return false; }
  /// Switches the framing after a successful negotiation; the NEXT
  /// round trip uses the new framing. Unsupported transports error.
  virtual Status SetBinaryFrame(bool binary);
  /// Raw attachment bytes of the most recently read response frame
  /// (kFrameJsonWithBytes), or nullptr when it carried none. Valid until
  /// the next read on this transport.
  virtual const std::string* LastAttachment() const { return nullptr; }
};

/// Writes request lines to `out`, reads response lines from `in`.
class IoStreamTransport : public LineTransport {
 public:
  IoStreamTransport(std::istream& in, std::ostream& out)
      : in_(in), out_(out) {}
  Result<std::string> RoundTrip(const std::string& request_line) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// Dispatches lines through a local engine's wire front end. The context
/// overload forwards a RequestContext, so protocol tests can exercise
/// e.g. "fetch_snapshot" or replication stats without a socket (loopback
/// has no push stream — "subscribe" needs the TCP server).
class LoopbackTransport : public LineTransport {
 public:
  explicit LoopbackTransport(serve::QueryEngine& engine) : engine_(engine) {}
  LoopbackTransport(serve::QueryEngine& engine, serve::RequestContext context)
      : engine_(engine), context_(std::move(context)) {}
  Result<std::string> RoundTrip(const std::string& request_line) override;

 private:
  serve::QueryEngine& engine_;
  serve::RequestContext context_;
};

/// Decorates any LineTransport with a seeded fault schedule
/// (net/fault_injector.h) — the transport-agnostic half of fault
/// injection, so `recpriv_workload --faults` exercises the retry path even
/// in-process. Drop/disconnect/truncate surface as UNAVAILABLE with a
/// "fault injection:" message (the request never reaches the peer and the
/// transport is considered dead); a delay sleeps then proceeds; a short
/// write has no distinct meaning without a real socket and passes through.
/// The TCP path applies the same schedule at the byte level instead
/// (client/tcp_transport.h).
class FaultInjectingTransport : public LineTransport {
 public:
  FaultInjectingTransport(std::unique_ptr<LineTransport> inner,
                          std::shared_ptr<net::FaultInjector> injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  Result<std::string> RoundTrip(const std::string& request_line) override;

  /// True once a drop/disconnect/truncate fault killed this transport;
  /// every later RoundTrip fails UNAVAILABLE (a real dead socket does not
  /// resurrect either — the retry layer must reconnect).
  bool dead() const { return dead_; }

 private:
  std::unique_ptr<LineTransport> inner_;
  std::shared_ptr<net::FaultInjector> injector_;
  bool dead_ = false;
};

class LineProtocolClient : public Client {
 public:
  explicit LineProtocolClient(std::unique_ptr<LineTransport> transport);
  /// Convenience: an owned IoStreamTransport over the given streams.
  LineProtocolClient(std::istream& responses, std::ostream& requests);

  Result<std::vector<ReleaseDescriptor>> List() override;
  Result<BatchAnswer> Query(const QueryRequest& request) override;
  Result<ReleaseSchema> GetSchema(
      const std::string& release,
      std::optional<uint64_t> epoch = std::nullopt) override;
  Result<ServerStats> Stats() override;
  Result<ReleaseDescriptor> Publish(const std::string& name,
                                    const std::string& basename) override;
  Result<ReleaseDescriptor> Drop(const std::string& name) override;

  // --- session framing -----------------------------------------------------

  /// Negotiates binary frames for this session (the wire "hello" op) when
  /// the transport supports them; returns whether the session ended up
  /// binary-framed. A server that cannot frame answers "json" and this
  /// returns false — same protocol, line framing, no error. Call before
  /// bulk transfers (snapshot replication) to skip base64 entirely.
  Result<bool> NegotiateBinaryFrame();

  // --- replication / push stream -------------------------------------------

  /// Upgrades this session into a push stream of epoch events; returns the
  /// full retained-epoch listing at subscription time.
  Result<Subscription> Subscribe();

  /// Drains pushed epoch events: waits up to `timeout_ms` for the first
  /// line when nothing is buffered, then returns everything that has
  /// arrived (possibly empty). Pin invalidation and the latest-epoch map
  /// are updated as each event is seen — including events absorbed during
  /// a RoundTrip — not just here.
  Result<std::vector<EpochEvent>> PollEvents(int timeout_ms);

  /// One chunk of a snapshot transfer; chunk integrity is verified in the
  /// decoder (DataLoss on mismatch).
  Result<SnapshotChunk> FetchSnapshotChunk(const std::string& release,
                                           uint64_t epoch, uint64_t offset,
                                           uint64_t max_bytes);

  // --- epoch pinning (satellite: push-based stale-epoch invalidation) ------

  /// Pins queries of `release` (those not already carrying an epoch) to
  /// `epoch`. A pushed retire/drop of that epoch clears the pin before the
  /// next query, so a subscribed session steps forward instead of sending
  /// a request it already knows will answer STALE_EPOCH.
  void Pin(const std::string& release, uint64_t epoch);
  std::optional<uint64_t> PinnedEpoch(const std::string& release) const;
  void ClearPin(const std::string& release);
  /// Pins cleared by pushed retire/drop events (not by ClearPin).
  uint64_t pin_invalidations() const { return pin_invalidations_; }
  /// Highest epoch a pushed publish event has announced for `release`.
  std::optional<uint64_t> LatestKnownEpoch(const std::string& release) const;

 private:
  /// Serializes `request`, round-trips it, and validates the envelope;
  /// returns the response object for the per-op decoder. Pushed event
  /// lines that arrive in place of the response are absorbed (buffered +
  /// side effects applied) and the read continues.
  Result<JsonValue> RoundTrip(const JsonValue& request, uint64_t id);
  /// Applies one decoded event's side effects and buffers it for
  /// PollEvents.
  Status AbsorbEvent(const JsonValue& line);

  std::unique_ptr<LineTransport> transport_;
  uint64_t next_id_ = 1;
  std::vector<EpochEvent> pending_events_;
  std::map<std::string, uint64_t> pins_;
  std::map<std::string, uint64_t> latest_epoch_;
  uint64_t pin_invalidations_ = 0;
};

}  // namespace recpriv::client
