// LineProtocolClient: the remote backend of recpriv::client::Client —
// speaks wire protocol v2 (serve/wire.h), one JSON request line out, one
// JSON response line back, over a pluggable LineTransport.
//
// Every request carries a monotonically increasing correlation id; the
// client verifies the server's id echo before trusting a success
// response, and maps structured wire errors back onto the same Status
// taxonomy InProcessClient reports — so the two backends are
// interchangeable down to their error codes.
//
// Transports:
//  * IoStreamTransport — an (istream, ostream) pair, e.g. pipes to the
//    stdin/stdout of a recpriv_serve process.
//  * LoopbackTransport — dispatches each line through a local engine's
//    wire front end with no process boundary; full protocol round-trip
//    (encode -> parse -> dispatch -> encode -> parse) in-process. The
//    reference harness for protocol tests and examples.
//
// A LineProtocolClient serializes one request at a time and is not
// thread-safe; give each session its own client (the paper's consumption
// model — analysts each querying an immutable release — makes sessions
// naturally independent).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/json.h"
#include "net/fault_injector.h"
#include "serve/query_engine.h"

namespace recpriv::client {

/// One request line out, one response line back.
class LineTransport {
 public:
  virtual ~LineTransport() = default;
  /// Sends `request_line` (no trailing newline) and returns the
  /// corresponding response line, or an error when the peer is gone.
  virtual Result<std::string> RoundTrip(const std::string& request_line) = 0;
};

/// Writes request lines to `out`, reads response lines from `in`.
class IoStreamTransport : public LineTransport {
 public:
  IoStreamTransport(std::istream& in, std::ostream& out)
      : in_(in), out_(out) {}
  Result<std::string> RoundTrip(const std::string& request_line) override;

 private:
  std::istream& in_;
  std::ostream& out_;
};

/// Dispatches lines through a local engine's wire front end.
class LoopbackTransport : public LineTransport {
 public:
  explicit LoopbackTransport(serve::QueryEngine& engine) : engine_(engine) {}
  Result<std::string> RoundTrip(const std::string& request_line) override;

 private:
  serve::QueryEngine& engine_;
};

/// Decorates any LineTransport with a seeded fault schedule
/// (net/fault_injector.h) — the transport-agnostic half of fault
/// injection, so `recpriv_workload --faults` exercises the retry path even
/// in-process. Drop/disconnect/truncate surface as UNAVAILABLE with a
/// "fault injection:" message (the request never reaches the peer and the
/// transport is considered dead); a delay sleeps then proceeds; a short
/// write has no distinct meaning without a real socket and passes through.
/// The TCP path applies the same schedule at the byte level instead
/// (client/tcp_transport.h).
class FaultInjectingTransport : public LineTransport {
 public:
  FaultInjectingTransport(std::unique_ptr<LineTransport> inner,
                          std::shared_ptr<net::FaultInjector> injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  Result<std::string> RoundTrip(const std::string& request_line) override;

  /// True once a drop/disconnect/truncate fault killed this transport;
  /// every later RoundTrip fails UNAVAILABLE (a real dead socket does not
  /// resurrect either — the retry layer must reconnect).
  bool dead() const { return dead_; }

 private:
  std::unique_ptr<LineTransport> inner_;
  std::shared_ptr<net::FaultInjector> injector_;
  bool dead_ = false;
};

class LineProtocolClient : public Client {
 public:
  explicit LineProtocolClient(std::unique_ptr<LineTransport> transport);
  /// Convenience: an owned IoStreamTransport over the given streams.
  LineProtocolClient(std::istream& responses, std::ostream& requests);

  Result<std::vector<ReleaseDescriptor>> List() override;
  Result<BatchAnswer> Query(const QueryRequest& request) override;
  Result<ReleaseSchema> GetSchema(
      const std::string& release,
      std::optional<uint64_t> epoch = std::nullopt) override;
  Result<ServerStats> Stats() override;
  Result<ReleaseDescriptor> Publish(const std::string& name,
                                    const std::string& basename) override;
  Result<ReleaseDescriptor> Drop(const std::string& name) override;

 private:
  /// Serializes `request`, round-trips it, and validates the envelope;
  /// returns the response object for the per-op decoder.
  Result<JsonValue> RoundTrip(const JsonValue& request, uint64_t id);

  std::unique_ptr<LineTransport> transport_;
  uint64_t next_id_ = 1;
};

}  // namespace recpriv::client
