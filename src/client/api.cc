#include "client/api.h"

namespace recpriv::client {

namespace {

struct CodeName {
  ErrorCode code;
  std::string_view name;
};

constexpr CodeName kCodeNames[] = {
    {ErrorCode::kOk, "OK"},
    {ErrorCode::kInvalidRequest, "INVALID_REQUEST"},
    {ErrorCode::kOutOfRange, "OUT_OF_RANGE"},
    {ErrorCode::kNotFound, "NOT_FOUND"},
    {ErrorCode::kAlreadyExists, "ALREADY_EXISTS"},
    {ErrorCode::kIoError, "IO_ERROR"},
    {ErrorCode::kStaleEpoch, "STALE_EPOCH"},
    {ErrorCode::kInternal, "INTERNAL"},
    {ErrorCode::kUnsupported, "UNSUPPORTED"},
    {ErrorCode::kMalformed, "MALFORMED"},
    {ErrorCode::kUnavailable, "UNAVAILABLE"},
    {ErrorCode::kDataLoss, "DATA_LOSS"},
    {ErrorCode::kResourceExhausted, "RESOURCE_EXHAUSTED"},
    {ErrorCode::kDeadlineExceeded, "DEADLINE_EXCEEDED"},
};

}  // namespace

std::string_view ErrorCodeName(ErrorCode code) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "INTERNAL";
}

std::optional<ErrorCode> ErrorCodeFromName(std::string_view name) {
  for (const CodeName& entry : kCodeNames) {
    if (entry.name == name) return entry.code;
  }
  return std::nullopt;
}

ErrorCode ErrorCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return ErrorCode::kOk;
    case StatusCode::kInvalidArgument:
      return ErrorCode::kInvalidRequest;
    case StatusCode::kOutOfRange:
      return ErrorCode::kOutOfRange;
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return ErrorCode::kAlreadyExists;
    case StatusCode::kIOError:
      return ErrorCode::kIoError;
    case StatusCode::kFailedPrecondition:
      return ErrorCode::kStaleEpoch;
    case StatusCode::kInternal:
      return ErrorCode::kInternal;
    case StatusCode::kNotImplemented:
      return ErrorCode::kUnsupported;
    case StatusCode::kUnavailable:
      return ErrorCode::kUnavailable;
    case StatusCode::kDataLoss:
      return ErrorCode::kDataLoss;
    case StatusCode::kResourceExhausted:
      return ErrorCode::kResourceExhausted;
    case StatusCode::kDeadlineExceeded:
      return ErrorCode::kDeadlineExceeded;
  }
  return ErrorCode::kInternal;
}

Status ApiError::ToStatus() const {
  switch (code) {
    case ErrorCode::kOk:
      return Status::OK();
    case ErrorCode::kInvalidRequest:
      return Status::InvalidArgument(message);
    case ErrorCode::kOutOfRange:
      return Status::OutOfRange(message);
    case ErrorCode::kNotFound:
      return Status::NotFound(message);
    case ErrorCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case ErrorCode::kIoError:
      return Status::IOError(message);
    case ErrorCode::kStaleEpoch:
      return Status::FailedPrecondition(message);
    case ErrorCode::kInternal:
      return Status::Internal(message);
    case ErrorCode::kUnsupported:
      return Status::NotImplemented(message);
    case ErrorCode::kMalformed:
      return Status::IOError(message);
    case ErrorCode::kUnavailable:
      return Status::Unavailable(message);
    case ErrorCode::kDataLoss:
      return Status::DataLoss(message);
    case ErrorCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case ErrorCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
  }
  return Status::Internal(message);
}

ApiError ApiError::FromStatus(const Status& status) {
  return ApiError{ErrorCodeFromStatus(status), status.message()};
}

}  // namespace recpriv::client
