#include "client/tcp_transport.h"

#include <utility>

#include "net/socket.h"

namespace recpriv::client {

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port, TcpTransportOptions options) {
  RECPRIV_ASSIGN_OR_RETURN(
      net::UniqueFd fd, net::ConnectTcp(host, port, options.connect_timeout_ms));
  net::LineChannelOptions channel_options;
  channel_options.max_line_bytes = options.max_line_bytes;
  return std::unique_ptr<TcpTransport>(new TcpTransport(
      net::LineChannel(std::move(fd), channel_options), options));
}

Result<std::string> TcpTransport::RoundTrip(const std::string& request_line) {
  RECPRIV_RETURN_NOT_OK(
      channel_.WriteLine(request_line, options_.write_timeout_ms));
  RECPRIV_ASSIGN_OR_RETURN(net::ReadResult read,
                           channel_.ReadLine(options_.response_timeout_ms));
  switch (read.event) {
    case net::ReadEvent::kLine:
      return std::move(read.line);
    case net::ReadEvent::kEof:
      return Status::IOError("tcp transport: server closed the connection");
    case net::ReadEvent::kTimeout:
      return Status::IOError("tcp transport: no response within " +
                             std::to_string(options_.response_timeout_ms) +
                             " ms");
    case net::ReadEvent::kOversized:
      return Status::IOError("tcp transport: response line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes");
  }
  return Status::Internal("tcp transport: unreachable read event");
}

Result<std::unique_ptr<LineProtocolClient>> ConnectTcp(
    const std::string& host, uint16_t port, TcpTransportOptions options) {
  RECPRIV_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> transport,
                           TcpTransport::Connect(host, port, options));
  return std::make_unique<LineProtocolClient>(std::move(transport));
}

}  // namespace recpriv::client
