#include "client/tcp_transport.h"

#include <chrono>
#include <thread>
#include <utility>

#include "net/socket.h"

namespace recpriv::client {

Result<std::unique_ptr<TcpTransport>> TcpTransport::Connect(
    const std::string& host, uint16_t port, TcpTransportOptions options) {
  RECPRIV_ASSIGN_OR_RETURN(
      net::UniqueFd fd, net::ConnectTcp(host, port, options.connect_timeout_ms));
  net::LineChannelOptions channel_options;
  channel_options.max_line_bytes = options.max_line_bytes;
  channel_options.read_chunk_bytes = options.read_chunk_bytes;
  return std::unique_ptr<TcpTransport>(new TcpTransport(
      net::LineChannel(std::move(fd), channel_options), options));
}

std::string TcpTransport::WireBytes(const std::string& request_line) const {
  if (binary_) {
    return net::LineChannel::EncodeFrame(request_line, std::string_view());
  }
  return request_line + "\n";
}

Result<std::string> TcpTransport::RoundTrip(const std::string& request_line) {
  if (options_.fault_injector != nullptr) {
    switch (options_.fault_injector->SampleWrite()) {
      case net::FaultKind::kNone:
        break;
      case net::FaultKind::kDrop:
        // The bytes never leave; the socket dies. The server just sees a
        // clean close of an idle connection.
        channel_.Close();
        return Status::Unavailable("fault injection: request dropped");
      case net::FaultKind::kDisconnect:
        channel_.Close();
        return Status::Unavailable(
            "fault injection: connection closed before the request");
      case net::FaultKind::kTruncate: {
        // Half the wire bytes, then close: the server's mid-line (or
        // mid-frame) EOF path. Best-effort write — the point is the
        // dangling prefix.
        const std::string data = WireBytes(request_line);
        (void)channel_.WriteRaw(data.data(), data.size() / 2,
                                options_.write_timeout_ms);
        channel_.Close();
        return Status::Unavailable(
            "fault injection: request truncated mid-line");
      }
      case net::FaultKind::kShortWrite: {
        // The full unit still arrives, but split into two raw sends with a
        // pause in between — the server's framing must reassemble it.
        const std::string data = WireBytes(request_line);
        const size_t head = data.size() / 2;
        RECPRIV_RETURN_NOT_OK(
            channel_.WriteRaw(data.data(), head, options_.write_timeout_ms));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        RECPRIV_RETURN_NOT_OK(channel_.WriteRaw(
            data.data() + head, data.size() - head, options_.write_timeout_ms));
        return ReadResponse();
      }
      case net::FaultKind::kDelay:
        std::this_thread::sleep_for(std::chrono::milliseconds(
            options_.fault_injector->options().delay_ms));
        break;
    }
  }
  if (binary_) {
    RECPRIV_RETURN_NOT_OK(channel_.WriteFrame(
        request_line, std::string_view(), options_.write_timeout_ms));
  } else {
    RECPRIV_RETURN_NOT_OK(
        channel_.WriteLine(request_line, options_.write_timeout_ms));
  }
  return ReadResponse();
}

Result<net::ReadResult> TcpTransport::ReadUnit(int timeout_ms) {
  attachment_.clear();
  if (!binary_) return channel_.ReadLine(timeout_ms);
  RECPRIV_ASSIGN_OR_RETURN(net::FrameResult frame,
                           channel_.ReadFrame(timeout_ms));
  attachment_ = std::move(frame.attachment);
  return net::ReadResult{frame.event, std::move(frame.payload)};
}

Result<std::string> TcpTransport::ReadResponse() {
  RECPRIV_ASSIGN_OR_RETURN(net::ReadResult read,
                           ReadUnit(options_.response_timeout_ms));
  switch (read.event) {
    case net::ReadEvent::kLine:
      return std::move(read.line);
    case net::ReadEvent::kEof:
      return Status::IOError("tcp transport: server closed the connection");
    case net::ReadEvent::kTimeout:
      return Status::IOError("tcp transport: no response within " +
                             std::to_string(options_.response_timeout_ms) +
                             " ms");
    case net::ReadEvent::kOversized:
      return Status::IOError("tcp transport: response line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes");
  }
  return Status::Internal("tcp transport: unreachable read event");
}

Result<std::optional<std::string>> TcpTransport::ReadPushedLine(
    int timeout_ms) {
  RECPRIV_ASSIGN_OR_RETURN(net::ReadResult read, ReadUnit(timeout_ms));
  switch (read.event) {
    case net::ReadEvent::kLine:
      return std::optional<std::string>(std::move(read.line));
    case net::ReadEvent::kTimeout:
      return std::optional<std::string>();
    case net::ReadEvent::kEof:
      return Status::IOError("tcp transport: server closed the connection");
    case net::ReadEvent::kOversized:
      return Status::IOError("tcp transport: pushed line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes");
  }
  return Status::Internal("tcp transport: unreachable read event");
}

Result<std::unique_ptr<LineProtocolClient>> ConnectTcp(
    const std::string& host, uint16_t port, TcpTransportOptions options) {
  RECPRIV_ASSIGN_OR_RETURN(std::unique_ptr<TcpTransport> transport,
                           TcpTransport::Connect(host, port, options));
  return std::make_unique<LineProtocolClient>(std::move(transport));
}

}  // namespace recpriv::client
