// TcpTransport: the socket-backed LineTransport for LineProtocolClient —
// the third way to run the same typed client, after in-process loopback and
// stdio pipes. Connect() dials a serve/server.h front end (or anything that
// speaks the wire protocol over line-framed TCP) and every RoundTrip is one
// request line out, one response line back, with connect/read/write
// timeouts so a dead server surfaces as a Status instead of a hang.
//
// Like every LineTransport, one TcpTransport carries one session and is not
// thread-safe; concurrent clients each dial their own connection (that is
// the unit of server-side admission and fairness too).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "client/line_protocol_client.h"
#include "common/result.h"
#include "net/fault_injector.h"
#include "net/line_channel.h"

namespace recpriv::client {

struct TcpTransportOptions {
  int connect_timeout_ms = 5000;
  int response_timeout_ms = 60000;  ///< wait for the server's reply line
  int write_timeout_ms = 5000;
  size_t max_line_bytes = 1 << 20;  ///< longest accepted response line
  /// recv() granularity. The default suits request/response chatter; bulk
  /// consumers (snapshot replication) raise it so a multi-megabyte response
  /// line is not assembled from thousands of page-sized reads.
  size_t read_chunk_bytes = 4096;
  /// When set, each request write draws from the seeded fault schedule and
  /// the fault is applied at the byte level: drops and disconnects really
  /// close the socket, truncation sends half a line then closes (the
  /// server's mid-line-EOF path), short writes split the line into two raw
  /// sends. Faulted requests surface as UNAVAILABLE; the retry layer
  /// (client/retry.h) reconnects. Tests and `recpriv_workload --faults`
  /// set this; production leaves it null.
  std::shared_ptr<net::FaultInjector> fault_injector;
};

class TcpTransport : public LineTransport {
 public:
  static Result<std::unique_ptr<TcpTransport>> Connect(
      const std::string& host, uint16_t port, TcpTransportOptions options = {});

  Result<std::string> RoundTrip(const std::string& request_line) override;
  /// Pushed epoch events ride the same connection; a timeout is a normal
  /// "nothing arrived" (nullopt), EOF/oversized are IO errors like any
  /// other dead-transport condition.
  Result<std::optional<std::string>> ReadPushedLine(int timeout_ms) override;

  /// Binary framing (net/line_channel.h frames; negotiated by the wire
  /// "hello" op — LineProtocolClient::NegotiateBinaryFrame drives this).
  /// In binary mode every request/response/push is one frame; fault
  /// injection applies to the framed byte stream the same way it applies
  /// to lines.
  bool SupportsBinaryFrame() const override { return true; }
  Status SetBinaryFrame(bool binary) override {
    binary_ = binary;
    return Status::OK();
  }
  const std::string* LastAttachment() const override {
    return attachment_.empty() ? nullptr : &attachment_;
  }

 private:
  TcpTransport(net::LineChannel channel, TcpTransportOptions options)
      : channel_(std::move(channel)), options_(options) {}

  /// The request line in its on-the-wire encoding: "line\n", or one
  /// kFrameJson frame in binary mode.
  std::string WireBytes(const std::string& request_line) const;
  /// The read half of a round trip (shared by the normal and the
  /// short-write paths).
  Result<std::string> ReadResponse();
  /// One inbound unit (line or frame) in the current framing; stores a
  /// type-2 frame's attachment in attachment_.
  Result<net::ReadResult> ReadUnit(int timeout_ms);

  net::LineChannel channel_;
  TcpTransportOptions options_;
  bool binary_ = false;
  std::string attachment_;  ///< raw bytes of the last type-2 frame read
};

/// Convenience: a LineProtocolClient over a fresh TCP connection.
Result<std::unique_ptr<LineProtocolClient>> ConnectTcp(
    const std::string& host, uint16_t port, TcpTransportOptions options = {});

}  // namespace recpriv::client
