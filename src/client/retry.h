// RetryingClient: bounded, seeded retry/backoff around any Client factory.
//
// The serving stack's error taxonomy (client/api.h) splits cleanly into
// answer-bearing codes — the server looked at the request and ruled on it
// (NOT_FOUND, INVALID_ARGUMENT, FAILED_PRECONDITION, ...) — and transient
// codes where retrying later may legitimately succeed:
//
//  * UNAVAILABLE          — admission rejection, server draining, or an
//                           injected transport fault; the connection is
//                           often dead, so the client must be rebuilt.
//  * RESOURCE_EXHAUSTED   — a per-tenant quota rejection (serve/admission.h);
//                           the connection is fine, the bucket just needs
//                           time to refill. Backoff, same client.
//  * IO errors            — TcpTransport maps EOF / response timeouts /
//                           oversized lines to kIOError; the transport is
//                           unusable and must be rebuilt.
//
// DEADLINE_EXCEEDED is deliberately NOT retryable: the caller's budget is
// already spent, and retrying a dead deadline can never succeed.
//
// Backoff is exponential with seeded multiplicative jitter
// (common/random.h), so a workload run with --faults retries on a
// reproducible schedule. A RetryingClient owns one inner Client at a time
// and, like every session object in this codebase, is not thread-safe —
// one per session/thread.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/api.h"
#include "client/client.h"
#include "common/random.h"
#include "common/result.h"

namespace recpriv::client {

struct RetryPolicy {
  int max_retries = 3;          ///< retries after the first attempt
  int initial_backoff_ms = 10;  ///< first retry's base delay
  double multiplier = 2.0;      ///< backoff growth per attempt
  int max_backoff_ms = 1000;    ///< cap on the base delay
  uint64_t jitter_seed = 2015;  ///< seeds the jitter stream (paper year)
};

/// True for the codes worth retrying (see the header comment for why).
bool IsRetryableCode(ErrorCode code);

/// The jittered backoff delay (ms) before 0-based retry `attempt`: base =
/// initial_backoff_ms * multiplier^attempt capped at max_backoff_ms, then
/// multiplicative jitter in [0.5, 1.0) drawn from `jitter`. Exposed so the
/// replication follower's reconnect loop (repl/replicator.h) paces
/// failures on exactly the RetryingClient schedule.
double BackoffDelayMs(const RetryPolicy& policy, int attempt, Rng& jitter);

/// Counters a RetryingClient accumulates across its lifetime.
struct RetryStats {
  uint64_t attempts = 0;     ///< total attempts, including first tries
  uint64_t retries = 0;      ///< attempts beyond the first for some request
  uint64_t retried_ok = 0;   ///< requests that failed then succeeded
  uint64_t reconnects = 0;   ///< inner clients rebuilt after a dead transport
  uint64_t exhausted = 0;    ///< requests that failed even after max_retries
};

/// Wraps a Client factory with the retry policy. The factory is invoked
/// once up front and again whenever a retryable failure indicates a dead
/// transport (UNAVAILABLE / IO error); a quota rejection keeps the
/// existing connection and only backs off.
class RetryingClient : public Client {
 public:
  using Factory = std::function<Result<std::unique_ptr<Client>>()>;

  /// Builds the first inner client eagerly so connection errors surface at
  /// construction, not on the first request.
  static Result<std::unique_ptr<RetryingClient>> Create(
      Factory factory, RetryPolicy policy = {});

  Result<std::vector<ReleaseDescriptor>> List() override;
  Result<BatchAnswer> Query(const QueryRequest& request) override;
  Result<ReleaseSchema> GetSchema(
      const std::string& release,
      std::optional<uint64_t> epoch = std::nullopt) override;
  Result<ServerStats> Stats() override;
  Result<ReleaseDescriptor> Publish(const std::string& name,
                                    const std::string& basename) override;
  Result<ReleaseDescriptor> Drop(const std::string& name) override;

  const RetryStats& retry_stats() const { return stats_; }

 private:
  RetryingClient(Factory factory, RetryPolicy policy,
                 std::unique_ptr<Client> inner)
      : factory_(std::move(factory)),
        policy_(policy),
        jitter_(policy.jitter_seed),
        inner_(std::move(inner)) {}

  /// Runs `op` against the inner client under the retry policy.
  template <typename T>
  Result<T> RunWithRetry(const std::function<Result<T>(Client&)>& op);

  /// Sleeps the jittered backoff for `attempt` (0-based retry index).
  void Backoff(int attempt);

  Factory factory_;
  RetryPolicy policy_;
  Rng jitter_;
  std::unique_ptr<Client> inner_;
  RetryStats stats_;
};

}  // namespace recpriv::client
