// recpriv::client::Client — the one interface every consumer programs
// against, embedded or remote.
//
// Two backends implement it:
//
//  * InProcessClient (client/in_process_client.h): wraps a ReleaseStore +
//    QueryEngine directly; zero serialization, for tools and tests that
//    host the store themselves.
//  * LineProtocolClient (client/line_protocol_client.h): speaks wire
//    protocol v2 (serve/wire.h) over a line transport — e.g. the
//    stdin/stdout of a recpriv_serve process.
//
// Both return the same typed structs (client/api.h) and the same Status
// taxonomy for the same failure, so a program can switch backends without
// changing a line of analysis code. All methods are synchronous; a Client
// is not required to be thread-safe (share one per thread, or the
// in-process backend's engine underneath).

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "client/api.h"
#include "common/result.h"

namespace recpriv::client {

/// Abstract serving-layer client; see the backend headers for semantics
/// specific to each access path.
class Client {
 public:
  virtual ~Client() = default;

  /// Metadata of every published release, name-sorted.
  virtual Result<std::vector<ReleaseDescriptor>> List() = 0;

  /// Answers a count-query batch. With request.epoch set, answers from
  /// that retained snapshot (kStaleEpoch / FailedPrecondition when the
  /// epoch has aged out of the retention window).
  virtual Result<BatchAnswer> Query(const QueryRequest& request) = 0;

  /// A release's attribute names and domain values — enough to build
  /// QuerySpecs with no out-of-band knowledge. Pin `epoch` to describe a
  /// retained snapshot instead of the current one.
  virtual Result<ReleaseSchema> GetSchema(
      const std::string& release,
      std::optional<uint64_t> epoch = std::nullopt) = 0;

  /// Engine-wide cache/thread counters plus per-release serving metadata.
  virtual Result<ServerStats> Stats() = 0;

  /// Publishes the release bundle at `basename` (BASENAME.csv +
  /// BASENAME.manifest.json, written by recpriv_publish --manifest) under
  /// `name`. The path resolves on the serving side: in-process that is the
  /// calling process, over the wire it is the server's filesystem.
  virtual Result<ReleaseDescriptor> Publish(const std::string& name,
                                            const std::string& basename) = 0;

  /// Retires `name` entirely (all retained epochs). Epoch numbering
  /// continues if the name is later republished, so pinned clients can
  /// never silently read a different release under a reused epoch.
  virtual Result<ReleaseDescriptor> Drop(const std::string& name) = 0;
};

}  // namespace recpriv::client
