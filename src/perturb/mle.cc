#include "perturb/mle.h"

#include "perturb/perturbation_matrix.h"

namespace recpriv::perturb {

double MleFrequency(const UniformPerturbation& up, uint64_t observed_count,
                    uint64_t subset_size) {
  if (subset_size == 0) return 0.0;
  const double observed_freq = static_cast<double>(observed_count) /
                               static_cast<double>(subset_size);
  return (observed_freq -
          (1.0 - up.retention_p) / static_cast<double>(up.domain_m)) /
         up.retention_p;
}

Result<std::vector<double>> MleFrequencies(const UniformPerturbation& up,
                                           const std::vector<uint64_t>& observed,
                                           uint64_t subset_size) {
  RECPRIV_RETURN_NOT_OK(up.Validate());
  if (observed.size() != up.domain_m) {
    return Status::InvalidArgument("observed vector length must equal m");
  }
  std::vector<double> est(observed.size());
  for (size_t i = 0; i < observed.size(); ++i) {
    est[i] = MleFrequency(up, observed[i], subset_size);
  }
  return est;
}

Result<std::vector<double>> MleFrequenciesViaMatrix(
    const UniformPerturbation& up, const std::vector<uint64_t>& observed,
    uint64_t subset_size) {
  RECPRIV_RETURN_NOT_OK(up.Validate());
  if (observed.size() != up.domain_m) {
    return Status::InvalidArgument("observed vector length must equal m");
  }
  if (subset_size == 0) {
    return std::vector<double>(observed.size(), 0.0);
  }
  RECPRIV_ASSIGN_OR_RETURN(
      Matrix inv, MakeUniformPerturbationInverse(up.domain_m, up.retention_p));
  std::vector<double> observed_freq(observed.size());
  for (size_t i = 0; i < observed.size(); ++i) {
    observed_freq[i] = static_cast<double>(observed[i]) /
                       static_cast<double>(subset_size);
  }
  return inv.Apply(observed_freq);
}

double MleCount(const UniformPerturbation& up, uint64_t observed_count,
                uint64_t subset_size) {
  return static_cast<double>(subset_size) *
         MleFrequency(up, observed_count, subset_size);
}

}  // namespace recpriv::perturb
