#include "perturb/matrix_perturbation.h"

#include <cmath>
#include <limits>

namespace recpriv::perturb {

Result<MatrixPerturbation> MatrixPerturbation::Make(Matrix p) {
  const size_t m = p.size();
  if (m < 2) {
    return Status::InvalidArgument("perturbation domain must have m >= 2");
  }
  for (size_t i = 0; i < m; ++i) {
    double column_sum = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (p.at(j, i) < 0.0) {
        return Status::InvalidArgument("matrix entries must be >= 0");
      }
      column_sum += p.at(j, i);
    }
    if (std::abs(column_sum - 1.0) > 1e-9) {
      return Status::InvalidArgument(
          "column " + std::to_string(i) + " sums to " +
          std::to_string(column_sum) + ", expected 1");
    }
  }
  RECPRIV_ASSIGN_OR_RETURN(Matrix inv, p.Inverse());
  std::vector<AliasSampler> columns;
  columns.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> column(m);
    for (size_t j = 0; j < m; ++j) column[j] = p.at(j, i);
    columns.emplace_back(column);
  }
  return MatrixPerturbation(std::move(p), std::move(inv), std::move(columns));
}

Result<MatrixPerturbation> MatrixPerturbation::Uniform(size_t m,
                                                       double retention_p) {
  RECPRIV_ASSIGN_OR_RETURN(Matrix p,
                           MakeUniformPerturbationMatrix(m, retention_p));
  return Make(std::move(p));
}

double MatrixPerturbation::AmplificationGamma() const {
  const size_t m = matrix_.size();
  double gamma = 1.0;
  for (size_t w = 0; w < m; ++w) {
    double row_min = std::numeric_limits<double>::infinity();
    double row_max = 0.0;
    for (size_t u = 0; u < m; ++u) {
      row_min = std::min(row_min, matrix_.at(w, u));
      row_max = std::max(row_max, matrix_.at(w, u));
    }
    if (row_min == 0.0 && row_max > 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    if (row_min > 0.0) gamma = std::max(gamma, row_max / row_min);
  }
  return gamma;
}

uint32_t MatrixPerturbation::PerturbValue(uint32_t sa_code, Rng& rng) const {
  RECPRIV_DCHECK(sa_code < column_samplers_.size());
  return static_cast<uint32_t>(column_samplers_[sa_code].Sample(rng));
}

Result<std::vector<uint64_t>> MatrixPerturbation::PerturbCounts(
    const std::vector<uint64_t>& counts, Rng& rng) const {
  if (counts.size() != matrix_.size()) {
    return Status::InvalidArgument("counts length must equal domain size");
  }
  std::vector<uint64_t> observed(matrix_.size(), 0);
  for (size_t i = 0; i < counts.size(); ++i) {
    // Multinomial over column i by iterated binomial splitting on the
    // column's probabilities (exact, O(m) per input value).
    uint64_t remaining = counts[i];
    double prob_left = 1.0;
    for (size_t j = 0; j + 1 < matrix_.size() && remaining > 0; ++j) {
      const double pj = matrix_.at(j, i);
      if (pj <= 0.0) continue;
      const double conditional = std::min(1.0, pj / prob_left);
      uint64_t x = SampleBinomial(rng, remaining, conditional);
      observed[j] += x;
      remaining -= x;
      prob_left -= pj;
      if (prob_left <= 1e-15) break;
    }
    observed[matrix_.size() - 1] += remaining;
  }
  return observed;
}

Result<std::vector<double>> MatrixPerturbation::Reconstruct(
    const std::vector<uint64_t>& observed, uint64_t subset_size) const {
  if (observed.size() != matrix_.size()) {
    return Status::InvalidArgument("observed length must equal domain size");
  }
  if (subset_size == 0) {
    return std::vector<double>(observed.size(), 0.0);
  }
  std::vector<double> observed_freq(observed.size());
  for (size_t i = 0; i < observed.size(); ++i) {
    observed_freq[i] = static_cast<double>(observed[i]) /
                       static_cast<double>(subset_size);
  }
  return inverse_.Apply(observed_freq);
}

std::vector<double> MatrixPerturbation::ExpectedObserved(
    const std::vector<double>& frequencies, uint64_t subset_size) const {
  std::vector<double> expected = matrix_.Apply(frequencies);
  for (double& v : expected) v *= static_cast<double>(subset_size);
  return expected;
}

}  // namespace recpriv::perturb
