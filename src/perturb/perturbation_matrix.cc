#include "perturb/perturbation_matrix.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace recpriv::perturb {

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  RECPRIV_CHECK(v.size() == n_) << "matrix-vector size mismatch";
  std::vector<double> out(n_, 0.0);
  for (size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < n_; ++c) acc += at(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Result<Matrix> Matrix::Inverse() const {
  if (n_ == 0) return Status::InvalidArgument("cannot invert empty matrix");
  // Augmented Gauss-Jordan with partial pivoting.
  Matrix a = *this;
  Matrix inv(n_);
  for (size_t i = 0; i < n_; ++i) inv.at(i, i) = 1.0;

  for (size_t col = 0; col < n_; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n_; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-12) {
      return Status::InvalidArgument("matrix is singular");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n_; ++c) {
        std::swap(a.at(pivot, c), a.at(col, c));
        std::swap(inv.at(pivot, c), inv.at(col, c));
      }
    }
    const double d = a.at(col, col);
    for (size_t c = 0; c < n_; ++c) {
      a.at(col, c) /= d;
      inv.at(col, c) /= d;
    }
    for (size_t r = 0; r < n_; ++r) {
      if (r == col) continue;
      const double factor = a.at(r, col);
      if (factor == 0.0) continue;
      for (size_t c = 0; c < n_; ++c) {
        a.at(r, c) -= factor * a.at(col, c);
        inv.at(r, c) -= factor * inv.at(col, c);
      }
    }
  }
  return inv;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  RECPRIV_CHECK(n_ == other.n_);
  double max_diff = 0.0;
  for (size_t i = 0; i < n_ * n_; ++i) {
    max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

Result<Matrix> MakeUniformPerturbationMatrix(size_t m, double p) {
  if (m < 2) return Status::InvalidArgument("SA domain size m must be >= 2");
  if (p <= 0.0 || p >= 1.0) {
    return Status::InvalidArgument("retention probability must be in (0,1)");
  }
  const double off = (1.0 - p) / static_cast<double>(m);
  Matrix mat(m, off);
  for (size_t i = 0; i < m; ++i) mat.at(i, i) = p + off;
  return mat;
}

Result<Matrix> MakeUniformPerturbationInverse(size_t m, double p) {
  if (m < 2) return Status::InvalidArgument("SA domain size m must be >= 2");
  if (p <= 0.0 || p >= 1.0) {
    return Status::InvalidArgument("retention probability must be in (0,1)");
  }
  const double off = -(1.0 - p) / (p * static_cast<double>(m));
  Matrix mat(m, off);
  for (size_t i = 0; i < m; ++i) mat.at(i, i) = 1.0 / p + off;
  return mat;
}

}  // namespace recpriv::perturb
