// Uniform perturbation (UP) of the sensitive attribute (paper §3.1).
//
// Per record: with probability p keep the SA value; otherwise replace it by
// a value drawn uniformly from the m-value SA domain (the replacement may
// equal the original, matching Eq. (3)).
//
// Two equivalent execution paths are provided:
//  * record level — rewrites the SA column of a Table (what a publisher
//    would actually release);
//  * count level — transforms a group's SA count vector directly using
//    binomial retention + uniform multinomial redistribution. This is the
//    fast path used by the experiment sweeps; tests verify the two paths
//    produce identically-distributed outputs.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "table/table.h"

namespace recpriv::perturb {

/// Parameters of the uniform perturbation operator.
struct UniformPerturbation {
  double retention_p;  ///< p in (0,1)
  size_t domain_m;     ///< m = |SA| (>= 2 per paper §3.1)

  Status Validate() const;
};

/// Perturbs a single SA code.
uint32_t PerturbValue(const UniformPerturbation& up, uint32_t sa_code,
                      Rng& rng);

/// Record-level UP: returns a copy of `t` with the SA column perturbed.
/// The operator's domain_m must equal the table's SA domain size.
Result<recpriv::table::Table> PerturbTable(const UniformPerturbation& up,
                                           const recpriv::table::Table& t,
                                           Rng& rng);

/// In-place record-level UP over a raw SA code column.
Status PerturbColumn(const UniformPerturbation& up,
                     std::vector<uint32_t>& sa_column, Rng& rng);

/// Count-level UP: given true per-SA-value counts of a record set, samples
/// the observed (perturbed) counts O*. Equivalent in distribution to
/// perturbing each record and recounting. Takes a span so FlatGroupIndex
/// histogram rows feed it without a copy (vectors convert implicitly).
Result<std::vector<uint64_t>> PerturbCounts(const UniformPerturbation& up,
                                            std::span<const uint64_t> counts,
                                            Rng& rng);

/// Distributes `n` balls uniformly over `m` cells (multinomial with equal
/// probabilities) by iterated binomial splitting; O(m) time.
std::vector<uint64_t> UniformMultinomial(uint64_t n, size_t m, Rng& rng);

}  // namespace recpriv::perturb
