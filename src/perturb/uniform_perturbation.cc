#include "perturb/uniform_perturbation.h"

namespace recpriv::perturb {

using recpriv::table::Table;

Status UniformPerturbation::Validate() const {
  if (retention_p <= 0.0 || retention_p >= 1.0) {
    return Status::InvalidArgument("retention probability must be in (0,1)");
  }
  if (domain_m < 2) {
    return Status::InvalidArgument("SA domain size m must be >= 2");
  }
  return Status::OK();
}

uint32_t PerturbValue(const UniformPerturbation& up, uint32_t sa_code,
                      Rng& rng) {
  if (rng.NextBernoulli(up.retention_p)) return sa_code;
  return static_cast<uint32_t>(rng.NextUint64(up.domain_m));
}

Result<Table> PerturbTable(const UniformPerturbation& up, const Table& t,
                           Rng& rng) {
  RECPRIV_RETURN_NOT_OK(up.Validate());
  if (up.domain_m != t.schema()->sa_domain_size()) {
    return Status::InvalidArgument(
        "perturbation domain_m does not match table SA domain");
  }
  Table out = t.Clone();
  RECPRIV_RETURN_NOT_OK(PerturbColumn(
      up, out.mutable_column(t.schema()->sensitive_index()), rng));
  return out;
}

Status PerturbColumn(const UniformPerturbation& up,
                     std::vector<uint32_t>& sa_column, Rng& rng) {
  RECPRIV_RETURN_NOT_OK(up.Validate());
  for (uint32_t& code : sa_column) code = PerturbValue(up, code, rng);
  return Status::OK();
}

std::vector<uint64_t> UniformMultinomial(uint64_t n, size_t m, Rng& rng) {
  std::vector<uint64_t> out(m, 0);
  uint64_t remaining = n;
  for (size_t j = 0; j + 1 < m; ++j) {
    if (remaining == 0) break;
    // Conditional on what is left, cell j gets Binomial(remaining, 1/(m-j)).
    uint64_t x = SampleBinomial(rng, remaining,
                                1.0 / static_cast<double>(m - j));
    out[j] = x;
    remaining -= x;
  }
  out[m - 1] += remaining;
  return out;
}

Result<std::vector<uint64_t>> PerturbCounts(const UniformPerturbation& up,
                                            std::span<const uint64_t> counts,
                                            Rng& rng) {
  RECPRIV_RETURN_NOT_OK(up.Validate());
  if (counts.size() != up.domain_m) {
    return Status::InvalidArgument("counts vector length must equal m");
  }
  std::vector<uint64_t> observed(up.domain_m, 0);
  uint64_t perturbed_total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    // Retained records keep value i; the rest are redistributed uniformly.
    uint64_t retained = SampleBinomial(rng, counts[i], up.retention_p);
    observed[i] += retained;
    perturbed_total += counts[i] - retained;
  }
  std::vector<uint64_t> redistributed =
      UniformMultinomial(perturbed_total, up.domain_m, rng);
  for (size_t i = 0; i < observed.size(); ++i) observed[i] += redistributed[i];
  return observed;
}

}  // namespace recpriv::perturb
