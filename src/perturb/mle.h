// Maximum-likelihood reconstruction of SA frequencies from perturbed data
// (paper §4.1, Theorem 1 and Lemma 2).
//
// Given observed counts O* over a record subset S* of size |S|:
//
//   F'  =  ( O*/|S| - (1-p)/m ) / p                (Lemma 2(ii), per value)
//
// which equals P^{-1} (O*/|S|) for the uniform perturbation matrix; both
// computations are provided and tested for equality. E[F'] = f: the
// estimator is unbiased (Lemma 2(iii)).

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "perturb/uniform_perturbation.h"

namespace recpriv::perturb {

/// MLE of all SA frequencies from the observed counts of a subset S*.
/// `observed.size()` must equal up.domain_m and sum to |S*| = subset_size.
/// Estimates are NOT clamped to [0,1]: small groups can reconstruct outside
/// the simplex, exactly the inaccuracy the privacy criterion exploits.
Result<std::vector<double>> MleFrequencies(const UniformPerturbation& up,
                                           const std::vector<uint64_t>& observed,
                                           uint64_t subset_size);

/// MLE of one value's frequency: F' = (O*/|S| - (1-p)/m) / p.
double MleFrequency(const UniformPerturbation& up, uint64_t observed_count,
                    uint64_t subset_size);

/// Matrix form of the same estimate: P^{-1} (O*/|S|) (Theorem 1). Slower;
/// kept for cross-validation and for non-uniform perturbation operators.
Result<std::vector<double>> MleFrequenciesViaMatrix(
    const UniformPerturbation& up, const std::vector<uint64_t>& observed,
    uint64_t subset_size);

/// Estimated count of a value in the subset: est = |S| * F' (paper §6.1).
double MleCount(const UniformPerturbation& up, uint64_t observed_count,
                uint64_t subset_size);

}  // namespace recpriv::perturb
