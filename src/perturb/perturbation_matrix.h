// The uniform-perturbation matrix P of Eq. (3) and its inverse.
//
//   P[j][i] = p + (1-p)/m   if j == i   (retain sa_i)
//   P[j][i] = (1-p)/m       if j != i   (perturb sa_i to sa_j)
//
// P = p I + c J with c = (1-p)/m and J the all-ones matrix, so the inverse
// has the closed form P^{-1} = (1/p) I - ((1-p)/(p m)) J. A generic
// Gauss-Jordan inverse is also provided (and cross-checked in tests) so the
// module can serve arbitrary perturbation operators, not just uniform.

#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace recpriv::perturb {

/// Dense row-major square matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t n, double fill = 0.0) : n_(n), data_(n * n, fill) {}

  size_t size() const { return n_; }
  double& at(size_t r, size_t c) { return data_[r * n_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * n_ + c]; }

  /// Matrix-vector product; v.size() must equal size().
  std::vector<double> Apply(const std::vector<double>& v) const;

  /// Gauss-Jordan inverse with partial pivoting; errors when singular.
  Result<Matrix> Inverse() const;

  /// Max-abs elementwise difference against `other` (test helper).
  double MaxAbsDiff(const Matrix& other) const;

 private:
  size_t n_ = 0;
  std::vector<double> data_;
};

/// Builds the m x m uniform perturbation matrix of Eq. (3).
/// Requires m >= 2 and p in (0, 1).
Result<Matrix> MakeUniformPerturbationMatrix(size_t m, double p);

/// Closed-form inverse (1/p) I - ((1-p)/(p m)) J of the Eq. (3) matrix.
Result<Matrix> MakeUniformPerturbationInverse(size_t m, double p);

}  // namespace recpriv::perturb
