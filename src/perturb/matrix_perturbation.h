// General matrix perturbation operator: the paper's framework (§3.1, §4.1)
// is stated for the uniform matrix of Eq. (3), but Theorem 1's MLE
// construction P^{-1} (O*/|S|) works for ANY invertible column-stochastic
// perturbation matrix. This module implements that general operator —
// useful for non-uniform retention schemes (e.g. retain-with-bias, small
// domain randomization [22]) — with the uniform operator as a special case
// that is cross-checked in tests.

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "perturb/perturbation_matrix.h"

namespace recpriv::perturb {

/// A randomization operator over an m-value domain defined by an
/// invertible column-stochastic matrix P: P[j][i] = Pr[output j | input i].
class MatrixPerturbation {
 public:
  /// Validates P (square, entries >= 0, columns sum to 1, invertible) and
  /// precomputes P^{-1} and per-column samplers.
  static Result<MatrixPerturbation> Make(Matrix p);

  /// The Eq. (3) uniform operator as a MatrixPerturbation.
  static Result<MatrixPerturbation> Uniform(size_t m, double retention_p);

  size_t domain_size() const { return matrix_.size(); }
  const Matrix& matrix() const { return matrix_; }
  const Matrix& inverse() const { return inverse_; }

  /// Gamma = max over outputs w and input pairs (u, v) of
  /// P[w|u] / P[w|v] — the amplification factor of Evfimievski et al. [6],
  /// used by the rho1-rho2 privacy check (core/rho_privacy.h).
  /// Returns +infinity when some transition probability is zero while
  /// another in the same row is positive.
  double AmplificationGamma() const;

  /// Perturbs one value: samples from column `sa_code` of P.
  uint32_t PerturbValue(uint32_t sa_code, Rng& rng) const;

  /// Count-level perturbation: for each input value i with counts[i]
  /// records, distributes them over outputs according to column i.
  Result<std::vector<uint64_t>> PerturbCounts(
      const std::vector<uint64_t>& counts, Rng& rng) const;

  /// MLE reconstruction F' = P^{-1} (O*/|S|) (Theorem 1). Unbiased for any
  /// invertible P. Returns zeros when subset_size == 0.
  Result<std::vector<double>> Reconstruct(const std::vector<uint64_t>& observed,
                                          uint64_t subset_size) const;

  /// E[O*] = |S| * P * f for a subset with frequency vector f.
  std::vector<double> ExpectedObserved(const std::vector<double>& frequencies,
                                       uint64_t subset_size) const;

 private:
  MatrixPerturbation(Matrix p, Matrix inv, std::vector<AliasSampler> columns)
      : matrix_(std::move(p)),
        inverse_(std::move(inv)),
        column_samplers_(std::move(columns)) {}

  Matrix matrix_;
  Matrix inverse_;
  std::vector<AliasSampler> column_samplers_;
};

}  // namespace recpriv::perturb
