// Deterministic, seeded fault injection for the line transports.
//
// A FaultInjector is a thread-safe decision engine: each SampleWrite() draws
// from a seeded stream and returns the fault (if any) to apply to the next
// request write. The transports (client/tcp_transport.h for real sockets,
// client::FaultInjectingTransport for the in-process loopback) own the
// mechanics — dropping the line, closing the socket mid-line, splitting the
// write, delaying — so the injector itself stays transport-agnostic and the
// same seed reproduces the same fault schedule everywhere.
//
// Rates are independent probabilities evaluated in a fixed order (drop,
// disconnect, truncate, short-write, delay); at most one fault fires per
// write. Everything is counted, so tests and `recpriv_workload --faults`
// can assert that the schedule actually fired.

#pragma once

#include <cstdint>
#include <mutex>

#include "common/random.h"

namespace recpriv::net {

struct FaultOptions {
  uint64_t seed = 2015;        ///< fault schedule seed (reproducible)
  double drop_rate = 0.0;      ///< request never sent; connection dropped
  double disconnect_rate = 0.0;///< connection closed before the write
  double truncate_rate = 0.0;  ///< half the line sent, then disconnect
  double short_write_rate = 0.0;///< line sent in two raw chunks with a pause
  double delay_rate = 0.0;     ///< write delayed by delay_ms, then normal
  int delay_ms = 20;           ///< added latency when a delay fault fires
};

/// What to do to the next write. kNone means send normally.
enum class FaultKind {
  kNone = 0,
  kDrop,        ///< do not send; surface UNAVAILABLE to the caller
  kDisconnect,  ///< close the connection without sending
  kTruncate,    ///< send a prefix of the line, then close (mid-line EOF)
  kShortWrite,  ///< send the line in two raw chunks separated by a pause
  kDelay,       ///< sleep delay_ms, then send normally
};

/// Counters of faults actually applied, by kind.
struct FaultStats {
  uint64_t writes = 0;  ///< SampleWrite calls (faulted or not)
  uint64_t drops = 0;
  uint64_t disconnects = 0;
  uint64_t truncates = 0;
  uint64_t short_writes = 0;
  uint64_t delays = 0;

  uint64_t total() const {
    return drops + disconnects + truncates + short_writes + delays;
  }
};

/// Seeded fault scheduler shared by every connection of one run.
class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options)
      : options_(options), rng_(options.seed) {}

  /// Draws the fault for the next request write. Thread-safe; the draw
  /// order (and so the schedule) is the serialization order of calls.
  FaultKind SampleWrite();

  const FaultOptions& options() const { return options_; }
  FaultStats Stats() const;

 private:
  FaultOptions options_;
  mutable std::mutex mu_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace recpriv::net
