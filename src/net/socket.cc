#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace recpriv::net {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

/// Owning wrapper for a getaddrinfo result list.
struct AddrList {
  struct addrinfo* head = nullptr;
  ~AddrList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

/// Resolves host:port to a list of candidate addresses. Callers must try
/// bind/connect on EVERY candidate, not just the first whose socket()
/// opens: on a dual-stack host "localhost" may resolve to ::1 before
/// 127.0.0.1, and only one of them may actually work.
Status Resolve(const std::string& host, uint16_t port, bool for_bind,
               AddrList* out) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (for_bind) hints.ai_flags = AI_PASSIVE;

  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_str.c_str(), &hints, &out->head);
  if (rc != 0) {
    return Status::IOError("getaddrinfo('" + host + "', " + port_str +
                           "): " + gai_strerror(rc));
  }
  return Status::OK();
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)", errno);
  }
  return Status::OK();
}

/// poll() one fd for `events`, retrying on EINTR. Returns false on timeout.
Result<bool> PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return ErrnoStatus("poll", errno);
  }
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                int backlog) {
  AddrList addresses;
  RECPRIV_RETURN_NOT_OK(Resolve(host, port, /*for_bind=*/true, &addresses));

  UniqueFd fd;
  Status last = Status::IOError("no usable address for '" + host + "'");
  for (struct addrinfo* ai = addresses.head; ai != nullptr;
       ai = ai->ai_next) {
    UniqueFd candidate(
        ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    const int one = 1;
    if (::setsockopt(candidate.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one)) < 0) {
      last = ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
      continue;
    }
    if (::bind(candidate.get(), ai->ai_addr, ai->ai_addrlen) < 0) {
      last = ErrnoStatus(
          "bind('" + host + "', " + std::to_string(port) + ")", errno);
      continue;
    }
    if (::listen(candidate.get(), backlog) < 0) {
      last = ErrnoStatus("listen", errno);
      continue;
    }
    fd = std::move(candidate);
    break;
  }
  if (!fd.valid()) return last;

  // Accept() must be interruptible by Close() from another thread, which a
  // blocking accept(2) is not on all platforms — poll + non-blocking accept.
  RECPRIV_RETURN_NOT_OK(SetNonBlocking(fd.get()));

  // Read back the bound port (meaningful when the caller asked for port 0).
  struct sockaddr_storage bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  Listener listener;
  if (bound.ss_family == AF_INET) {
    listener.port_ =
        ntohs(reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
  } else if (bound.ss_family == AF_INET6) {
    listener.port_ =
        ntohs(reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
  }
  listener.fd_ = std::move(fd);
  return listener;
}

Result<AcceptResult> Listener::Accept(int timeout_ms) {
  if (!fd_.valid()) {
    return Status::FailedPrecondition("listener is closed");
  }
  RECPRIV_ASSIGN_OR_RETURN(bool ready, PollOne(fd_.get(), POLLIN, timeout_ms));
  AcceptResult result;
  if (!ready) {
    result.timed_out = true;
    return result;
  }
  for (;;) {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd >= 0) {
      result.fd = UniqueFd(fd);
      // Accepted sockets do not inherit O_NONBLOCK; the line channel polls
      // before every syscall, so keep the fd non-blocking to guarantee no
      // recv/send can stall past its poll.
      RECPRIV_RETURN_NOT_OK(SetNonBlocking(fd));
      // Request/response lines are tiny; without TCP_NODELAY every
      // round-trip would eat a Nagle delay.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return result;
    }
    if (errno == EINTR) continue;
    // The queued connection was reset by the peer before we accepted it
    // (port scanners do this constantly): try the next one.
    if (errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // The connection went away between poll and accept.
      result.timed_out = true;
      return result;
    }
    // Resource exhaustion (fd limits, memory) is transient: report it as a
    // quiet tick rather than an error, so a serving loop built on Accept
    // survives the spike instead of shutting down. accept(2) also surfaces
    // in-kernel network errors (ENETDOWN, EPROTO, ...) here on Linux; those
    // too must not kill the listener.
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM || errno == EPERM || errno == EPROTO ||
        errno == ENETDOWN || errno == ENOPROTOOPT || errno == EHOSTDOWN ||
        errno == ENONET || errno == EHOSTUNREACH || errno == EOPNOTSUPP ||
        errno == ENETUNREACH) {
      result.timed_out = true;
      return result;
    }
    return ErrnoStatus("accept", errno);
  }
}

namespace {

/// One non-blocking connect attempt against a single resolved address.
Result<UniqueFd> ConnectOne(const struct addrinfo& ai, const std::string& host,
                            uint16_t port, int timeout_ms) {
  UniqueFd fd(::socket(ai.ai_family, ai.ai_socktype, ai.ai_protocol));
  if (!fd.valid()) return ErrnoStatus("socket", errno);
  RECPRIV_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  if (::connect(fd.get(), ai.ai_addr, ai.ai_addrlen) < 0) {
    if (errno != EINPROGRESS) {
      return ErrnoStatus(
          "connect('" + host + "', " + std::to_string(port) + ")", errno);
    }
    RECPRIV_ASSIGN_OR_RETURN(bool ready,
                             PollOne(fd.get(), POLLOUT, timeout_ms));
    if (!ready) {
      return Status::IOError("connect('" + host + "', " +
                             std::to_string(port) + "): timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) {
      return ErrnoStatus(
          "connect('" + host + "', " + std::to_string(port) + ")", err);
    }
  }
  return fd;
}

}  // namespace

Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms) {
  AddrList addresses;
  RECPRIV_RETURN_NOT_OK(Resolve(host, port, /*for_bind=*/false, &addresses));

  // Try every resolved address (dual-stack: a server bound to 127.0.0.1
  // is unreachable via ::1 and vice versa). Each attempt gets the full
  // timeout; a refused connect fails in microseconds, so the fallback adds
  // latency only in the mixed up/down cases it exists for.
  Status last = Status::IOError("no usable address for '" + host + "'");
  for (struct addrinfo* ai = addresses.head; ai != nullptr;
       ai = ai->ai_next) {
    auto fd = ConnectOne(*ai, host, port, timeout_ms);
    if (fd.ok()) {
      const int one = 1;
      ::setsockopt(fd->get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    last = fd.status();
  }
  return last;
}

}  // namespace recpriv::net
