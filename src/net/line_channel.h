// Line framing over a connected socket: the transport unit of the wire
// protocol (one JSON object per '\n'-terminated line, serve/wire.h).
//
// The reader keeps a bounded buffer: a peer that streams an endless line
// can never grow server memory past `max_line_bytes` — the overlong line is
// drained (discarded to the next newline, without buffering) and reported
// as kOversized so the server can answer with a structured error and keep
// the session. Every read and write polls first, so a stalled peer costs at
// most the configured timeout, never a wedged thread.
//
// One channel is a single session's framing state; it is not thread-safe.

#pragma once

#include <cstddef>
#include <string>

#include "common/result.h"
#include "net/socket.h"

namespace recpriv::net {

struct LineChannelOptions {
  size_t max_line_bytes = 1 << 20;  ///< longest accepted line (sans '\n')
  size_t read_chunk_bytes = 4096;   ///< recv() granularity
};

/// What one ReadLine() call produced.
enum class ReadEvent {
  kLine,       ///< a complete line (in `line`, '\n' and any '\r' stripped)
  kEof,        ///< orderly close; no more lines will arrive
  kTimeout,    ///< no complete line within the timeout; buffered prefix kept
  kOversized,  ///< a line exceeded max_line_bytes and was discarded
};

struct ReadResult {
  ReadEvent event = ReadEvent::kEof;
  std::string line;  ///< valid iff event == kLine
};

/// Line-framed reader/writer over an owned connected socket.
class LineChannel {
 public:
  explicit LineChannel(UniqueFd fd, LineChannelOptions options = {})
      : fd_(std::move(fd)), options_(options) {}

  LineChannel(LineChannel&&) = default;
  LineChannel& operator=(LineChannel&&) = default;

  /// Reads until a full line is buffered or `timeout_ms` elapses (< 0 waits
  /// forever). Hard transport failures (reset, closed channel) are a
  /// Status; everything recoverable is a ReadEvent.
  Result<ReadResult> ReadLine(int timeout_ms);

  /// Writes `line` plus '\n', looping until every byte is out or
  /// `timeout_ms` elapses without progress (< 0 waits forever). A peer that
  /// stopped reading (full socket buffer past the timeout) is an error.
  Status WriteLine(const std::string& line, int timeout_ms);

  /// Writes exactly `n` bytes of `data` with no framing added. Fault
  /// injection (net/fault_injector.h) uses this to emit deliberately
  /// unterminated or split lines; normal traffic goes through WriteLine.
  Status WriteRaw(const char* data, size_t n, int timeout_ms);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// Closes the socket; subsequent reads/writes error.
  void Close() { fd_.Reset(); }

 private:
  UniqueFd fd_;
  LineChannelOptions options_;
  std::string buffer_;       ///< bytes received but not yet returned
  size_t scan_from_ = 0;     ///< buffer_ offset already scanned for '\n'
  bool discarding_ = false;  ///< inside an oversized line, dropping bytes
  bool saw_eof_ = false;
};

}  // namespace recpriv::net
