// Line framing over a connected socket: the transport unit of the wire
// protocol (one JSON object per '\n'-terminated line, serve/wire.h).
//
// The reader keeps a bounded buffer: a peer that streams an endless line
// can never grow server memory past `max_line_bytes` — the overlong line is
// drained (discarded to the next newline, without buffering) and reported
// as kOversized so the server can answer with a structured error and keep
// the session. Every read and write polls first, so a stalled peer costs at
// most the configured timeout, never a wedged thread.
//
// Binary framing: a session that negotiated protocol-level binary frames
// (the wire "hello" op, serve/wire.h) switches from ReadLine/WriteLine to
// ReadFrame/WriteFrame on the SAME channel — buffered bytes carry over, so
// the switch is seamless mid-stream. One frame is
//
//   [u32 LE payload_len][u8 type][payload_len bytes of payload]
//
// where type kFrameJson (1) carries one JSON text (exactly what the line
// framing would have carried, minus the '\n'), and kFrameJsonWithBytes (2)
// carries [u32 LE json_len][json][raw attachment bytes] so bulk payloads
// (snapshot chunks) skip base64 and JSON string escaping entirely. Frames
// respect the same `max_line_bytes` bound as lines: an oversized frame is
// drained by its declared length and reported as kOversized.
//
// One channel is a single session's framing state; it is not thread-safe.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "net/socket.h"

namespace recpriv::net {

/// Binary frame type tags (the u8 after the length prefix).
inline constexpr uint8_t kFrameJson = 1;           ///< payload is JSON text
inline constexpr uint8_t kFrameJsonWithBytes = 2;  ///< JSON + raw attachment
/// Bytes before the payload: u32 length + u8 type.
inline constexpr size_t kFrameHeaderBytes = 5;

struct LineChannelOptions {
  size_t max_line_bytes = 1 << 20;  ///< longest accepted line (sans '\n')
  size_t read_chunk_bytes = 4096;   ///< recv() granularity
};

/// What one ReadLine() call produced.
enum class ReadEvent {
  kLine,       ///< a complete line (in `line`, '\n' and any '\r' stripped)
  kEof,        ///< orderly close; no more lines will arrive
  kTimeout,    ///< no complete line within the timeout; buffered prefix kept
  kOversized,  ///< a line exceeded max_line_bytes and was discarded
};

struct ReadResult {
  ReadEvent event = ReadEvent::kEof;
  std::string line;  ///< valid iff event == kLine
};

/// What one ReadFrame() call produced. Reuses ReadEvent: kLine means "one
/// complete frame" here.
struct FrameResult {
  ReadEvent event = ReadEvent::kEof;
  uint8_t type = 0;        ///< kFrameJson / kFrameJsonWithBytes
  std::string payload;     ///< the JSON text (both frame types)
  std::string attachment;  ///< raw bytes; non-empty only for type 2
};

/// Line-framed reader/writer over an owned connected socket.
class LineChannel {
 public:
  explicit LineChannel(UniqueFd fd, LineChannelOptions options = {})
      : fd_(std::move(fd)), options_(options) {}

  LineChannel(LineChannel&&) = default;
  LineChannel& operator=(LineChannel&&) = default;

  /// Reads until a full line is buffered or `timeout_ms` elapses (< 0 waits
  /// forever). Hard transport failures (reset, closed channel) are a
  /// Status; everything recoverable is a ReadEvent.
  Result<ReadResult> ReadLine(int timeout_ms);

  /// Writes `line` plus '\n', looping until every byte is out or
  /// `timeout_ms` elapses without progress (< 0 waits forever). A peer that
  /// stopped reading (full socket buffer past the timeout) is an error.
  Status WriteLine(const std::string& line, int timeout_ms);

  /// Writes exactly `n` bytes of `data` with no framing added. Fault
  /// injection (net/fault_injector.h) uses this to emit deliberately
  /// unterminated or split lines; normal traffic goes through WriteLine.
  Status WriteRaw(const char* data, size_t n, int timeout_ms);

  // --- binary frames (negotiated sessions only) ----------------------------

  /// Reads one binary frame. Same timeout/ReadEvent contract as ReadLine;
  /// a frame whose declared payload exceeds max_line_bytes is drained by
  /// its length and reported kOversized. A peer that closes mid-frame is
  /// kEof (the partial frame is dropped — frames are all-or-nothing). A
  /// frame whose interior lengths are inconsistent is a hard Status: the
  /// stream can no longer be trusted to resynchronize.
  Result<FrameResult> ReadFrame(int timeout_ms);

  /// Writes one frame: type kFrameJson when `attachment` is empty, else
  /// kFrameJsonWithBytes carrying the raw attachment after the JSON.
  Status WriteFrame(std::string_view json, std::string_view attachment,
                    int timeout_ms);

  /// The exact bytes WriteFrame would send, for callers that need to apply
  /// byte-level transforms (fault injection) before writing.
  static std::string EncodeFrame(std::string_view json,
                                 std::string_view attachment);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  /// Closes the socket; subsequent reads/writes error.
  void Close() { fd_.Reset(); }

 private:
  UniqueFd fd_;
  LineChannelOptions options_;
  std::string buffer_;       ///< bytes received but not yet returned
  size_t scan_from_ = 0;     ///< buffer_ offset already scanned for '\n'
  bool discarding_ = false;  ///< inside an oversized line, dropping bytes
  size_t frame_discard_ = 0;  ///< oversized-frame bytes left to drain
  bool saw_eof_ = false;
};

}  // namespace recpriv::net
