#include "net/line_channel.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <poll.h>
#include <sys/socket.h>

namespace recpriv::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining budget in ms for poll(): -1 when the caller wants no timeout.
int RemainingMs(bool bounded, Clock::time_point deadline) {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

void StripCr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

uint32_t DecodeU32Le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return uint32_t(b[0]) | (uint32_t(b[1]) << 8) | (uint32_t(b[2]) << 16) |
         (uint32_t(b[3]) << 24);
}

void AppendU32Le(std::string& out, uint32_t v) {
  out.push_back(char(v & 0xff));
  out.push_back(char((v >> 8) & 0xff));
  out.push_back(char((v >> 16) & 0xff));
  out.push_back(char((v >> 24) & 0xff));
}

}  // namespace

Result<ReadResult> LineChannel::ReadLine(int timeout_ms) {
  if (!fd_.valid()) return Status::FailedPrecondition("channel is closed");
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  std::string chunk(options_.read_chunk_bytes, '\0');

  for (;;) {
    if (!discarding_) {
      const size_t pos = buffer_.find('\n', scan_from_);
      if (pos != std::string::npos) {
        if (pos > options_.max_line_bytes) {
          // The whole line arrived before the incomplete-buffer bound could
          // trip; it is still over the limit. Drop it, keep the session.
          buffer_.erase(0, pos + 1);
          scan_from_ = 0;
          return ReadResult{ReadEvent::kOversized, {}};
        }
        ReadResult result;
        result.event = ReadEvent::kLine;
        result.line = buffer_.substr(0, pos);
        StripCr(result.line);
        buffer_.erase(0, pos + 1);
        scan_from_ = 0;
        return result;
      }
      scan_from_ = buffer_.size();
      if (buffer_.size() > options_.max_line_bytes) {
        // The line in flight is too long to ever accept: stop buffering it
        // and drain to its newline so the session can resynchronize.
        buffer_.clear();
        scan_from_ = 0;
        discarding_ = true;
      }
    }

    if (saw_eof_) {
      ReadResult result;
      if (discarding_) {
        discarding_ = false;
        result.event = ReadEvent::kOversized;
      } else if (!buffer_.empty()) {
        // A final line the peer never terminated before closing.
        result.event = ReadEvent::kLine;
        result.line = std::move(buffer_);
        StripCr(result.line);
        buffer_.clear();
        scan_from_ = 0;
      } else {
        result.event = ReadEvent::kEof;
      }
      return result;
    }

    // poll() even when the budget is already spent (remaining == 0): a
    // ReadLine(0) is the non-blocking "drain whatever is ready" call of the
    // server's event loop, and must recv data the kernel already has.
    const int remaining = RemainingMs(bounded, deadline);
    struct pollfd pfd;
    pfd.fd = fd_.get();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int prc = ::poll(&pfd, 1, remaining);
    if (prc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (prc == 0) return ReadResult{ReadEvent::kTimeout, {}};

    const ssize_t n = ::recv(fd_.get(), chunk.data(), chunk.size(), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("recv", errno);
    }
    if (n == 0) {
      saw_eof_ = true;
      continue;
    }
    if (discarding_) {
      const char* nl =
          static_cast<const char*>(std::memchr(chunk.data(), '\n', size_t(n)));
      if (nl != nullptr) {
        // Keep whatever followed the newline: it is the next line's prefix.
        buffer_.assign(nl + 1, size_t(chunk.data() + n - (nl + 1)));
        discarding_ = false;
        return ReadResult{ReadEvent::kOversized, {}};
      }
      // Else: the oversized line continues; drop the chunk.
    } else {
      buffer_.append(chunk.data(), size_t(n));
    }
  }
}

Result<FrameResult> LineChannel::ReadFrame(int timeout_ms) {
  if (!fd_.valid()) return Status::FailedPrecondition("channel is closed");
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  std::string chunk(options_.read_chunk_bytes, '\0');

  for (;;) {
    if (frame_discard_ > 0) {
      // Inside an oversized frame: its declared length tells us exactly
      // how many bytes to drop before the stream is back in sync.
      const size_t drop = std::min(frame_discard_, buffer_.size());
      buffer_.erase(0, drop);
      scan_from_ = 0;
      frame_discard_ -= drop;
      if (frame_discard_ == 0) return FrameResult{ReadEvent::kOversized};
    } else if (buffer_.size() >= kFrameHeaderBytes) {
      const size_t len = DecodeU32Le(buffer_.data());
      const uint8_t type = uint8_t(buffer_[4]);
      if (len > options_.max_line_bytes) {
        buffer_.erase(0, kFrameHeaderBytes);
        scan_from_ = 0;
        frame_discard_ = len;
        continue;
      }
      if (buffer_.size() >= kFrameHeaderBytes + len) {
        FrameResult result;
        result.event = ReadEvent::kLine;
        result.type = type;
        const char* payload = buffer_.data() + kFrameHeaderBytes;
        if (type == kFrameJsonWithBytes) {
          if (len < 4) {
            return Status::IOError(
                "frame: type-2 payload shorter than its json length prefix");
          }
          const size_t json_len = DecodeU32Le(payload);
          if (4 + json_len > len) {
            return Status::IOError(
                "frame: interior json length " + std::to_string(json_len) +
                " exceeds payload of " + std::to_string(len) + " bytes");
          }
          result.payload.assign(payload + 4, json_len);
          result.attachment.assign(payload + 4 + json_len,
                                   len - 4 - json_len);
        } else {
          result.payload.assign(payload, len);
        }
        buffer_.erase(0, kFrameHeaderBytes + len);
        scan_from_ = 0;
        return result;
      }
    }

    if (saw_eof_) {
      // A partial frame at EOF is dropped: unlike an unterminated final
      // line, a length-prefixed frame is all-or-nothing by construction.
      return FrameResult{ReadEvent::kEof};
    }

    const int remaining = RemainingMs(bounded, deadline);
    struct pollfd pfd;
    pfd.fd = fd_.get();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int prc = ::poll(&pfd, 1, remaining);
    if (prc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (prc == 0) return FrameResult{ReadEvent::kTimeout};

    const ssize_t n = ::recv(fd_.get(), chunk.data(), chunk.size(), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("recv", errno);
    }
    if (n == 0) {
      saw_eof_ = true;
      continue;
    }
    buffer_.append(chunk.data(), size_t(n));
  }
}

std::string LineChannel::EncodeFrame(std::string_view json,
                                     std::string_view attachment) {
  std::string out;
  if (attachment.empty()) {
    out.reserve(kFrameHeaderBytes + json.size());
    AppendU32Le(out, uint32_t(json.size()));
    out.push_back(char(kFrameJson));
    out.append(json);
  } else {
    out.reserve(kFrameHeaderBytes + 4 + json.size() + attachment.size());
    AppendU32Le(out, uint32_t(4 + json.size() + attachment.size()));
    out.push_back(char(kFrameJsonWithBytes));
    AppendU32Le(out, uint32_t(json.size()));
    out.append(json);
    out.append(attachment);
  }
  return out;
}

Status LineChannel::WriteFrame(std::string_view json,
                               std::string_view attachment, int timeout_ms) {
  const uint64_t payload =
      attachment.empty() ? json.size() : 4 + json.size() + attachment.size();
  if (payload > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("frame payload exceeds the u32 length");
  }
  const std::string data = EncodeFrame(json, attachment);
  return WriteRaw(data.data(), data.size(), timeout_ms);
}

Status LineChannel::WriteLine(const std::string& line, int timeout_ms) {
  const std::string data = line + "\n";
  return WriteRaw(data.data(), data.size(), timeout_ms);
}

Status LineChannel::WriteRaw(const char* data, size_t n_bytes,
                             int timeout_ms) {
  if (!fd_.valid()) return Status::FailedPrecondition("channel is closed");
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  size_t off = 0;
  while (off < n_bytes) {
    const int remaining = RemainingMs(bounded, deadline);
    if (bounded && remaining == 0) {
      return Status::IOError("write timed out (peer not reading)");
    }
    struct pollfd pfd;
    pfd.fd = fd_.get();
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int prc = ::poll(&pfd, 1, remaining);
    if (prc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (prc == 0) {
      return Status::IOError("write timed out (peer not reading)");
    }
    const ssize_t n =
        ::send(fd_.get(), data + off, n_bytes - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("send", errno);
    }
    off += size_t(n);
  }
  return Status::OK();
}

}  // namespace recpriv::net
