#include "net/line_channel.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>

namespace recpriv::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining budget in ms for poll(): -1 when the caller wants no timeout.
int RemainingMs(bool bounded, Clock::time_point deadline) {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left < 0 ? 0 : static_cast<int>(left);
}

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + std::strerror(err));
}

void StripCr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

Result<ReadResult> LineChannel::ReadLine(int timeout_ms) {
  if (!fd_.valid()) return Status::FailedPrecondition("channel is closed");
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  std::string chunk(options_.read_chunk_bytes, '\0');

  for (;;) {
    if (!discarding_) {
      const size_t pos = buffer_.find('\n', scan_from_);
      if (pos != std::string::npos) {
        if (pos > options_.max_line_bytes) {
          // The whole line arrived before the incomplete-buffer bound could
          // trip; it is still over the limit. Drop it, keep the session.
          buffer_.erase(0, pos + 1);
          scan_from_ = 0;
          return ReadResult{ReadEvent::kOversized, {}};
        }
        ReadResult result;
        result.event = ReadEvent::kLine;
        result.line = buffer_.substr(0, pos);
        StripCr(result.line);
        buffer_.erase(0, pos + 1);
        scan_from_ = 0;
        return result;
      }
      scan_from_ = buffer_.size();
      if (buffer_.size() > options_.max_line_bytes) {
        // The line in flight is too long to ever accept: stop buffering it
        // and drain to its newline so the session can resynchronize.
        buffer_.clear();
        scan_from_ = 0;
        discarding_ = true;
      }
    }

    if (saw_eof_) {
      ReadResult result;
      if (discarding_) {
        discarding_ = false;
        result.event = ReadEvent::kOversized;
      } else if (!buffer_.empty()) {
        // A final line the peer never terminated before closing.
        result.event = ReadEvent::kLine;
        result.line = std::move(buffer_);
        StripCr(result.line);
        buffer_.clear();
        scan_from_ = 0;
      } else {
        result.event = ReadEvent::kEof;
      }
      return result;
    }

    // poll() even when the budget is already spent (remaining == 0): a
    // ReadLine(0) is the non-blocking "drain whatever is ready" call of the
    // server's event loop, and must recv data the kernel already has.
    const int remaining = RemainingMs(bounded, deadline);
    struct pollfd pfd;
    pfd.fd = fd_.get();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int prc = ::poll(&pfd, 1, remaining);
    if (prc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (prc == 0) return ReadResult{ReadEvent::kTimeout, {}};

    const ssize_t n = ::recv(fd_.get(), chunk.data(), chunk.size(), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("recv", errno);
    }
    if (n == 0) {
      saw_eof_ = true;
      continue;
    }
    if (discarding_) {
      const char* nl =
          static_cast<const char*>(std::memchr(chunk.data(), '\n', size_t(n)));
      if (nl != nullptr) {
        // Keep whatever followed the newline: it is the next line's prefix.
        buffer_.assign(nl + 1, size_t(chunk.data() + n - (nl + 1)));
        discarding_ = false;
        return ReadResult{ReadEvent::kOversized, {}};
      }
      // Else: the oversized line continues; drop the chunk.
    } else {
      buffer_.append(chunk.data(), size_t(n));
    }
  }
}

Status LineChannel::WriteLine(const std::string& line, int timeout_ms) {
  const std::string data = line + "\n";
  return WriteRaw(data.data(), data.size(), timeout_ms);
}

Status LineChannel::WriteRaw(const char* data, size_t n_bytes,
                             int timeout_ms) {
  if (!fd_.valid()) return Status::FailedPrecondition("channel is closed");
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(bounded ? timeout_ms : 0);
  size_t off = 0;
  while (off < n_bytes) {
    const int remaining = RemainingMs(bounded, deadline);
    if (bounded && remaining == 0) {
      return Status::IOError("write timed out (peer not reading)");
    }
    struct pollfd pfd;
    pfd.fd = fd_.get();
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int prc = ::poll(&pfd, 1, remaining);
    if (prc < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    if (prc == 0) {
      return Status::IOError("write timed out (peer not reading)");
    }
    const ssize_t n =
        ::send(fd_.get(), data + off, n_bytes - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return ErrnoStatus("send", errno);
    }
    off += size_t(n);
  }
  return Status::OK();
}

}  // namespace recpriv::net
