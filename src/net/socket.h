// Minimal portable POSIX TCP socket layer for the serving front end.
//
// Three pieces, all blocking-with-timeout (poll(2) before every potentially
// blocking syscall, so a slow or dead peer can never wedge a thread
// indefinitely):
//
//  * UniqueFd       — RAII ownership of a file descriptor.
//  * Listener       — bound + listening socket; Accept() with a timeout, and
//                     a port() accessor so callers may bind port 0 and let
//                     the kernel pick (tests, benches).
//  * ConnectTcp()   — client-side connect with a timeout.
//
// IPv4 loopback/hostnames via getaddrinfo; every error is a Status (no
// exceptions, no errno leaking past this layer). SIGPIPE is never raised:
// all writes go through send(MSG_NOSIGNAL).

#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "common/result.h"

namespace recpriv::net {

/// Owns a file descriptor; closes it on destruction. Moveable, not copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor now (idempotent).
  void Reset();

  /// Relinquishes ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Outcome of a timed Accept().
struct AcceptResult {
  bool timed_out = false;  ///< no connection arrived within the timeout
  UniqueFd fd;             ///< valid iff !timed_out
};

/// A bound, listening TCP socket.
class Listener {
 public:
  /// Binds `host:port` (port 0 = kernel-assigned; read it back via port())
  /// and starts listening. SO_REUSEADDR is set so restarting a server does
  /// not trip over TIME_WAIT.
  static Result<Listener> Bind(const std::string& host, uint16_t port,
                               int backlog = 128);

  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  /// Waits up to `timeout_ms` for a connection (< 0 waits forever).
  /// A closed/shut-down listener yields an error, a quiet one a timeout.
  Result<AcceptResult> Accept(int timeout_ms);

  /// The locally bound port (the kernel's pick when Bind was given 0).
  uint16_t port() const { return port_; }
  bool valid() const { return fd_.valid(); }
  /// The listening descriptor, for callers that poll it alongside other
  /// fds (the serving front end's event loop).
  int fd() const { return fd_.get(); }

  /// Closes the listening socket; a concurrent or later Accept() errors.
  void Close() { fd_.Reset(); }

 private:
  UniqueFd fd_;
  uint16_t port_ = 0;
};

/// Connects to `host:port`, waiting up to `timeout_ms` (< 0 forever) for
/// the handshake to complete.
Result<UniqueFd> ConnectTcp(const std::string& host, uint16_t port,
                            int timeout_ms);

}  // namespace recpriv::net
