#include "net/fault_injector.h"

namespace recpriv::net {

FaultKind FaultInjector::SampleWrite() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.writes;
  if (rng_.NextBernoulli(options_.drop_rate)) {
    ++stats_.drops;
    return FaultKind::kDrop;
  }
  if (rng_.NextBernoulli(options_.disconnect_rate)) {
    ++stats_.disconnects;
    return FaultKind::kDisconnect;
  }
  if (rng_.NextBernoulli(options_.truncate_rate)) {
    ++stats_.truncates;
    return FaultKind::kTruncate;
  }
  if (rng_.NextBernoulli(options_.short_write_rate)) {
    ++stats_.short_writes;
    return FaultKind::kShortWrite;
  }
  if (rng_.NextBernoulli(options_.delay_rate)) {
    ++stats_.delays;
    return FaultKind::kDelay;
  }
  return FaultKind::kNone;
}

FaultStats FaultInjector::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace recpriv::net
