#include "serve/service.h"

#include <chrono>
#include <utility>

#include "common/timer.h"
#include "query/count_query.h"
#include "serve/admission.h"
#include "table/predicate.h"

namespace recpriv::serve {

using recpriv::analysis::ReleaseBundle;
using recpriv::query::CountQuery;
using recpriv::table::Predicate;
using recpriv::table::Schema;

namespace {

client::ReleaseDescriptor ToDescriptor(const ReleaseInfo& info) {
  client::ReleaseDescriptor d;
  d.name = info.name;
  d.epoch = info.epoch;
  d.num_records = info.num_records;
  d.num_groups = info.num_groups;
  d.retained_epochs = info.retained_epochs;
  d.oldest_epoch = info.oldest_epoch;
  return d;
}

Result<SnapshotPtr> ResolveSnapshot(QueryEngine& engine,
                                    const std::string& release,
                                    std::optional<uint64_t> epoch) {
  if (epoch.has_value()) return engine.store().Get(release, *epoch);
  return engine.store().Get(release);
}

/// Binds one string-level QuerySpec against the release schema.
Result<CountQuery> ResolveQuery(const client::QuerySpec& spec,
                                const Schema& schema) {
  CountQuery q(schema.num_attributes());
  RECPRIV_ASSIGN_OR_RETURN(q.na_predicate,
                           Predicate::FromBindings(schema, spec.where));
  if (q.na_predicate.is_bound(schema.sensitive_index())) {
    return Status::InvalidArgument(
        "'where' must not constrain the sensitive attribute; use 'sa'");
  }
  q.dimensionality = q.na_predicate.num_bound();
  RECPRIV_ASSIGN_OR_RETURN(q.sa_code,
                           schema.sensitive().domain.GetCode(spec.sa));
  return q;
}

}  // namespace

Result<std::vector<client::ReleaseDescriptor>> ListReleases(
    QueryEngine& engine) {
  std::vector<client::ReleaseDescriptor> out;
  for (const ReleaseInfo& info : engine.store().List()) {
    out.push_back(ToDescriptor(info));
  }
  return out;
}

Result<client::BatchAnswer> ExecuteQuery(QueryEngine& engine,
                                         const client::QueryRequest& request) {
  const std::string& tenant =
      request.tenant.empty() ? kDefaultTenant : request.tenant;
  // Admission first: an over-quota tenant must be rejected before its
  // request costs a snapshot pin, query resolution, or a pool slot.
  AdmissionController* admission = engine.admission();
  if (admission != nullptr &&
      !admission->Admit(tenant, request.queries.size())) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' is over its query quota; retry later");
  }
  Deadline deadline;
  if (request.deadline_ms.has_value()) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(*request.deadline_ms);
  }

  RECPRIV_ASSIGN_OR_RETURN(
      SnapshotPtr snap, ResolveSnapshot(engine, request.release, request.epoch));
  const Schema& schema = *snap->bundle.data.schema();

  std::vector<CountQuery> batch;
  batch.reserve(request.queries.size());
  for (const client::QuerySpec& spec : request.queries) {
    RECPRIV_ASSIGN_OR_RETURN(CountQuery q, ResolveQuery(spec, schema));
    batch.push_back(std::move(q));
  }

  // Evaluate against the same snapshot the codes were resolved with: a
  // republish between our Get and evaluation must not remap the codes.
  // Routed through the micro-batching scheduler when one is configured, so
  // concurrent same-snapshot requests fuse into one evaluation. The engine
  // fast-fails the batch if the deadline passes before it reaches the
  // pool; that shed is counted against the tenant.
  Result<BatchResult> scheduled =
      engine.AnswerBatchScheduled(request.release, snap, batch, deadline);
  if (!scheduled.ok()) {
    if (admission != nullptr &&
        scheduled.status().code() == StatusCode::kDeadlineExceeded) {
      admission->CountShed(tenant);
    }
    return scheduled.status();
  }
  BatchResult result = std::move(*scheduled);
  client::BatchAnswer out;
  out.release = request.release;
  out.epoch = result.epoch;
  out.cache_hits = result.cache_hits;
  out.cache_misses = result.cache_misses;
  out.answers.reserve(result.answers.size());
  for (const Answer& a : result.answers) {
    out.answers.push_back(
        client::AnswerRow{a.observed, a.matched_size, a.estimate, a.cached});
  }
  return out;
}

Result<client::ReleaseSchema> DescribeRelease(QueryEngine& engine,
                                              const std::string& release,
                                              std::optional<uint64_t> epoch) {
  RECPRIV_ASSIGN_OR_RETURN(SnapshotPtr snap,
                           ResolveSnapshot(engine, release, epoch));
  const Schema& schema = *snap->bundle.data.schema();
  client::ReleaseSchema out;
  out.release = release;
  out.epoch = snap->epoch;
  out.attributes.reserve(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    client::AttributeInfo attr;
    attr.name = schema.attribute(a).name;
    attr.sensitive = schema.is_sensitive(a);
    attr.values = schema.attribute(a).domain.values();
    out.attributes.push_back(std::move(attr));
  }
  return out;
}

Result<client::ServerStats> CollectStats(QueryEngine& engine) {
  client::ServerStats stats;
  stats.threads = engine.pool().num_threads();
  stats.cache = client::CacheStats{engine.cache().size(),
                                   engine.cache().capacity(),
                                   engine.cache().hits(),
                                   engine.cache().misses()};
  for (const ReleaseInfo& info : engine.store().List()) {
    stats.releases.push_back(ToDescriptor(info));
    client::StoreReleaseStats source;
    source.release = info.name;
    source.epoch = info.epoch;
    source.source = info.source_kind;
    source.open_ms = info.source_open_ms;
    source.parse_ms = info.source_parse_ms;
    source.build_ms = info.source_build_ms;
    source.bytes_mapped = info.source_bytes_mapped;
    stats.store.push_back(std::move(source));
  }
  stats.scheduler = engine.scheduler_stats();
  stats.tenants = engine.tenant_stats();
  return stats;
}

Result<client::ReleaseDescriptor> PublishFromFile(
    QueryEngine& engine, const std::string& name,
    const std::string& basename) {
  WallTimer timer;
  RECPRIV_ASSIGN_OR_RETURN(ReleaseBundle bundle,
                           recpriv::analysis::LoadRelease(basename));
  recpriv::analysis::SnapshotSource source;
  source.kind = "csv";
  source.parse_ms = timer.Millis();
  ReleaseInfo info;
  RECPRIV_ASSIGN_OR_RETURN(
      SnapshotPtr snap, engine.store().PublishWithSource(
                            name, std::move(bundle), std::move(source), &info));
  (void)snap;
  return ToDescriptor(info);
}

Result<client::ReleaseDescriptor> PublishBundle(QueryEngine& engine,
                                                const std::string& name,
                                                ReleaseBundle bundle) {
  ReleaseInfo info;
  RECPRIV_ASSIGN_OR_RETURN(
      SnapshotPtr snap, engine.store().Publish(name, std::move(bundle), &info));
  (void)snap;
  return ToDescriptor(info);
}

Result<client::ReleaseDescriptor> DropRelease(QueryEngine& engine,
                                              const std::string& name) {
  RECPRIV_ASSIGN_OR_RETURN(ReleaseInfo info, engine.store().Drop(name));
  return ToDescriptor(info);
}

}  // namespace recpriv::serve
