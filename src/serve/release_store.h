// ReleaseStore: the registry the serving layer reads from — named,
// versioned, immutable snapshots of published releases.
//
// Copy-on-publish: Publish() builds a fresh analysis::ReleaseSnapshot (data
// + group index + posting index) off to the side and then atomically swaps
// the name's entry under a short critical section. Readers hold
// shared_ptr<const ReleaseSnapshot>s, so a StreamingPublisher republishing
// a release never blocks in-flight query batches and never mutates data a
// reader is scanning — old epochs simply drain when their last reader drops
// the pointer. This is the paper's consumption model taken seriously: the
// user-facing artifact is an immutable perturbed table (§3.1), so serving
// it is a pointer swap, not a lock hierarchy.
//
// Epoch retention: each name keeps a bounded window of its most recent
// epochs (default kDefaultRetainedEpochs, including the current one), so a
// client that pinned an epoch mid-analysis keeps reading that exact
// snapshot across republishes — Get(name, epoch) — until the epoch ages
// out of the window. Publish never reuses an epoch number for a name, even
// across Drop + republish; OpenSnapshot, however, installs whatever epoch
// a file's manifest declares, so Drop followed by recovery or replication
// CAN legitimately reinstall a previously-used epoch number with different
// content — which is why the serving layer's answer cache keys on each
// snapshot's content digest, never on the (name, epoch) pair.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/release.h"
#include "common/random.h"
#include "common/result.h"
#include "core/streaming.h"

namespace recpriv::serve {

using SnapshotPtr = std::shared_ptr<const recpriv::analysis::ReleaseSnapshot>;

/// One row of List(): the serving-visible metadata of a named release.
struct ReleaseInfo {
  std::string name;
  uint64_t epoch = 0;            ///< currently served epoch
  uint64_t num_records = 0;
  uint64_t num_groups = 0;
  uint64_t retained_epochs = 1;  ///< snapshots pinnable right now
  uint64_t oldest_epoch = 0;     ///< smallest epoch still pinnable
  /// Provenance of the served snapshot (see analysis::SnapshotSource):
  /// where its data came from and what making it queryable cost.
  std::string source_kind = "memory";
  double source_open_ms = 0.0;
  double source_parse_ms = 0.0;
  double source_build_ms = 0.0;
  uint64_t source_bytes_mapped = 0;
};

/// A store mutation a listener observes (see ReleaseStore::AddListener).
struct StoreEvent {
  enum class Kind {
    kInstall,  ///< an epoch became pinnable (publish or snapshot recovery)
    kRetire,   ///< an epoch aged out of the retention window
    kDrop,     ///< the whole release was dropped (epoch = last served)
  };
  Kind kind = Kind::kInstall;
  std::string release;
  uint64_t epoch = 0;
  /// The installed snapshot (kInstall only) — handed to listeners directly
  /// so they never race the retention window to re-look it up.
  SnapshotPtr snapshot;
};

/// Thread-safe registry of named release snapshots.
class ReleaseStore {
 public:
  /// Epochs retained per name (including the currently served one).
  static constexpr size_t kDefaultRetainedEpochs = 4;

  struct Options {
    size_t retained_epochs = kDefaultRetainedEpochs;
    /// When non-empty the store is durable: every publish also writes a
    /// binary snapshot (store/snapshot_writer.h) under this directory,
    /// epochs evicted from the retention window have their files deleted,
    /// and RecoverFromDir() restores the whole retained window on restart.
    std::string snapshot_dir;
  };

  /// `retained_epochs` < 1 is clamped to 1 (only the current epoch).
  explicit ReleaseStore(size_t retained_epochs = kDefaultRetainedEpochs);
  explicit ReleaseStore(Options options);

  /// Publishes `bundle` under `name`. A first publication gets epoch 1;
  /// republication bumps the previous epoch and swaps the snapshot in
  /// atomically, retiring the oldest retained epoch once the window is
  /// full. Returns the snapshot that is now being served. When `info` is
  /// non-null it is filled with the name's post-publish metadata under the
  /// same critical section that installs the snapshot, so a concurrent
  /// Drop/republish cannot slip between publish and observation.
  Result<SnapshotPtr> Publish(const std::string& name,
                              recpriv::analysis::ReleaseBundle bundle,
                              ReleaseInfo* info = nullptr);

  /// Publish with explicit provenance — the path a caller takes when it
  /// already spent time acquiring the bundle (e.g. CSV parse) and wants
  /// that cost surfaced in the release's stats.
  Result<SnapshotPtr> PublishWithSource(
      const std::string& name, recpriv::analysis::ReleaseBundle bundle,
      recpriv::analysis::SnapshotSource source, ReleaseInfo* info = nullptr);

  /// Republishes from a streaming publisher: runs a full SPS snapshot of
  /// its current buffer (core::StreamingPublisher::Publish) and publishes
  /// the result under `name`. The SPS pass and indexing happen outside the
  /// store lock; concurrent readers keep the previous epoch meanwhile.
  Result<SnapshotPtr> PublishFromStreaming(
      const std::string& name,
      const recpriv::core::StreamingPublisher& publisher, Rng& rng);

  /// Incremental republish from a streaming publisher
  /// (core::StreamingPublisher::PublishIncremental): only groups touched
  /// by rows inserted since the publisher's previous incremental publish
  /// are re-run through SPS, and the next index is assembled by a
  /// two-level run merge instead of a full rebuild. The currently served
  /// snapshot of `name` (the merge's base level) is pinned for the whole
  /// merge, so a concurrent Drop or window trim cannot release it while
  /// sections derived from it are being read. Persisted snapshots are
  /// always written self-contained — the borrow is an in-memory seam only.
  /// `merge_index=false` builds the same bit-identical snapshot through
  /// the full radix-sort path (the reference arm for tests and CI). When
  /// `stats` is non-null it receives the publish's delta bookkeeping.
  Result<SnapshotPtr> PublishIncremental(
      const std::string& name, recpriv::core::StreamingPublisher& publisher,
      Rng& rng, bool merge_index = true,
      recpriv::core::IncrementalPublishStats* stats = nullptr);

  /// The current snapshot of `name`, or NotFound.
  Result<SnapshotPtr> Get(const std::string& name) const;

  /// The retained snapshot of `name` at exactly `epoch`. NotFound when the
  /// name is unknown; FailedPrecondition when the epoch is not in the
  /// retention window (aged out, never published, or not yet published) —
  /// the wire layer reports that as STALE_EPOCH.
  Result<SnapshotPtr> Get(const std::string& name, uint64_t epoch) const;

  /// Retires `name` entirely: the served snapshot and every retained
  /// epoch. Returns the dropped release's info, or NotFound. The name's
  /// epoch counter survives, so republication continues the sequence.
  Result<ReleaseInfo> Drop(const std::string& name);

  /// Metadata of `name`, or NotFound.
  Result<ReleaseInfo> Info(const std::string& name) const;

  /// Metadata of every release, name-sorted.
  std::vector<ReleaseInfo> List() const;

  /// Every retained snapshot of `name`, epoch-ascending (back() is the
  /// served one), or NotFound. The replication listing is built from this.
  Result<std::vector<SnapshotPtr>> Window(const std::string& name) const;

  /// Registers a listener for install/retire/drop events; returns a token
  /// for RemoveListener. Listeners run after the store lock is released,
  /// serialized with each other (one event's fan-out completes before the
  /// next begins). Under concurrent publishers, events of different
  /// mutations may fan out in either order — consumers needing exact state
  /// resync from Window()/List(). A listener may read the store but MUST
  /// NOT mutate the same store synchronously (it would self-deadlock on
  /// the listener lock).
  uint64_t AddListener(std::function<void(const StoreEvent&)> listener);

  /// Unregisters; blocks until any in-flight fan-out to this listener
  /// finishes, so after return the callback will never run again.
  void RemoveListener(uint64_t token);

  size_t size() const;
  size_t retained_epochs() const { return retained_; }
  const std::string& snapshot_dir() const { return snapshot_dir_; }

  /// The managed `.rps` path of (name, epoch) under snapshot_dir — where a
  /// durable store persists that epoch and where a replication follower
  /// writes a fetched image before OpenSnapshot installs it.
  /// FailedPrecondition when the store has no snapshot directory.
  Result<std::string> ManagedSnapshotPath(const std::string& name,
                                          uint64_t epoch) const;

  /// Writes the currently served snapshot of `name` to `path` in the
  /// binary snapshot format; NotFound when the name is unknown.
  Status SaveSnapshot(const std::string& name, const std::string& path) const;

  /// Opens one snapshot file and installs it under the release name and
  /// epoch recorded in its manifest (not its filename). AlreadyExists when
  /// that epoch is already installed; the name's epoch counter is advanced
  /// past the recovered epoch so future publishes never collide.
  Result<ReleaseInfo> OpenSnapshot(const std::string& path);

  /// Recovers every `*.rps` file under snapshot_dir (creating the
  /// directory if absent). Fails fast with the offending path on the first
  /// unreadable or corrupt file — a durable store that silently skipped a
  /// corrupt epoch would serve different data than it persisted.
  /// FailedPrecondition when the store has no snapshot directory.
  Status RecoverFromDir();

 private:
  ReleaseInfo InfoLocked(const std::string& name,
                         const std::vector<SnapshotPtr>& window) const;
  /// The shared publish tail: persists `snap` (durable stores persist
  /// before they install), installs it into `name`'s window, fills `info`
  /// under the install's critical section, deletes evicted files, and
  /// notifies listeners. Returns the snapshot now being served.
  Result<SnapshotPtr> InstallBuilt(const std::string& name, SnapshotPtr snap,
                                   ReleaseInfo* info);
  /// The managed file path of (name, epoch) under snapshot_dir.
  std::string ManagedPath(const std::string& name, uint64_t epoch) const;
  /// Inserts `snap` into `name`'s window (epoch-sorted), trims the window,
  /// and returns the epochs retired by the trim (whose managed files, when
  /// the store is durable, should now be deleted). Caller holds mu_.
  std::vector<uint64_t> InstallLocked(const std::string& name,
                                      SnapshotPtr snap);
  /// Fans `events` out to every listener, in order. Caller must NOT hold
  /// mu_ (listeners may read the store).
  void Notify(const std::vector<StoreEvent>& events) const;

  const size_t retained_;
  const std::string snapshot_dir_;
  mutable std::mutex mu_;
  /// Retained snapshots per name, epoch-ascending; back() is served.
  std::map<std::string, std::vector<SnapshotPtr>> releases_;
  /// Highest epoch ever reserved per name (>= the served snapshot's
  /// epoch); survives Drop so epochs are never reused.
  std::map<std::string, uint64_t> next_epoch_;

  /// Listener registry, under its own lock: Notify holds listeners_mu_
  /// (never mu_) while invoking callbacks, which both serializes fan-out
  /// and lets RemoveListener guarantee quiescence by acquiring it.
  mutable std::mutex listeners_mu_;
  std::map<uint64_t, std::function<void(const StoreEvent&)>> listeners_;
  uint64_t next_listener_token_ = 0;
};

}  // namespace recpriv::serve
