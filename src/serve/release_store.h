// ReleaseStore: the registry the serving layer reads from — named,
// versioned, immutable snapshots of published releases.
//
// Copy-on-publish: Publish() builds a fresh analysis::ReleaseSnapshot (data
// + group index + posting index) off to the side and then atomically swaps
// the name's entry under a short critical section. Readers hold
// shared_ptr<const ReleaseSnapshot>s, so a StreamingPublisher republishing
// a release never blocks in-flight query batches and never mutates data a
// reader is scanning — old epochs simply drain when their last reader drops
// the pointer. This is the paper's consumption model taken seriously: the
// user-facing artifact is an immutable perturbed table (§3.1), so serving
// it is a pointer swap, not a lock hierarchy.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/release.h"
#include "common/random.h"
#include "common/result.h"
#include "core/streaming.h"

namespace recpriv::serve {

using SnapshotPtr = std::shared_ptr<const recpriv::analysis::ReleaseSnapshot>;

/// One row of List(): the serving-visible metadata of a named release.
struct ReleaseInfo {
  std::string name;
  uint64_t epoch = 0;
  uint64_t num_records = 0;
  uint64_t num_groups = 0;
};

/// Thread-safe registry of named release snapshots.
class ReleaseStore {
 public:
  /// Publishes `bundle` under `name`. A first publication gets epoch 1;
  /// republication bumps the previous epoch and swaps the snapshot in
  /// atomically. Returns the snapshot that is now being served.
  Result<SnapshotPtr> Publish(const std::string& name,
                              recpriv::analysis::ReleaseBundle bundle);

  /// Republishes from a streaming publisher: runs a full SPS snapshot of
  /// its current buffer (core::StreamingPublisher::Publish) and publishes
  /// the result under `name`. The SPS pass and indexing happen outside the
  /// store lock; concurrent readers keep the previous epoch meanwhile.
  Result<SnapshotPtr> PublishFromStreaming(
      const std::string& name,
      const recpriv::core::StreamingPublisher& publisher, Rng& rng);

  /// The current snapshot of `name`, or NotFound.
  Result<SnapshotPtr> Get(const std::string& name) const;

  /// Metadata of every release, name-sorted.
  std::vector<ReleaseInfo> List() const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, SnapshotPtr> releases_;
  /// Highest epoch ever reserved per name (>= the served snapshot's epoch).
  std::map<std::string, uint64_t> next_epoch_;
};

}  // namespace recpriv::serve
