// MicroBatcher: a micro-batching query scheduler over the QueryEngine.
//
// Concurrent serving sessions (TCP slices, in-process callers) mostly
// submit tiny batches — often a single count query per request. Each such
// request pays the engine's fixed costs alone: snapshot pin, validation,
// cache traffic, scratch setup, and one index pass that the columnar
// layout could have shared. The batcher coalesces submissions that target
// the SAME release snapshot and arrive within a short collection window
// into one fused QueryEngine::AnswerBatch call — one pass of the
// FlatGroupIndex answer kernel amortized over every rider — then splits
// the answers back per submission.
//
// Leader/follower protocol: the first submission for a (release, epoch)
// key opens a pending batch and becomes its leader; it waits up to
// `window_us` (or until `max_batch_queries` accumulate) while follower
// submissions append their queries, then closes the batch, evaluates the
// merged query list, and wakes the followers with their answer slices.
// While a leader evaluates, the next submission for the same key opens a
// fresh batch, so collection and evaluation pipeline under sustained load.
//
// Correctness invariants (proved by tests/micro_batch_test.cc):
//
//  * answers are BIT-IDENTICAL to unbatched evaluation: a fused batch is
//    evaluated against exactly the snapshot every rider resolved its query
//    codes with (the coalescing key is the snapshot epoch, and epochs are
//    never reused — serve/release_store.h), and batch evaluation itself is
//    deterministic per query;
//  * a submission with an invalid query fails alone: validation runs per
//    submission before it can join a batch, so one bad rider can never
//    poison a fused batch;
//  * per-submission results carry that submission's own cache attribution.
//
// Blocking: Submit blocks its calling thread for at most the window plus
// the fused evaluation. Server sessions run as cooperative pool slices, so
// a parked leader occupies one worker for the window — keep windows in the
// hundreds of microseconds. Deadlock-freedom rests on two ThreadPool
// properties: ParallelFor runs inline when the leader IS a pool task, and
// an external leader participates in draining its own chunks — so the
// fused evaluation completes even when every pool worker is parked as a
// follower of the very batch being evaluated
// (tests/micro_batch_test.cc: NonPoolLeaderWithAllWorkersParked...).

#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "client/api.h"
#include "common/result.h"
#include "query/count_query.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"

namespace recpriv::serve {

struct MicroBatcherOptions {
  /// Collection window after the leader's arrival, microseconds (> 0).
  int window_us = 200;
  /// A pending batch this large is closed and evaluated immediately.
  size_t max_batch_queries = 1024;
};

/// Coalesces same-snapshot query submissions into fused engine batches.
/// Thread-safe; one instance is shared by every serving session.
class MicroBatcher {
 public:
  MicroBatcher(QueryEngine& engine, MicroBatcherOptions options);

  /// Answers `queries` against `snap` (published under `release`), possibly
  /// fused with concurrent submissions that resolved against the same
  /// snapshot. Blocks until the answers are ready. The returned BatchResult
  /// covers exactly this submission's queries, in submission order.
  ///
  /// A submission whose `deadline` has already passed is fast-failed with
  /// DeadlineExceeded and never joins (or opens) a batch — a fused batch
  /// carries no dead riders. A leader with a deadline also caps its
  /// collection wait at its remaining budget, so a tight deadline cannot
  /// be spent parked in the window.
  Result<BatchResult> Submit(const std::string& release, SnapshotPtr snap,
                             std::vector<recpriv::query::CountQuery> queries,
                             const Deadline& deadline = std::nullopt);

  /// Point-in-time scheduler counters (window_us included).
  client::SchedulerStats Stats() const;

  const MicroBatcherOptions& options() const { return options_; }

 private:
  /// One open or evaluating fused batch.
  struct Pending {
    std::string release;
    SnapshotPtr snap;
    std::vector<recpriv::query::CountQuery> queries;
    size_t submissions = 0;
    bool full = false;  ///< reached max_batch_queries; wake the leader
    bool done = false;  ///< evaluation finished; slices may be taken
    Status status = Status::OK();
    std::vector<Answer> answers;  ///< merged answers when ok
    uint64_t epoch = 0;
    EvalStrategy strategy_used = EvalStrategy::kPostings;
    std::condition_variable cv;
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// This submission's slice of a finished batch (requires batch.done).
  Result<BatchResult> Slice(const Pending& batch, size_t offset,
                            size_t count) const;

  QueryEngine& engine_;
  const MicroBatcherOptions options_;

  mutable std::mutex mu_;
  /// Open (still collecting) batches by release + '\0' + epoch key.
  std::map<std::string, PendingPtr> open_;
  client::SchedulerStats stats_;
};

}  // namespace recpriv::serve
