// QueryEngine: answers batches of count queries (Eq. 11) against a named
// release from a ReleaseStore — the user-facing half of the paper's
// contract, where consumers run COUNT(*) queries over the published
// perturbed table and reconstruct the true counts themselves (§4.1, §6.1).
//
// For each query the engine sums, over the release groups matching the NA
// predicate, the observed SA histogram bin O* and the matched release size
// |S*|, and returns both the raw observed count and the unbiased MLE
// reconstruction est = |S*| F' (Lemma 2(ii)) computed from the release's
// own manifest parameters (p, m). Consumers never see raw data — only the
// already-perturbed release — so the engine adds no privacy surface.
//
// Batches are evaluated in parallel on a work-stealing pool with one of two
// strategies, chosen per batch:
//
//  * per-query postings: each worker takes a slice of the batch and
//    answers its queries by posting-list intersection with reused scratch
//    buffers. Wins when predicates are selective (the common case: the
//    paper's pools have dimensionality 1-3).
//  * shard-by-group: the release's groups are split into contiguous
//    shards; each worker scans its shard once, accumulating partial
//    (O*, |S*|) sums for every query of the batch, and the partials are
//    reduced at the end. Wins when the batch is large relative to the
//    number of groups or predicates are mostly unselective (posting
//    intersection would touch nearly every group per query anyway).
//
// Answers are memoized in an LRU cache keyed by (release name, epoch,
// canonical query bytes) — see serve/answer_cache.h for the invalidation
// story on republish.

#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/api.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "query/count_query.h"
#include "serve/answer_cache.h"
#include "serve/release_store.h"

namespace recpriv::serve {

class AdmissionController;
class MicroBatcher;

/// Absolute point past which a batch should be shed instead of evaluated.
/// nullopt = no deadline (the default everywhere).
using Deadline = std::optional<std::chrono::steady_clock::time_point>;

/// True when `deadline` is set and already in the past.
inline bool DeadlineExpired(const Deadline& deadline) {
  return deadline.has_value() &&
         std::chrono::steady_clock::now() >= *deadline;
}

/// How a batch's uncached queries are evaluated.
enum class EvalStrategy {
  kAuto,       ///< pick per batch: shard-by-group when batch >= groups/4
  kPostings,   ///< per-query posting-list intersection
  kGroupShard  ///< one pass over group shards, all queries at once
};

struct QueryEngineOptions {
  size_t num_threads = 0;       ///< 0 = hardware concurrency
  size_t cache_capacity = 1 << 16;  ///< LRU entries; 0 disables caching
  EvalStrategy strategy = EvalStrategy::kAuto;
  /// Micro-batching scheduler (serve/micro_batcher.h): same-snapshot
  /// submissions arriving within this window are fused into one batch
  /// evaluation. 0 disables the scheduler (AnswerBatchScheduled degrades
  /// to AnswerBatch).
  int micro_batch_window_us = 0;
  /// A fused batch this large is evaluated without waiting out the window.
  size_t micro_batch_max_queries = 1024;
  /// Per-tenant token-bucket admission (serve/admission.h): each tenant's
  /// bucket refills at this many queries per second. 0 disables admission
  /// (every batch is admitted and no "tenants" stats section exists).
  double tenant_quota_qps = 0.0;
  /// Bucket depth in queries; <= 0 means max(tenant_quota_qps, 1).
  double tenant_quota_burst = 0.0;
};

/// One query's answer.
struct Answer {
  uint64_t observed = 0;      ///< O*: perturbed count over matching groups
  uint64_t matched_size = 0;  ///< |S*|: release records in matching groups
  double estimate = 0.0;      ///< MLE count reconstruction |S*| F'
  bool cached = false;        ///< served from the answer cache
};

/// One batch's answers plus serving diagnostics.
struct BatchResult {
  std::vector<Answer> answers;  ///< parallel to the request batch
  uint64_t epoch = 0;           ///< snapshot epoch the batch was served from
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  EvalStrategy strategy_used = EvalStrategy::kPostings;
};

/// Parallel batched count-query engine over a ReleaseStore.
class QueryEngine {
 public:
  explicit QueryEngine(std::shared_ptr<ReleaseStore> store,
                       QueryEngineOptions options = {});
  ~QueryEngine();

  /// Answers `batch` against the current snapshot of `release`. The whole
  /// batch is served from one snapshot (one epoch), even if the release is
  /// republished mid-batch. Errors when the release does not exist or any
  /// query's arity / SA code does not fit the release schema.
  Result<BatchResult> AnswerBatch(
      const std::string& release,
      const std::vector<recpriv::query::CountQuery>& batch);

  /// As above, but against an explicitly pinned snapshot. Callers that
  /// resolved query values to codes via a specific snapshot's schema (the
  /// wire front end) MUST evaluate against that same snapshot — fetching
  /// the release again could race a republish and evaluate old codes on a
  /// new dictionary. `release` must be the name `snap` is published under
  /// (it scopes the cache keys).
  Result<BatchResult> AnswerBatch(
      const std::string& release, SnapshotPtr snap,
      const std::vector<recpriv::query::CountQuery>& batch);

  /// Single-query convenience over AnswerBatch.
  Result<Answer> AnswerOne(const std::string& release,
                           const recpriv::query::CountQuery& q);

  /// As AnswerBatch(release, snap, batch), but routed through the
  /// micro-batching scheduler when one is configured
  /// (micro_batch_window_us > 0): concurrent same-snapshot submissions are
  /// fused into one evaluation and the answers split back, bit-identical
  /// to the unbatched path. The serving front ends call this. A batch whose
  /// `deadline` has already passed is fast-failed with DeadlineExceeded
  /// before it can occupy the pool or join a fused batch.
  Result<BatchResult> AnswerBatchScheduled(
      const std::string& release, SnapshotPtr snap,
      const std::vector<recpriv::query::CountQuery>& batch,
      const Deadline& deadline = std::nullopt);

  /// Scheduler counters, or nullopt when micro-batching is disabled.
  std::optional<client::SchedulerStats> scheduler_stats() const;

  /// Per-tenant admission counters, or nullopt when no quota is configured.
  std::optional<client::TenantStats> tenant_stats() const;

  /// The admission controller, or nullptr when no quota is configured.
  AdmissionController* admission() { return admission_.get(); }

  const QueryEngineOptions& options() const { return options_; }
  ReleaseStore& store() { return *store_; }
  AnswerCache& cache() { return cache_; }
  ThreadPool& pool() { return pool_; }

 private:
  friend class MicroBatcher;  ///< fused batches enter pre-validated

  /// AnswerBatch minus the validation pass — for the micro-batcher, whose
  /// riders were each validated before coalescing (one bad rider fails
  /// alone; re-validating the merged batch would be pure repeat work).
  Result<BatchResult> AnswerValidatedBatch(
      const std::string& release, SnapshotPtr snap,
      const std::vector<recpriv::query::CountQuery>& batch);

  std::shared_ptr<ReleaseStore> store_;
  QueryEngineOptions options_;
  AnswerCache cache_;
  ThreadPool pool_;
  std::unique_ptr<MicroBatcher> batcher_;  ///< set iff window_us > 0
  std::unique_ptr<AdmissionController> admission_;  ///< set iff quota > 0
};

/// The schema/arity validation AnswerBatch applies to every batch, exposed
/// so the micro-batcher can validate each submission BEFORE coalescing it
/// (a submission's bad query must fail that submission, never the fused
/// batch it would have joined).
Status ValidateBatchForSnapshot(
    const recpriv::analysis::ReleaseSnapshot& snap,
    const std::vector<recpriv::query::CountQuery>& batch);

/// Reference single-query evaluation against a snapshot (no cache, no
/// pool): the behavior AnswerBatch must reproduce, exposed for tests and
/// for the throughput bench's single-threaded baseline.
Answer EvaluateUncached(const recpriv::analysis::ReleaseSnapshot& snap,
                        const recpriv::query::CountQuery& q);

}  // namespace recpriv::serve
