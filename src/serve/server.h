// Server: the multi-client TCP front end of the serving stack.
//
// Event-loop + pool architecture. One poller thread owns the listener and
// every idle connection: it poll(2)s them all (plus a self-pipe for
// wakeups), accepts new connections, and when a session's socket turns
// readable hands that session to the engine's existing work-stealing
// thread pool. A pool slice drains the session's buffered requests through
// the same wire-v2 dispatcher the stdin front end uses (serve/wire.h) —
// the transport changes, the protocol byte stream does not — and runs up
// to max_requests_per_slice of them before requeueing itself, so hot
// sessions share workers fairly. When the socket runs dry the session
// returns to the poller. Idle connections therefore cost zero worker time:
// a thousand quiet clients are one poll set, not a thousand parked tasks.
//
// Admission and backpressure: at most max_connections concurrent sessions;
// a connection over the limit receives one structured UNAVAILABLE error
// line and is closed. Per-line bounds (max_line_bytes), write timeouts,
// and optional idle timeouts keep any single misbehaving peer from
// wedging a worker or growing memory.
//
// Session state: each session tracks the protocol version it negotiated
// (the first v2 request upgrades it), its request/error counts, and how
// many of its requests pinned a release epoch. Aggregated counters are
// served to clients through the wire "stats" op as the "transport" section
// (client::TransportStats).
//
// Replication push: when ServerOptions carries a SnapshotProvider, the
// server registers a ReleaseStore listener and fans every install/retire/
// drop out to subscribed sessions as pushed event lines. The listener
// thread never writes a socket directly — a session is owned by exactly
// one party at a time (poller or slice), so the fan-out only appends the
// pre-encoded line to the session's own locked push queue and wakes the
// poller; whichever party owns the session next flushes the queue. Push
// latency is therefore bounded by poll_tick_ms, not by peer traffic.
//
// Shutdown: Stop() stops accepting, closes idle connections, then lets
// every running session finish the request it is executing — in-flight
// batches drain, nothing is torn down mid-response. The destructor calls
// Stop().

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "client/api.h"
#include "common/result.h"
#include "net/line_channel.h"
#include "net/socket.h"
#include "serve/query_engine.h"

namespace recpriv::repl {
class SnapshotProvider;
}  // namespace recpriv::repl

namespace recpriv::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;             ///< 0 = kernel-assigned; read via port()
  size_t max_connections = 64;   ///< admission limit; beyond it: UNAVAILABLE
  size_t max_line_bytes = 1 << 20;  ///< request-line bound (net/line_channel.h)
  int idle_timeout_ms = 0;       ///< disconnect a silent session; 0 = never
  int write_timeout_ms = 5000;   ///< give up on a peer that stopped reading
  int poll_tick_ms = 50;         ///< poller wakeup cadence (stop latency,
                                 ///< idle-timeout granularity)
  size_t max_requests_per_slice = 64;  ///< fairness quantum per pool slice
  /// Enables the replication ops ("subscribe"/"fetch_snapshot") and epoch
  /// event push. Not owned; must outlive the server. Null = both ops
  /// answer UNSUPPORTED and no store listener is registered.
  repl::SnapshotProvider* snapshot_provider = nullptr;
  /// When set, the "stats" op reports a "replication" section — a
  /// follower exposes its own link counters and staleness bounds here.
  std::function<client::ReplicationStats()> replication_stats;
};

/// Multi-client TCP wire server over a shared QueryEngine.
class Server {
 public:
  /// Binds and starts serving immediately. The engine is shared: an
  /// InProcessClient over the same engine sees (and can administer) the
  /// same releases the TCP sessions query.
  static Result<std::unique_ptr<Server>> Start(
      std::shared_ptr<QueryEngine> engine, ServerOptions options = {});

  /// Stops (drains) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the kernel's pick when options.port was 0).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  /// Stops accepting, closes idle sessions, drains every running session's
  /// in-flight request, and joins the poller thread. Idempotent.
  void Stop();

  /// Point-in-time snapshot of the transport counters.
  client::TransportStats Metrics() const;

  /// Error responses by wire code name ("RESOURCE_EXHAUSTED", ...), for
  /// the shutdown summary. Keys are bounded by the ErrorCode enum (plus
  /// UNAVAILABLE from max_connections rejections), so the map cannot be
  /// grown by a hostile peer. Deliberately not part of the wire
  /// TransportStats shape.
  std::map<std::string, uint64_t> ErrorCodeCounts() const;

 private:
  /// One admitted connection's framing + session state. Owned by exactly
  /// one party at a time — the poller (idle) or a pool slice (running) —
  /// so its fields need no locking.
  struct Session {
    explicit Session(net::LineChannel ch) : channel(std::move(ch)) {}
    net::LineChannel channel;
    int64_t version = 1;          ///< highest protocol version negotiated
    /// True once a "hello" negotiated binary frames: requests, responses,
    /// and pushes all switch to net::LineChannel frames. Only touched by
    /// the session's current owner (a successful hello flips it in the
    /// pool slice that handled the request).
    bool binary = false;
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t epoch_pins = 0;
    std::chrono::steady_clock::time_point last_activity =
        std::chrono::steady_clock::now();
    /// Push state is the one exception to single-party ownership: the
    /// store-listener thread appends under push_mu while the owner reads,
    /// so both sides take this lock (and nothing else under it).
    std::mutex push_mu;
    bool subscribed = false;               ///< guarded by push_mu
    std::vector<std::string> pending_push;  ///< encoded event lines
  };
  using SessionPtr = std::shared_ptr<Session>;

  Server(std::shared_ptr<QueryEngine> engine, ServerOptions options);

  /// The poller thread: accept + poll idle sessions + dispatch to the pool.
  void PollLoop();
  /// Runs one cooperative slice of a session's wire loop on the pool.
  void PumpSession(const SessionPtr& session);
  void SubmitSlice(SessionPtr session);
  /// Hands a drained session back to the poller (or closes it when the
  /// poller is gone).
  void ReturnToPoller(const SessionPtr& session);
  /// Closes the session and releases its admission slot.
  void FinishSession(Session& session);
  /// Handles one request line; false when the session must close.
  bool HandleLine(const SessionPtr& session, const std::string& line);
  /// Writes one response/error JSON in the session's current framing
  /// (line, or a kFrameJson frame on binary sessions).
  bool WriteToSession(Session& session, const std::string& json);
  /// Writes the session's queued push lines; false when the peer is gone.
  bool FlushPushes(Session& session);
  /// The ReleaseStore listener: encodes the event once and enqueues it on
  /// every subscribed session (runs on the publishing thread).
  void OnStoreEvent(const StoreEvent& event);
  void WakePoller();

  std::shared_ptr<QueryEngine> engine_;
  ServerOptions options_;
  net::Listener listener_;
  uint16_t port_ = 0;
  net::UniqueFd wake_read_, wake_write_;  ///< self-pipe: unblock poll()
  std::thread poller_thread_;
  std::atomic<bool> stopping_{false};

  /// Handoff of drained sessions from pool slices back to the poller.
  std::mutex handoff_mu_;
  std::vector<SessionPtr> returned_;
  bool poller_exited_ = false;

  /// Subscribed sessions, as weak refs: a closed session just expires out
  /// of the fan-out, no unsubscribe bookkeeping on the close paths.
  std::mutex subs_mu_;
  std::vector<std::weak_ptr<Session>> subscribers_;
  uint64_t store_listener_token_ = 0;  ///< 0 = no listener registered
  std::atomic<uint64_t> events_pushed_{0};

  mutable std::mutex mu_;  ///< guards active_, ops_, and error_codes_
  std::condition_variable drained_cv_;   ///< active_ reached zero
  size_t active_ = 0;
  std::map<std::string, uint64_t> ops_;  ///< per-op request counts
  std::map<std::string, uint64_t> error_codes_;  ///< errors by wire code

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> sessions_v2_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> malformed_{0};
  std::atomic<uint64_t> oversized_{0};
  std::atomic<uint64_t> epoch_pins_{0};
  std::atomic<uint64_t> idle_disconnects_{0};
};

}  // namespace recpriv::serve
