#include "serve/query_engine.h"

#include <string_view>
#include <unordered_map>
#include <utility>

#include "perturb/mle.h"
#include "perturb/uniform_perturbation.h"
#include "query/canonical.h"
#include "serve/admission.h"
#include "serve/micro_batcher.h"

namespace recpriv::serve {

using recpriv::analysis::ReleaseSnapshot;
using recpriv::query::CountQuery;
using recpriv::table::FlatGroupIndex;
using recpriv::table::Predicate;

namespace {

/// (release name, snapshot content digest, canonical query bytes) — see
/// answer_cache.h. The digest, not the epoch number, identifies what the
/// snapshot answers: Drop followed by OpenSnapshot (replication, restart
/// recovery) can reinstall a previously-used epoch number with different
/// data, and an epoch-keyed cache would serve answers from the dropped
/// release. Keying on the digest makes that impossible — and lets a
/// bit-identical republish (e.g. an incremental publish with an empty
/// delta) keep its warm cache for free.
std::string CacheKey(const std::string& release, uint64_t content_digest,
                     const CountQuery& q) {
  std::string key;
  key.reserve(release.size() + 9 + q.na_predicate.num_bound() * 8 + 5);
  key += release;
  key.push_back('\0');
  for (int shift = 0; shift < 64; shift += 8) {
    key.push_back(char((content_digest >> shift) & 0xFF));
  }
  key += recpriv::query::CanonicalKey(q);
  return key;
}

Answer MakeAnswer(const ReleaseSnapshot& snap, uint64_t observed,
                  uint64_t matched_size) {
  // snap.up was constructed and validated once at snapshot time — no
  // per-answer operator construction on the hot path.
  Answer a;
  a.observed = observed;
  a.matched_size = matched_size;
  a.estimate = recpriv::perturb::MleCount(snap.up, observed, matched_size);
  return a;
}

/// NA-key match of one flat-indexed group, without touching rows.
bool GroupMatches(const FlatGroupIndex& index, size_t gi,
                  const Predicate& pred) {
  const auto& pub = index.public_indices();
  for (size_t k = 0; k < pub.size(); ++k) {
    if (pred.is_bound(pub[k]) && pred.code(pub[k]) != index.na_code(gi, k)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status ValidateBatchForSnapshot(const ReleaseSnapshot& snap,
                                const std::vector<CountQuery>& batch) {
  const auto& schema = *snap.bundle.data.schema();
  const size_t m = schema.sa_domain_size();
  const size_t sa_index = schema.sensitive_index();
  for (const CountQuery& q : batch) {
    if (q.na_predicate.num_attributes() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "query predicate arity does not match the release schema");
    }
    if (q.sa_code >= m) {
      return Status::InvalidArgument(
          "query SA code is outside the release's SA domain");
    }
    if (q.na_predicate.is_bound(sa_index)) {
      return Status::InvalidArgument(
          "query predicate must not bind the sensitive attribute (the SA "
          "condition goes in sa_code)");
    }
  }
  return Status::OK();
}

Answer EvaluateUncached(const ReleaseSnapshot& snap, const CountQuery& q) {
  // Fused scan: no match list is materialized and nothing is allocated.
  uint64_t observed = 0;
  uint64_t matched_size = 0;
  snap.index.AnswerInto(q.na_predicate, q.sa_code, &observed, &matched_size);
  return MakeAnswer(snap, observed, matched_size);
}

QueryEngine::QueryEngine(std::shared_ptr<ReleaseStore> store,
                         QueryEngineOptions options)
    : store_(std::move(store)),
      options_(options),
      cache_(options.cache_capacity),
      pool_(options.num_threads) {
  if (options_.micro_batch_window_us > 0) {
    MicroBatcherOptions batcher_options;
    batcher_options.window_us = options_.micro_batch_window_us;
    batcher_options.max_batch_queries = options_.micro_batch_max_queries;
    batcher_ = std::make_unique<MicroBatcher>(*this, batcher_options);
  }
  if (options_.tenant_quota_qps > 0.0) {
    AdmissionOptions admission_options;
    admission_options.quota_qps = options_.tenant_quota_qps;
    admission_options.quota_burst = options_.tenant_quota_burst;
    admission_ = std::make_unique<AdmissionController>(admission_options);
  }
}

QueryEngine::~QueryEngine() = default;

Result<BatchResult> QueryEngine::AnswerBatch(
    const std::string& release, const std::vector<CountQuery>& batch) {
  RECPRIV_ASSIGN_OR_RETURN(SnapshotPtr snap_ptr, store_->Get(release));
  return AnswerBatch(release, std::move(snap_ptr), batch);
}

Result<BatchResult> QueryEngine::AnswerBatch(
    const std::string& release, SnapshotPtr snap_ptr,
    const std::vector<CountQuery>& batch) {
  if (snap_ptr == nullptr) {
    return Status::InvalidArgument("AnswerBatch: null snapshot");
  }
  RECPRIV_RETURN_NOT_OK(ValidateBatchForSnapshot(*snap_ptr, batch));
  return AnswerValidatedBatch(release, std::move(snap_ptr), batch);
}

Result<BatchResult> QueryEngine::AnswerValidatedBatch(
    const std::string& release, SnapshotPtr snap_ptr,
    const std::vector<CountQuery>& batch) {
  const ReleaseSnapshot& snap = *snap_ptr;  // pinned for the whole batch

  BatchResult result;
  result.epoch = snap.epoch;
  result.answers.resize(batch.size());

  // Cache pass: serve hits, collect misses. Semantically duplicate queries
  // within the batch (same canonical key) are evaluated once — `dups`
  // records (duplicate index, first-occurrence index) pairs to copy after
  // evaluation. With caching disabled (capacity 0) the LRU and its lock
  // are skipped entirely, and for a single-query uncached batch (the
  // per-request serving regime) no key is built at all — dedup cannot
  // fire there, so the string and hash-map work would be pure overhead.
  const bool use_cache = options_.cache_capacity > 0;
  const bool dedup = use_cache || batch.size() > 1;
  std::vector<size_t> miss;
  std::vector<std::pair<size_t, size_t>> dups;
  std::vector<std::string> keys(dedup ? batch.size() : 0);
  std::unordered_map<std::string_view, size_t> first_miss;
  miss.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!dedup) {
      miss.push_back(i);
      continue;
    }
    keys[i] = use_cache ? CacheKey(release, snap.content_digest, batch[i])
                        : recpriv::query::CanonicalKey(batch[i]);
    CachedAnswer hit;
    if (use_cache && cache_.Lookup(keys[i], &hit)) {
      result.answers[i] =
          Answer{hit.observed, hit.matched_size, hit.estimate, true};
      ++result.cache_hits;
      continue;
    }
    auto [it, inserted] = first_miss.emplace(keys[i], i);
    if (inserted) {
      miss.push_back(i);
    } else {
      dups.emplace_back(i, it->second);
    }
  }
  result.cache_misses = batch.size() - result.cache_hits;
  if (miss.empty() && dups.empty()) return result;

  EvalStrategy strategy = options_.strategy;
  if (strategy == EvalStrategy::kAuto) {
    // A posting pass costs ~(matched groups) per query; a group-shard pass
    // costs one scan of all groups for the whole batch. Prefer the scan
    // once the batch is a sizable fraction of the group count.
    strategy = (miss.size() * 4 >= snap.index.num_groups())
                   ? EvalStrategy::kGroupShard
                   : EvalStrategy::kPostings;
  }
  result.strategy_used = strategy;

  if (strategy == EvalStrategy::kPostings) {
    pool_.ParallelFor(
        0, miss.size(), pool_.GrainFor(miss.size()),
        [&](size_t lo, size_t hi) {
          // Scratch lives per chunk: reused across the chunk's queries,
          // never shared between workers, and released when the chunk
          // ends — the engine is the owner of its kernels' memory.
          table::AnswerScratch scratch;
          for (size_t k = lo; k < hi; ++k) {
            const CountQuery& q = batch[miss[k]];
            snap.postings->MatchingGroupsInto(q.na_predicate,
                                              scratch.intersect,
                                              scratch.groups);
            uint64_t observed = 0;
            uint64_t matched_size = 0;
            for (uint32_t gi : scratch.groups) {
              observed += snap.index.sa_count(gi, q.sa_code);
              matched_size += snap.index.group_size(gi);
            }
            result.answers[miss[k]] = MakeAnswer(snap, observed, matched_size);
          }
        });
  } else {
    // Shard-by-group: every worker scans a contiguous shard of groups once
    // for all uncached queries, then the per-shard partial sums reduce.
    const size_t num_groups = snap.index.num_groups();
    const size_t grain = pool_.GrainFor(num_groups, /*min_grain=*/64);
    const size_t num_shards = num_groups == 0 ? 0 : (num_groups + grain - 1) / grain;
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> partials(
        num_shards);
    pool_.ParallelFor(0, num_groups, grain, [&](size_t lo, size_t hi) {
      auto& part = partials[lo / grain];  // chunks are grain-aligned
      part.assign(miss.size(), {0, 0});
      for (size_t gi = lo; gi < hi; ++gi) {
        const uint64_t size = snap.index.group_size(gi);
        for (size_t k = 0; k < miss.size(); ++k) {
          const CountQuery& q = batch[miss[k]];
          if (GroupMatches(snap.index, gi, q.na_predicate)) {
            part[k].first += snap.index.sa_count(gi, q.sa_code);
            part[k].second += size;
          }
        }
      }
    });
    for (size_t k = 0; k < miss.size(); ++k) {
      uint64_t observed = 0;
      uint64_t matched_size = 0;
      for (const auto& part : partials) {
        if (part.empty()) continue;  // shard never ran (empty range)
        observed += part[k].first;
        matched_size += part[k].second;
      }
      result.answers[miss[k]] = MakeAnswer(snap, observed, matched_size);
    }
  }

  for (const auto& [dup, original] : dups) {
    result.answers[dup] = result.answers[original];
  }
  if (use_cache) {
    for (size_t k : miss) {
      const Answer& a = result.answers[k];
      cache_.Insert(keys[k], CachedAnswer{a.observed, a.matched_size,
                                          a.estimate});
    }
  }
  return result;
}

Result<BatchResult> QueryEngine::AnswerBatchScheduled(
    const std::string& release, SnapshotPtr snap,
    const std::vector<CountQuery>& batch, const Deadline& deadline) {
  // Shed before the pool: evaluating a batch nobody is waiting for would
  // spend workers on dead work under exactly the overload that set the
  // deadline off.
  if (DeadlineExpired(deadline)) {
    return Status::DeadlineExceeded(
        "deadline passed before the batch reached the engine");
  }
  if (batcher_ == nullptr || batch.empty()) {
    return AnswerBatch(release, std::move(snap), batch);
  }
  return batcher_->Submit(release, std::move(snap), batch, deadline);
}

std::optional<client::SchedulerStats> QueryEngine::scheduler_stats() const {
  if (batcher_ == nullptr) return std::nullopt;
  return batcher_->Stats();
}

std::optional<client::TenantStats> QueryEngine::tenant_stats() const {
  if (admission_ == nullptr) return std::nullopt;
  return admission_->Stats();
}

Result<Answer> QueryEngine::AnswerOne(const std::string& release,
                                      const CountQuery& q) {
  RECPRIV_ASSIGN_OR_RETURN(BatchResult batch, AnswerBatch(release, {q}));
  return batch.answers[0];
}

}  // namespace recpriv::serve
