#include "serve/answer_cache.h"

namespace recpriv::serve {

bool AnswerCache::Lookup(const std::string& key, CachedAnswer* out) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  ++hits_;
  return true;
}

void AnswerCache::Insert(const std::string& key, const CachedAnswer& value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, value);
  map_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void AnswerCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t AnswerCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t AnswerCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace recpriv::serve
