#include "serve/release_store.h"

#include <algorithm>
#include <utility>

namespace recpriv::serve {

using recpriv::analysis::ReleaseBundle;
using recpriv::analysis::SnapshotRelease;

ReleaseStore::ReleaseStore(size_t retained_epochs)
    : retained_(std::max<size_t>(retained_epochs, 1)) {}

Result<SnapshotPtr> ReleaseStore::Publish(const std::string& name,
                                          ReleaseBundle bundle,
                                          ReleaseInfo* info) {
  if (name.empty()) {
    return Status::InvalidArgument("release name must be non-empty");
  }
  // Reserve a unique, strictly increasing epoch up front, then build the
  // snapshot outside the lock (indexing a large release is the expensive
  // part). Concurrent publishers to the same name each get their own epoch;
  // the window is kept epoch-sorted, so a slow stale publish can never
  // displace a newer snapshot from the served slot and cache keys never
  // repeat.
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = ++next_epoch_[name];
  }
  RECPRIV_ASSIGN_OR_RETURN(SnapshotPtr snap,
                           SnapshotRelease(std::move(bundle), epoch));
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotPtr>& window = releases_[name];
  auto pos = std::upper_bound(
      window.begin(), window.end(), snap->epoch,
      [](uint64_t e, const SnapshotPtr& s) { return e < s->epoch; });
  window.insert(pos, std::move(snap));
  if (window.size() > retained_) {
    window.erase(window.begin(), window.end() - retained_);
  }
  if (info != nullptr) *info = InfoLocked(name, window);
  return window.back();
}

Result<SnapshotPtr> ReleaseStore::PublishFromStreaming(
    const std::string& name,
    const recpriv::core::StreamingPublisher& publisher, Rng& rng) {
  RECPRIV_ASSIGN_OR_RETURN(recpriv::core::SpsTableResult sps,
                           publisher.Publish(rng));
  std::string sensitive = sps.table.schema()->sensitive().name;
  ReleaseBundle bundle{std::move(sps.table), publisher.params(),
                       std::move(sensitive),
                       /*generalization=*/{}};
  return Publish(name, std::move(bundle));
}

Result<SnapshotPtr> ReleaseStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  return it->second.back();
}

Result<SnapshotPtr> ReleaseStore::Get(const std::string& name,
                                      uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  for (const SnapshotPtr& snap : it->second) {
    if (snap->epoch == epoch) return snap;
  }
  return Status::FailedPrecondition(
      "epoch " + std::to_string(epoch) + " of release '" + name +
      "' is not retained (retained epochs " +
      std::to_string(it->second.front()->epoch) + ".." +
      std::to_string(it->second.back()->epoch) + ")");
}

Result<ReleaseInfo> ReleaseStore::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  ReleaseInfo info = InfoLocked(name, it->second);
  releases_.erase(it);
  return info;
}

Result<ReleaseInfo> ReleaseStore::Info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  return InfoLocked(name, it->second);
}

std::vector<ReleaseInfo> ReleaseStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReleaseInfo> out;
  out.reserve(releases_.size());
  for (const auto& [name, window] : releases_) {
    out.push_back(InfoLocked(name, window));
  }
  return out;
}

size_t ReleaseStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return releases_.size();
}

ReleaseInfo ReleaseStore::InfoLocked(
    const std::string& name, const std::vector<SnapshotPtr>& window) const {
  const SnapshotPtr& served = window.back();
  return ReleaseInfo{name,
                     served->epoch,
                     served->index.num_records(),
                     served->index.num_groups(),
                     window.size(),
                     window.front()->epoch};
}

}  // namespace recpriv::serve
