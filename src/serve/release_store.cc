#include "serve/release_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/timer.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"

namespace recpriv::serve {

using recpriv::analysis::ReleaseBundle;
using recpriv::analysis::SnapshotRelease;

namespace {

/// Filesystem-safe spelling of a release name: alnum, '-' and '_' pass
/// through, everything else (including '%') becomes %XX. The manifest, not
/// the filename, remains the authority on identity at recovery time.
std::string SanitizeName(const std::string& name) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const auto u = static_cast<unsigned char>(c);
    if ((u >= 'a' && u <= 'z') || (u >= 'A' && u <= 'Z') ||
        (u >= '0' && u <= '9') || u == '-' || u == '_') {
      out += c;
    } else {
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    }
  }
  return out;
}

}  // namespace

ReleaseStore::ReleaseStore(size_t retained_epochs)
    : ReleaseStore(Options{retained_epochs, /*snapshot_dir=*/""}) {}

ReleaseStore::ReleaseStore(Options options)
    : retained_(std::max<size_t>(options.retained_epochs, 1)),
      snapshot_dir_(std::move(options.snapshot_dir)) {}

std::string ReleaseStore::ManagedPath(const std::string& name,
                                      uint64_t epoch) const {
  return snapshot_dir_ + "/" + SanitizeName(name) + "-e" +
         std::to_string(epoch) + ".rps";
}

std::vector<uint64_t> ReleaseStore::InstallLocked(const std::string& name,
                                                  SnapshotPtr snap) {
  std::vector<SnapshotPtr>& window = releases_[name];
  auto pos = std::upper_bound(
      window.begin(), window.end(), snap->epoch,
      [](uint64_t e, const SnapshotPtr& s) { return e < s->epoch; });
  window.insert(pos, std::move(snap));
  std::vector<uint64_t> evicted;
  if (window.size() > retained_) {
    for (auto it = window.begin(); it != window.end() - retained_; ++it) {
      evicted.push_back((*it)->epoch);
    }
    window.erase(window.begin(), window.end() - retained_);
  }
  return evicted;
}

void ReleaseStore::Notify(const std::vector<StoreEvent>& events) const {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(listeners_mu_);
  for (const StoreEvent& event : events) {
    for (const auto& [token, listener] : listeners_) {
      listener(event);
    }
  }
}

uint64_t ReleaseStore::AddListener(
    std::function<void(const StoreEvent&)> listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  const uint64_t token = ++next_listener_token_;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void ReleaseStore::RemoveListener(uint64_t token) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(token);
}

Result<SnapshotPtr> ReleaseStore::Publish(const std::string& name,
                                          ReleaseBundle bundle,
                                          ReleaseInfo* info) {
  return PublishWithSource(name, std::move(bundle),
                           recpriv::analysis::SnapshotSource{}, info);
}

Result<SnapshotPtr> ReleaseStore::PublishWithSource(
    const std::string& name, ReleaseBundle bundle,
    recpriv::analysis::SnapshotSource source, ReleaseInfo* info) {
  if (name.empty()) {
    return Status::InvalidArgument("release name must be non-empty");
  }
  // Reserve a unique, strictly increasing epoch up front, then build the
  // snapshot outside the lock (indexing a large release is the expensive
  // part). Concurrent publishers to the same name each get their own epoch;
  // the window is kept epoch-sorted, so a slow stale publish can never
  // displace a newer snapshot from the served slot and cache keys never
  // repeat.
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = ++next_epoch_[name];
  }
  RECPRIV_ASSIGN_OR_RETURN(
      SnapshotPtr snap,
      SnapshotRelease(std::move(bundle), epoch, std::move(source)));
  return InstallBuilt(name, std::move(snap), info);
}

Result<SnapshotPtr> ReleaseStore::InstallBuilt(const std::string& name,
                                               SnapshotPtr snap,
                                               ReleaseInfo* info) {
  const uint64_t epoch = snap->epoch;
  // A durable store persists before it installs: a publish that is visible
  // to queries but missing from disk would silently vanish on restart.
  if (!snapshot_dir_.empty()) {
    RECPRIV_RETURN_NOT_OK(
        recpriv::store::WriteSnapshot(*snap, name, ManagedPath(name, epoch)));
  }
  SnapshotPtr served;
  std::vector<uint64_t> evicted;
  std::vector<StoreEvent> events;
  events.push_back({StoreEvent::Kind::kInstall, name, epoch, snap});
  {
    std::lock_guard<std::mutex> lock(mu_);
    evicted = InstallLocked(name, std::move(snap));
    const std::vector<SnapshotPtr>& window = releases_[name];
    if (info != nullptr) *info = InfoLocked(name, window);
    served = window.back();
  }
  for (const uint64_t e : evicted) {
    if (!snapshot_dir_.empty()) std::remove(ManagedPath(name, e).c_str());
    events.push_back({StoreEvent::Kind::kRetire, name, e, nullptr});
  }
  Notify(events);
  return served;
}

Result<SnapshotPtr> ReleaseStore::PublishFromStreaming(
    const std::string& name,
    const recpriv::core::StreamingPublisher& publisher, Rng& rng) {
  RECPRIV_ASSIGN_OR_RETURN(recpriv::core::SpsTableResult sps,
                           publisher.Publish(rng));
  std::string sensitive = sps.table.schema()->sensitive().name;
  ReleaseBundle bundle{std::move(sps.table), publisher.params(),
                       std::move(sensitive),
                       /*generalization=*/{}};
  return Publish(name, std::move(bundle));
}

Result<SnapshotPtr> ReleaseStore::PublishIncremental(
    const std::string& name, recpriv::core::StreamingPublisher& publisher,
    Rng& rng, bool merge_index,
    recpriv::core::IncrementalPublishStats* stats) {
  if (name.empty()) {
    return Status::InvalidArgument("release name must be non-empty");
  }
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = ++next_epoch_[name];
  }
  // Keepalive across the merge: hold the currently served snapshot (the
  // merge's base level) until the new epoch is fully assembled, so a
  // concurrent Drop or retention trim cannot release base-derived memory
  // while the publish still reads it.
  SnapshotPtr base;
  if (const Result<SnapshotPtr> got = Get(name); got.ok()) base = *got;

  recpriv::analysis::SnapshotSource source;
  source.kind = "incremental";
  WallTimer timer;
  RECPRIV_ASSIGN_OR_RETURN(recpriv::core::IncrementalPublishResult result,
                           publisher.PublishIncremental(rng, merge_index));
  source.build_ms = timer.Millis();
  if (stats != nullptr) *stats = result.stats;

  std::string sensitive = result.table.schema()->sensitive().name;
  ReleaseBundle bundle{std::move(result.table), publisher.params(),
                       std::move(sensitive),
                       /*generalization=*/{}};
  RECPRIV_ASSIGN_OR_RETURN(
      SnapshotPtr snap,
      recpriv::analysis::AssembleSnapshot(std::move(bundle), epoch,
                                          std::move(result.index),
                                          std::move(source)));
  return InstallBuilt(name, std::move(snap), /*info=*/nullptr);
}

Result<SnapshotPtr> ReleaseStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  return it->second.back();
}

Result<SnapshotPtr> ReleaseStore::Get(const std::string& name,
                                      uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  for (const SnapshotPtr& snap : it->second) {
    if (snap->epoch == epoch) return snap;
  }
  return Status::FailedPrecondition(
      "epoch " + std::to_string(epoch) + " of release '" + name +
      "' is not retained (retained epochs " +
      std::to_string(it->second.front()->epoch) + ".." +
      std::to_string(it->second.back()->epoch) + ")");
}

Result<ReleaseInfo> ReleaseStore::Drop(const std::string& name) {
  ReleaseInfo info;
  std::vector<uint64_t> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = releases_.find(name);
    if (it == releases_.end()) {
      return Status::NotFound("no release named '" + name + "'");
    }
    info = InfoLocked(name, it->second);
    for (const SnapshotPtr& snap : it->second) {
      dropped.push_back(snap->epoch);
    }
    releases_.erase(it);
  }
  // A dropped release's files go too — otherwise recovery would resurrect
  // a release the operator explicitly retired.
  if (!snapshot_dir_.empty()) {
    for (const uint64_t e : dropped) {
      std::remove(ManagedPath(name, e).c_str());
    }
  }
  Notify({{StoreEvent::Kind::kDrop, name, info.epoch, nullptr}});
  return info;
}

Status ReleaseStore::SaveSnapshot(const std::string& name,
                                  const std::string& path) const {
  RECPRIV_ASSIGN_OR_RETURN(SnapshotPtr snap, Get(name));
  return recpriv::store::WriteSnapshot(*snap, name, path);
}

Result<ReleaseInfo> ReleaseStore::OpenSnapshot(const std::string& path) {
  RECPRIV_ASSIGN_OR_RETURN(recpriv::store::OpenedSnapshot opened,
                           recpriv::store::OpenSnapshot(path));
  const std::string name = opened.release;
  if (name.empty()) {
    return Status::DataLoss(path + ": snapshot has an empty release name");
  }
  const uint64_t epoch = opened.snapshot->epoch;
  ReleaseInfo info;
  std::vector<uint64_t> evicted;
  std::vector<StoreEvent> events;
  events.push_back({StoreEvent::Kind::kInstall, name, epoch, opened.snapshot});
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = releases_.find(name);
    if (it != releases_.end()) {
      for (const SnapshotPtr& snap : it->second) {
        if (snap->epoch == epoch) {
          return Status::AlreadyExists("epoch " + std::to_string(epoch) +
                                       " of release '" + name +
                                       "' is already installed");
        }
      }
    }
    evicted = InstallLocked(name, std::move(opened.snapshot));
    uint64_t& next = next_epoch_[name];
    next = std::max(next, epoch);
    info = InfoLocked(name, releases_[name]);
  }
  for (const uint64_t e : evicted) {
    if (!snapshot_dir_.empty()) std::remove(ManagedPath(name, e).c_str());
    events.push_back({StoreEvent::Kind::kRetire, name, e, nullptr});
  }
  Notify(events);
  return info;
}

Status ReleaseStore::RecoverFromDir() {
  if (snapshot_dir_.empty()) {
    return Status::FailedPrecondition(
        "RecoverFromDir on a store without a snapshot directory");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(snapshot_dir_, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot directory " +
                           snapshot_dir_ + ": " + ec.message());
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(snapshot_dir_, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".rps") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::IOError("cannot scan snapshot directory " + snapshot_dir_ +
                           ": " + ec.message());
  }
  // Deterministic order; the window trim keeps the newest epochs whatever
  // the order, but error messages and eviction order stay reproducible.
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    const auto installed = OpenSnapshot(path);
    if (!installed.ok()) {
      return Status(installed.status().code(),
                    "snapshot recovery failed: " +
                        installed.status().message());
    }
  }
  return Status::OK();
}

Result<ReleaseInfo> ReleaseStore::Info(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  return InfoLocked(name, it->second);
}

Result<std::vector<SnapshotPtr>> ReleaseStore::Window(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  return it->second;
}

Result<std::string> ReleaseStore::ManagedSnapshotPath(const std::string& name,
                                                      uint64_t epoch) const {
  if (snapshot_dir_.empty()) {
    return Status::FailedPrecondition(
        "ManagedSnapshotPath on a store without a snapshot directory");
  }
  return ManagedPath(name, epoch);
}

std::vector<ReleaseInfo> ReleaseStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReleaseInfo> out;
  out.reserve(releases_.size());
  for (const auto& [name, window] : releases_) {
    out.push_back(InfoLocked(name, window));
  }
  return out;
}

size_t ReleaseStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return releases_.size();
}

ReleaseInfo ReleaseStore::InfoLocked(
    const std::string& name, const std::vector<SnapshotPtr>& window) const {
  const SnapshotPtr& served = window.back();
  ReleaseInfo info;
  info.name = name;
  info.epoch = served->epoch;
  info.num_records = served->index.num_records();
  info.num_groups = served->index.num_groups();
  info.retained_epochs = window.size();
  info.oldest_epoch = window.front()->epoch;
  info.source_kind = served->source.kind;
  info.source_open_ms = served->source.open_ms;
  info.source_parse_ms = served->source.parse_ms;
  info.source_build_ms = served->source.build_ms;
  info.source_bytes_mapped = served->source.bytes_mapped;
  return info;
}

}  // namespace recpriv::serve
