#include "serve/release_store.h"

#include <utility>

namespace recpriv::serve {

using recpriv::analysis::ReleaseBundle;
using recpriv::analysis::SnapshotRelease;

Result<SnapshotPtr> ReleaseStore::Publish(const std::string& name,
                                          ReleaseBundle bundle) {
  if (name.empty()) {
    return Status::InvalidArgument("release name must be non-empty");
  }
  // Reserve a unique, strictly increasing epoch up front, then build the
  // snapshot outside the lock (indexing a large release is the expensive
  // part). Concurrent publishers to the same name each get their own epoch;
  // whichever holds the highest one wins the slot, so a slow stale publish
  // can never overwrite a newer snapshot and cache keys never repeat.
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = ++next_epoch_[name];
  }
  RECPRIV_ASSIGN_OR_RETURN(SnapshotPtr snap,
                           SnapshotRelease(std::move(bundle), epoch));
  std::lock_guard<std::mutex> lock(mu_);
  SnapshotPtr& slot = releases_[name];
  if (slot == nullptr || slot->epoch < snap->epoch) slot = std::move(snap);
  return slot;
}

Result<SnapshotPtr> ReleaseStore::PublishFromStreaming(
    const std::string& name,
    const recpriv::core::StreamingPublisher& publisher, Rng& rng) {
  RECPRIV_ASSIGN_OR_RETURN(recpriv::core::SpsTableResult sps,
                           publisher.Publish(rng));
  std::string sensitive = sps.table.schema()->sensitive().name;
  ReleaseBundle bundle{std::move(sps.table), publisher.params(),
                       std::move(sensitive),
                       /*generalization=*/{}};
  return Publish(name, std::move(bundle));
}

Result<SnapshotPtr> ReleaseStore::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = releases_.find(name);
  if (it == releases_.end()) {
    return Status::NotFound("no release named '" + name + "'");
  }
  return it->second;
}

std::vector<ReleaseInfo> ReleaseStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReleaseInfo> out;
  out.reserve(releases_.size());
  for (const auto& [name, snap] : releases_) {
    out.push_back(ReleaseInfo{name, snap->epoch, snap->index.num_records(),
                              snap->index.num_groups()});
  }
  return out;
}

size_t ReleaseStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return releases_.size();
}

}  // namespace recpriv::serve
