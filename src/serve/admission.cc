#include "serve/admission.h"

#include <algorithm>

namespace recpriv::serve {

using Clock = std::chrono::steady_clock;

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      burst_(options.quota_burst > 0.0
                 ? options.quota_burst
                 : std::max(options.quota_qps, 1.0)) {}

AdmissionController::Bucket& AdmissionController::BucketFor(
    const std::string& tenant) {
  const std::string& name = tenant.empty() ? kDefaultTenant : tenant;
  auto it = buckets_.find(name);
  if (it != buckets_.end()) return it->second;
  if (buckets_.size() >= options_.max_tenants &&
      name != kOverflowTenant) {
    return BucketFor(kOverflowTenant);
  }
  Bucket bucket;
  bucket.tokens = burst_;  // a new tenant starts with a full bucket
  bucket.last_refill = Clock::now();
  return buckets_.emplace(name, std::move(bucket)).first->second;
}

bool AdmissionController::Admit(const std::string& tenant, size_t queries) {
  const double cost = double(std::max<size_t>(queries, 1));
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = BucketFor(tenant);
  const Clock::time_point now = Clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - bucket.last_refill).count();
  bucket.last_refill = now;
  bucket.tokens =
      std::min(burst_, bucket.tokens + elapsed * options_.quota_qps);
  if (bucket.tokens < cost) {
    ++bucket.counters.rejected;
    return false;
  }
  bucket.tokens -= cost;
  ++bucket.counters.admitted;
  return true;
}

void AdmissionController::CountShed(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++BucketFor(tenant).counters.shed;
}

client::TenantStats AdmissionController::Stats() const {
  client::TenantStats out;
  out.quota_qps = options_.quota_qps;
  out.quota_burst = burst_;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, bucket] : buckets_) {
    out.tenants[name] = bucket.counters;
  }
  return out;
}

}  // namespace recpriv::serve
