#include "serve/server.h"

#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>
#include <utility>

#include "repl/digest.h"
#include "repl/snapshot_provider.h"
#include "serve/wire.h"

namespace recpriv::serve {

namespace {

using Clock = std::chrono::steady_clock;

bool IsBlank(const std::string& line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

Server::Server(std::shared_ptr<QueryEngine> engine, ServerOptions options)
    : engine_(std::move(engine)), options_(std::move(options)) {}

Result<std::unique_ptr<Server>> Server::Start(
    std::shared_ptr<QueryEngine> engine, ServerOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("server needs an engine");
  }
  if (options.max_connections == 0) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (options.poll_tick_ms <= 0) options.poll_tick_ms = 50;
  if (options.max_requests_per_slice == 0) options.max_requests_per_slice = 1;

  // unique_ptr: the poller thread and pool slices capture `this`, so the
  // server must not move after Start.
  std::unique_ptr<Server> server(
      new Server(std::move(engine), std::move(options)));
  RECPRIV_ASSIGN_OR_RETURN(
      server->listener_,
      net::Listener::Bind(server->options_.host, server->options_.port));
  server->port_ = server->listener_.port();

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    return Status::IOError("pipe: failed to create poller wake pipe");
  }
  server->wake_read_ = net::UniqueFd(pipe_fds[0]);
  server->wake_write_ = net::UniqueFd(pipe_fds[1]);
  ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(pipe_fds[1], F_SETFL, O_NONBLOCK);

  if (server->options_.snapshot_provider != nullptr) {
    // Registered before the poller starts, so no session can subscribe
    // before events flow. Fan-out only touches the locked push queues, so
    // it is safe from any publishing thread.
    server->store_listener_token_ = server->engine_->store().AddListener(
        [s = server.get()](const StoreEvent& event) { s->OnStoreEvent(event); });
  }

  server->poller_thread_ = std::thread([s = server.get()] { s->PollLoop(); });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  bool expected = false;
  if (stopping_.compare_exchange_strong(expected, true)) {
    // Detach from the store first: RemoveListener blocks until in-flight
    // fan-out finishes, so no event touches a session once teardown starts.
    if (store_listener_token_ != 0) {
      engine_->store().RemoveListener(store_listener_token_);
      store_listener_token_ = 0;
    }
    WakePoller();
    if (poller_thread_.joinable()) poller_thread_.join();
    // Closed only after the join: no thread may poll a recycled fd.
    listener_.Close();
  }
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return active_ == 0; });
}

void Server::WakePoller() {
  const char byte = 1;
  if (wake_write_.valid()) {
    // Best effort: a full pipe already guarantees a pending wakeup.
    (void)!::write(wake_write_.get(), &byte, 1);
  }
}

client::TransportStats Server::Metrics() const {
  client::TransportStats t;
  t.connections_accepted = accepted_.load();
  t.connections_rejected = rejected_.load();
  t.sessions_v2 = sessions_v2_.load();
  t.requests = requests_.load();
  t.errors = errors_.load();
  t.malformed_lines = malformed_.load();
  t.oversized_lines = oversized_.load();
  t.idle_disconnects = idle_disconnects_.load();
  t.epoch_pins = epoch_pins_.load();
  {
    std::lock_guard<std::mutex> lock(mu_);
    t.connections_active = active_;
    t.ops = ops_;
  }
  return t;
}

std::map<std::string, uint64_t> Server::ErrorCodeCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_codes_;
}

void Server::PollLoop() {
  std::vector<SessionPtr> idle;
  std::vector<struct pollfd> pollfds;

  while (!stopping_.load()) {
    // Collect sessions the pool slices handed back.
    {
      std::lock_guard<std::mutex> lock(handoff_mu_);
      for (SessionPtr& s : returned_) idle.push_back(std::move(s));
      returned_.clear();
    }

    // A session with queued push lines must not sit waiting for peer
    // traffic — hand it to the pool, whose slice flushes the queue first.
    for (size_t i = 0; i < idle.size();) {
      bool pending;
      {
        std::lock_guard<std::mutex> lock(idle[i]->push_mu);
        pending = !idle[i]->pending_push.empty();
      }
      if (pending) {
        SubmitSlice(std::move(idle[i]));
        idle[i] = std::move(idle.back());
        idle.pop_back();
      } else {
        ++i;
      }
    }

    // Enforce the idle timeout (granularity: poll_tick_ms). Subscribed
    // sessions are exempt — a caught-up follower is legitimately silent
    // for as long as no publish happens; a dead one fails the push write.
    if (options_.idle_timeout_ms > 0) {
      const auto now = Clock::now();
      for (size_t i = 0; i < idle.size();) {
        bool subscribed;
        {
          std::lock_guard<std::mutex> lock(idle[i]->push_mu);
          subscribed = idle[i]->subscribed;
        }
        if (!subscribed &&
            now - idle[i]->last_activity >
                std::chrono::milliseconds(options_.idle_timeout_ms)) {
          idle_disconnects_.fetch_add(1);
          FinishSession(*idle[i]);
          idle[i] = std::move(idle.back());
          idle.pop_back();
        } else {
          ++i;
        }
      }
    }

    pollfds.clear();
    pollfds.push_back({wake_read_.get(), POLLIN, 0});
    pollfds.push_back({listener_.fd(), POLLIN, 0});
    for (const SessionPtr& s : idle) {
      pollfds.push_back({s->channel.fd(), POLLIN, 0});
    }

    const int rc = ::poll(pollfds.data(), nfds_t(pollfds.size()),
                          options_.poll_tick_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poller cannot continue; Stop() will still drain
    }

    if (pollfds[0].revents != 0) {  // drain wake bytes
      char buf[64];
      while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
      }
    }

    // Hand readable sessions to the pool (reverse order keeps the
    // swap-remove indices valid).
    for (size_t i = pollfds.size(); i-- > 2;) {
      if (pollfds[i].revents == 0) continue;
      const size_t k = i - 2;
      SessionPtr session = std::move(idle[k]);
      idle[k] = std::move(idle.back());
      idle.pop_back();
      SubmitSlice(std::move(session));
    }

    if (pollfds[1].revents != 0) {
      auto accepted = listener_.Accept(/*timeout_ms=*/0);
      if (!accepted.ok()) break;  // the listening socket itself is broken
      if (accepted->timed_out) {
        // A vanished connection or transient exhaustion (Accept maps both
        // to a quiet tick). The listener may still be readable, so sleep
        // one tick rather than re-polling into a busy loop while e.g. fd
        // limits are exhausted.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.poll_tick_ms));
        continue;
      }

      net::LineChannelOptions channel_options;
      channel_options.max_line_bytes = options_.max_line_bytes;
      net::LineChannel channel(std::move(accepted->fd), channel_options);

      bool admitted = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (active_ < options_.max_connections) {
          ++active_;
          admitted = true;
        }
      }
      if (!admitted) {
        rejected_.fetch_add(1);
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++error_codes_[std::string(
              client::ErrorCodeName(client::ErrorCode::kUnavailable))];
        }
        // Best effort: tell the peer why before closing. Bounded write, so
        // a deaf peer costs at most the timeout.
        (void)channel.WriteLine(
            ErrorResponseLine(client::ErrorCode::kUnavailable,
                              "server at max_connections (" +
                                  std::to_string(options_.max_connections) +
                                  "); retry later"),
            /*timeout_ms=*/1000);
        continue;
      }
      accepted_.fetch_add(1);
      idle.push_back(std::make_shared<Session>(std::move(channel)));
    }
  }

  // Shutdown: close every idle session and mark the poller gone so slices
  // finish their sessions instead of handing them back.
  std::vector<SessionPtr> leftover;
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    poller_exited_ = true;
    leftover = std::move(returned_);
    returned_.clear();
  }
  for (const SessionPtr& s : idle) FinishSession(*s);
  for (const SessionPtr& s : leftover) FinishSession(*s);
}

void Server::SubmitSlice(SessionPtr session) {
  engine_->pool().Submit(
      [this, session = std::move(session)] { PumpSession(session); });
}

void Server::ReturnToPoller(const SessionPtr& session) {
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    if (!poller_exited_) {
      returned_.push_back(session);
      WakePoller();
      return;
    }
  }
  FinishSession(*session);
}

void Server::FinishSession(Session& session) {
  session.channel.Close();
  std::lock_guard<std::mutex> lock(mu_);
  --active_;
  drained_cv_.notify_all();
}

bool Server::WriteToSession(Session& session, const std::string& json) {
  if (session.binary) {
    return session.channel
        .WriteFrame(json, std::string_view(), options_.write_timeout_ms)
        .ok();
  }
  return session.channel.WriteLine(json, options_.write_timeout_ms).ok();
}

bool Server::HandleLine(const SessionPtr& session, const std::string& line) {
  RequestContext context;
  context.transport_stats = [this] { return Metrics(); };
  context.snapshots = options_.snapshot_provider;
  context.replication_stats = options_.replication_stats;
  context.allow_binary_frame = true;
  context.binary_session = session->binary;
  if (options_.snapshot_provider != nullptr) {
    context.on_subscribe = [this, &session] {
      {
        std::lock_guard<std::mutex> lock(session->push_mu);
        if (session->subscribed) return true;  // re-subscribe is idempotent
        session->subscribed = true;
      }
      std::lock_guard<std::mutex> lock(subs_mu_);
      subscribers_.push_back(session);
      return true;
    };
  }
  RequestInfo info;
  const std::string response =
      HandleRequestLine(line, *engine_, context, &info);

  requests_.fetch_add(1);
  ++session->requests;
  if (!info.parsed) {
    malformed_.fetch_add(1);
  }
  if (!info.ok) {
    errors_.fetch_add(1);
    ++session->errors;
  }
  if (info.pinned_epoch) {
    epoch_pins_.fetch_add(1);
    ++session->epoch_pins;
  }
  if (info.version > session->version) {
    session->version = info.version;
    if (info.version >= kWireVersionCurrent) sessions_v2_.fetch_add(1);
  }
  {
    // Client-chosen op strings must not become map keys (a peer cycling
    // made-up ops would grow this without bound): unknown ops share one
    // bucket. Error-code keys are already bounded by the enum.
    std::lock_guard<std::mutex> lock(mu_);
    ++ops_[IsKnownOp(info.op) ? info.op : std::string("(other)")];
    if (!info.ok) {
      ++error_codes_[std::string(client::ErrorCodeName(info.error_code))];
    }
  }
  bool alive;
  if (session->binary && !info.attachment.empty()) {
    // A bulk response (fetch_snapshot chunk): JSON + raw attachment in one
    // kFrameJsonWithBytes frame.
    alive = session->channel
                .WriteFrame(response, info.attachment,
                            options_.write_timeout_ms)
                .ok();
  } else {
    alive = WriteToSession(*session, response);
  }
  // The hello response itself goes out in the old framing (above); the
  // negotiated framing applies from the next request on. Renegotiation is
  // symmetric — hello with "frame":"json" switches a binary session back.
  if (alive && info.ok && info.op == "hello") {
    session->binary = info.negotiated_binary;
  }
  return alive;
}

bool Server::FlushPushes(Session& session) {
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(session.push_mu);
    lines.swap(session.pending_push);
  }
  for (const std::string& line : lines) {
    if (!WriteToSession(session, line)) {
      return false;
    }
    events_pushed_.fetch_add(1);
  }
  return true;
}

void Server::OnStoreEvent(const StoreEvent& event) {
  client::EpochEvent out;
  out.release = event.release;
  out.epoch = event.epoch;
  switch (event.kind) {
    case StoreEvent::Kind::kInstall: {
      out.kind = client::EpochEvent::Kind::kPublish;
      // Pack from the event's own snapshot (no store re-lookup race) —
      // this also warms the provider cache for the fetches that follow.
      auto packed =
          options_.snapshot_provider->Pack(event.release, event.snapshot);
      if (!packed.ok()) return;  // unserializable: followers resync later
      out.digest = repl::FormatDigest(packed->digest);
      break;
    }
    case StoreEvent::Kind::kRetire:
      out.kind = client::EpochEvent::Kind::kRetire;
      break;
    case StoreEvent::Kind::kDrop:
      out.kind = client::EpochEvent::Kind::kDrop;
      break;
  }
  const std::string line = wire::EncodeEpochEvent(out).ToString();

  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (size_t i = 0; i < subscribers_.size();) {
      SessionPtr session = subscribers_[i].lock();
      if (session == nullptr) {  // closed; let the slot expire out
        subscribers_[i] = std::move(subscribers_.back());
        subscribers_.pop_back();
        continue;
      }
      {
        std::lock_guard<std::mutex> push_lock(session->push_mu);
        session->pending_push.push_back(line);
      }
      queued = true;
      ++i;
    }
  }
  if (queued) WakePoller();
}

void Server::PumpSession(const SessionPtr& session) {
  for (size_t handled = 0; handled < options_.max_requests_per_slice;
       ++handled) {
    if (stopping_.load()) {
      FinishSession(*session);
      return;
    }
    // Queued push lines go out before the next request is read: a
    // subscribed follower idling between requests still sees epoch events
    // promptly, and events never interleave into the middle of a response.
    if (!FlushPushes(*session)) {
      FinishSession(*session);
      return;
    }
    // Non-blocking: drain only what the kernel already has; the poller
    // watches the fd while we are not here. A binary session reads frames
    // through the same buffer; the frame's JSON payload then flows through
    // the identical dispatch path a line would.
    Result<net::ReadResult> read = net::ReadResult{};
    if (session->binary) {
      auto frame = session->channel.ReadFrame(/*timeout_ms=*/0);
      if (frame.ok()) {
        read = net::ReadResult{frame->event, std::move(frame->payload)};
      } else {
        read = frame.status();
      }
    } else {
      read = session->channel.ReadLine(/*timeout_ms=*/0);
    }
    if (!read.ok()) {  // hard transport failure (reset, garbled frame, ...)
      FinishSession(*session);
      return;
    }
    switch (read->event) {
      case net::ReadEvent::kEof:
        FinishSession(*session);
        return;
      case net::ReadEvent::kTimeout:
        ReturnToPoller(session);
        return;
      case net::ReadEvent::kOversized: {
        // The response below is an answered ok:false line, so it counts as
        // a request and an error like any other (plus its own counter).
        oversized_.fetch_add(1);
        requests_.fetch_add(1);
        errors_.fetch_add(1);
        ++session->requests;
        ++session->errors;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++error_codes_[std::string(
              client::ErrorCodeName(client::ErrorCode::kMalformed))];
        }
        session->last_activity = Clock::now();
        const bool alive = WriteToSession(
            *session, ErrorResponseLine(
                          client::ErrorCode::kMalformed,
                          "request line exceeds " +
                              std::to_string(options_.max_line_bytes) +
                              " bytes"));
        if (!alive) {
          FinishSession(*session);
          return;
        }
        continue;
      }
      case net::ReadEvent::kLine: {
        if (IsBlank(read->line)) continue;
        session->last_activity = Clock::now();
        if (!HandleLine(session, read->line)) {
          FinishSession(*session);
          return;
        }
        continue;
      }
    }
  }
  // Slice quantum spent with the peer still chatty: requeue so other
  // sessions get workers.
  SubmitSlice(session);
}

}  // namespace recpriv::serve
