// The typed service layer of the serving subsystem: every operation of the
// client contract (client/api.h), expressed over a QueryEngine, with no
// JSON anywhere in sight.
//
// This is the single implementation both access paths share. The wire
// front end (serve/wire.cc) decodes a request line into these structs,
// calls the function, and encodes the result; InProcessClient calls the
// same functions directly. Whatever path a request takes, the release
// lookup, epoch pinning, string-to-code resolution, validation, and error
// taxonomy are byte-for-byte the same code — which is what makes the two
// client backends interchangeable.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/release.h"
#include "client/api.h"
#include "common/result.h"
#include "serve/query_engine.h"

namespace recpriv::serve {

/// Metadata of every published release, name-sorted.
Result<std::vector<client::ReleaseDescriptor>> ListReleases(
    QueryEngine& engine);

/// Answers a count-query batch: resolves the release (pinned to
/// request.epoch when set), binds the string-level QuerySpecs against that
/// snapshot's schema, and evaluates the whole batch against that same
/// snapshot — a republish in between can never remap the codes.
Result<client::BatchAnswer> ExecuteQuery(QueryEngine& engine,
                                         const client::QueryRequest& request);

/// A release's attribute names and domain values (pinned when `epoch` is
/// set) — enough for a client to build queries with no out-of-band
/// knowledge of the generator.
Result<client::ReleaseSchema> DescribeRelease(QueryEngine& engine,
                                              const std::string& release,
                                              std::optional<uint64_t> epoch);

/// Engine-wide thread/cache counters plus per-release serving metadata
/// (epoch, records, groups, retained-epoch window).
Result<client::ServerStats> CollectStats(QueryEngine& engine);

/// Loads the release bundle at `basename` (analysis::LoadRelease) and
/// publishes it under `name`.
Result<client::ReleaseDescriptor> PublishFromFile(QueryEngine& engine,
                                                  const std::string& name,
                                                  const std::string& basename);

/// Publishes an in-memory bundle under `name` (in-process callers only;
/// bundles do not cross the wire).
Result<client::ReleaseDescriptor> PublishBundle(
    QueryEngine& engine, const std::string& name,
    recpriv::analysis::ReleaseBundle bundle);

/// Retires `name` entirely; returns the dropped release's descriptor.
Result<client::ReleaseDescriptor> DropRelease(QueryEngine& engine,
                                              const std::string& name);

}  // namespace recpriv::serve
