#include "serve/wire.h"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "query/count_query.h"
#include "table/predicate.h"

namespace recpriv::serve {

using recpriv::query::CountQuery;
using recpriv::table::Predicate;
using recpriv::table::Schema;

namespace {

JsonValue ErrorResponse(const Status& status) {
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(false));
  out.Set("error", JsonValue::String(status.ToString()));
  return out;
}

/// Builds one CountQuery from {"where":{attr:value,...},"sa":value} against
/// the release schema.
Result<CountQuery> ParseQuery(const JsonValue& spec, const Schema& schema) {
  CountQuery q(schema.num_attributes());
  if (spec.Has("where")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* where, spec.Get("where"));
    if (!where->is_object()) {
      return Status::InvalidArgument("'where' must be an object");
    }
    std::vector<std::pair<std::string, std::string>> bindings;
    for (const std::string& attr : where->Keys()) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* value, where->Get(attr));
      RECPRIV_ASSIGN_OR_RETURN(std::string value_str, value->AsString());
      bindings.emplace_back(attr, std::move(value_str));
    }
    RECPRIV_ASSIGN_OR_RETURN(q.na_predicate,
                             Predicate::FromBindings(schema, bindings));
    if (q.na_predicate.is_bound(schema.sensitive_index())) {
      return Status::InvalidArgument(
          "'where' must not constrain the sensitive attribute; use 'sa'");
    }
    q.dimensionality = q.na_predicate.num_bound();
  }
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* sa, spec.Get("sa"));
  RECPRIV_ASSIGN_OR_RETURN(std::string sa_value, sa->AsString());
  RECPRIV_ASSIGN_OR_RETURN(q.sa_code,
                           schema.sensitive().domain.GetCode(sa_value));
  return q;
}

Result<JsonValue> HandleList(QueryEngine& engine) {
  JsonValue releases = JsonValue::Array();
  for (const ReleaseInfo& info : engine.store().List()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(info.name));
    entry.Set("epoch", JsonValue::Int(int64_t(info.epoch)));
    entry.Set("num_records", JsonValue::Int(int64_t(info.num_records)));
    entry.Set("num_groups", JsonValue::Int(int64_t(info.num_groups)));
    releases.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("releases", std::move(releases));
  return out;
}

Result<JsonValue> HandleStats(QueryEngine& engine) {
  JsonValue cache = JsonValue::Object();
  cache.Set("size", JsonValue::Int(int64_t(engine.cache().size())));
  cache.Set("capacity", JsonValue::Int(int64_t(engine.cache().capacity())));
  cache.Set("hits", JsonValue::Int(int64_t(engine.cache().hits())));
  cache.Set("misses", JsonValue::Int(int64_t(engine.cache().misses())));
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("threads", JsonValue::Int(int64_t(engine.pool().num_threads())));
  out.Set("cache", std::move(cache));
  return out;
}

Result<JsonValue> HandleQuery(const JsonValue& request, QueryEngine& engine) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* release_node,
                           request.Get("release"));
  RECPRIV_ASSIGN_OR_RETURN(std::string release, release_node->AsString());
  RECPRIV_ASSIGN_OR_RETURN(SnapshotPtr snap, engine.store().Get(release));
  const Schema& schema = *snap->bundle.data.schema();

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* queries, request.Get("queries"));
  if (!queries->is_array()) {
    return Status::InvalidArgument("'queries' must be an array");
  }
  std::vector<CountQuery> batch;
  batch.reserve(queries->size());
  for (size_t i = 0; i < queries->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* spec, queries->At(i));
    RECPRIV_ASSIGN_OR_RETURN(CountQuery q, ParseQuery(*spec, schema));
    batch.push_back(std::move(q));
  }

  // Evaluate against the same snapshot the codes were resolved with: a
  // republish between our Get and evaluation must not remap the codes.
  RECPRIV_ASSIGN_OR_RETURN(BatchResult result,
                           engine.AnswerBatch(release, snap, batch));
  JsonValue answers = JsonValue::Array();
  for (const Answer& a : result.answers) {
    JsonValue entry = JsonValue::Object();
    entry.Set("observed", JsonValue::Int(int64_t(a.observed)));
    entry.Set("matched_size", JsonValue::Int(int64_t(a.matched_size)));
    entry.Set("estimate", JsonValue::Number(a.estimate));
    entry.Set("cached", JsonValue::Bool(a.cached));
    answers.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(true));
  out.Set("release", JsonValue::String(release));
  out.Set("epoch", JsonValue::Int(int64_t(result.epoch)));
  out.Set("cache_hits", JsonValue::Int(int64_t(result.cache_hits)));
  out.Set("cache_misses", JsonValue::Int(int64_t(result.cache_misses)));
  out.Set("answers", std::move(answers));
  return out;
}

}  // namespace

JsonValue HandleRequest(const JsonValue& request, QueryEngine& engine) {
  if (!request.is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request must be a JSON object"));
  }
  auto op_node = request.Get("op");
  if (!op_node.ok()) return ErrorResponse(op_node.status());
  auto op = (*op_node)->AsString();
  if (!op.ok()) return ErrorResponse(op.status());

  Result<JsonValue> response = Status::NotImplemented("unreachable");
  if (*op == "query") {
    response = HandleQuery(request, engine);
  } else if (*op == "list") {
    response = HandleList(engine);
  } else if (*op == "stats") {
    response = HandleStats(engine);
  } else {
    response = Status::InvalidArgument(
        "unknown op '" + *op + "' (expected query, list, or stats)");
  }
  if (!response.ok()) return ErrorResponse(response.status());
  return std::move(*response);
}

std::string HandleRequestLine(const std::string& line, QueryEngine& engine) {
  auto request = JsonValue::Parse(line);
  JsonValue response = request.ok()
                           ? HandleRequest(*request, engine)
                           : ErrorResponse(request.status());
  return response.ToString();
}

size_t ServeLines(std::istream& in, std::ostream& out, QueryEngine& engine) {
  size_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    out << HandleRequestLine(line, engine) << "\n" << std::flush;
    ++handled;
  }
  return handled;
}

}  // namespace recpriv::serve
