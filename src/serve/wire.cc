#include "serve/wire.h"

#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "serve/service.h"

namespace recpriv::serve {

using recpriv::client::ApiError;
using recpriv::client::ErrorCode;

namespace {

// Field access (RequireField/RequireString/RequireInt) comes from
// common/json.h — the same protocol-grade messages every codec shares.

Result<std::optional<uint64_t>> OptionalEpoch(const JsonValue& obj) {
  if (!obj.Has("epoch")) return std::optional<uint64_t>{};
  RECPRIV_ASSIGN_OR_RETURN(int64_t epoch, RequireInt(obj, "epoch"));
  // Negative epochs are unrepresentable in the typed API, so they are a
  // wire-level shape error. Epoch 0 (or any never-published epoch) flows
  // through to the store, which reports it stale — the same Status an
  // in-process caller gets, keeping the two backends' taxonomies aligned.
  if (epoch < 0) {
    return Status::InvalidArgument("'epoch' must be a non-negative integer");
  }
  return std::optional<uint64_t>{uint64_t(epoch)};
}

// --- payload encoders (shared by server responses and client decoding) -----

JsonValue EncodeDescriptor(const client::ReleaseDescriptor& d) {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue::String(d.name));
  out.Set("epoch", JsonValue::Int(int64_t(d.epoch)));
  out.Set("num_records", JsonValue::Int(int64_t(d.num_records)));
  out.Set("num_groups", JsonValue::Int(int64_t(d.num_groups)));
  out.Set("retained_epochs", JsonValue::Int(int64_t(d.retained_epochs)));
  out.Set("oldest_epoch", JsonValue::Int(int64_t(d.oldest_epoch)));
  return out;
}

Result<client::ReleaseDescriptor> DecodeDescriptor(const JsonValue& obj) {
  client::ReleaseDescriptor d;
  RECPRIV_ASSIGN_OR_RETURN(d.name, RequireString(obj, "name"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t epoch, RequireInt(obj, "epoch"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t records, RequireInt(obj, "num_records"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t groups, RequireInt(obj, "num_groups"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t retained,
                           RequireInt(obj, "retained_epochs"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t oldest, RequireInt(obj, "oldest_epoch"));
  d.epoch = uint64_t(epoch);
  d.num_records = uint64_t(records);
  d.num_groups = uint64_t(groups);
  d.retained_epochs = uint64_t(retained);
  d.oldest_epoch = uint64_t(oldest);
  return d;
}

JsonValue EncodeListPayload(const std::vector<client::ReleaseDescriptor>& v) {
  JsonValue releases = JsonValue::Array();
  for (const client::ReleaseDescriptor& d : v) {
    releases.Append(EncodeDescriptor(d));
  }
  JsonValue out = JsonValue::Object();
  out.Set("releases", std::move(releases));
  return out;
}

JsonValue EncodeBatchAnswerPayload(const client::BatchAnswer& batch) {
  JsonValue answers = JsonValue::Array();
  for (const client::AnswerRow& a : batch.answers) {
    JsonValue entry = JsonValue::Object();
    entry.Set("observed", JsonValue::Int(int64_t(a.observed)));
    entry.Set("matched_size", JsonValue::Int(int64_t(a.matched_size)));
    entry.Set("estimate", JsonValue::Number(a.estimate));
    entry.Set("cached", JsonValue::Bool(a.cached));
    answers.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("release", JsonValue::String(batch.release));
  out.Set("epoch", JsonValue::Int(int64_t(batch.epoch)));
  out.Set("cache_hits", JsonValue::Int(int64_t(batch.cache_hits)));
  out.Set("cache_misses", JsonValue::Int(int64_t(batch.cache_misses)));
  out.Set("answers", std::move(answers));
  return out;
}

JsonValue EncodeSchemaPayload(const client::ReleaseSchema& schema) {
  JsonValue attributes = JsonValue::Array();
  for (const client::AttributeInfo& attr : schema.attributes) {
    JsonValue values = JsonValue::Array();
    for (const std::string& value : attr.values) {
      values.Append(JsonValue::String(value));
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(attr.name));
    entry.Set("sensitive", JsonValue::Bool(attr.sensitive));
    entry.Set("values", std::move(values));
    attributes.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("release", JsonValue::String(schema.release));
  out.Set("epoch", JsonValue::Int(int64_t(schema.epoch)));
  out.Set("attributes", std::move(attributes));
  return out;
}

JsonValue EncodeStatsPayload(const client::ServerStats& stats) {
  JsonValue cache = JsonValue::Object();
  cache.Set("size", JsonValue::Int(int64_t(stats.cache.size)));
  cache.Set("capacity", JsonValue::Int(int64_t(stats.cache.capacity)));
  cache.Set("hits", JsonValue::Int(int64_t(stats.cache.hits)));
  cache.Set("misses", JsonValue::Int(int64_t(stats.cache.misses)));
  JsonValue releases = JsonValue::Array();
  for (const client::ReleaseDescriptor& d : stats.releases) {
    releases.Append(EncodeDescriptor(d));
  }
  JsonValue out = JsonValue::Object();
  out.Set("threads", JsonValue::Int(int64_t(stats.threads)));
  out.Set("cache", std::move(cache));
  out.Set("releases", std::move(releases));
  if (stats.scheduler.has_value()) {
    out.Set("scheduler", wire::EncodeSchedulerStats(*stats.scheduler));
  }
  if (stats.transport.has_value()) {
    const client::TransportStats& t = *stats.transport;
    JsonValue ops = JsonValue::Object();
    for (const auto& [op, count] : t.ops) {
      ops.Set(op, JsonValue::Int(int64_t(count)));
    }
    JsonValue transport = JsonValue::Object();
    transport.Set("connections_active",
                  JsonValue::Int(int64_t(t.connections_active)));
    transport.Set("connections_accepted",
                  JsonValue::Int(int64_t(t.connections_accepted)));
    transport.Set("connections_rejected",
                  JsonValue::Int(int64_t(t.connections_rejected)));
    transport.Set("sessions_v2", JsonValue::Int(int64_t(t.sessions_v2)));
    transport.Set("requests", JsonValue::Int(int64_t(t.requests)));
    transport.Set("errors", JsonValue::Int(int64_t(t.errors)));
    transport.Set("malformed_lines",
                  JsonValue::Int(int64_t(t.malformed_lines)));
    transport.Set("oversized_lines",
                  JsonValue::Int(int64_t(t.oversized_lines)));
    transport.Set("idle_disconnects",
                  JsonValue::Int(int64_t(t.idle_disconnects)));
    transport.Set("epoch_pins", JsonValue::Int(int64_t(t.epoch_pins)));
    transport.Set("ops", std::move(ops));
    out.Set("transport", std::move(transport));
  }
  if (stats.tenants.has_value()) {
    // Absent when quotas are disabled, like "scheduler"/"transport", so
    // golden transcripts of quota-less servers are unchanged.
    out.Set("tenants", wire::EncodeTenantStats(*stats.tenants));
  }
  if (!stats.store.empty()) {
    // Flat objects only: the golden-session harness strips this array with
    // a regex (timings are nondeterministic), which relies on no nested
    // brackets inside it.
    JsonValue store = JsonValue::Array();
    for (const client::StoreReleaseStats& s : stats.store) {
      JsonValue entry = JsonValue::Object();
      entry.Set("release", JsonValue::String(s.release));
      entry.Set("epoch", JsonValue::Int(int64_t(s.epoch)));
      entry.Set("source", JsonValue::String(s.source));
      entry.Set("open_ms", JsonValue::Number(s.open_ms));
      entry.Set("parse_ms", JsonValue::Number(s.parse_ms));
      entry.Set("build_ms", JsonValue::Number(s.build_ms));
      entry.Set("bytes_mapped", JsonValue::Int(int64_t(s.bytes_mapped)));
      store.Append(std::move(entry));
    }
    out.Set("store", std::move(store));
  }
  return out;
}

// --- request decoding (server side) ----------------------------------------

Result<client::QueryRequest> DecodeQueryRequestBody(const JsonValue& request) {
  client::QueryRequest req;
  RECPRIV_ASSIGN_OR_RETURN(req.release, RequireString(request, "release"));
  RECPRIV_ASSIGN_OR_RETURN(req.epoch, OptionalEpoch(request));

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* queries,
                           RequireField(request, "queries"));
  if (!queries->is_array()) {
    return Status::InvalidArgument("'queries' must be an array");
  }
  req.queries.reserve(queries->size());
  for (size_t i = 0; i < queries->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* spec, queries->At(i));
    if (!spec->is_object()) {
      return Status::InvalidArgument("each query must be an object");
    }
    client::QuerySpec qs;
    if (spec->Has("where")) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* where, spec->Get("where"));
      if (!where->is_object()) {
        return Status::InvalidArgument("'where' must be an object");
      }
      for (const std::string& attr : where->Keys()) {
        RECPRIV_ASSIGN_OR_RETURN(const JsonValue* value, where->Get(attr));
        if (!value->is_string()) {
          return Status::InvalidArgument("'where' values must be strings");
        }
        RECPRIV_ASSIGN_OR_RETURN(std::string value_str, value->AsString());
        qs.where.emplace_back(attr, std::move(value_str));
      }
    }
    RECPRIV_ASSIGN_OR_RETURN(qs.sa, RequireString(*spec, "sa"));
    req.queries.push_back(std::move(qs));
  }
  if (request.Has("tenant")) {
    RECPRIV_ASSIGN_OR_RETURN(req.tenant, RequireString(request, "tenant"));
  }
  if (request.Has("deadline_ms")) {
    RECPRIV_ASSIGN_OR_RETURN(int64_t deadline,
                             RequireInt(request, "deadline_ms"));
    // A negative budget is a shape error; 0 is legal and sheds immediately
    // (the request reports what work *would* have been admitted).
    if (deadline < 0) {
      return Status::InvalidArgument(
          "'deadline_ms' must be a non-negative integer");
    }
    req.deadline_ms = deadline;
  }
  return req;
}

// --- dispatch --------------------------------------------------------------

Result<JsonValue> Dispatch(const std::string& op, const JsonValue& request,
                           QueryEngine& engine,
                           const RequestContext& context) {
  if (op == "query") {
    RECPRIV_ASSIGN_OR_RETURN(client::QueryRequest req,
                             DecodeQueryRequestBody(request));
    RECPRIV_ASSIGN_OR_RETURN(client::BatchAnswer batch,
                             ExecuteQuery(engine, req));
    return EncodeBatchAnswerPayload(batch);
  }
  if (op == "list") {
    RECPRIV_ASSIGN_OR_RETURN(std::vector<client::ReleaseDescriptor> releases,
                             ListReleases(engine));
    return EncodeListPayload(releases);
  }
  if (op == "stats") {
    RECPRIV_ASSIGN_OR_RETURN(client::ServerStats stats, CollectStats(engine));
    if (context.transport_stats) stats.transport = context.transport_stats();
    return EncodeStatsPayload(stats);
  }
  if (op == "schema") {
    RECPRIV_ASSIGN_OR_RETURN(std::string release,
                             RequireString(request, "release"));
    RECPRIV_ASSIGN_OR_RETURN(std::optional<uint64_t> epoch,
                             OptionalEpoch(request));
    RECPRIV_ASSIGN_OR_RETURN(client::ReleaseSchema schema,
                             DescribeRelease(engine, release, epoch));
    return EncodeSchemaPayload(schema);
  }
  if (op == "publish") {
    RECPRIV_ASSIGN_OR_RETURN(std::string name, RequireString(request, "name"));
    RECPRIV_ASSIGN_OR_RETURN(std::string basename,
                             RequireString(request, "release"));
    RECPRIV_ASSIGN_OR_RETURN(client::ReleaseDescriptor desc,
                             PublishFromFile(engine, name, basename));
    JsonValue out = JsonValue::Object();
    out.Set("release", EncodeDescriptor(desc));
    return out;
  }
  if (op == "drop") {
    RECPRIV_ASSIGN_OR_RETURN(std::string release,
                             RequireString(request, "release"));
    RECPRIV_ASSIGN_OR_RETURN(client::ReleaseDescriptor desc,
                             DropRelease(engine, release));
    JsonValue out = JsonValue::Object();
    out.Set("dropped", EncodeDescriptor(desc));
    return out;
  }
  return Status::InvalidArgument(
      "unknown op '" + op +
      "' (expected query, list, stats, schema, publish, or drop)");
}

// --- response envelopes ----------------------------------------------------

JsonValue EncodeError(const ApiError& error) {
  JsonValue out = JsonValue::Object();
  out.Set("code", JsonValue::String(std::string(ErrorCodeName(error.code))));
  out.Set("message", JsonValue::String(error.message));
  return out;
}

/// The id is echoed verbatim on every response that has one, v1 or v2.
JsonValue OkBody(int64_t version, const JsonValue* id, JsonValue payload) {
  payload.Set("ok", JsonValue::Bool(true));
  if (version >= kWireVersionCurrent) {
    payload.Set("v", JsonValue::Int(kWireVersionCurrent));
  }
  if (id != nullptr) payload.Set("id", *id);
  return payload;
}

JsonValue ErrorBody(int64_t version, const JsonValue* id,
                    const ApiError& error) {
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(false));
  if (version >= kWireVersionCurrent) {
    out.Set("v", JsonValue::Int(kWireVersionCurrent));
    out.Set("error", EncodeError(error));
  } else {
    // v1 errors are the flat "<Code>: <message>" string of PR-1.
    out.Set("error", JsonValue::String(error.ToStatus().ToString()));
  }
  if (id != nullptr) out.Set("id", *id);
  return out;
}

}  // namespace

JsonValue HandleRequest(const JsonValue& request, QueryEngine& engine,
                        const RequestContext& context, RequestInfo* info) {
  RequestInfo scratch;
  if (info == nullptr) info = &scratch;
  info->parsed = true;
  // Every error path funnels through here so the front end's per-code
  // counters (the shutdown summary) see the same taxonomy the wire does.
  const auto fail = [info](int64_t v, const JsonValue* id,
                           const ApiError& error) {
    info->error_code = error.code;
    return ErrorBody(v, id, error);
  };

  if (!request.is_object()) {
    // Valid JSON of the wrong shape is a request error, not MALFORMED
    // (which is reserved for lines that never parsed); the version field
    // is unreadable on a non-object, so answer in the current shape.
    return fail(
        kWireVersionCurrent, nullptr,
        ApiError{ErrorCode::kInvalidRequest, "request must be a JSON object"});
  }
  const JsonValue* id = nullptr;
  if (request.Has("id")) id = *request.Get("id");
  info->pinned_epoch = request.Has("epoch");

  int64_t version = kWireVersionLegacy;
  if (request.Has("v")) {
    auto v = (*request.Get("v"))->AsInt();
    if (!v.ok()) {
      return fail(kWireVersionCurrent, id,
                  ApiError{ErrorCode::kInvalidRequest,
                           "'v' must be an integer protocol version"});
    }
    version = *v;
    if (version != kWireVersionLegacy && version != kWireVersionCurrent) {
      return fail(kWireVersionCurrent, id,
                  ApiError{ErrorCode::kUnsupported,
                           "unsupported protocol version " +
                               std::to_string(version) +
                               " (supported: 1, 2)"});
    }
  }
  info->version = version;

  auto op = RequireString(request, "op");
  if (!op.ok()) {
    return fail(version, id, ApiError::FromStatus(op.status()));
  }
  info->op = *op;
  Result<JsonValue> payload = Dispatch(*op, request, engine, context);
  if (!payload.ok()) {
    return fail(version, id, ApiError::FromStatus(payload.status()));
  }
  info->ok = true;
  return OkBody(version, id, std::move(*payload));
}

std::string HandleRequestLine(const std::string& line, QueryEngine& engine) {
  return HandleRequestLine(line, engine, RequestContext{}, nullptr);
}

std::string HandleRequestLine(const std::string& line, QueryEngine& engine,
                              const RequestContext& context,
                              RequestInfo* info) {
  RequestInfo scratch;
  if (info == nullptr) info = &scratch;
  auto request = JsonValue::Parse(line);
  if (!request.ok()) {
    // The line never became JSON, so its protocol version is unknowable;
    // report in the current (structured) shape with the MALFORMED code.
    info->parsed = false;
    info->error_code = ErrorCode::kMalformed;
    return ErrorBody(
               kWireVersionCurrent, nullptr,
               ApiError{ErrorCode::kMalformed, request.status().message()})
        .ToString();
  }
  return HandleRequest(*request, engine, context, info).ToString();
}

std::string ErrorResponseLine(ErrorCode code, const std::string& message) {
  return ErrorBody(kWireVersionCurrent, nullptr, ApiError{code, message})
      .ToString();
}

bool IsKnownOp(const std::string& op) {
  return op == "query" || op == "list" || op == "stats" || op == "schema" ||
         op == "publish" || op == "drop";
}

size_t ServeLines(std::istream& in, std::ostream& out, QueryEngine& engine) {
  size_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    out << HandleRequestLine(line, engine) << "\n" << std::flush;
    ++handled;
  }
  return handled;
}

// --- v2 codec (client side) ------------------------------------------------

namespace wire {

namespace {

JsonValue Envelope(const char* op, uint64_t id) {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Int(kWireVersionCurrent));
  request.Set("id", JsonValue::Int(int64_t(id)));
  request.Set("op", JsonValue::String(op));
  return request;
}

Result<client::AnswerRow> DecodeAnswerRow(const JsonValue& obj) {
  client::AnswerRow row;
  RECPRIV_ASSIGN_OR_RETURN(int64_t observed, RequireInt(obj, "observed"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t matched, RequireInt(obj, "matched_size"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* estimate,
                           RequireField(obj, "estimate"));
  RECPRIV_ASSIGN_OR_RETURN(row.estimate, estimate->AsDouble());
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* cached,
                           RequireField(obj, "cached"));
  RECPRIV_ASSIGN_OR_RETURN(row.cached, cached->AsBool());
  row.observed = uint64_t(observed);
  row.matched_size = uint64_t(matched);
  return row;
}

Result<std::vector<client::ReleaseDescriptor>> DecodeDescriptorArray(
    const JsonValue& response, const std::string& key) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* array,
                           RequireField(response, key));
  if (!array->is_array()) {
    return Status::InvalidArgument("'" + key + "' must be an array");
  }
  std::vector<client::ReleaseDescriptor> out;
  out.reserve(array->size());
  for (size_t i = 0; i < array->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, array->At(i));
    RECPRIV_ASSIGN_OR_RETURN(client::ReleaseDescriptor d,
                             DecodeDescriptor(*entry));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace

JsonValue EncodeSchedulerStats(const client::SchedulerStats& stats) {
  JsonValue out = JsonValue::Object();
  out.Set("window_us", JsonValue::Int(int64_t(stats.window_us)));
  out.Set("submissions", JsonValue::Int(int64_t(stats.submissions)));
  out.Set("coalesced_submissions",
          JsonValue::Int(int64_t(stats.coalesced_submissions)));
  out.Set("batches", JsonValue::Int(int64_t(stats.batches)));
  out.Set("batched_queries", JsonValue::Int(int64_t(stats.batched_queries)));
  out.Set("max_batch_queries",
          JsonValue::Int(int64_t(stats.max_batch_queries)));
  out.Set("max_batch_submissions",
          JsonValue::Int(int64_t(stats.max_batch_submissions)));
  return out;
}

JsonValue EncodeTenantStats(const client::TenantStats& stats) {
  JsonValue by_tenant = JsonValue::Object();
  for (const auto& [name, c] : stats.tenants) {
    JsonValue entry = JsonValue::Object();
    entry.Set("admitted", JsonValue::Int(int64_t(c.admitted)));
    entry.Set("rejected", JsonValue::Int(int64_t(c.rejected)));
    entry.Set("shed", JsonValue::Int(int64_t(c.shed)));
    by_tenant.Set(name, std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("quota_qps", JsonValue::Number(stats.quota_qps));
  out.Set("quota_burst", JsonValue::Number(stats.quota_burst));
  out.Set("by_tenant", std::move(by_tenant));
  return out;
}

JsonValue EncodeListRequest(uint64_t id) { return Envelope("list", id); }

JsonValue EncodeQueryRequest(const client::QueryRequest& request,
                             uint64_t id) {
  JsonValue out = Envelope("query", id);
  out.Set("release", JsonValue::String(request.release));
  if (request.epoch.has_value()) {
    out.Set("epoch", JsonValue::Int(int64_t(*request.epoch)));
  }
  JsonValue queries = JsonValue::Array();
  for (const client::QuerySpec& spec : request.queries) {
    JsonValue entry = JsonValue::Object();
    if (!spec.where.empty()) {
      JsonValue where = JsonValue::Object();
      for (const auto& [attr, value] : spec.where) {
        where.Set(attr, JsonValue::String(value));
      }
      entry.Set("where", std::move(where));
    }
    entry.Set("sa", JsonValue::String(spec.sa));
    queries.Append(std::move(entry));
  }
  out.Set("queries", std::move(queries));
  if (!request.tenant.empty()) {
    out.Set("tenant", JsonValue::String(request.tenant));
  }
  if (request.deadline_ms.has_value()) {
    out.Set("deadline_ms", JsonValue::Int(*request.deadline_ms));
  }
  return out;
}

JsonValue EncodeSchemaRequest(const std::string& release,
                              std::optional<uint64_t> epoch, uint64_t id) {
  JsonValue out = Envelope("schema", id);
  out.Set("release", JsonValue::String(release));
  if (epoch.has_value()) out.Set("epoch", JsonValue::Int(int64_t(*epoch)));
  return out;
}

JsonValue EncodeStatsRequest(uint64_t id) { return Envelope("stats", id); }

JsonValue EncodePublishRequest(const std::string& name,
                               const std::string& basename, uint64_t id) {
  JsonValue out = Envelope("publish", id);
  out.Set("name", JsonValue::String(name));
  out.Set("release", JsonValue::String(basename));
  return out;
}

JsonValue EncodeDropRequest(const std::string& release, uint64_t id) {
  JsonValue out = Envelope("drop", id);
  out.Set("release", JsonValue::String(release));
  return out;
}

Result<JsonValue> ParseResponse(const std::string& line, uint64_t expect_id) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    return Status::Internal("unparseable response line: " +
                            parsed.status().message());
  }
  JsonValue response = std::move(*parsed);
  if (!response.is_object()) {
    return Status::Internal("response is not a JSON object");
  }
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* ok_node,
                           RequireField(response, "ok"));
  RECPRIV_ASSIGN_OR_RETURN(bool ok, ok_node->AsBool());

  if (!ok) {
    // Surface the server's error before any envelope complaint — it is
    // the more useful diagnostic.
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* error,
                             RequireField(response, "error"));
    if (error->is_object()) {
      RECPRIV_ASSIGN_OR_RETURN(std::string code_name,
                               RequireString(*error, "code"));
      RECPRIV_ASSIGN_OR_RETURN(std::string message,
                               RequireString(*error, "message"));
      auto code = client::ErrorCodeFromName(code_name);
      if (!code.has_value()) {
        return Status::Internal("unknown wire error code '" + code_name +
                                "': " + message);
      }
      return client::ApiError{*code, std::move(message)}.ToStatus();
    }
    if (error->is_string()) {  // a v1-shaped error from a legacy server
      return Status::Internal("server error: " + *error->AsString());
    }
    return Status::Internal("malformed error response");
  }

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* v_node,
                           RequireField(response, "v"));
  auto v = v_node->AsInt();
  if (!v.ok() || *v != kWireVersionCurrent) {
    return Status::Internal("response is not protocol version " +
                            std::to_string(kWireVersionCurrent));
  }
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* id_node,
                           RequireField(response, "id"));
  auto id = id_node->AsInt();
  if (!id.ok() || uint64_t(*id) != expect_id) {
    return Status::Internal("response id mismatch (expected " +
                            std::to_string(expect_id) + ")");
  }
  return response;
}

Result<std::vector<client::ReleaseDescriptor>> DecodeListResponse(
    const JsonValue& response) {
  return DecodeDescriptorArray(response, "releases");
}

Result<client::BatchAnswer> DecodeQueryResponse(const JsonValue& response) {
  client::BatchAnswer batch;
  RECPRIV_ASSIGN_OR_RETURN(batch.release, RequireString(response, "release"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t epoch, RequireInt(response, "epoch"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t hits, RequireInt(response, "cache_hits"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t misses,
                           RequireInt(response, "cache_misses"));
  batch.epoch = uint64_t(epoch);
  batch.cache_hits = uint64_t(hits);
  batch.cache_misses = uint64_t(misses);
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* answers,
                           RequireField(response, "answers"));
  if (!answers->is_array()) {
    return Status::InvalidArgument("'answers' must be an array");
  }
  batch.answers.reserve(answers->size());
  for (size_t i = 0; i < answers->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, answers->At(i));
    RECPRIV_ASSIGN_OR_RETURN(client::AnswerRow row, DecodeAnswerRow(*entry));
    batch.answers.push_back(row);
  }
  return batch;
}

Result<client::ReleaseSchema> DecodeSchemaResponse(const JsonValue& response) {
  client::ReleaseSchema schema;
  RECPRIV_ASSIGN_OR_RETURN(schema.release, RequireString(response, "release"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t epoch, RequireInt(response, "epoch"));
  schema.epoch = uint64_t(epoch);
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* attributes,
                           RequireField(response, "attributes"));
  if (!attributes->is_array()) {
    return Status::InvalidArgument("'attributes' must be an array");
  }
  schema.attributes.reserve(attributes->size());
  for (size_t i = 0; i < attributes->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, attributes->At(i));
    client::AttributeInfo attr;
    RECPRIV_ASSIGN_OR_RETURN(attr.name, RequireString(*entry, "name"));
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* sensitive,
                             RequireField(*entry, "sensitive"));
    RECPRIV_ASSIGN_OR_RETURN(attr.sensitive, sensitive->AsBool());
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* values,
                             RequireField(*entry, "values"));
    if (!values->is_array()) {
      return Status::InvalidArgument("'values' must be an array");
    }
    attr.values.reserve(values->size());
    for (size_t k = 0; k < values->size(); ++k) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* value, values->At(k));
      RECPRIV_ASSIGN_OR_RETURN(std::string value_str, value->AsString());
      attr.values.push_back(std::move(value_str));
    }
    schema.attributes.push_back(std::move(attr));
  }
  return schema;
}

Result<client::ServerStats> DecodeStatsResponse(const JsonValue& response) {
  client::ServerStats stats;
  RECPRIV_ASSIGN_OR_RETURN(int64_t threads, RequireInt(response, "threads"));
  stats.threads = uint64_t(threads);
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* cache,
                           RequireField(response, "cache"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t size, RequireInt(*cache, "size"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t capacity, RequireInt(*cache, "capacity"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t hits, RequireInt(*cache, "hits"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t misses, RequireInt(*cache, "misses"));
  stats.cache = client::CacheStats{uint64_t(size), uint64_t(capacity),
                                   uint64_t(hits), uint64_t(misses)};
  RECPRIV_ASSIGN_OR_RETURN(stats.releases,
                           DecodeDescriptorArray(response, "releases"));
  if (response.Has("scheduler")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "scheduler"));
    if (!node->is_object()) {
      return Status::InvalidArgument("'scheduler' must be an object");
    }
    client::SchedulerStats s;
    RECPRIV_ASSIGN_OR_RETURN(int64_t window, RequireInt(*node, "window_us"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t submissions,
                             RequireInt(*node, "submissions"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t coalesced,
                             RequireInt(*node, "coalesced_submissions"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t batches, RequireInt(*node, "batches"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t batched,
                             RequireInt(*node, "batched_queries"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t max_queries,
                             RequireInt(*node, "max_batch_queries"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t max_subs,
                             RequireInt(*node, "max_batch_submissions"));
    s.window_us = uint64_t(window);
    s.submissions = uint64_t(submissions);
    s.coalesced_submissions = uint64_t(coalesced);
    s.batches = uint64_t(batches);
    s.batched_queries = uint64_t(batched);
    s.max_batch_queries = uint64_t(max_queries);
    s.max_batch_submissions = uint64_t(max_subs);
    stats.scheduler = s;
  }
  if (response.Has("transport")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "transport"));
    if (!node->is_object()) {
      return Status::InvalidArgument("'transport' must be an object");
    }
    client::TransportStats t;
    RECPRIV_ASSIGN_OR_RETURN(int64_t active,
                             RequireInt(*node, "connections_active"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t accepted,
                             RequireInt(*node, "connections_accepted"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t rejected,
                             RequireInt(*node, "connections_rejected"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t v2, RequireInt(*node, "sessions_v2"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t requests, RequireInt(*node, "requests"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t errors, RequireInt(*node, "errors"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t malformed,
                             RequireInt(*node, "malformed_lines"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t oversized,
                             RequireInt(*node, "oversized_lines"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t idle,
                             RequireInt(*node, "idle_disconnects"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t pins, RequireInt(*node, "epoch_pins"));
    t.connections_active = uint64_t(active);
    t.connections_accepted = uint64_t(accepted);
    t.connections_rejected = uint64_t(rejected);
    t.sessions_v2 = uint64_t(v2);
    t.requests = uint64_t(requests);
    t.errors = uint64_t(errors);
    t.malformed_lines = uint64_t(malformed);
    t.oversized_lines = uint64_t(oversized);
    t.idle_disconnects = uint64_t(idle);
    t.epoch_pins = uint64_t(pins);
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* ops, RequireField(*node, "ops"));
    if (!ops->is_object()) {
      return Status::InvalidArgument("'ops' must be an object");
    }
    for (const std::string& op : ops->Keys()) {
      RECPRIV_ASSIGN_OR_RETURN(int64_t count, RequireInt(*ops, op));
      t.ops[op] = uint64_t(count);
    }
    stats.transport = std::move(t);
  }
  if (response.Has("tenants")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "tenants"));
    if (!node->is_object()) {
      return Status::InvalidArgument("'tenants' must be an object");
    }
    client::TenantStats q;
    RECPRIV_ASSIGN_OR_RETURN(q.quota_qps, RequireDouble(*node, "quota_qps"));
    RECPRIV_ASSIGN_OR_RETURN(q.quota_burst,
                             RequireDouble(*node, "quota_burst"));
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* by_tenant,
                             RequireField(*node, "by_tenant"));
    if (!by_tenant->is_object()) {
      return Status::InvalidArgument("'by_tenant' must be an object");
    }
    for (const std::string& name : by_tenant->Keys()) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, by_tenant->Get(name));
      if (!entry->is_object()) {
        return Status::InvalidArgument("each tenant entry must be an object");
      }
      client::TenantCounters c;
      RECPRIV_ASSIGN_OR_RETURN(int64_t admitted,
                               RequireInt(*entry, "admitted"));
      RECPRIV_ASSIGN_OR_RETURN(int64_t rejected,
                               RequireInt(*entry, "rejected"));
      RECPRIV_ASSIGN_OR_RETURN(int64_t shed, RequireInt(*entry, "shed"));
      c.admitted = uint64_t(admitted);
      c.rejected = uint64_t(rejected);
      c.shed = uint64_t(shed);
      q.tenants[name] = c;
    }
    stats.tenants = std::move(q);
  }
  if (response.Has("store")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "store"));
    if (!node->is_array()) {
      return Status::InvalidArgument("'store' must be an array");
    }
    for (size_t i = 0; i < node->size(); ++i) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, node->At(i));
      if (!entry->is_object()) {
        return Status::InvalidArgument("each store entry must be an object");
      }
      client::StoreReleaseStats s;
      RECPRIV_ASSIGN_OR_RETURN(s.release, RequireString(*entry, "release"));
      RECPRIV_ASSIGN_OR_RETURN(int64_t epoch, RequireInt(*entry, "epoch"));
      s.epoch = uint64_t(epoch);
      RECPRIV_ASSIGN_OR_RETURN(s.source, RequireString(*entry, "source"));
      RECPRIV_ASSIGN_OR_RETURN(s.open_ms, RequireDouble(*entry, "open_ms"));
      RECPRIV_ASSIGN_OR_RETURN(s.parse_ms, RequireDouble(*entry, "parse_ms"));
      RECPRIV_ASSIGN_OR_RETURN(s.build_ms, RequireDouble(*entry, "build_ms"));
      RECPRIV_ASSIGN_OR_RETURN(int64_t mapped,
                               RequireInt(*entry, "bytes_mapped"));
      s.bytes_mapped = uint64_t(mapped);
      stats.store.push_back(std::move(s));
    }
  }
  return stats;
}

Result<client::ReleaseDescriptor> DecodePublishResponse(
    const JsonValue& response) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* release,
                           RequireField(response, "release"));
  return DecodeDescriptor(*release);
}

Result<client::ReleaseDescriptor> DecodeDropResponse(
    const JsonValue& response) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* dropped,
                           RequireField(response, "dropped"));
  return DecodeDescriptor(*dropped);
}

}  // namespace wire

}  // namespace recpriv::serve
