#include "serve/wire.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "repl/digest.h"
#include "repl/snapshot_provider.h"
#include "serve/service.h"

namespace recpriv::serve {

using recpriv::client::ApiError;
using recpriv::client::ErrorCode;

namespace {

// Field access (RequireField/RequireString/RequireUint64) comes from
// common/json.h — the same protocol-grade messages every codec shares.
// Every integral wire field (epochs, offsets, byte counts, counters) is
// decoded through the integer-exact accessor: a 64-bit value above 2^53
// must survive the wire bit-for-bit, and negative / non-integral /
// beyond-exact values are wire-level shape errors.

Result<std::optional<uint64_t>> OptionalEpoch(const JsonValue& obj) {
  if (!obj.Has("epoch")) return std::optional<uint64_t>{};
  // Negative epochs are unrepresentable in the typed API, so they are a
  // wire-level shape error (RequireUint64 rejects them). Epoch 0 (or any
  // never-published epoch) flows through to the store, which reports it
  // stale — the same Status an in-process caller gets, keeping the two
  // backends' taxonomies aligned.
  RECPRIV_ASSIGN_OR_RETURN(uint64_t epoch, RequireUint64(obj, "epoch"));
  return std::optional<uint64_t>{epoch};
}

// --- payload encoders (shared by server responses and client decoding) -----

JsonValue EncodeDescriptor(const client::ReleaseDescriptor& d) {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue::String(d.name));
  out.Set("epoch", JsonValue::Uint(uint64_t(d.epoch)));
  out.Set("num_records", JsonValue::Uint(uint64_t(d.num_records)));
  out.Set("num_groups", JsonValue::Uint(uint64_t(d.num_groups)));
  out.Set("retained_epochs", JsonValue::Uint(uint64_t(d.retained_epochs)));
  out.Set("oldest_epoch", JsonValue::Uint(uint64_t(d.oldest_epoch)));
  return out;
}

Result<client::ReleaseDescriptor> DecodeDescriptor(const JsonValue& obj) {
  client::ReleaseDescriptor d;
  RECPRIV_ASSIGN_OR_RETURN(d.name, RequireString(obj, "name"));
  RECPRIV_ASSIGN_OR_RETURN(d.epoch, RequireUint64(obj, "epoch"));
  RECPRIV_ASSIGN_OR_RETURN(d.num_records, RequireUint64(obj, "num_records"));
  RECPRIV_ASSIGN_OR_RETURN(d.num_groups, RequireUint64(obj, "num_groups"));
  RECPRIV_ASSIGN_OR_RETURN(d.retained_epochs,
                           RequireUint64(obj, "retained_epochs"));
  RECPRIV_ASSIGN_OR_RETURN(d.oldest_epoch,
                           RequireUint64(obj, "oldest_epoch"));
  return d;
}

JsonValue EncodeListPayload(const std::vector<client::ReleaseDescriptor>& v) {
  JsonValue releases = JsonValue::Array();
  for (const client::ReleaseDescriptor& d : v) {
    releases.Append(EncodeDescriptor(d));
  }
  JsonValue out = JsonValue::Object();
  out.Set("releases", std::move(releases));
  return out;
}

JsonValue EncodeBatchAnswerPayload(const client::BatchAnswer& batch) {
  JsonValue answers = JsonValue::Array();
  for (const client::AnswerRow& a : batch.answers) {
    JsonValue entry = JsonValue::Object();
    entry.Set("observed", JsonValue::Uint(uint64_t(a.observed)));
    entry.Set("matched_size", JsonValue::Uint(uint64_t(a.matched_size)));
    entry.Set("estimate", JsonValue::Number(a.estimate));
    entry.Set("cached", JsonValue::Bool(a.cached));
    answers.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("release", JsonValue::String(batch.release));
  out.Set("epoch", JsonValue::Uint(uint64_t(batch.epoch)));
  out.Set("cache_hits", JsonValue::Uint(uint64_t(batch.cache_hits)));
  out.Set("cache_misses", JsonValue::Uint(uint64_t(batch.cache_misses)));
  out.Set("answers", std::move(answers));
  return out;
}

JsonValue EncodeSchemaPayload(const client::ReleaseSchema& schema) {
  JsonValue attributes = JsonValue::Array();
  for (const client::AttributeInfo& attr : schema.attributes) {
    JsonValue values = JsonValue::Array();
    for (const std::string& value : attr.values) {
      values.Append(JsonValue::String(value));
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(attr.name));
    entry.Set("sensitive", JsonValue::Bool(attr.sensitive));
    entry.Set("values", std::move(values));
    attributes.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("release", JsonValue::String(schema.release));
  out.Set("epoch", JsonValue::Uint(uint64_t(schema.epoch)));
  out.Set("attributes", std::move(attributes));
  return out;
}

JsonValue EncodeStatsPayload(const client::ServerStats& stats) {
  JsonValue cache = JsonValue::Object();
  cache.Set("size", JsonValue::Uint(uint64_t(stats.cache.size)));
  cache.Set("capacity", JsonValue::Uint(uint64_t(stats.cache.capacity)));
  cache.Set("hits", JsonValue::Uint(uint64_t(stats.cache.hits)));
  cache.Set("misses", JsonValue::Uint(uint64_t(stats.cache.misses)));
  JsonValue releases = JsonValue::Array();
  for (const client::ReleaseDescriptor& d : stats.releases) {
    releases.Append(EncodeDescriptor(d));
  }
  JsonValue out = JsonValue::Object();
  out.Set("threads", JsonValue::Uint(uint64_t(stats.threads)));
  out.Set("cache", std::move(cache));
  out.Set("releases", std::move(releases));
  if (stats.scheduler.has_value()) {
    out.Set("scheduler", wire::EncodeSchedulerStats(*stats.scheduler));
  }
  if (stats.transport.has_value()) {
    const client::TransportStats& t = *stats.transport;
    JsonValue ops = JsonValue::Object();
    for (const auto& [op, count] : t.ops) {
      ops.Set(op, JsonValue::Uint(uint64_t(count)));
    }
    JsonValue transport = JsonValue::Object();
    transport.Set("connections_active",
                  JsonValue::Uint(uint64_t(t.connections_active)));
    transport.Set("connections_accepted",
                  JsonValue::Uint(uint64_t(t.connections_accepted)));
    transport.Set("connections_rejected",
                  JsonValue::Uint(uint64_t(t.connections_rejected)));
    transport.Set("sessions_v2", JsonValue::Uint(uint64_t(t.sessions_v2)));
    transport.Set("requests", JsonValue::Uint(uint64_t(t.requests)));
    transport.Set("errors", JsonValue::Uint(uint64_t(t.errors)));
    transport.Set("malformed_lines",
                  JsonValue::Uint(uint64_t(t.malformed_lines)));
    transport.Set("oversized_lines",
                  JsonValue::Uint(uint64_t(t.oversized_lines)));
    transport.Set("idle_disconnects",
                  JsonValue::Uint(uint64_t(t.idle_disconnects)));
    transport.Set("epoch_pins", JsonValue::Uint(uint64_t(t.epoch_pins)));
    transport.Set("ops", std::move(ops));
    out.Set("transport", std::move(transport));
  }
  if (stats.tenants.has_value()) {
    // Absent when quotas are disabled, like "scheduler"/"transport", so
    // golden transcripts of quota-less servers are unchanged.
    out.Set("tenants", wire::EncodeTenantStats(*stats.tenants));
  }
  if (stats.replication.has_value()) {
    // Absent on non-replicating servers (same golden-transcript contract).
    out.Set("replication", wire::EncodeReplicationStats(*stats.replication));
  }
  if (!stats.store.empty()) {
    // Flat objects only: the golden-session harness strips this array with
    // a regex (timings are nondeterministic), which relies on no nested
    // brackets inside it.
    JsonValue store = JsonValue::Array();
    for (const client::StoreReleaseStats& s : stats.store) {
      JsonValue entry = JsonValue::Object();
      entry.Set("release", JsonValue::String(s.release));
      entry.Set("epoch", JsonValue::Uint(uint64_t(s.epoch)));
      entry.Set("source", JsonValue::String(s.source));
      entry.Set("open_ms", JsonValue::Number(s.open_ms));
      entry.Set("parse_ms", JsonValue::Number(s.parse_ms));
      entry.Set("build_ms", JsonValue::Number(s.build_ms));
      entry.Set("bytes_mapped", JsonValue::Uint(uint64_t(s.bytes_mapped)));
      store.Append(std::move(entry));
    }
    out.Set("store", std::move(store));
  }
  return out;
}

// --- request decoding (server side) ----------------------------------------

Result<client::QueryRequest> DecodeQueryRequestBody(const JsonValue& request) {
  client::QueryRequest req;
  RECPRIV_ASSIGN_OR_RETURN(req.release, RequireString(request, "release"));
  RECPRIV_ASSIGN_OR_RETURN(req.epoch, OptionalEpoch(request));

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* queries,
                           RequireField(request, "queries"));
  if (!queries->is_array()) {
    return Status::InvalidArgument("'queries' must be an array");
  }
  req.queries.reserve(queries->size());
  for (size_t i = 0; i < queries->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* spec, queries->At(i));
    if (!spec->is_object()) {
      return Status::InvalidArgument("each query must be an object");
    }
    client::QuerySpec qs;
    if (spec->Has("where")) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* where, spec->Get("where"));
      if (!where->is_object()) {
        return Status::InvalidArgument("'where' must be an object");
      }
      for (const std::string& attr : where->Keys()) {
        RECPRIV_ASSIGN_OR_RETURN(const JsonValue* value, where->Get(attr));
        if (!value->is_string()) {
          return Status::InvalidArgument("'where' values must be strings");
        }
        RECPRIV_ASSIGN_OR_RETURN(std::string value_str, value->AsString());
        qs.where.emplace_back(attr, std::move(value_str));
      }
    }
    RECPRIV_ASSIGN_OR_RETURN(qs.sa, RequireString(*spec, "sa"));
    req.queries.push_back(std::move(qs));
  }
  if (request.Has("tenant")) {
    RECPRIV_ASSIGN_OR_RETURN(req.tenant, RequireString(request, "tenant"));
  }
  if (request.Has("deadline_ms")) {
    RECPRIV_ASSIGN_OR_RETURN(int64_t deadline,
                             RequireInt(request, "deadline_ms"));
    // A negative budget is a shape error; 0 is legal and sheds immediately
    // (the request reports what work *would* have been admitted).
    if (deadline < 0) {
      return Status::InvalidArgument(
          "'deadline_ms' must be a non-negative integer");
    }
    req.deadline_ms = deadline;
  }
  return req;
}

// --- replication op handlers -----------------------------------------------

Result<JsonValue> HandleSubscribe(QueryEngine& engine,
                                  const RequestContext& context) {
  if (context.snapshots == nullptr || !context.on_subscribe) {
    return Status::NotImplemented(
        "this front end does not serve replication subscriptions");
  }
  // Mark the session subscribed BEFORE reading the listing: a publish
  // landing in between then shows up both here and as a pushed event
  // (duplicate installs are benign — the follower's store answers
  // AlreadyExists), whereas the reverse order could lose it forever.
  if (!context.on_subscribe()) {
    return Status::NotImplemented("this session cannot carry a push stream");
  }
  JsonValue releases = JsonValue::Array();
  for (const ReleaseInfo& rel : engine.store().List()) {
    auto window = engine.store().Window(rel.name);
    if (!window.ok()) continue;  // dropped between List() and Window()
    JsonValue epochs = JsonValue::Array();
    for (const SnapshotPtr& snap : *window) {
      RECPRIV_ASSIGN_OR_RETURN(repl::SnapshotProvider::Packed packed,
                               context.snapshots->Pack(rel.name, snap));
      JsonValue entry = JsonValue::Object();
      entry.Set("epoch", JsonValue::Uint(uint64_t(snap->epoch)));
      entry.Set("digest",
                JsonValue::String(repl::FormatDigest(packed.digest)));
      epochs.Append(std::move(entry));
    }
    JsonValue entry = JsonValue::Object();
    entry.Set("release", JsonValue::String(rel.name));
    entry.Set("epochs", std::move(epochs));
    releases.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("subscribed", JsonValue::Bool(true));
  out.Set("releases", std::move(releases));
  return out;
}

Result<JsonValue> HandleFetchSnapshot(const JsonValue& request,
                                      const RequestContext& context,
                                      RequestInfo* info) {
  if (context.snapshots == nullptr) {
    return Status::NotImplemented(
        "this front end does not serve snapshot transfers");
  }
  RECPRIV_ASSIGN_OR_RETURN(std::string release,
                           RequireString(request, "release"));
  RECPRIV_ASSIGN_OR_RETURN(uint64_t epoch, RequireUint64(request, "epoch"));
  uint64_t offset = 0;
  if (request.Has("offset")) {
    RECPRIV_ASSIGN_OR_RETURN(offset, RequireUint64(request, "offset"));
  }
  uint64_t max_bytes = kDefaultFetchChunkBytes;
  if (request.Has("max_bytes")) {
    RECPRIV_ASSIGN_OR_RETURN(uint64_t raw,
                             RequireUint64(request, "max_bytes"));
    if (raw == 0) {
      return Status::InvalidArgument("'max_bytes' must be a positive integer");
    }
    max_bytes = std::min(raw, kMaxFetchChunkBytes);
  }
  RECPRIV_ASSIGN_OR_RETURN(repl::SnapshotProvider::Packed packed,
                           context.snapshots->Get(release, epoch));
  const std::vector<uint8_t>& bytes = *packed.bytes;
  if (offset > bytes.size()) {
    return Status::InvalidArgument(
        "'offset' " + std::to_string(offset) + " is beyond the image (" +
        std::to_string(bytes.size()) + " bytes)");
  }
  const uint64_t len = std::min<uint64_t>(max_bytes, bytes.size() - offset);
  JsonValue out = JsonValue::Object();
  out.Set("release", JsonValue::String(release));
  out.Set("epoch", JsonValue::Uint(epoch));
  out.Set("offset", JsonValue::Uint(offset));
  out.Set("total_bytes", JsonValue::Uint(uint64_t(bytes.size())));
  out.Set("digest", JsonValue::String(repl::FormatDigest(packed.digest)));
  out.Set("chunk_digest",
          JsonValue::String(repl::FormatDigest(
              repl::BytesDigest(bytes.data() + offset, len))));
  if (context.binary_session) {
    // The chunk rides as the response frame's raw attachment: no base64
    // expansion, no JSON string escaping pass over the payload.
    out.Set("data_bytes", JsonValue::Uint(len));
    info->attachment.assign(
        reinterpret_cast<const char*>(bytes.data() + offset), size_t(len));
  } else {
    out.Set("data_b64", JsonValue::String(Base64Encode(bytes.data() + offset,
                                                       size_t(len))));
  }
  out.Set("eof", JsonValue::Bool(offset + len == bytes.size()));
  return out;
}

// --- session framing ("hello") ----------------------------------------------

Result<JsonValue> HandleHello(const JsonValue& request,
                              const RequestContext& context,
                              RequestInfo* info) {
  std::string frame = "json";
  if (request.Has("frame")) {
    RECPRIV_ASSIGN_OR_RETURN(frame, RequireString(request, "frame"));
  }
  if (frame != "json" && frame != "binary") {
    return Status::InvalidArgument(
        "'frame' must be \"json\" or \"binary\", got \"" + frame + "\"");
  }
  // Degrade, don't error: a front end that cannot frame (stdin, loopback)
  // answers "json" and the session simply stays line-framed.
  const bool binary = frame == "binary" && context.allow_binary_frame;
  info->negotiated_binary = binary;
  JsonValue out = JsonValue::Object();
  out.Set("frame", JsonValue::String(binary ? "binary" : "json"));
  return out;
}

// --- dispatch --------------------------------------------------------------

Result<JsonValue> Dispatch(const std::string& op, const JsonValue& request,
                           QueryEngine& engine, const RequestContext& context,
                           int64_t version, RequestInfo* info) {
  if (op == "query") {
    RECPRIV_ASSIGN_OR_RETURN(client::QueryRequest req,
                             DecodeQueryRequestBody(request));
    RECPRIV_ASSIGN_OR_RETURN(client::BatchAnswer batch,
                             ExecuteQuery(engine, req));
    return EncodeBatchAnswerPayload(batch);
  }
  if (op == "list") {
    RECPRIV_ASSIGN_OR_RETURN(std::vector<client::ReleaseDescriptor> releases,
                             ListReleases(engine));
    return EncodeListPayload(releases);
  }
  if (op == "stats") {
    RECPRIV_ASSIGN_OR_RETURN(client::ServerStats stats, CollectStats(engine));
    if (context.transport_stats) stats.transport = context.transport_stats();
    if (context.replication_stats) {
      stats.replication = context.replication_stats();
    }
    return EncodeStatsPayload(stats);
  }
  if (op == "schema") {
    RECPRIV_ASSIGN_OR_RETURN(std::string release,
                             RequireString(request, "release"));
    RECPRIV_ASSIGN_OR_RETURN(std::optional<uint64_t> epoch,
                             OptionalEpoch(request));
    RECPRIV_ASSIGN_OR_RETURN(client::ReleaseSchema schema,
                             DescribeRelease(engine, release, epoch));
    return EncodeSchemaPayload(schema);
  }
  if (op == "publish") {
    RECPRIV_ASSIGN_OR_RETURN(std::string name, RequireString(request, "name"));
    RECPRIV_ASSIGN_OR_RETURN(std::string basename,
                             RequireString(request, "release"));
    RECPRIV_ASSIGN_OR_RETURN(client::ReleaseDescriptor desc,
                             PublishFromFile(engine, name, basename));
    JsonValue out = JsonValue::Object();
    out.Set("release", EncodeDescriptor(desc));
    return out;
  }
  if (op == "drop") {
    RECPRIV_ASSIGN_OR_RETURN(std::string release,
                             RequireString(request, "release"));
    RECPRIV_ASSIGN_OR_RETURN(client::ReleaseDescriptor desc,
                             DropRelease(engine, release));
    JsonValue out = JsonValue::Object();
    out.Set("dropped", EncodeDescriptor(desc));
    return out;
  }
  if (op == "hello" || op == "subscribe" || op == "fetch_snapshot") {
    // These ops postdate v1; a legacy-framed request would have no way to
    // read structured DATA_LOSS errors, pushed event lines, or frames.
    if (version < kWireVersionCurrent) {
      return Status::NotImplemented("'" + op + "' requires protocol version 2");
    }
    if (op == "hello") return HandleHello(request, context, info);
    if (op == "subscribe") return HandleSubscribe(engine, context);
    return HandleFetchSnapshot(request, context, info);
  }
  return Status::InvalidArgument(
      "unknown op '" + op +
      "' (expected query, list, stats, schema, publish, drop, hello, "
      "subscribe, or fetch_snapshot)");
}

// --- response envelopes ----------------------------------------------------

JsonValue EncodeError(const ApiError& error) {
  JsonValue out = JsonValue::Object();
  out.Set("code", JsonValue::String(std::string(ErrorCodeName(error.code))));
  out.Set("message", JsonValue::String(error.message));
  return out;
}

/// The id is echoed verbatim on every response that has one, v1 or v2.
JsonValue OkBody(int64_t version, const JsonValue* id, JsonValue payload) {
  payload.Set("ok", JsonValue::Bool(true));
  if (version >= kWireVersionCurrent) {
    payload.Set("v", JsonValue::Int(kWireVersionCurrent));
  }
  if (id != nullptr) payload.Set("id", *id);
  return payload;
}

JsonValue ErrorBody(int64_t version, const JsonValue* id,
                    const ApiError& error) {
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue::Bool(false));
  if (version >= kWireVersionCurrent) {
    out.Set("v", JsonValue::Int(kWireVersionCurrent));
    out.Set("error", EncodeError(error));
  } else {
    // v1 errors are the flat "<Code>: <message>" string of PR-1.
    out.Set("error", JsonValue::String(error.ToStatus().ToString()));
  }
  if (id != nullptr) out.Set("id", *id);
  return out;
}

}  // namespace

JsonValue HandleRequest(const JsonValue& request, QueryEngine& engine,
                        const RequestContext& context, RequestInfo* info) {
  RequestInfo scratch;
  if (info == nullptr) info = &scratch;
  info->parsed = true;
  // Every error path funnels through here so the front end's per-code
  // counters (the shutdown summary) see the same taxonomy the wire does.
  const auto fail = [info](int64_t v, const JsonValue* id,
                           const ApiError& error) {
    info->error_code = error.code;
    return ErrorBody(v, id, error);
  };

  if (!request.is_object()) {
    // Valid JSON of the wrong shape is a request error, not MALFORMED
    // (which is reserved for lines that never parsed); the version field
    // is unreadable on a non-object, so answer in the current shape.
    return fail(
        kWireVersionCurrent, nullptr,
        ApiError{ErrorCode::kInvalidRequest, "request must be a JSON object"});
  }
  const JsonValue* id = nullptr;
  if (request.Has("id")) id = *request.Get("id");
  info->pinned_epoch = request.Has("epoch");

  int64_t version = kWireVersionLegacy;
  if (request.Has("v")) {
    auto v = (*request.Get("v"))->AsInt();
    if (!v.ok()) {
      return fail(kWireVersionCurrent, id,
                  ApiError{ErrorCode::kInvalidRequest,
                           "'v' must be an integer protocol version"});
    }
    version = *v;
    if (version != kWireVersionLegacy && version != kWireVersionCurrent) {
      return fail(kWireVersionCurrent, id,
                  ApiError{ErrorCode::kUnsupported,
                           "unsupported protocol version " +
                               std::to_string(version) +
                               " (supported: 1, 2)"});
    }
  }
  info->version = version;

  auto op = RequireString(request, "op");
  if (!op.ok()) {
    return fail(version, id, ApiError::FromStatus(op.status()));
  }
  info->op = *op;
  Result<JsonValue> payload =
      Dispatch(*op, request, engine, context, version, info);
  if (!payload.ok()) {
    return fail(version, id, ApiError::FromStatus(payload.status()));
  }
  info->ok = true;
  info->subscribed = (*op == "subscribe");
  return OkBody(version, id, std::move(*payload));
}

std::string HandleRequestLine(const std::string& line, QueryEngine& engine) {
  return HandleRequestLine(line, engine, RequestContext{}, nullptr);
}

std::string HandleRequestLine(const std::string& line, QueryEngine& engine,
                              const RequestContext& context,
                              RequestInfo* info) {
  RequestInfo scratch;
  if (info == nullptr) info = &scratch;
  auto request = JsonValue::Parse(line);
  if (!request.ok()) {
    // The line never became JSON, so its protocol version is unknowable;
    // report in the current (structured) shape with the MALFORMED code.
    info->parsed = false;
    info->error_code = ErrorCode::kMalformed;
    return ErrorBody(
               kWireVersionCurrent, nullptr,
               ApiError{ErrorCode::kMalformed, request.status().message()})
        .ToString();
  }
  return HandleRequest(*request, engine, context, info).ToString();
}

std::string ErrorResponseLine(ErrorCode code, const std::string& message) {
  return ErrorBody(kWireVersionCurrent, nullptr, ApiError{code, message})
      .ToString();
}

bool IsKnownOp(const std::string& op) {
  return op == "query" || op == "list" || op == "stats" || op == "schema" ||
         op == "publish" || op == "drop" || op == "hello" ||
         op == "subscribe" || op == "fetch_snapshot";
}

size_t ServeLines(std::istream& in, std::ostream& out, QueryEngine& engine) {
  return ServeLines(in, out, engine, RequestContext{});
}

size_t ServeLines(std::istream& in, std::ostream& out, QueryEngine& engine,
                  const RequestContext& context) {
  size_t handled = 0;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    out << HandleRequestLine(line, engine, context, nullptr) << "\n"
        << std::flush;
    ++handled;
  }
  return handled;
}

// --- v2 codec (client side) ------------------------------------------------

namespace wire {

namespace {

JsonValue Envelope(const char* op, uint64_t id) {
  JsonValue request = JsonValue::Object();
  request.Set("v", JsonValue::Int(kWireVersionCurrent));
  request.Set("id", JsonValue::Uint(uint64_t(id)));
  request.Set("op", JsonValue::String(op));
  return request;
}

Result<client::AnswerRow> DecodeAnswerRow(const JsonValue& obj) {
  client::AnswerRow row;
  RECPRIV_ASSIGN_OR_RETURN(row.observed, RequireUint64(obj, "observed"));
  RECPRIV_ASSIGN_OR_RETURN(row.matched_size,
                           RequireUint64(obj, "matched_size"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* estimate,
                           RequireField(obj, "estimate"));
  RECPRIV_ASSIGN_OR_RETURN(row.estimate, estimate->AsDouble());
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* cached,
                           RequireField(obj, "cached"));
  RECPRIV_ASSIGN_OR_RETURN(row.cached, cached->AsBool());
  return row;
}

Result<std::vector<client::ReleaseDescriptor>> DecodeDescriptorArray(
    const JsonValue& response, const std::string& key) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* array,
                           RequireField(response, key));
  if (!array->is_array()) {
    return Status::InvalidArgument("'" + key + "' must be an array");
  }
  std::vector<client::ReleaseDescriptor> out;
  out.reserve(array->size());
  for (size_t i = 0; i < array->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, array->At(i));
    RECPRIV_ASSIGN_OR_RETURN(client::ReleaseDescriptor d,
                             DecodeDescriptor(*entry));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace

JsonValue EncodeSchedulerStats(const client::SchedulerStats& stats) {
  JsonValue out = JsonValue::Object();
  out.Set("window_us", JsonValue::Uint(uint64_t(stats.window_us)));
  out.Set("submissions", JsonValue::Uint(uint64_t(stats.submissions)));
  out.Set("coalesced_submissions",
          JsonValue::Uint(uint64_t(stats.coalesced_submissions)));
  out.Set("batches", JsonValue::Uint(uint64_t(stats.batches)));
  out.Set("batched_queries", JsonValue::Uint(uint64_t(stats.batched_queries)));
  out.Set("max_batch_queries",
          JsonValue::Uint(uint64_t(stats.max_batch_queries)));
  out.Set("max_batch_submissions",
          JsonValue::Uint(uint64_t(stats.max_batch_submissions)));
  return out;
}

JsonValue EncodeTenantStats(const client::TenantStats& stats) {
  JsonValue by_tenant = JsonValue::Object();
  for (const auto& [name, c] : stats.tenants) {
    JsonValue entry = JsonValue::Object();
    entry.Set("admitted", JsonValue::Uint(uint64_t(c.admitted)));
    entry.Set("rejected", JsonValue::Uint(uint64_t(c.rejected)));
    entry.Set("shed", JsonValue::Uint(uint64_t(c.shed)));
    by_tenant.Set(name, std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("quota_qps", JsonValue::Number(stats.quota_qps));
  out.Set("quota_burst", JsonValue::Number(stats.quota_burst));
  out.Set("by_tenant", std::move(by_tenant));
  return out;
}

JsonValue EncodeReplicationStats(const client::ReplicationStats& stats) {
  JsonValue out = JsonValue::Object();
  out.Set("primary", JsonValue::String(stats.primary));
  out.Set("connected", JsonValue::Bool(stats.connected));
  out.Set("events_seen", JsonValue::Uint(uint64_t(stats.events_seen)));
  out.Set("snapshots_fetched",
          JsonValue::Uint(uint64_t(stats.snapshots_fetched)));
  out.Set("bytes_fetched", JsonValue::Uint(uint64_t(stats.bytes_fetched)));
  out.Set("installs", JsonValue::Uint(uint64_t(stats.installs)));
  out.Set("drops", JsonValue::Uint(uint64_t(stats.drops)));
  out.Set("digest_mismatches",
          JsonValue::Uint(uint64_t(stats.digest_mismatches)));
  out.Set("reconnects", JsonValue::Uint(uint64_t(stats.reconnects)));
  out.Set("resyncs", JsonValue::Uint(uint64_t(stats.resyncs)));
  out.Set("lag_epochs", JsonValue::Uint(uint64_t(stats.lag_epochs)));
  out.Set("lag_ms", JsonValue::Number(stats.lag_ms));
  return out;
}

JsonValue EncodeListRequest(uint64_t id) { return Envelope("list", id); }

JsonValue EncodeQueryRequest(const client::QueryRequest& request,
                             uint64_t id) {
  JsonValue out = Envelope("query", id);
  out.Set("release", JsonValue::String(request.release));
  if (request.epoch.has_value()) {
    out.Set("epoch", JsonValue::Uint(uint64_t(*request.epoch)));
  }
  JsonValue queries = JsonValue::Array();
  for (const client::QuerySpec& spec : request.queries) {
    JsonValue entry = JsonValue::Object();
    if (!spec.where.empty()) {
      JsonValue where = JsonValue::Object();
      for (const auto& [attr, value] : spec.where) {
        where.Set(attr, JsonValue::String(value));
      }
      entry.Set("where", std::move(where));
    }
    entry.Set("sa", JsonValue::String(spec.sa));
    queries.Append(std::move(entry));
  }
  out.Set("queries", std::move(queries));
  if (!request.tenant.empty()) {
    out.Set("tenant", JsonValue::String(request.tenant));
  }
  if (request.deadline_ms.has_value()) {
    out.Set("deadline_ms", JsonValue::Int(*request.deadline_ms));
  }
  return out;
}

JsonValue EncodeSchemaRequest(const std::string& release,
                              std::optional<uint64_t> epoch, uint64_t id) {
  JsonValue out = Envelope("schema", id);
  out.Set("release", JsonValue::String(release));
  if (epoch.has_value()) out.Set("epoch", JsonValue::Uint(uint64_t(*epoch)));
  return out;
}

JsonValue EncodeStatsRequest(uint64_t id) { return Envelope("stats", id); }

JsonValue EncodePublishRequest(const std::string& name,
                               const std::string& basename, uint64_t id) {
  JsonValue out = Envelope("publish", id);
  out.Set("name", JsonValue::String(name));
  out.Set("release", JsonValue::String(basename));
  return out;
}

JsonValue EncodeDropRequest(const std::string& release, uint64_t id) {
  JsonValue out = Envelope("drop", id);
  out.Set("release", JsonValue::String(release));
  return out;
}

Result<JsonValue> ParseResponse(const std::string& line, uint64_t expect_id) {
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    return Status::Internal("unparseable response line: " +
                            parsed.status().message());
  }
  JsonValue response = std::move(*parsed);
  if (!response.is_object()) {
    return Status::Internal("response is not a JSON object");
  }
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* ok_node,
                           RequireField(response, "ok"));
  RECPRIV_ASSIGN_OR_RETURN(bool ok, ok_node->AsBool());

  if (!ok) {
    // Surface the server's error before any envelope complaint — it is
    // the more useful diagnostic.
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* error,
                             RequireField(response, "error"));
    if (error->is_object()) {
      RECPRIV_ASSIGN_OR_RETURN(std::string code_name,
                               RequireString(*error, "code"));
      RECPRIV_ASSIGN_OR_RETURN(std::string message,
                               RequireString(*error, "message"));
      auto code = client::ErrorCodeFromName(code_name);
      if (!code.has_value()) {
        return Status::Internal("unknown wire error code '" + code_name +
                                "': " + message);
      }
      return client::ApiError{*code, std::move(message)}.ToStatus();
    }
    if (error->is_string()) {  // a v1-shaped error from a legacy server
      return Status::Internal("server error: " + *error->AsString());
    }
    return Status::Internal("malformed error response");
  }

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* v_node,
                           RequireField(response, "v"));
  auto v = v_node->AsInt();
  if (!v.ok() || *v != kWireVersionCurrent) {
    return Status::Internal("response is not protocol version " +
                            std::to_string(kWireVersionCurrent));
  }
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* id_node,
                           RequireField(response, "id"));
  auto id = id_node->AsInt();
  if (!id.ok() || uint64_t(*id) != expect_id) {
    return Status::Internal("response id mismatch (expected " +
                            std::to_string(expect_id) + ")");
  }
  return response;
}

Result<std::vector<client::ReleaseDescriptor>> DecodeListResponse(
    const JsonValue& response) {
  return DecodeDescriptorArray(response, "releases");
}

Result<client::BatchAnswer> DecodeQueryResponse(const JsonValue& response) {
  client::BatchAnswer batch;
  RECPRIV_ASSIGN_OR_RETURN(batch.release, RequireString(response, "release"));
  RECPRIV_ASSIGN_OR_RETURN(batch.epoch, RequireUint64(response, "epoch"));
  RECPRIV_ASSIGN_OR_RETURN(batch.cache_hits,
                           RequireUint64(response, "cache_hits"));
  RECPRIV_ASSIGN_OR_RETURN(batch.cache_misses,
                           RequireUint64(response, "cache_misses"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* answers,
                           RequireField(response, "answers"));
  if (!answers->is_array()) {
    return Status::InvalidArgument("'answers' must be an array");
  }
  batch.answers.reserve(answers->size());
  for (size_t i = 0; i < answers->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, answers->At(i));
    RECPRIV_ASSIGN_OR_RETURN(client::AnswerRow row, DecodeAnswerRow(*entry));
    batch.answers.push_back(row);
  }
  return batch;
}

Result<client::ReleaseSchema> DecodeSchemaResponse(const JsonValue& response) {
  client::ReleaseSchema schema;
  RECPRIV_ASSIGN_OR_RETURN(schema.release, RequireString(response, "release"));
  RECPRIV_ASSIGN_OR_RETURN(schema.epoch, RequireUint64(response, "epoch"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* attributes,
                           RequireField(response, "attributes"));
  if (!attributes->is_array()) {
    return Status::InvalidArgument("'attributes' must be an array");
  }
  schema.attributes.reserve(attributes->size());
  for (size_t i = 0; i < attributes->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, attributes->At(i));
    client::AttributeInfo attr;
    RECPRIV_ASSIGN_OR_RETURN(attr.name, RequireString(*entry, "name"));
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* sensitive,
                             RequireField(*entry, "sensitive"));
    RECPRIV_ASSIGN_OR_RETURN(attr.sensitive, sensitive->AsBool());
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* values,
                             RequireField(*entry, "values"));
    if (!values->is_array()) {
      return Status::InvalidArgument("'values' must be an array");
    }
    attr.values.reserve(values->size());
    for (size_t k = 0; k < values->size(); ++k) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* value, values->At(k));
      RECPRIV_ASSIGN_OR_RETURN(std::string value_str, value->AsString());
      attr.values.push_back(std::move(value_str));
    }
    schema.attributes.push_back(std::move(attr));
  }
  return schema;
}

Result<client::ServerStats> DecodeStatsResponse(const JsonValue& response) {
  client::ServerStats stats;
  RECPRIV_ASSIGN_OR_RETURN(stats.threads, RequireUint64(response, "threads"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* cache,
                           RequireField(response, "cache"));
  RECPRIV_ASSIGN_OR_RETURN(uint64_t size, RequireUint64(*cache, "size"));
  RECPRIV_ASSIGN_OR_RETURN(uint64_t capacity,
                           RequireUint64(*cache, "capacity"));
  RECPRIV_ASSIGN_OR_RETURN(uint64_t hits, RequireUint64(*cache, "hits"));
  RECPRIV_ASSIGN_OR_RETURN(uint64_t misses, RequireUint64(*cache, "misses"));
  stats.cache = client::CacheStats{size, capacity, hits, misses};
  RECPRIV_ASSIGN_OR_RETURN(stats.releases,
                           DecodeDescriptorArray(response, "releases"));
  if (response.Has("scheduler")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "scheduler"));
    if (!node->is_object()) {
      return Status::InvalidArgument("'scheduler' must be an object");
    }
    client::SchedulerStats s;
    RECPRIV_ASSIGN_OR_RETURN(s.window_us, RequireUint64(*node, "window_us"));
    RECPRIV_ASSIGN_OR_RETURN(s.submissions,
                             RequireUint64(*node, "submissions"));
    RECPRIV_ASSIGN_OR_RETURN(s.coalesced_submissions,
                             RequireUint64(*node, "coalesced_submissions"));
    RECPRIV_ASSIGN_OR_RETURN(s.batches, RequireUint64(*node, "batches"));
    RECPRIV_ASSIGN_OR_RETURN(s.batched_queries,
                             RequireUint64(*node, "batched_queries"));
    RECPRIV_ASSIGN_OR_RETURN(s.max_batch_queries,
                             RequireUint64(*node, "max_batch_queries"));
    RECPRIV_ASSIGN_OR_RETURN(s.max_batch_submissions,
                             RequireUint64(*node, "max_batch_submissions"));
    stats.scheduler = s;
  }
  if (response.Has("transport")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "transport"));
    if (!node->is_object()) {
      return Status::InvalidArgument("'transport' must be an object");
    }
    client::TransportStats t;
    RECPRIV_ASSIGN_OR_RETURN(t.connections_active,
                             RequireUint64(*node, "connections_active"));
    RECPRIV_ASSIGN_OR_RETURN(t.connections_accepted,
                             RequireUint64(*node, "connections_accepted"));
    RECPRIV_ASSIGN_OR_RETURN(t.connections_rejected,
                             RequireUint64(*node, "connections_rejected"));
    RECPRIV_ASSIGN_OR_RETURN(t.sessions_v2,
                             RequireUint64(*node, "sessions_v2"));
    RECPRIV_ASSIGN_OR_RETURN(t.requests, RequireUint64(*node, "requests"));
    RECPRIV_ASSIGN_OR_RETURN(t.errors, RequireUint64(*node, "errors"));
    RECPRIV_ASSIGN_OR_RETURN(t.malformed_lines,
                             RequireUint64(*node, "malformed_lines"));
    RECPRIV_ASSIGN_OR_RETURN(t.oversized_lines,
                             RequireUint64(*node, "oversized_lines"));
    RECPRIV_ASSIGN_OR_RETURN(t.idle_disconnects,
                             RequireUint64(*node, "idle_disconnects"));
    RECPRIV_ASSIGN_OR_RETURN(t.epoch_pins,
                             RequireUint64(*node, "epoch_pins"));
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* ops, RequireField(*node, "ops"));
    if (!ops->is_object()) {
      return Status::InvalidArgument("'ops' must be an object");
    }
    for (const std::string& op : ops->Keys()) {
      RECPRIV_ASSIGN_OR_RETURN(uint64_t count, RequireUint64(*ops, op));
      t.ops[op] = count;
    }
    stats.transport = std::move(t);
  }
  if (response.Has("tenants")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "tenants"));
    if (!node->is_object()) {
      return Status::InvalidArgument("'tenants' must be an object");
    }
    client::TenantStats q;
    RECPRIV_ASSIGN_OR_RETURN(q.quota_qps, RequireDouble(*node, "quota_qps"));
    RECPRIV_ASSIGN_OR_RETURN(q.quota_burst,
                             RequireDouble(*node, "quota_burst"));
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* by_tenant,
                             RequireField(*node, "by_tenant"));
    if (!by_tenant->is_object()) {
      return Status::InvalidArgument("'by_tenant' must be an object");
    }
    for (const std::string& name : by_tenant->Keys()) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, by_tenant->Get(name));
      if (!entry->is_object()) {
        return Status::InvalidArgument("each tenant entry must be an object");
      }
      client::TenantCounters c;
      RECPRIV_ASSIGN_OR_RETURN(c.admitted, RequireUint64(*entry, "admitted"));
      RECPRIV_ASSIGN_OR_RETURN(c.rejected, RequireUint64(*entry, "rejected"));
      RECPRIV_ASSIGN_OR_RETURN(c.shed, RequireUint64(*entry, "shed"));
      q.tenants[name] = c;
    }
    stats.tenants = std::move(q);
  }
  if (response.Has("replication")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "replication"));
    if (!node->is_object()) {
      return Status::InvalidArgument("'replication' must be an object");
    }
    client::ReplicationStats r;
    RECPRIV_ASSIGN_OR_RETURN(r.primary, RequireString(*node, "primary"));
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* connected,
                             RequireField(*node, "connected"));
    RECPRIV_ASSIGN_OR_RETURN(r.connected, connected->AsBool());
    RECPRIV_ASSIGN_OR_RETURN(r.events_seen,
                             RequireUint64(*node, "events_seen"));
    RECPRIV_ASSIGN_OR_RETURN(r.snapshots_fetched,
                             RequireUint64(*node, "snapshots_fetched"));
    RECPRIV_ASSIGN_OR_RETURN(r.bytes_fetched,
                             RequireUint64(*node, "bytes_fetched"));
    RECPRIV_ASSIGN_OR_RETURN(r.installs, RequireUint64(*node, "installs"));
    RECPRIV_ASSIGN_OR_RETURN(r.drops, RequireUint64(*node, "drops"));
    RECPRIV_ASSIGN_OR_RETURN(r.digest_mismatches,
                             RequireUint64(*node, "digest_mismatches"));
    RECPRIV_ASSIGN_OR_RETURN(r.reconnects,
                             RequireUint64(*node, "reconnects"));
    RECPRIV_ASSIGN_OR_RETURN(r.resyncs, RequireUint64(*node, "resyncs"));
    RECPRIV_ASSIGN_OR_RETURN(r.lag_epochs,
                             RequireUint64(*node, "lag_epochs"));
    RECPRIV_ASSIGN_OR_RETURN(r.lag_ms, RequireDouble(*node, "lag_ms"));
    stats.replication = std::move(r);
  }
  if (response.Has("store")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* node,
                             RequireField(response, "store"));
    if (!node->is_array()) {
      return Status::InvalidArgument("'store' must be an array");
    }
    for (size_t i = 0; i < node->size(); ++i) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, node->At(i));
      if (!entry->is_object()) {
        return Status::InvalidArgument("each store entry must be an object");
      }
      client::StoreReleaseStats s;
      RECPRIV_ASSIGN_OR_RETURN(s.release, RequireString(*entry, "release"));
      RECPRIV_ASSIGN_OR_RETURN(s.epoch, RequireUint64(*entry, "epoch"));
      RECPRIV_ASSIGN_OR_RETURN(s.source, RequireString(*entry, "source"));
      RECPRIV_ASSIGN_OR_RETURN(s.open_ms, RequireDouble(*entry, "open_ms"));
      RECPRIV_ASSIGN_OR_RETURN(s.parse_ms, RequireDouble(*entry, "parse_ms"));
      RECPRIV_ASSIGN_OR_RETURN(s.build_ms, RequireDouble(*entry, "build_ms"));
      RECPRIV_ASSIGN_OR_RETURN(s.bytes_mapped,
                               RequireUint64(*entry, "bytes_mapped"));
      stats.store.push_back(std::move(s));
    }
  }
  return stats;
}

Result<client::ReleaseDescriptor> DecodePublishResponse(
    const JsonValue& response) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* release,
                           RequireField(response, "release"));
  return DecodeDescriptor(*release);
}

Result<client::ReleaseDescriptor> DecodeDropResponse(
    const JsonValue& response) {
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* dropped,
                           RequireField(response, "dropped"));
  return DecodeDescriptor(*dropped);
}

// --- replication codec -----------------------------------------------------

JsonValue EncodeSubscribeRequest(uint64_t id) {
  return Envelope("subscribe", id);
}

Result<client::Subscription> DecodeSubscribeResponse(
    const JsonValue& response) {
  client::Subscription sub;
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* releases,
                           RequireField(response, "releases"));
  if (!releases->is_array()) {
    return Status::InvalidArgument("'releases' must be an array");
  }
  sub.releases.reserve(releases->size());
  for (size_t i = 0; i < releases->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* entry, releases->At(i));
    if (!entry->is_object()) {
      return Status::InvalidArgument("each release entry must be an object");
    }
    client::SubscribedRelease rel;
    RECPRIV_ASSIGN_OR_RETURN(rel.name, RequireString(*entry, "release"));
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* epochs,
                             RequireField(*entry, "epochs"));
    if (!epochs->is_array()) {
      return Status::InvalidArgument("'epochs' must be an array");
    }
    rel.epochs.reserve(epochs->size());
    for (size_t k = 0; k < epochs->size(); ++k) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* e, epochs->At(k));
      if (!e->is_object()) {
        return Status::InvalidArgument("each epoch entry must be an object");
      }
      client::EpochDigest ed;
      RECPRIV_ASSIGN_OR_RETURN(ed.epoch, RequireUint64(*e, "epoch"));
      RECPRIV_ASSIGN_OR_RETURN(ed.digest, RequireString(*e, "digest"));
      RECPRIV_RETURN_NOT_OK(repl::ParseDigest(ed.digest).status());
      rel.epochs.push_back(std::move(ed));
    }
    sub.releases.push_back(std::move(rel));
  }
  return sub;
}

JsonValue EncodeFetchSnapshotRequest(const std::string& release,
                                     uint64_t epoch, uint64_t offset,
                                     uint64_t max_bytes, uint64_t id) {
  JsonValue out = Envelope("fetch_snapshot", id);
  out.Set("release", JsonValue::String(release));
  out.Set("epoch", JsonValue::Uint(epoch));
  out.Set("offset", JsonValue::Uint(offset));
  out.Set("max_bytes", JsonValue::Uint(max_bytes));
  return out;
}

Result<client::SnapshotChunk> DecodeFetchSnapshotResponse(
    const JsonValue& response) {
  return DecodeFetchSnapshotResponse(response, nullptr);
}

Result<client::SnapshotChunk> DecodeFetchSnapshotResponse(
    const JsonValue& response, const std::string* attachment) {
  client::SnapshotChunk chunk;
  RECPRIV_ASSIGN_OR_RETURN(chunk.release, RequireString(response, "release"));
  RECPRIV_ASSIGN_OR_RETURN(chunk.epoch, RequireUint64(response, "epoch"));
  RECPRIV_ASSIGN_OR_RETURN(chunk.offset, RequireUint64(response, "offset"));
  RECPRIV_ASSIGN_OR_RETURN(chunk.total_bytes,
                           RequireUint64(response, "total_bytes"));
  RECPRIV_ASSIGN_OR_RETURN(chunk.digest, RequireString(response, "digest"));
  RECPRIV_RETURN_NOT_OK(repl::ParseDigest(chunk.digest).status());
  RECPRIV_ASSIGN_OR_RETURN(std::string chunk_digest,
                           RequireString(response, "chunk_digest"));
  RECPRIV_ASSIGN_OR_RETURN(uint64_t expect, repl::ParseDigest(chunk_digest));
  if (response.Has("data_bytes")) {
    // Binary-framed response: the chunk is the frame's raw attachment and
    // "data_bytes" declares its length. Both must agree with what the
    // transport actually carried.
    RECPRIV_ASSIGN_OR_RETURN(uint64_t declared,
                             RequireUint64(response, "data_bytes"));
    const size_t carried = attachment == nullptr ? 0 : attachment->size();
    if (declared != carried) {
      return Status::DataLoss(
          "'data_bytes' declares " + std::to_string(declared) +
          " bytes but the frame attachment carried " +
          std::to_string(carried));
    }
    if (attachment != nullptr) {
      chunk.data.assign(attachment->begin(), attachment->end());
    }
  } else {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* data_node,
                             RequireField(response, "data_b64"));
    if (!data_node->is_string()) {
      return Status::InvalidArgument("'data_b64' must be a string");
    }
    // View, not copy: the chunk payload is the one field big enough that an
    // extra pass shows up in follower convergence time.
    RECPRIV_ASSIGN_OR_RETURN(std::string_view data_b64,
                             data_node->AsStringView());
    RECPRIV_ASSIGN_OR_RETURN(chunk.data, Base64Decode(data_b64));
  }
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* eof,
                           RequireField(response, "eof"));
  RECPRIV_ASSIGN_OR_RETURN(chunk.eof, eof->AsBool());
  if (repl::BytesDigest(chunk.data.data(), chunk.data.size()) != expect) {
    return Status::DataLoss("snapshot chunk digest mismatch (release '" +
                            chunk.release + "' epoch " +
                            std::to_string(chunk.epoch) + " offset " +
                            std::to_string(chunk.offset) + ")");
  }
  const uint64_t end = chunk.offset + chunk.data.size();
  if (end > chunk.total_bytes || (chunk.eof != (end == chunk.total_bytes))) {
    return Status::DataLoss(
        "inconsistent snapshot chunk framing (offset " +
        std::to_string(chunk.offset) + " + " +
        std::to_string(chunk.data.size()) + " bytes vs total " +
        std::to_string(chunk.total_bytes) + ", eof=" +
        (chunk.eof ? "true" : "false") + ")");
  }
  return chunk;
}

JsonValue EncodeHelloRequest(const std::string& frame, uint64_t id) {
  JsonValue out = Envelope("hello", id);
  out.Set("frame", JsonValue::String(frame));
  return out;
}

Result<std::string> DecodeHelloResponse(const JsonValue& response) {
  return RequireString(response, "frame");
}

JsonValue EncodeEpochEvent(const client::EpochEvent& event) {
  JsonValue out = JsonValue::Object();
  out.Set("v", JsonValue::Int(kWireVersionCurrent));
  out.Set("event", JsonValue::String("epoch"));
  const char* kind = event.kind == client::EpochEvent::Kind::kPublish
                         ? "publish"
                         : event.kind == client::EpochEvent::Kind::kRetire
                               ? "retire"
                               : "drop";
  out.Set("kind", JsonValue::String(kind));
  out.Set("release", JsonValue::String(event.release));
  out.Set("epoch", JsonValue::Uint(uint64_t(event.epoch)));
  if (event.kind == client::EpochEvent::Kind::kPublish) {
    out.Set("digest", JsonValue::String(event.digest));
  }
  return out;
}

bool IsEventLine(const JsonValue& line) {
  return line.is_object() && line.Has("event");
}

Result<client::EpochEvent> DecodeEpochEvent(const JsonValue& line) {
  RECPRIV_ASSIGN_OR_RETURN(std::string event, RequireString(line, "event"));
  if (event != "epoch") {
    return Status::InvalidArgument("unknown event type '" + event + "'");
  }
  client::EpochEvent out;
  RECPRIV_ASSIGN_OR_RETURN(std::string kind, RequireString(line, "kind"));
  if (kind == "publish") {
    out.kind = client::EpochEvent::Kind::kPublish;
  } else if (kind == "retire") {
    out.kind = client::EpochEvent::Kind::kRetire;
  } else if (kind == "drop") {
    out.kind = client::EpochEvent::Kind::kDrop;
  } else {
    return Status::InvalidArgument("unknown epoch event kind '" + kind + "'");
  }
  RECPRIV_ASSIGN_OR_RETURN(out.release, RequireString(line, "release"));
  RECPRIV_ASSIGN_OR_RETURN(out.epoch, RequireUint64(line, "epoch"));
  if (out.kind == client::EpochEvent::Kind::kPublish) {
    RECPRIV_ASSIGN_OR_RETURN(out.digest, RequireString(line, "digest"));
    RECPRIV_RETURN_NOT_OK(repl::ParseDigest(out.digest).status());
  }
  return out;
}

}  // namespace wire

}  // namespace recpriv::serve
