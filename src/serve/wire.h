// Line-delimited JSON request/response front end for the serving layer —
// the protocol behind tools/recpriv_serve. One JSON object per input line,
// one JSON object per output line, always with an "ok" field:
//
//   {"op":"list"}
//     -> {"ok":true,"releases":[{"name":...,"epoch":...,
//         "num_records":...,"num_groups":...}]}
//
//   {"op":"query","release":"adult","queries":[
//       {"where":{"Workclass":"private","Education":"hs"},"sa":">50k"}]}
//     -> {"ok":true,"release":"adult","epoch":1,"cache_hits":0,
//         "cache_misses":1,"answers":[{"observed":12,"matched_size":310,
//         "estimate":18.7,"cached":false}]}
//
//   {"op":"stats"}
//     -> {"ok":true,"threads":4,"cache":{"size":...,"capacity":...,
//         "hits":...,"misses":...}}
//
// Errors never tear down the session: a malformed line or unknown release
// yields {"ok":false,"error":"..."} and the loop continues. Values in
// "where" and "sa" are domain strings of the release's own schema; unknown
// attributes or values are reported as errors rather than silently matching
// nothing, so analysts catch typos instead of reading zeros.

#pragma once

#include <iosfwd>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"

namespace recpriv::serve {

/// Dispatches one parsed request object; never returns an error — failures
/// become {"ok":false,...} responses.
JsonValue HandleRequest(const JsonValue& request, QueryEngine& engine);

/// Parses one request line and dispatches it; the returned string is the
/// serialized one-line response (no trailing newline).
std::string HandleRequestLine(const std::string& line, QueryEngine& engine);

/// Reads request lines from `in` until EOF, writing one response line per
/// request to `out` (blank lines are skipped). Returns the number of
/// requests handled.
size_t ServeLines(std::istream& in, std::ostream& out, QueryEngine& engine);

}  // namespace recpriv::serve
