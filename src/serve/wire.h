// Line-delimited JSON front end for the serving layer — the protocol
// behind tools/recpriv_serve, and the ONLY place in the tree where
// protocol JSON is built or parsed. Everything outside this file works
// with the typed structs of client/api.h; the server dispatches through
// serve/service.h and the remote client backend
// (client/line_protocol_client.h) uses the codec declared below.
//
// One JSON object per input line, one JSON object per output line, always
// with an "ok" field. Two protocol versions coexist:
//
// v1 (legacy, the PR-1 protocol; selected by omitting "v"):
//
//   {"op":"list"}
//     -> {"ok":true,"releases":[{"name":...,"epoch":...,
//         "num_records":...,"num_groups":...,...}]}
//   {"op":"query","release":"adult","queries":[
//       {"where":{"Workclass":"private","Education":"hs"},"sa":">50k"}]}
//     -> {"ok":true,"release":"adult","epoch":1,"cache_hits":0,
//         "cache_misses":1,"answers":[{"observed":12,"matched_size":310,
//         "estimate":18.7,"cached":false}]}
//   {"op":"stats"}
//     -> {"ok":true,"threads":4,"cache":{...},"releases":[...]}
//
//   v1 errors are a flat string: {"ok":false,"error":"NotFound: ..."}.
//
// v2 (current; selected with "v":2):
//
//   * every request may carry a client-chosen "id", echoed verbatim on the
//     response — success or error — so a pipelined client can correlate;
//   * responses carry "v":2;
//   * errors are structured, with a stable code taxonomy (client/api.h):
//     {"v":2,"id":7,"ok":false,
//      "error":{"code":"STALE_EPOCH","message":"..."}}
//   * query and schema ops accept "epoch":N to pin a retained snapshot
//     (serve/release_store.h), so a multi-batch analysis session reads a
//     consistent release across republishes;
//   * admin/introspection ops: "schema" (attribute names + domain values),
//     "publish" (load a release bundle from the server's filesystem),
//     "drop" (retire a release);
//   * replication ops (TCP front end only): "subscribe" upgrades the
//     session into a push stream of epoch events and returns the full
//     retained-epoch listing with content digests; "fetch_snapshot"
//     streams a serialized `.rps` image in checksummed base64 chunks;
//   * "hello" negotiates the session framing. JSON lines are the default
//     and the compatibility surface; a client on a frame-capable transport
//     may ask for length-prefixed binary frames (net/line_channel.h):
//
//       {"v":2,"id":0,"op":"hello","frame":"binary"}
//         -> {"v":2,"id":0,"ok":true,"frame":"binary"}
//
//     The response is sent in the session's CURRENT framing and states the
//     framing the server accepted ("json" when this front end cannot frame,
//     e.g. stdin — negotiation degrades, it never errors); both sides
//     switch immediately after it. On a binary session every request and
//     response is one kFrameJson frame carrying the same JSON text a line
//     session would carry — byte-identical payloads, so transcripts match
//     across framings — except "fetch_snapshot" responses, which become
//     kFrameJsonWithBytes frames: the chunk rides as a raw attachment
//     (JSON carries "data_bytes":N instead of "data_b64"), skipping base64
//     expansion and JSON string escaping entirely.
//
//   {"v":2,"id":5,"op":"subscribe"}
//     -> {"v":2,"id":5,"ok":true,"subscribed":true,"releases":[
//         {"release":"adult","epochs":[
//           {"epoch":1,"digest":"xxh64:00ff12ab34cd56ef"},...]}]}
//     ...then, interleaved with this session's responses, pushed lines
//     with no "id"/"ok" (distinguish by the "event" key — wire::IsEventLine):
//     {"v":2,"event":"epoch","kind":"publish","release":"adult","epoch":2,
//      "digest":"xxh64:..."}
//     {"v":2,"event":"epoch","kind":"retire","release":"adult","epoch":1}
//     {"v":2,"event":"epoch","kind":"drop","release":"adult","epoch":2}
//   {"v":2,"id":6,"op":"fetch_snapshot","release":"adult","epoch":2,
//    "offset":0,"max_bytes":262144}
//     -> {"v":2,"id":6,"ok":true,"release":"adult","epoch":2,"offset":0,
//         "total_bytes":1048576,"digest":"xxh64:...",
//         "chunk_digest":"xxh64:...","data_b64":"...","eof":false}
//
//   {"v":2,"id":1,"op":"schema","release":"adult"}
//     -> {"v":2,"id":1,"ok":true,"release":"adult","epoch":1,
//         "attributes":[{"name":"Workclass","sensitive":false,
//                        "values":["private",...]},...]}
//   {"v":2,"id":2,"op":"publish","name":"adult","release":"bundles/adult"}
//     -> {"v":2,"id":2,"ok":true,"release":{"name":"adult","epoch":2,...}}
//   {"v":2,"id":3,"op":"drop","release":"adult"}
//     -> {"v":2,"id":3,"ok":true,"dropped":{"name":"adult",...}}
//   {"v":2,"id":4,"op":"query","release":"adult","epoch":1,"queries":[...]}
//     -> answered from the pinned epoch-1 snapshot
//
// Errors never tear down the session: a malformed line or unknown release
// yields an error response and the loop continues. A line that is not
// parseable JSON at all gets the v2 error shape with code "MALFORMED"
// (its version field is unreadable by definition). Values in "where" and
// "sa" are domain strings of the release's own schema; unknown attributes
// or values are reported as errors rather than silently matching nothing,
// so analysts catch typos instead of reading zeros.

#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "client/api.h"
#include "common/json.h"
#include "common/result.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"

namespace recpriv::repl {
class SnapshotProvider;
}  // namespace recpriv::repl

namespace recpriv::serve {

inline constexpr int64_t kWireVersionLegacy = 1;
inline constexpr int64_t kWireVersionCurrent = 2;

/// Default / maximum payload bytes per "fetch_snapshot" chunk. The cap
/// keeps one response line well under the server's max line length even
/// after base64 expansion (4/3) plus framing.
inline constexpr uint64_t kDefaultFetchChunkBytes = 256 * 1024;
inline constexpr uint64_t kMaxFetchChunkBytes = 1024 * 1024;

/// Transport-level context a front end may attach to request handling.
/// `transport_stats`, when set, is invoked by the "stats" op so its
/// response includes the front end's connection/op counters (the stdin and
/// in-process paths leave it unset and the field stays absent).
struct RequestContext {
  std::function<client::TransportStats()> transport_stats;
  /// Serialized snapshot images for the replication ops; "subscribe" and
  /// "fetch_snapshot" answer UNSUPPORTED while this is null.
  repl::SnapshotProvider* snapshots = nullptr;
  /// Invoked by a successful "subscribe" to upgrade the session into a
  /// push stream; returns false when this front end cannot push (stdin).
  /// Unset (like null `snapshots`) means subscribe is UNSUPPORTED.
  std::function<bool()> on_subscribe;
  /// When set, the "stats" op adds a "replication" section — a follower's
  /// link counters and staleness bounds. Absent on non-replicating
  /// servers, so their golden transcripts are unchanged.
  std::function<client::ReplicationStats()> replication_stats;
  /// True when this front end can switch the session to binary frames (a
  /// live socket it controls). "hello" negotiates "frame":"json" while
  /// false — stdin and loopback front ends leave it unset.
  bool allow_binary_frame = false;
  /// True when the CURRENT request arrived on a binary-framed session;
  /// "fetch_snapshot" then emits its chunk as a raw frame attachment
  /// (RequestInfo::attachment) instead of base64.
  bool binary_session = false;
};

/// What one handled request looked like — filled for the front end's
/// metrics, without it re-parsing the line.
struct RequestInfo {
  bool parsed = false;      ///< the line was valid JSON
  bool ok = false;          ///< the response carried ok:true
  int64_t version = kWireVersionLegacy;  ///< protocol version requested
  bool pinned_epoch = false;             ///< the request pinned an epoch
  bool subscribed = false;  ///< a "subscribe" op succeeded on this request
  std::string op;           ///< "op" value when present and a string
  client::ErrorCode error_code = client::ErrorCode::kOk;  ///< set iff !ok
  /// Outcome of a "hello": the framing the session should use from the
  /// next request on (the hello response itself goes out in the old one).
  bool negotiated_binary = false;
  /// Raw bytes to ship as the response frame's attachment
  /// (kFrameJsonWithBytes). Only ever set on binary sessions
  /// (RequestContext::binary_session); empty means a plain JSON frame.
  std::string attachment;
};

/// Dispatches one parsed request object; never returns an error — failures
/// become {"ok":false,...} responses in the request's protocol version.
JsonValue HandleRequest(const JsonValue& request, QueryEngine& engine,
                        const RequestContext& context = {},
                        RequestInfo* info = nullptr);

/// Parses one request line and dispatches it; the returned string is the
/// serialized one-line response (no trailing newline).
std::string HandleRequestLine(const std::string& line, QueryEngine& engine);
std::string HandleRequestLine(const std::string& line, QueryEngine& engine,
                              const RequestContext& context,
                              RequestInfo* info);

/// A standalone v2-shaped error response line (no id echo) for conditions
/// the dispatcher never sees: an oversized request line, a connection
/// refused at max_connections.
std::string ErrorResponseLine(client::ErrorCode code,
                              const std::string& message);

/// True for op names the dispatcher implements. Front ends keying metrics
/// by op name MUST bucket unknown names through this, or a peer sending
/// distinct made-up ops grows the metric map without bound.
bool IsKnownOp(const std::string& op);

/// Reads request lines from `in` until EOF, writing one response line per
/// request to `out` (blank lines are skipped). Returns the number of
/// requests handled. The context overload lets the stdin front end expose
/// e.g. replication stats; it cannot push, so leave `on_subscribe` unset.
size_t ServeLines(std::istream& in, std::ostream& out, QueryEngine& engine);
size_t ServeLines(std::istream& in, std::ostream& out, QueryEngine& engine,
                  const RequestContext& context);

// --- v2 codec --------------------------------------------------------------
// Request encoders and response decoders for the client side of the wire,
// used by client::LineProtocolClient. Encoders stamp "v":2 and the given
// correlation id; decoders verify the envelope (ok / version / id echo)
// and map structured wire errors back onto the Status taxonomy via
// client::ApiError, so a remote caller sees the same Status an in-process
// caller would.
namespace wire {

/// The "scheduler" section of the stats payload. Exposed because tools
/// that report the same struct outside the protocol (recpriv_workload's
/// report JSON) must stay field-for-field identical to the wire shape.
JsonValue EncodeSchedulerStats(const client::SchedulerStats& stats);

/// The "tenants" section of the stats payload (same contract as
/// EncodeSchedulerStats: the report JSON and the wire share one shape).
JsonValue EncodeTenantStats(const client::TenantStats& stats);

/// The "replication" section of the stats payload (same shape contract;
/// recpriv_serve's shutdown summary reuses it).
JsonValue EncodeReplicationStats(const client::ReplicationStats& stats);

JsonValue EncodeListRequest(uint64_t id);
JsonValue EncodeQueryRequest(const client::QueryRequest& request, uint64_t id);
JsonValue EncodeSchemaRequest(const std::string& release,
                              std::optional<uint64_t> epoch, uint64_t id);
JsonValue EncodeStatsRequest(uint64_t id);
JsonValue EncodePublishRequest(const std::string& name,
                               const std::string& basename, uint64_t id);
JsonValue EncodeDropRequest(const std::string& release, uint64_t id);

/// Parses one response line and validates the v2 envelope: the object
/// must carry ok:true and echo `expect_id`; a server-reported error
/// becomes its mapped Status.
Result<JsonValue> ParseResponse(const std::string& line, uint64_t expect_id);

Result<std::vector<client::ReleaseDescriptor>> DecodeListResponse(
    const JsonValue& response);
Result<client::BatchAnswer> DecodeQueryResponse(const JsonValue& response);
Result<client::ReleaseSchema> DecodeSchemaResponse(const JsonValue& response);
Result<client::ServerStats> DecodeStatsResponse(const JsonValue& response);
Result<client::ReleaseDescriptor> DecodePublishResponse(
    const JsonValue& response);
Result<client::ReleaseDescriptor> DecodeDropResponse(const JsonValue& response);

// --- replication codec -----------------------------------------------------

JsonValue EncodeSubscribeRequest(uint64_t id);
Result<client::Subscription> DecodeSubscribeResponse(const JsonValue& response);

JsonValue EncodeFetchSnapshotRequest(const std::string& release,
                                     uint64_t epoch, uint64_t offset,
                                     uint64_t max_bytes, uint64_t id);
/// Decodes one chunk, base64-expands its payload, and verifies the chunk
/// digest — a corrupted transfer surfaces here as DataLoss, before any
/// byte reaches a follower's reassembly buffer. The attachment overload
/// handles binary-framed responses, where the chunk arrives as raw frame
/// bytes ("data_bytes":N) instead of "data_b64"; pass nullptr when the
/// transport carried no attachment.
Result<client::SnapshotChunk> DecodeFetchSnapshotResponse(
    const JsonValue& response);
Result<client::SnapshotChunk> DecodeFetchSnapshotResponse(
    const JsonValue& response, const std::string* attachment);

// --- session framing codec ---------------------------------------------------

/// `frame` is "json" or "binary"; the server answers with the framing it
/// accepted (graceful degradation, never an error for a supported name).
JsonValue EncodeHelloRequest(const std::string& frame, uint64_t id);
/// The accepted framing name from a hello response.
Result<std::string> DecodeHelloResponse(const JsonValue& response);

/// A pushed epoch-event line (server side). Events are not responses:
/// they carry no "id"/"ok", and a subscribed client must route any line
/// where IsEventLine() holds to its event handler instead of the
/// request/response correlator.
JsonValue EncodeEpochEvent(const client::EpochEvent& event);
bool IsEventLine(const JsonValue& line);
Result<client::EpochEvent> DecodeEpochEvent(const JsonValue& line);

}  // namespace wire

}  // namespace recpriv::serve
