// Thread-safe LRU cache of count-query answers.
//
// Keys are release-name + snapshot content digest + canonical query bytes
// (see query/canonical.h and analysis::ReleaseSnapshot::content_digest), so
// a republished release invalidates implicitly: its content digest changes,
// every new lookup misses, and the stale snapshot's entries age out of the
// LRU tail without any explicit flush. The digest — not the epoch number —
// is what identifies a snapshot's answers: Drop + OpenSnapshot can
// reinstall a previously-used epoch with different content, which an
// epoch-keyed cache would silently answer from the dropped data. Repeated
// queries against a stable release are O(1) — the property the paper's
// consumption model makes possible, because a published release is
// immutable and an answer over it never goes stale.

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace recpriv::serve {

/// One cached answer: the observed perturbed count over the matching
/// groups, the matched release size |S*|, and the MLE count estimate.
struct CachedAnswer {
  uint64_t observed = 0;
  uint64_t matched_size = 0;
  double estimate = 0.0;
};

/// Mutex-guarded LRU map; capacity 0 disables caching entirely.
class AnswerCache {
 public:
  explicit AnswerCache(size_t capacity) : capacity_(capacity) {}

  /// On hit, fills `out`, promotes the entry to most-recently-used, and
  /// counts a hit; on miss counts a miss.
  bool Lookup(const std::string& key, CachedAnswer* out);

  /// Inserts or refreshes `key`, evicting least-recently-used entries past
  /// capacity.
  void Insert(const std::string& key, const CachedAnswer& value);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using Entry = std::pair<std::string, CachedAnswer>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace recpriv::serve
