#include "serve/micro_batcher.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace recpriv::serve {

using recpriv::query::CountQuery;

namespace {

/// Coalescing key: submissions may fuse iff they resolved their query codes
/// against the same snapshot. Epochs are never reused for a name (even
/// across Drop + republish — serve/release_store.h), so (release, epoch)
/// identifies one immutable snapshot.
std::string BatchKey(const std::string& release, uint64_t epoch) {
  std::string key = release;
  key.push_back('\0');
  key += std::to_string(epoch);
  return key;
}

}  // namespace

MicroBatcher::MicroBatcher(QueryEngine& engine, MicroBatcherOptions options)
    : engine_(engine), options_(options) {
  stats_.window_us = uint64_t(std::max(options_.window_us, 0));
}

Result<BatchResult> MicroBatcher::Slice(const Pending& batch, size_t offset,
                                        size_t count) const {
  RECPRIV_RETURN_NOT_OK(batch.status);
  BatchResult out;
  out.epoch = batch.epoch;
  out.strategy_used = batch.strategy_used;
  out.answers.assign(batch.answers.begin() + offset,
                     batch.answers.begin() + offset + count);
  for (const Answer& a : out.answers) {
    if (a.cached) {
      ++out.cache_hits;
    } else {
      ++out.cache_misses;
    }
  }
  return out;
}

Result<BatchResult> MicroBatcher::Submit(const std::string& release,
                                         SnapshotPtr snap,
                                         std::vector<CountQuery> queries,
                                         const Deadline& deadline) {
  if (snap == nullptr) {
    return Status::InvalidArgument("MicroBatcher::Submit: null snapshot");
  }
  // Shed BEFORE coalescing: a past-deadline submission must never become
  // a rider whose answers nobody will read.
  if (DeadlineExpired(deadline)) {
    return Status::DeadlineExceeded(
        "deadline passed before the submission could join a batch");
  }
  // Validate BEFORE coalescing: a bad query fails its own submission only.
  RECPRIV_RETURN_NOT_OK(ValidateBatchForSnapshot(*snap, queries));
  if (queries.empty()) {
    return engine_.AnswerBatch(release, std::move(snap), {});
  }
  const std::string key = BatchKey(release, snap->epoch);
  const size_t count = queries.size();

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submissions;

  auto it = open_.find(key);
  if (it != open_.end() && !it->second->full) {
    // Follower: ride the open batch and wait for its leader to evaluate.
    // A full batch is never joined (the cap bounds fused-batch size even
    // in the gap between a batch filling up and its leader closing it) —
    // the submission falls through and leads a fresh batch instead.
    PendingPtr batch = it->second;
    const size_t offset = batch->queries.size();
    batch->queries.insert(batch->queries.end(),
                          std::make_move_iterator(queries.begin()),
                          std::make_move_iterator(queries.end()));
    ++batch->submissions;
    ++stats_.coalesced_submissions;
    if (batch->queries.size() >= options_.max_batch_queries) {
      batch->full = true;
      batch->cv.notify_all();  // wake the leader early
    }
    batch->cv.wait(lock, [&] { return batch->done; });
    return Slice(*batch, offset, count);
  }

  // Leader: open a batch, collect riders for the window, then evaluate.
  PendingPtr batch = std::make_shared<Pending>();
  batch->release = release;
  batch->snap = std::move(snap);
  batch->queries = std::move(queries);
  batch->submissions = 1;
  // An already-full submission (or larger) evaluates immediately — the
  // cap bounds added latency for big requests, not just rider growth.
  batch->full = batch->queries.size() >= options_.max_batch_queries;
  open_.insert_or_assign(key, batch);

  // A leader with a deadline collects for at most its remaining budget:
  // the window must trade latency for fusion only when there is latency
  // to trade.
  auto window = std::chrono::microseconds(options_.window_us);
  if (deadline.has_value()) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::microseconds>(
            *deadline - std::chrono::steady_clock::now());
    window = std::min(window, std::max(remaining, window.zero()));
  }
  batch->cv.wait_for(lock, window, [&] { return batch->full; });
  // Close: a submission arriving from here on opens a fresh batch, so
  // collection of the next batch overlaps this one's evaluation. Erase
  // only OUR entry — a full batch may already have been displaced by a
  // newer leader's (insert_or_assign above).
  if (auto open_it = open_.find(key);
      open_it != open_.end() && open_it->second == batch) {
    open_.erase(open_it);
  }
  std::vector<CountQuery> merged;
  merged.swap(batch->queries);

  stats_.batched_queries += merged.size();
  ++stats_.batches;
  stats_.max_batch_queries =
      std::max<uint64_t>(stats_.max_batch_queries, merged.size());
  stats_.max_batch_submissions =
      std::max<uint64_t>(stats_.max_batch_submissions, batch->submissions);

  lock.unlock();
  // Every rider was validated before it could coalesce, so the merged
  // batch enters the engine through the pre-validated path.
  Result<BatchResult> merged_result =
      engine_.AnswerValidatedBatch(batch->release, batch->snap, merged);
  lock.lock();

  if (merged_result.ok()) {
    batch->epoch = merged_result->epoch;
    batch->strategy_used = merged_result->strategy_used;
    batch->answers = std::move(merged_result->answers);
  } else {
    batch->status = merged_result.status();
  }
  batch->done = true;
  batch->cv.notify_all();
  return Slice(*batch, 0, count);
}

client::SchedulerStats MicroBatcher::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace recpriv::serve
