// Per-tenant token-bucket admission for the serving layer.
//
// Every query batch is accounted against a tenant (a client-declared
// string; legacy/undeclared sessions share the "default" tenant). Each
// tenant owns one token bucket: `quota_qps` tokens per second of refill,
// capped at `quota_burst` tokens of depth, one token per query. A batch
// whose tenant has too few tokens is rejected with RESOURCE_EXHAUSTED
// before it touches the engine pool, so one abusive tenant exhausts its
// own bucket — not the shared workers, cache, or batcher window.
//
// The controller lives on the QueryEngine (built iff a quota is
// configured), so the wire front end and in-process clients share one
// admission decision — the same discipline as the cache and scheduler.
// The tenant map is bounded: past `max_tenants` distinct names, new
// tenants share one "(other)" bucket, so a peer inventing tenant names
// cannot grow server memory (the same rule serve/server.h applies to
// per-op metric keys).

#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "client/api.h"

namespace recpriv::serve {

/// The tenant every request without a declared tenant is accounted to.
inline constexpr const char* kDefaultTenant = "default";

/// The shared bucket once max_tenants distinct names exist.
inline constexpr const char* kOverflowTenant = "(other)";

struct AdmissionOptions {
  double quota_qps = 0.0;    ///< bucket refill, queries per second (> 0)
  double quota_burst = 0.0;  ///< bucket depth; <= 0 means max(quota_qps, 1)
  size_t max_tenants = 64;   ///< distinct buckets before "(other)" sharing
};

/// Thread-safe per-tenant token buckets plus admit/reject/shed counters.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Charges `queries` tokens (at least one) against `tenant`'s bucket.
  /// True = admitted (tokens taken); false = over quota (reject counted).
  bool Admit(const std::string& tenant, size_t queries);

  /// Counts a batch fast-failed past its deadline against `tenant`.
  void CountShed(const std::string& tenant);

  /// Point-in-time counters for the wire "tenants" stats section.
  client::TenantStats Stats() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
    client::TenantCounters counters;
  };

  /// Resolves (creating if room) the bucket for `tenant`; requires mu_.
  Bucket& BucketFor(const std::string& tenant);

  AdmissionOptions options_;
  double burst_;  ///< resolved bucket depth
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace recpriv::serve
