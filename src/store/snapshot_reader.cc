#include "store/snapshot_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/checksum.h"
#include "common/json.h"
#include "common/timer.h"
#include "table/dictionary.h"
#include "table/schema.h"
#include "table/table.h"

namespace recpriv::store {

namespace {

/// Re-tags a parse/validation failure as corruption of `path`. Everything
/// inside a checksummed file is the writer's responsibility, so a bad
/// field there is data loss, not a caller error.
Status DataLossFrom(const Status& status, const std::string& path) {
  return Status::DataLoss(path + ": " + status.message());
}

struct Header {
  Superblock sb;
  std::vector<SectionEntry> sections;
};

/// Decodes and fully verifies the superblock, section table, and every
/// section checksum. After this returns OK, all offsets are in bounds and
/// all payload bytes are exactly what the writer produced.
Result<Header> ParseHeader(std::span<const uint8_t> file,
                           const std::string& path) {
  if (!HostIsLittleEndian()) {
    return Status::NotImplemented(
        "snapshot serving maps little-endian arrays in place and requires a "
        "little-endian host");
  }
  if (file.size() < kSuperblockBytes) {
    return Status::DataLoss(path + ": truncated before the superblock");
  }
  Header h;
  h.sb = DecodeSuperblock(file.data());
  if (h.sb.magic != kSnapshotMagic) {
    return Status::DataLoss(path + ": not a recpriv snapshot (bad magic)");
  }
  if (h.sb.endian_tag != kEndianTag) {
    return Status::DataLoss(path + ": endianness tag mismatch");
  }
  if (h.sb.version != kSnapshotFormatVersion) {
    return Status::NotImplemented(
        path + ": snapshot format version " + std::to_string(h.sb.version) +
        " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (h.sb.alignment != kSectionAlignment ||
      h.sb.table_offset != kSuperblockBytes || h.sb.reserved != 0) {
    return Status::DataLoss(path + ": malformed superblock");
  }
  if (h.sb.section_count == 0 || h.sb.section_count > kMaxSections ||
      h.sb.table_bytes != h.sb.section_count * kSectionEntryBytes) {
    return Status::DataLoss(path + ": implausible section table");
  }
  if (h.sb.file_bytes != file.size()) {
    return Status::DataLoss(path + ": file size disagrees with superblock");
  }
  const uint64_t header_bytes = kSuperblockBytes + h.sb.table_bytes;
  if (header_bytes > file.size()) {
    return Status::DataLoss(path + ": truncated inside the section table");
  }
  std::vector<uint8_t> header(file.begin(), file.begin() + header_bytes);
  std::memset(header.data() + 56, 0, 8);  // the header_crc field itself
  if (XxHash64(header.data(), header.size()) != h.sb.header_crc) {
    return Status::DataLoss(path + ": header checksum mismatch");
  }

  uint64_t seen_kinds = 0;
  for (uint32_t i = 0; i < h.sb.section_count; ++i) {
    SectionEntry e = DecodeSectionEntry(file.data() + kSuperblockBytes +
                                        i * kSectionEntryBytes);
    if (e.elem_bytes != 1 && e.elem_bytes != 4 && e.elem_bytes != 8) {
      return Status::DataLoss(path + ": bad section element width");
    }
    if (e.count > file.size() || e.bytes != e.count * e.elem_bytes) {
      return Status::DataLoss(path + ": section size inconsistent");
    }
    if (e.offset % kSectionAlignment != 0 || e.offset < header_bytes ||
        e.offset > file.size() || e.bytes > file.size() - e.offset) {
      return Status::DataLoss(path + ": section out of bounds");
    }
    if (e.kind == 0 || e.kind >= 64 || (seen_kinds >> e.kind) & 1) {
      return Status::DataLoss(path + ": duplicate or unknown section kind");
    }
    seen_kinds |= uint64_t(1) << e.kind;
    h.sections.push_back(e);
  }
  for (const SectionEntry& e : h.sections) {
    if (XxHash64(file.data() + e.offset, size_t(e.bytes)) != e.crc) {
      return Status::DataLoss(path + ": section " + std::to_string(e.kind) +
                              " checksum mismatch");
    }
  }
  return h;
}

Result<const SectionEntry*> FindSection(const Header& h, SectionKind kind,
                                        const std::string& path) {
  for (const SectionEntry& e : h.sections) {
    if (e.kind == uint32_t(kind)) return &e;
  }
  return Status::DataLoss(path + ": missing section kind " +
                          std::to_string(uint32_t(kind)));
}

/// The section payload viewed as an array of T. Alignment holds by
/// construction (sections start on 64-byte boundaries) and the host is LE
/// (gated in ParseHeader), so the mmap'd bytes are usable in place.
template <typename T>
Result<std::span<const T>> TypedSection(std::span<const uint8_t> file,
                                        const SectionEntry& e,
                                        const std::string& path) {
  if (e.elem_bytes != sizeof(T)) {
    return Status::DataLoss(path + ": section " + std::to_string(e.kind) +
                            " has the wrong element width");
  }
  return std::span<const T>(reinterpret_cast<const T*>(file.data() + e.offset),
                            size_t(e.count));
}

/// Everything the manifest section declares.
struct Manifest {
  std::string release;
  uint64_t epoch = 0;
  core::PrivacyParams params;
  std::string sensitive_attribute;
  table::SchemaPtr schema;
  std::vector<std::vector<std::string>> generalization;
  bool packed = false;
  uint64_t num_groups = 0;
  uint64_t num_records = 0;
};

/// Parses and cross-checks the manifest JSON. Plain statuses here; the
/// caller re-tags them as kDataLoss against the file path.
Result<Manifest> ParseManifest(const std::string& text) {
  RECPRIV_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  RECPRIV_ASSIGN_OR_RETURN(std::string format, RequireString(root, "format"));
  if (format != "recpriv-snapshot") {
    return Status::InvalidArgument("manifest format is not recpriv-snapshot");
  }
  RECPRIV_ASSIGN_OR_RETURN(int64_t version, RequireInt(root, "version"));
  if (version != int64_t(kSnapshotFormatVersion)) {
    return Status::InvalidArgument("manifest version disagrees with header");
  }
  Manifest m;
  RECPRIV_ASSIGN_OR_RETURN(m.release, RequireString(root, "release"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t epoch, RequireInt(root, "epoch"));
  if (epoch < 0) return Status::InvalidArgument("negative epoch");
  m.epoch = uint64_t(epoch);

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* mechanism,
                           RequireField(root, "mechanism"));
  RECPRIV_ASSIGN_OR_RETURN(m.params.retention_p,
                           RequireDouble(*mechanism, "retention_p"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t domain_m,
                           RequireInt(*mechanism, "domain_m"));
  if (domain_m <= 0) return Status::InvalidArgument("non-positive domain_m");
  m.params.domain_m = size_t(domain_m);
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* privacy,
                           RequireField(root, "privacy"));
  RECPRIV_ASSIGN_OR_RETURN(m.params.lambda, RequireDouble(*privacy, "lambda"));
  RECPRIV_ASSIGN_OR_RETURN(m.params.delta, RequireDouble(*privacy, "delta"));

  RECPRIV_ASSIGN_OR_RETURN(m.sensitive_attribute,
                           RequireString(root, "sensitive_attribute"));

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* attrs,
                           RequireField(root, "attributes"));
  std::vector<table::Attribute> attributes;
  size_t sensitive_index = attrs->size();
  for (size_t a = 0; a < attrs->size(); ++a) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* attr, attrs->At(a));
    table::Attribute out;
    RECPRIV_ASSIGN_OR_RETURN(out.name, RequireString(*attr, "name"));
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* sensitive,
                             RequireField(*attr, "sensitive"));
    RECPRIV_ASSIGN_OR_RETURN(bool is_sensitive, sensitive->AsBool());
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* values,
                             RequireField(*attr, "values"));
    std::vector<std::string> domain;
    for (size_t i = 0; i < values->size(); ++i) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* value, values->At(i));
      RECPRIV_ASSIGN_OR_RETURN(std::string s, value->AsString());
      domain.push_back(std::move(s));
    }
    RECPRIV_ASSIGN_OR_RETURN(out.domain,
                             table::Dictionary::FromValues(domain));
    if (is_sensitive) {
      if (sensitive_index != attrs->size()) {
        return Status::InvalidArgument("multiple sensitive attributes");
      }
      sensitive_index = a;
    }
    attributes.push_back(std::move(out));
  }
  if (sensitive_index == attrs->size()) {
    return Status::InvalidArgument("no sensitive attribute");
  }
  if (attributes[sensitive_index].name != m.sensitive_attribute) {
    return Status::InvalidArgument(
        "sensitive_attribute disagrees with the attribute flags");
  }
  RECPRIV_ASSIGN_OR_RETURN(
      table::Schema schema,
      table::Schema::Make(std::move(attributes), sensitive_index));
  m.schema = std::make_shared<table::Schema>(std::move(schema));

  if (root.Has("generalized_values")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* gen,
                             root.Get("generalized_values"));
    for (size_t a = 0; a < gen->size(); ++a) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* per_attr, gen->At(a));
      std::vector<std::string> names;
      for (size_t i = 0; i < per_attr->size(); ++i) {
        RECPRIV_ASSIGN_OR_RETURN(const JsonValue* name, per_attr->At(i));
        RECPRIV_ASSIGN_OR_RETURN(std::string s, name->AsString());
        names.push_back(std::move(s));
      }
      m.generalization.push_back(std::move(names));
    }
  }

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* index,
                           RequireField(root, "index"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* packed,
                           RequireField(*index, "packed"));
  RECPRIV_ASSIGN_OR_RETURN(m.packed, packed->AsBool());
  RECPRIV_ASSIGN_OR_RETURN(int64_t groups, RequireInt(*index, "num_groups"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t records,
                           RequireInt(*index, "num_records"));
  if (groups < 0 || records < 0) {
    return Status::InvalidArgument("negative index dimensions");
  }
  m.num_groups = uint64_t(groups);
  m.num_records = uint64_t(records);
  return m;
}

Result<std::string> ManifestText(std::span<const uint8_t> file,
                                 const Header& header,
                                 const std::string& path) {
  RECPRIV_ASSIGN_OR_RETURN(
      const SectionEntry* entry,
      FindSection(header, SectionKind::kManifestJson, path));
  if (entry->elem_bytes != 1) {
    return Status::DataLoss(path + ": manifest section is not a byte array");
  }
  return std::string(reinterpret_cast<const char*>(file.data() +
                                                   entry->offset),
                     size_t(entry->bytes));
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

Result<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  MappedFile out;
  if (st.st_size > 0) {
    void* addr =
        ::mmap(nullptr, size_t(st.st_size), PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("cannot mmap " + path);
    }
    out.data_ = static_cast<const uint8_t*>(addr);
    out.size_ = size_t(st.st_size);
  }
  ::close(fd);  // the mapping outlives the descriptor
  return out;
}

Result<SnapshotInfo> InspectSnapshot(const std::string& path) {
  RECPRIV_ASSIGN_OR_RETURN(MappedFile map, MappedFile::Open(path));
  const std::span<const uint8_t> file = map.bytes();
  RECPRIV_ASSIGN_OR_RETURN(Header header, ParseHeader(file, path));
  RECPRIV_ASSIGN_OR_RETURN(std::string text,
                           ManifestText(file, header, path));
  auto manifest = ParseManifest(text);
  if (!manifest.ok()) return DataLossFrom(manifest.status(), path);
  SnapshotInfo info;
  info.superblock = header.sb;
  info.sections = std::move(header.sections);
  info.release = manifest->release;
  info.epoch = manifest->epoch;
  info.packed = manifest->packed;
  info.num_groups = manifest->num_groups;
  info.num_records = manifest->num_records;
  return info;
}

Result<OpenedSnapshot> OpenSnapshot(const std::string& path) {
  WallTimer timer;
  RECPRIV_ASSIGN_OR_RETURN(MappedFile map, MappedFile::Open(path));
  const std::span<const uint8_t> file = map.bytes();
  RECPRIV_ASSIGN_OR_RETURN(Header header, ParseHeader(file, path));
  RECPRIV_ASSIGN_OR_RETURN(std::string text,
                           ManifestText(file, header, path));
  auto parsed = ParseManifest(text);
  if (!parsed.ok()) return DataLossFrom(parsed.status(), path);
  Manifest manifest = std::move(*parsed);

  // The perturbed table: the one section a reader copies out of the map
  // (Table owns growable columns). Codes are validated against the
  // reconstructed dictionaries by FromColumns.
  RECPRIV_ASSIGN_OR_RETURN(
      const SectionEntry* table_entry,
      FindSection(header, SectionKind::kTableColumns, path));
  RECPRIV_ASSIGN_OR_RETURN(
      std::span<const uint32_t> cells,
      TypedSection<uint32_t>(file, *table_entry, path));
  const size_t num_attrs = manifest.schema->num_attributes();
  if (cells.size() != num_attrs * manifest.num_records) {
    return Status::DataLoss(path + ": table section size mismatch");
  }
  std::vector<std::vector<uint32_t>> columns(num_attrs);
  for (size_t c = 0; c < num_attrs; ++c) {
    const auto col = cells.subspan(c * manifest.num_records,
                                   manifest.num_records);
    columns[c].assign(col.begin(), col.end());
  }
  auto data = table::Table::FromColumns(manifest.schema, std::move(columns));
  if (!data.ok()) return DataLossFrom(data.status(), path);

  // The index arrays are used where they lie in the mapping.
  table::FlatGroupIndex::Storage storage;
  storage.packed = manifest.packed;
  storage.num_groups = manifest.num_groups;
  storage.num_records = manifest.num_records;
  RECPRIV_ASSIGN_OR_RETURN(const SectionEntry* na,
                           FindSection(header, SectionKind::kNaCodes, path));
  RECPRIV_ASSIGN_OR_RETURN(storage.na_codes,
                           TypedSection<uint32_t>(file, *na, path));
  RECPRIV_ASSIGN_OR_RETURN(const SectionEntry* sa,
                           FindSection(header, SectionKind::kSaCounts, path));
  RECPRIV_ASSIGN_OR_RETURN(storage.sa_counts,
                           TypedSection<uint64_t>(file, *sa, path));
  RECPRIV_ASSIGN_OR_RETURN(
      const SectionEntry* offsets,
      FindSection(header, SectionKind::kRowOffsets, path));
  RECPRIV_ASSIGN_OR_RETURN(storage.row_offsets,
                           TypedSection<uint64_t>(file, *offsets, path));
  RECPRIV_ASSIGN_OR_RETURN(const SectionEntry* rows,
                           FindSection(header, SectionKind::kRowValues, path));
  RECPRIV_ASSIGN_OR_RETURN(storage.row_values,
                           TypedSection<uint32_t>(file, *rows, path));
  if (manifest.packed) {
    RECPRIV_ASSIGN_OR_RETURN(
        const SectionEntry* keys,
        FindSection(header, SectionKind::kPackedKeys, path));
    RECPRIV_ASSIGN_OR_RETURN(storage.packed_keys,
                             TypedSection<uint64_t>(file, *keys, path));
  }
  auto index =
      table::FlatGroupIndex::FromStorage(manifest.schema, storage);
  if (!index.ok()) return DataLossFrom(index.status(), path);

  analysis::ReleaseBundle bundle{std::move(*data), manifest.params,
                                 std::move(manifest.sensitive_attribute),
                                 std::move(manifest.generalization)};
  analysis::SnapshotSource source;
  source.kind = "snapshot";
  source.bytes_mapped = file.size();
  source.open_ms = timer.Millis();
  // The snapshot's index borrows the mapping; hand ownership of the map to
  // the snapshot so the file stays mapped exactly as long as it is served.
  auto backing = std::make_shared<MappedFile>(std::move(map));
  auto assembled = analysis::AssembleSnapshot(
      std::move(bundle), manifest.epoch, std::move(*index), std::move(source),
      std::move(backing));
  if (!assembled.ok()) return DataLossFrom(assembled.status(), path);
  return OpenedSnapshot{std::move(manifest.release), std::move(*assembled)};
}

}  // namespace recpriv::store
