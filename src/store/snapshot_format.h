// On-disk layout of a release snapshot (.rps) — the paged binary format
// behind SaveSnapshot/OpenSnapshot (see snapshot_writer.h /
// snapshot_reader.h).
//
// A snapshot file is:
//
//   [superblock: 64 bytes]
//   [section table: kSectionEntryBytes per section]
//   [padding to a kSectionAlignment boundary]
//   [section 0][padding][section 1][padding]...
//
// All fixed-width fields are little-endian, encoded/decoded byte-by-byte
// through common/endian.h (no unaligned wide stores). Every section starts
// on a kSectionAlignment (64-byte) boundary so a reader can mmap the file
// and hand the array sections to FlatGroupIndex::FromStorage as naturally
// aligned spans, with zero parsing and zero copying.
//
// Integrity: the superblock carries an XXH64 over the header region (the
// superblock with its own checksum field zeroed, plus the section table),
// and each section entry carries an XXH64 over that section's payload
// bytes. A reader verifies all of them before trusting any offset, so a
// flipped bit anywhere surfaces as kDataLoss instead of a crash or a
// wrong answer.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/endian.h"

namespace recpriv::store {

/// "recpsnap" read as a little-endian uint64 — first 8 bytes of the file.
inline constexpr uint64_t kSnapshotMagic = 0x70616E7370636572ULL;
/// Format version this build reads and writes. A reader must fail fast on
/// any other value — the layout below is only defined for version 1.
inline constexpr uint32_t kSnapshotFormatVersion = 1;
/// Written as a little-endian u32; a reader that decodes anything else is
/// looking at foreign-endian (or corrupt) data.
inline constexpr uint32_t kEndianTag = 0x01020304;
/// Section payload alignment: enough for any scalar array and one cache
/// line, so mmap'd spans are naturally aligned.
inline constexpr uint64_t kSectionAlignment = 64;
inline constexpr uint64_t kSuperblockBytes = 64;
inline constexpr uint64_t kSectionEntryBytes = 40;
/// Sanity bound on section_count — a version-1 file has at most 7 kinds.
inline constexpr uint32_t kMaxSections = 64;

/// Payload of each section, keyed by SectionEntry::kind.
enum class SectionKind : uint32_t {
  kManifestJson = 1,  ///< UTF-8 JSON: identity, params, dictionaries, meta
  kTableColumns = 2,  ///< u32 x (num_attrs * num_records), column-major
  kNaCodes = 3,       ///< u32 x (num_groups * num_public), row-major
  kSaCounts = 4,      ///< u64 x (num_groups * m), row-major
  kRowOffsets = 5,    ///< u64 x (num_groups + 1), CSR offsets
  kRowValues = 6,     ///< u32 x num_records, group-major row ids
  kPackedKeys = 7,    ///< u64 x num_groups (present iff packed layout)
};

/// Byte 0..63 of the file.
struct Superblock {
  uint64_t magic = kSnapshotMagic;
  uint32_t version = kSnapshotFormatVersion;
  uint32_t endian_tag = kEndianTag;
  uint32_t alignment = uint32_t(kSectionAlignment);
  uint32_t section_count = 0;
  uint64_t file_bytes = 0;      ///< total file size, for truncation checks
  uint64_t table_offset = 0;    ///< where the section table starts (64)
  uint64_t table_bytes = 0;     ///< section_count * kSectionEntryBytes
  uint64_t reserved = 0;
  uint64_t header_crc = 0;      ///< XXH64(header region, this field zeroed)
};

/// One row of the section table.
struct SectionEntry {
  uint32_t kind = 0;
  uint32_t elem_bytes = 0;  ///< scalar width: 1, 4 or 8
  uint64_t count = 0;       ///< number of scalars
  uint64_t offset = 0;      ///< absolute file offset, kSectionAlignment-ed
  uint64_t bytes = 0;       ///< count * elem_bytes (redundant, verified)
  uint64_t crc = 0;         ///< XXH64 of the payload bytes
};

inline void EncodeSuperblock(const Superblock& sb, uint8_t out[64]) {
  StoreLE64(sb.magic, out + 0);
  StoreLE32(sb.version, out + 8);
  StoreLE32(sb.endian_tag, out + 12);
  StoreLE32(sb.alignment, out + 16);
  StoreLE32(sb.section_count, out + 20);
  StoreLE64(sb.file_bytes, out + 24);
  StoreLE64(sb.table_offset, out + 32);
  StoreLE64(sb.table_bytes, out + 40);
  StoreLE64(sb.reserved, out + 48);
  StoreLE64(sb.header_crc, out + 56);
}

inline Superblock DecodeSuperblock(const uint8_t in[64]) {
  Superblock sb;
  sb.magic = LoadLE64(in + 0);
  sb.version = LoadLE32(in + 8);
  sb.endian_tag = LoadLE32(in + 12);
  sb.alignment = LoadLE32(in + 16);
  sb.section_count = LoadLE32(in + 20);
  sb.file_bytes = LoadLE64(in + 24);
  sb.table_offset = LoadLE64(in + 32);
  sb.table_bytes = LoadLE64(in + 40);
  sb.reserved = LoadLE64(in + 48);
  sb.header_crc = LoadLE64(in + 56);
  return sb;
}

inline void EncodeSectionEntry(const SectionEntry& e, uint8_t out[40]) {
  StoreLE32(e.kind, out + 0);
  StoreLE32(e.elem_bytes, out + 4);
  StoreLE64(e.count, out + 8);
  StoreLE64(e.offset, out + 16);
  StoreLE64(e.bytes, out + 24);
  StoreLE64(e.crc, out + 32);
}

inline SectionEntry DecodeSectionEntry(const uint8_t in[40]) {
  SectionEntry e;
  e.kind = LoadLE32(in + 0);
  e.elem_bytes = LoadLE32(in + 4);
  e.count = LoadLE64(in + 8);
  e.offset = LoadLE64(in + 16);
  e.bytes = LoadLE64(in + 24);
  e.crc = LoadLE64(in + 32);
  return e;
}

/// Smallest multiple of kSectionAlignment that is >= n.
inline uint64_t AlignUp(uint64_t n) {
  return (n + kSectionAlignment - 1) / kSectionAlignment * kSectionAlignment;
}

}  // namespace recpriv::store
