#include "store/snapshot_writer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <vector>

#include "common/checksum.h"
#include "store/snapshot_format.h"

namespace recpriv::store {

namespace {

/// The little-endian payload bytes of a scalar array. On an LE host the
/// in-memory representation already is the payload (no copy); a BE host
/// re-encodes element by element into `scratch`.
template <typename T>
std::span<const uint8_t> PayloadBytes(std::span<const T> data,
                                      std::vector<uint8_t>& scratch) {
  if constexpr (HostIsLittleEndian()) {
    return {reinterpret_cast<const uint8_t*>(data.data()), data.size_bytes()};
  } else {
    scratch.resize(data.size_bytes());
    for (size_t i = 0; i < data.size(); ++i) {
      if constexpr (sizeof(T) == 4) {
        StoreLE32(uint32_t(data[i]), scratch.data() + i * 4);
      } else {
        StoreLE64(uint64_t(data[i]), scratch.data() + i * 8);
      }
    }
    return scratch;
  }
}

}  // namespace

JsonValue BuildSnapshotManifest(const analysis::ReleaseSnapshot& snap,
                                std::string_view release_name) {
  const auto& bundle = snap.bundle;
  JsonValue root = JsonValue::Object();
  root.Set("format", JsonValue::String("recpriv-snapshot"));
  root.Set("version", JsonValue::Int(int64_t(kSnapshotFormatVersion)));
  root.Set("release", JsonValue::String(std::string(release_name)));
  root.Set("epoch", JsonValue::Int(int64_t(snap.epoch)));

  JsonValue mechanism = JsonValue::Object();
  mechanism.Set("type", JsonValue::String("uniform-perturbation-sps"));
  mechanism.Set("retention_p", JsonValue::Number(bundle.params.retention_p));
  mechanism.Set("domain_m", JsonValue::Int(int64_t(bundle.params.domain_m)));
  root.Set("mechanism", std::move(mechanism));

  JsonValue privacy = JsonValue::Object();
  privacy.Set("lambda", JsonValue::Number(bundle.params.lambda));
  privacy.Set("delta", JsonValue::Number(bundle.params.delta));
  root.Set("privacy", std::move(privacy));

  root.Set("sensitive_attribute",
           JsonValue::String(bundle.sensitive_attribute));

  // Full dictionaries, not just domain sizes: the reader reconstructs the
  // schema from this section alone, with codes identical to the writer's.
  JsonValue attrs = JsonValue::Array();
  const auto& schema = *bundle.data.schema();
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    JsonValue attr = JsonValue::Object();
    attr.Set("name", JsonValue::String(schema.attribute(a).name));
    attr.Set("sensitive", JsonValue::Bool(schema.is_sensitive(a)));
    JsonValue values = JsonValue::Array();
    for (const auto& v : schema.attribute(a).domain.values()) {
      values.Append(JsonValue::String(v));
    }
    attr.Set("values", std::move(values));
    attrs.Append(std::move(attr));
  }
  root.Set("attributes", std::move(attrs));

  if (!bundle.generalization.empty()) {
    JsonValue gen = JsonValue::Array();
    for (const auto& merged : bundle.generalization) {
      JsonValue per_attr = JsonValue::Array();
      for (const auto& name : merged) {
        per_attr.Append(JsonValue::String(name));
      }
      gen.Append(std::move(per_attr));
    }
    root.Set("generalized_values", std::move(gen));
  }

  const auto storage = snap.index.storage();
  JsonValue index = JsonValue::Object();
  index.Set("packed", JsonValue::Bool(storage.packed));
  index.Set("num_groups", JsonValue::Int(int64_t(storage.num_groups)));
  index.Set("num_records", JsonValue::Int(int64_t(storage.num_records)));
  root.Set("index", std::move(index));
  return root;
}

Result<std::vector<uint8_t>> SerializeSnapshot(
    const analysis::ReleaseSnapshot& snap, std::string_view release_name) {
  const auto storage = snap.index.storage();
  const table::Table& data = snap.bundle.data;

  const std::string manifest =
      BuildSnapshotManifest(snap, release_name).ToString(/*indent=*/2);

  // The table's code columns, concatenated column-major into one section.
  std::vector<uint32_t> table_cells;
  table_cells.reserve(data.num_columns() * data.num_rows());
  for (size_t c = 0; c < data.num_columns(); ++c) {
    const auto& col = data.column(c);
    table_cells.insert(table_cells.end(), col.begin(), col.end());
  }

  struct Payload {
    SectionKind kind;
    uint32_t elem_bytes;
    uint64_t count;
    std::span<const uint8_t> bytes;
    std::vector<uint8_t> scratch;  // BE-host re-encode buffer
  };
  std::vector<Payload> payloads;
  payloads.push_back({SectionKind::kManifestJson, 1, manifest.size(), {}, {}});
  payloads.back().bytes = {
      reinterpret_cast<const uint8_t*>(manifest.data()), manifest.size()};
  auto add_array = [&payloads](SectionKind kind, auto span) {
    using Elem = typename decltype(span)::element_type;
    // `bytes` is set only after the Payload reaches its final address —
    // on a BE host it views the payload's own `scratch` buffer.
    payloads.push_back({kind, uint32_t(sizeof(Elem)), span.size(), {}, {}});
    payloads.back().bytes = PayloadBytes(span, payloads.back().scratch);
  };
  add_array(SectionKind::kTableColumns,
            std::span<const uint32_t>(table_cells));
  add_array(SectionKind::kNaCodes, storage.na_codes);
  add_array(SectionKind::kSaCounts, storage.sa_counts);
  add_array(SectionKind::kRowOffsets, storage.row_offsets);
  add_array(SectionKind::kRowValues, storage.row_values);
  if (storage.packed) {
    add_array(SectionKind::kPackedKeys, storage.packed_keys);
  }

  // Lay out sections on alignment boundaries and checksum each payload.
  Superblock sb;
  sb.section_count = uint32_t(payloads.size());
  sb.table_offset = kSuperblockBytes;
  sb.table_bytes = payloads.size() * kSectionEntryBytes;
  std::vector<SectionEntry> entries(payloads.size());
  uint64_t offset = AlignUp(kSuperblockBytes + sb.table_bytes);
  for (size_t i = 0; i < payloads.size(); ++i) {
    SectionEntry& e = entries[i];
    e.kind = uint32_t(payloads[i].kind);
    e.elem_bytes = payloads[i].elem_bytes;
    e.count = payloads[i].count;
    e.offset = offset;
    e.bytes = payloads[i].bytes.size();
    e.crc = XxHash64(payloads[i].bytes.data(), payloads[i].bytes.size());
    offset = AlignUp(offset + e.bytes);
  }
  sb.file_bytes =
      entries.empty() ? offset : entries.back().offset + entries.back().bytes;

  // Header region (superblock + section table) with the checksum field
  // zeroed while hashing, then patched in.
  std::vector<uint8_t> header(kSuperblockBytes + sb.table_bytes, 0);
  EncodeSuperblock(sb, header.data());
  for (size_t i = 0; i < entries.size(); ++i) {
    EncodeSectionEntry(entries[i],
                       header.data() + kSuperblockBytes +
                           i * kSectionEntryBytes);
  }
  sb.header_crc = XxHash64(header.data(), header.size());
  StoreLE64(sb.header_crc, header.data() + 56);

  std::vector<uint8_t> image(sb.file_bytes, 0);
  std::memcpy(image.data(), header.data(), header.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (payloads[i].bytes.empty()) continue;
    std::memcpy(image.data() + entries[i].offset, payloads[i].bytes.data(),
                payloads[i].bytes.size());
  }
  return image;
}

Status WriteBytesAtomic(const std::vector<uint8_t>& bytes,
                        const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write snapshot: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IOError("short write to snapshot: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename snapshot into place: " + path);
  }
  return Status::OK();
}

Status WriteSnapshot(const analysis::ReleaseSnapshot& snap,
                     std::string_view release_name, const std::string& path) {
  RECPRIV_ASSIGN_OR_RETURN(std::vector<uint8_t> image,
                           SerializeSnapshot(snap, release_name));
  return WriteBytesAtomic(image, path);
}

}  // namespace recpriv::store
