// Zero-parse opening of persisted release snapshots (.rps files written by
// snapshot_writer.h).
//
// OpenSnapshot maps the file, verifies every checksum, re-validates every
// structural invariant of the index arrays (FlatGroupIndex::FromStorage),
// and assembles a query-ready ReleaseSnapshot whose index reads the mmap'd
// sections in place — the only bytes copied are the manifest JSON and the
// table's code columns. The mapping is kept alive by the snapshot's
// type-erased `backing` pointer and unmapped when the last reference to
// the snapshot drops.
//
// Corruption never escapes as a crash or a wrong answer: any mismatch —
// bad magic, foreign format version, checksum failure, inconsistent
// sections — comes back as a structured error (kDataLoss, or
// kNotImplemented for a version this build does not read).

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "analysis/release.h"
#include "common/result.h"
#include "store/snapshot_format.h"

namespace recpriv::store {

/// Read-only mmap of a whole file, unmapped on destruction.
class MappedFile {
 public:
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const uint8_t> bytes() const { return {data_, size_}; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Header-level view of a snapshot file: the decoded superblock, section
/// table, and identity fields of the manifest. InspectSnapshot verifies
/// the header and all section checksums but does not rebuild the index —
/// it is the cheap integrity pass behind `recpriv_snapshot inspect`.
struct SnapshotInfo {
  Superblock superblock;
  std::vector<SectionEntry> sections;
  std::string release;
  uint64_t epoch = 0;
  bool packed = false;
  uint64_t num_groups = 0;
  uint64_t num_records = 0;
};

Result<SnapshotInfo> InspectSnapshot(const std::string& path);

/// A fully opened snapshot: the release name it was saved under plus the
/// query-ready state (epoch, params and provenance ride inside `snapshot`
/// — see analysis::SnapshotSource).
struct OpenedSnapshot {
  std::string release;
  std::shared_ptr<const analysis::ReleaseSnapshot> snapshot;
};

Result<OpenedSnapshot> OpenSnapshot(const std::string& path);

}  // namespace recpriv::store
