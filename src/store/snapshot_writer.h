// Serializes a query-ready release snapshot to the paged binary format of
// snapshot_format.h — the persist half of the store subsystem (the open
// half is snapshot_reader.h).
//
// A written file contains everything OpenSnapshot needs to reconstruct the
// exact same queryable state with no CSV parse and no index rebuild: the
// release identity (name, epoch), privacy parameters, full attribute
// dictionaries, the perturbed table's code columns, and the
// FlatGroupIndex's columnar arrays verbatim.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/release.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"

namespace recpriv::store {

/// The snapshot's embedded manifest (exposed for tests and the inspect
/// CLI): identity, parameters, dictionaries, and index dimensions.
JsonValue BuildSnapshotManifest(const analysis::ReleaseSnapshot& snap,
                                std::string_view release_name);

/// The complete `.rps` file image of `snap`, byte for byte what
/// WriteSnapshot persists. Deterministic: the same snapshot serializes to
/// the same bytes on any host, which is what lets replication advertise
/// one content digest per (release, epoch) and followers verify it
/// (src/repl/). The image is the unit the `fetch_snapshot` wire op streams.
Result<std::vector<uint8_t>> SerializeSnapshot(
    const analysis::ReleaseSnapshot& snap, std::string_view release_name);

/// Writes `bytes` to `path` via `path + ".tmp"` + rename, so a crash (or a
/// replication transfer dying) mid-write never leaves a half-written file
/// under `path`.
Status WriteBytesAtomic(const std::vector<uint8_t>& bytes,
                        const std::string& path);

/// Writes `snap` to `path` (conventionally `<name>-e<epoch>.rps`):
/// SerializeSnapshot + WriteBytesAtomic.
Status WriteSnapshot(const analysis::ReleaseSnapshot& snap,
                     std::string_view release_name, const std::string& path);

}  // namespace recpriv::store
