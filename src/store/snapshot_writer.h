// Serializes a query-ready release snapshot to the paged binary format of
// snapshot_format.h — the persist half of the store subsystem (the open
// half is snapshot_reader.h).
//
// A written file contains everything OpenSnapshot needs to reconstruct the
// exact same queryable state with no CSV parse and no index rebuild: the
// release identity (name, epoch), privacy parameters, full attribute
// dictionaries, the perturbed table's code columns, and the
// FlatGroupIndex's columnar arrays verbatim.

#pragma once

#include <string>
#include <string_view>

#include "analysis/release.h"
#include "common/json.h"
#include "common/status.h"

namespace recpriv::store {

/// The snapshot's embedded manifest (exposed for tests and the inspect
/// CLI): identity, parameters, dictionaries, and index dimensions.
JsonValue BuildSnapshotManifest(const analysis::ReleaseSnapshot& snap,
                                std::string_view release_name);

/// Writes `snap` to `path` (conventionally `<name>-e<epoch>.rps`).
/// The file is written to `path + ".tmp"` and renamed into place, so a
/// crash mid-write never leaves a half-written snapshot under `path`.
Status WriteSnapshot(const analysis::ReleaseSnapshot& snap,
                     std::string_view release_name, const std::string& path);

}  // namespace recpriv::store
