#include "repl/snapshot_provider.h"

#include <algorithm>

#include "repl/digest.h"
#include "store/snapshot_writer.h"

namespace recpriv::repl {

SnapshotProvider::SnapshotProvider(const serve::ReleaseStore& store,
                                   size_t cache_entries)
    : store_(store), cache_entries_(std::max<size_t>(cache_entries, 1)) {}

const SnapshotProvider::Packed* SnapshotProvider::FindLocked(const Key& key) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->first == key) {
      cache_.splice(cache_.begin(), cache_, it);
      return &cache_.front().second;
    }
  }
  return nullptr;
}

void SnapshotProvider::InsertLocked(Key key, Packed packed) {
  if (FindLocked(key) != nullptr) return;
  cache_.emplace_front(std::move(key), std::move(packed));
  while (cache_.size() > cache_entries_) cache_.pop_back();
}

Result<SnapshotProvider::Packed> SnapshotProvider::Get(
    const std::string& release, uint64_t epoch) {
  Key key{release, epoch};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const Packed* hit = FindLocked(key)) return *hit;
  }
  // Serialize outside the cache lock — concurrent fetches of two different
  // epochs shouldn't serialize each other. A duplicate miss for the same
  // key just packs twice; InsertLocked keeps the first image.
  RECPRIV_ASSIGN_OR_RETURN(serve::SnapshotPtr snap,
                           store_.Get(release, epoch));
  return Pack(release, std::move(snap));
}

Result<SnapshotProvider::Packed> SnapshotProvider::Pack(
    const std::string& release, serve::SnapshotPtr snap) {
  Key key{release, snap->epoch};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const Packed* hit = FindLocked(key)) return *hit;
  }
  RECPRIV_ASSIGN_OR_RETURN(std::vector<uint8_t> image,
                           store::SerializeSnapshot(*snap, release));
  Packed packed;
  packed.digest = BytesDigest(image.data(), image.size());
  packed.bytes =
      std::make_shared<const std::vector<uint8_t>>(std::move(image));
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(std::move(key), packed);
  return packed;
}

}  // namespace recpriv::repl
