#include "repl/digest.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/checksum.h"

namespace recpriv::repl {

namespace {
constexpr std::string_view kPrefix = "xxh64:";
}  // namespace

std::string FormatDigest(uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "xxh64:%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

Result<uint64_t> ParseDigest(std::string_view formatted) {
  if (formatted.size() != kPrefix.size() + 16 ||
      formatted.substr(0, kPrefix.size()) != kPrefix) {
    return Status::InvalidArgument(
        "digest must be 'xxh64:' + 16 hex digits, got '" +
        std::string(formatted) + "'");
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < formatted.size(); ++i) {
    const char c = formatted[i];
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = uint64_t(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = uint64_t(c - 'a' + 10);
    } else {
      return Status::InvalidArgument(
          "digest must be 'xxh64:' + 16 lowercase hex digits, got '" +
          std::string(formatted) + "'");
    }
    value = (value << 4) | nibble;
  }
  return value;
}

uint64_t BytesDigest(const uint8_t* data, size_t n) {
  return XxHash64(data, n);
}

Result<uint64_t> FileDigest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  if (in.bad()) return Status::IOError("cannot read " + path);
  return BytesDigest(bytes.data(), bytes.size());
}

}  // namespace recpriv::repl
