#include "repl/replicator.h"

#include <algorithm>
#include <set>
#include <utility>

#include "client/tcp_transport.h"
#include "repl/digest.h"
#include "store/snapshot_writer.h"

namespace recpriv::repl {

namespace {

/// Backoff sleeps in slices this long so Stop() is noticed promptly.
constexpr int kStopSliceMs = 20;
/// Backoff attempts are capped here; BackoffDelayMs caps the delay at
/// max_backoff_ms well before this anyway.
constexpr int kMaxBackoffAttempt = 32;

}  // namespace

Result<std::unique_ptr<Replicator>> Replicator::Start(
    serve::ReleaseStore& store, ReplicatorOptions options) {
  if (store.snapshot_dir().empty()) {
    return Status::FailedPrecondition(
        "replicator needs a durable store (snapshot_dir): fetched epochs "
        "are persisted before install");
  }
  if (options.primary_port == 0) {
    return Status::InvalidArgument("replicator: primary_port must be set");
  }
  options.chunk_bytes =
      std::min(std::max<uint64_t>(options.chunk_bytes, 1),
               uint64_t{serve::kMaxFetchChunkBytes});
  auto replicator =
      std::unique_ptr<Replicator>(new Replicator(store, std::move(options)));
  replicator->counters_.primary =
      replicator->options_.primary_host + ":" +
      std::to_string(replicator->options_.primary_port);
  replicator->thread_ = std::thread([r = replicator.get()] { r->Run(); });
  return replicator;
}

Replicator::~Replicator() { Stop(); }

void Replicator::Stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
}

void Replicator::Run() {
  int attempt = 0;
  uint64_t connections = 0;
  while (!stopping_.load()) {
    client::TcpTransportOptions transport_options;
    transport_options.response_timeout_ms = options_.response_timeout_ms;
    transport_options.max_line_bytes = options_.max_line_bytes;
    // Snapshot chunks arrive as multi-hundred-KB lines; page-sized recv()s
    // would turn each into dozens of syscalls.
    transport_options.read_chunk_bytes = 64 * 1024;
    transport_options.fault_injector = options_.fault_injector;
    auto transport = client::TcpTransport::Connect(
        options_.primary_host, options_.primary_port, transport_options);
    if (!transport.ok()) {
      Backoff(attempt);
      attempt = std::min(attempt + 1, kMaxBackoffAttempt);
      continue;
    }
    ++connections;
    if (connections > 1) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.reconnects;
    }
    client::LineProtocolClient client(std::move(*transport));
    const Status session = RunSession(client, &attempt);
    {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.connected = false;
    }
    if (stopping_.load()) break;
    if (session.code() == StatusCode::kNotImplemented) {
      // The primary does not speak replication; retrying cannot fix that.
      break;
    }
    Backoff(attempt);
    attempt = std::min(attempt + 1, kMaxBackoffAttempt);
  }
  std::lock_guard<std::mutex> lock(mu_);
  counters_.connected = false;
}

Status Replicator::RunSession(client::LineProtocolClient& client,
                              int* attempt) {
  if (options_.binary_frame) {
    // Best effort: a primary that predates "hello" answers unknown-op and
    // the session stays line-framed — if the link itself is dead, the
    // Subscribe below fails the session the normal way.
    (void)client.NegotiateBinaryFrame();
  }
  RECPRIV_ASSIGN_OR_RETURN(client::Subscription listing, client.Subscribe());
  *attempt = 0;
  RECPRIV_RETURN_NOT_OK(Resync(client, listing));
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.connected = true;
  }
  while (!stopping_.load()) {
    RECPRIV_ASSIGN_OR_RETURN(std::vector<client::EpochEvent> events,
                             client.PollEvents(options_.idle_poll_ms));
    for (const client::EpochEvent& event : events) {
      if (stopping_.load()) return Status::OK();
      RECPRIV_RETURN_NOT_OK(ApplyEvent(client, event));
    }
  }
  return Status::OK();
}

Status Replicator::Resync(client::LineProtocolClient& client,
                          const client::Subscription& listing) {
  // Mirror drops first: anything we serve that the primary no longer
  // lists was dropped while we were away.
  std::set<std::string> primary_names;
  for (const client::SubscribedRelease& rel : listing.releases) {
    primary_names.insert(rel.name);
  }
  for (const serve::ReleaseInfo& info : store_.List()) {
    if (primary_names.count(info.name) != 0) continue;
    if (store_.Drop(info.name).ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.drops;
    }
    ClearPendingRelease(info.name);
    for (auto it = partials_.begin(); it != partials_.end();) {
      it = it->first.first == info.name ? partials_.erase(it)
                                        : std::next(it);
    }
  }
  // Fetch what we are missing, oldest epoch first so the local window
  // lands with back() = the served epoch. Epochs beyond our own retention
  // would be evicted the moment newer ones install, so skip them.
  for (const client::SubscribedRelease& rel : listing.releases) {
    const size_t keep = store_.retained_epochs();
    const size_t first =
        rel.epochs.size() > keep ? rel.epochs.size() - keep : 0;
    for (size_t i = first; i < rel.epochs.size(); ++i) {
      if (stopping_.load()) return Status::OK();
      const client::EpochDigest& entry = rel.epochs[i];
      if (HasEpoch(rel.name, entry.epoch)) continue;
      MarkPending(rel.name, entry.epoch);
      const Status fetched =
          FetchEpoch(client, rel.name, entry.epoch, entry.digest);
      if (fetched.code() == StatusCode::kNotFound ||
          fetched.code() == StatusCode::kFailedPrecondition) {
        // Aged out (or dropped) between listing and fetch; the pushed
        // event that says so is already on its way.
        ClearPending(rel.name, entry.epoch);
        continue;
      }
      RECPRIV_RETURN_NOT_OK(fetched);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.resyncs;
  return Status::OK();
}

Status Replicator::ApplyEvent(client::LineProtocolClient& client,
                              const client::EpochEvent& event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.events_seen;
  }
  switch (event.kind) {
    case client::EpochEvent::Kind::kPublish: {
      if (HasEpoch(event.release, event.epoch)) return Status::OK();
      MarkPending(event.release, event.epoch);
      const Status fetched =
          FetchEpoch(client, event.release, event.epoch, event.digest);
      if (fetched.code() == StatusCode::kNotFound ||
          fetched.code() == StatusCode::kFailedPrecondition) {
        ClearPending(event.release, event.epoch);
        return Status::OK();
      }
      return fetched;
    }
    case client::EpochEvent::Kind::kRetire:
      // The local window trims itself on install; an epoch retired before
      // we fetched it just stops being lag (and any half-fetched image of
      // it is dead weight).
      ClearPending(event.release, event.epoch);
      partials_.erase(std::make_pair(event.release, event.epoch));
      return Status::OK();
    case client::EpochEvent::Kind::kDrop: {
      if (store_.Drop(event.release).ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.drops;
      }
      ClearPendingRelease(event.release);
      for (auto it = partials_.begin(); it != partials_.end();) {
        it = it->first.first == event.release ? partials_.erase(it)
                                              : std::next(it);
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

Status Replicator::FetchEpoch(client::LineProtocolClient& client,
                              const std::string& release, uint64_t epoch,
                              const std::string& advertised_digest) {
  const auto key = std::make_pair(release, epoch);
  std::vector<uint8_t> image;
  std::string declared_digest;
  // Resume an interrupted transfer of this exact epoch, if any; the map
  // entry comes back on a link failure below, so a given byte is only ever
  // fetched once however many sessions the transfer spans.
  if (auto partial = partials_.find(key); partial != partials_.end()) {
    image = std::move(partial->second.image);
    declared_digest = std::move(partial->second.declared_digest);
    partials_.erase(partial);
  }
  uint64_t offset = image.size();
  for (;;) {
    if (stopping_.load()) return Status::OK();
    Result<client::SnapshotChunk> chunk_result =
        client.FetchSnapshotChunk(release, epoch, offset, options_.chunk_bytes);
    if (!chunk_result.ok()) {
      if (chunk_result.status().code() == StatusCode::kDataLoss) {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.digest_mismatches;
        // Restart from scratch: a corrupt chunk taints the whole attempt.
      } else if (chunk_result.status().code() != StatusCode::kNotFound &&
                 chunk_result.status().code() !=
                     StatusCode::kFailedPrecondition &&
                 !image.empty()) {
        // Link failure, not a verdict about the data: keep the progress.
        partials_[key] =
            PartialFetch{std::move(image), std::move(declared_digest)};
      }
      return chunk_result.status();
    }
    const client::SnapshotChunk& chunk = *chunk_result;
    if (declared_digest.empty()) {
      image.reserve(chunk.total_bytes);
      declared_digest = chunk.digest;
    } else if (chunk.digest != declared_digest) {
      // Epochs are immutable, so the declared image digest can never
      // legitimately change between sessions; drop the partial and let the
      // retry start clean.
      return Status::IOError(
          "fetch_snapshot: image digest changed mid-transfer for '" +
          release + "' epoch " + std::to_string(epoch) + " (" +
          declared_digest + " -> " + chunk.digest + ")");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      counters_.bytes_fetched += chunk.data.size();
    }
    image.insert(image.end(), chunk.data.begin(), chunk.data.end());
    offset += chunk.data.size();
    if (chunk.eof) break;
    if (chunk.data.empty()) {
      return Status::DataLoss("fetch_snapshot: empty non-final chunk for '" +
                              release + "' epoch " + std::to_string(epoch));
    }
  }
  // The decoder verified each chunk; this verifies the reassembly, against
  // both what the fetch declared and what the listing/event advertised.
  // (release, epoch) -> image is immutable, so any disagreement is
  // corruption, never a racing republish.
  const std::string computed =
      FormatDigest(BytesDigest(image.data(), image.size()));
  if (computed != declared_digest ||
      (!advertised_digest.empty() && computed != advertised_digest)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.digest_mismatches;
    }
    return Status::DataLoss(
        "snapshot image digest mismatch for '" + release + "' epoch " +
        std::to_string(epoch) + ": computed " + computed + ", fetch declared " +
        declared_digest +
        (advertised_digest.empty() ? std::string()
                                   : ", advertised " + advertised_digest));
  }
  // Persist before install: a crash here leaves at worst a complete,
  // verified file that RecoverFromDir happily restores.
  RECPRIV_ASSIGN_OR_RETURN(std::string path,
                           store_.ManagedSnapshotPath(release, epoch));
  RECPRIV_RETURN_NOT_OK(store::WriteBytesAtomic(image, path));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.snapshots_fetched;
  }
  Result<serve::ReleaseInfo> installed = store_.OpenSnapshot(path);
  if (installed.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.installs;
  } else if (installed.status().code() != StatusCode::kAlreadyExists) {
    return installed.status();
  }
  ClearPending(release, epoch);
  return Status::OK();
}

bool Replicator::HasEpoch(const std::string& release, uint64_t epoch) const {
  return store_.Get(release, epoch).ok();
}

void Replicator::MarkPending(const std::string& release, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.emplace(std::make_pair(release, epoch),
                   std::chrono::steady_clock::now());
}

void Replicator::ClearPending(const std::string& release, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_.erase(std::make_pair(release, epoch));
}

void Replicator::ClearPendingRelease(const std::string& release) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->first.first == release) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void Replicator::Backoff(int attempt) {
  double delay_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    delay_ms = client::BackoffDelayMs(options_.retry, attempt, backoff_rng_);
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(delay_ms));
  while (!stopping_.load()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            remaining, std::chrono::milliseconds(kStopSliceMs)));
  }
}

client::ReplicationStats Replicator::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  client::ReplicationStats stats = counters_;
  stats.lag_epochs = pending_.size();
  stats.lag_ms = 0.0;
  if (!pending_.empty()) {
    auto oldest = std::chrono::steady_clock::time_point::max();
    for (const auto& [key, since] : pending_) {
      oldest = std::min(oldest, since);
    }
    stats.lag_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - oldest)
                       .count();
  }
  return stats;
}

bool Replicator::WaitForEpoch(const std::string& release, uint64_t epoch,
                              int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (HasEpoch(release, epoch)) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

bool Replicator::WaitForConnected(int timeout_ms) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (counters_.connected) return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace recpriv::repl
