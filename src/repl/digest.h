// Content digests for replication: the XXH64 hash of a serialized `.rps`
// snapshot image, spelled "xxh64:<16 hex digits>" everywhere it crosses a
// boundary — the subscribe stream advertises it, followers verify fetched
// bytes against it, and `recpriv_snapshot digest` prints it so operators
// can compare primary/follower state offline.
//
// The digest is over the file bytes, not the in-memory snapshot:
// store::SerializeSnapshot is deterministic, so one (release, epoch) has
// exactly one digest on any host, and hashing a follower's on-disk file
// reproduces the primary's advertisement bit for bit.
//
// JSON numbers are doubles (common/json.h), which cannot carry a full
// 64-bit hash — hence the hex-string spelling on the wire.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace recpriv::repl {

/// "xxh64:" + 16 lowercase hex digits, e.g. "xxh64:00ff12ab34cd56ef".
std::string FormatDigest(uint64_t digest);

/// Inverse of FormatDigest; rejects anything but the exact spelling.
Result<uint64_t> ParseDigest(std::string_view formatted);

/// XXH64 (seed 0) of a byte buffer — the replication content hash.
uint64_t BytesDigest(const uint8_t* data, size_t n);

/// BytesDigest of a whole file's contents (read, not mapped; digest-sized
/// files are snapshots, a few MB at serving scale).
Result<uint64_t> FileDigest(const std::string& path);

}  // namespace recpriv::repl
