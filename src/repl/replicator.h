// Replicator: the follower half of the replication subsystem — turns a
// local durable ReleaseStore into a bit-identical mirror of a primary's
// retained releases, so a fleet of recpriv_serve processes scales reads
// behind one publisher.
//
// Protocol (all over one TCP session to the primary, client/tcp_transport):
//
//   subscribe            -> the full retained-epoch listing with content
//                           digests, then pushed epoch events on the same
//                           session (serve/wire.h).
//   fetch_snapshot       -> the serialized `.rps` image of one (release,
//                           epoch), streamed in checksummed base64 chunks.
//
// The follower reconciles the listing against its local store (drop what
// the primary dropped, fetch what it is missing, oldest epoch first), then
// sits in the event loop: each pushed publish triggers a fetch + verify +
// install, each pushed drop mirrors the drop. Retire events need no local
// action — the local store's own retention window trims on install, which
// keeps the mirror byte-identical without replaying the primary's eviction
// schedule.
//
// Integrity: every fetched image is persisted before it is installed —
// WriteBytesAtomic to the store's managed path, then OpenSnapshot — so a
// follower crash mid-transfer never leaves a half-written epoch, and a
// restart recovers everything already fetched (RecoverFromDir). The image
// digest is verified twice: each chunk in the wire decoder, and the whole
// reassembled image against both the fetch response's digest and the
// digest the subscribe listing / publish event advertised. Any mismatch is
// DATA_LOSS: the transfer is abandoned, the connection dropped, and the
// resync after reconnect refetches from scratch.
//
// Transfers RESUME across reconnects: when the link dies mid-fetch, the
// bytes already received are kept (epochs are immutable, so offset
// continuation is always coherent) and the next session continues from
// that offset instead of restarting at zero. Without this, a large image
// over a lossy link could retry forever — every reconnect must then win
// image_bytes/chunk_bytes consecutive round trips, a probability that
// collapses with image size; with it, convergence needs only positive
// expected progress per session. Resumed bytes are still covered by the
// whole-image digest check, and a DATA_LOSS verdict discards the partial
// image so a genuinely corrupt transfer restarts from scratch.
//
// Liveness: the connection loop reconnects with the RetryingClient's
// seeded exponential backoff schedule (client/retry.h BackoffDelayMs) and
// resyncs from a fresh listing on every reconnect, so a follower that
// missed events while disconnected converges without any event-replay
// protocol. Bounded staleness is observable: Stats() reports how many
// published-but-not-installed epochs the follower knows about and the age
// of the oldest (lag_epochs / lag_ms), surfaced through the serving
// "stats" op as the "replication" section when running --follow.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "client/api.h"
#include "client/line_protocol_client.h"
#include "client/retry.h"
#include "common/random.h"
#include "common/result.h"
#include "net/fault_injector.h"
#include "serve/release_store.h"
#include "serve/wire.h"

namespace recpriv::repl {

struct ReplicatorOptions {
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Bytes requested per fetch_snapshot chunk.
  uint64_t chunk_bytes = serve::kDefaultFetchChunkBytes;
  /// Event-loop poll cadence; also bounds how fast Stop() is noticed.
  int idle_poll_ms = 50;
  /// Per-request response timeout on the replication link. Deliberately
  /// shorter than the interactive default: a wedged primary should trip
  /// the reconnect loop, not park the follower for a minute.
  int response_timeout_ms = 5000;
  /// Longest accepted line: a base64-expanded max-size chunk
  /// (wire::kMaxFetchChunkBytes) plus framing fits with room to spare.
  size_t max_line_bytes = 8 << 20;
  /// Opt-in: negotiate binary frames (wire "hello") at session start, so
  /// snapshot chunks skip base64 and JSON string escaping. Best effort —
  /// a primary that answers "json" (or predates the op) leaves the
  /// session line-framed and replication proceeds identically.
  bool binary_frame = false;
  /// Reconnect pacing; the same seeded schedule RetryingClient uses.
  client::RetryPolicy retry;
  /// When set, connection writes draw byte-level faults (drops,
  /// disconnects, truncations) — how tests prove a follower that dies
  /// mid-transfer converges clean after reconnect.
  std::shared_ptr<net::FaultInjector> fault_injector;
};

/// Follows one primary, mirroring its releases into `store`. Owns one
/// background thread; Start spawns it, Stop (or the destructor) joins it.
class Replicator {
 public:
  /// `store` must be durable (have a snapshot_dir): persist-before-install
  /// is the crash-safety contract. Not owned; must outlive the replicator.
  static Result<std::unique_ptr<Replicator>> Start(serve::ReleaseStore& store,
                                                   ReplicatorOptions options);

  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Signals the thread and joins it. Idempotent. Bounded by the largest
  /// in-flight timeout (one chunk round trip worst case).
  void Stop();

  /// Point-in-time snapshot of the link counters and staleness bounds.
  client::ReplicationStats Stats() const;

  /// Blocks until the local store serves (release, epoch) or `timeout_ms`
  /// elapses; true when the epoch is installed. Test/bench convergence
  /// helper.
  bool WaitForEpoch(const std::string& release, uint64_t epoch,
                    int timeout_ms) const;

  /// Blocks until the subscribe stream is live (a listing has been
  /// reconciled on the current connection) or `timeout_ms` elapses.
  bool WaitForConnected(int timeout_ms) const;

 private:
  Replicator(serve::ReleaseStore& store, ReplicatorOptions options)
      : store_(store), options_(std::move(options)),
        backoff_rng_(options_.retry.jitter_seed) {}

  /// The follower thread: connect / subscribe / resync / event loop,
  /// forever until Stop.
  void Run();
  /// One connection lifetime: subscribe, resync, then the event loop;
  /// returns when the link fails or Stop is signalled. Resets `*attempt`
  /// (the backoff schedule) once the subscription is established.
  Status RunSession(client::LineProtocolClient& client, int* attempt);
  /// Reconciles a fresh subscribe listing against the local store.
  Status Resync(client::LineProtocolClient& client,
                const client::Subscription& listing);
  /// Applies one pushed event.
  Status ApplyEvent(client::LineProtocolClient& client,
                    const client::EpochEvent& event);
  /// Fetches, verifies, persists, and installs one epoch.
  /// `advertised_digest` is the listing's/event's digest spelling.
  Status FetchEpoch(client::LineProtocolClient& client,
                    const std::string& release, uint64_t epoch,
                    const std::string& advertised_digest);
  /// True when the local store already retains (release, epoch).
  bool HasEpoch(const std::string& release, uint64_t epoch) const;
  /// Marks (release, epoch) as known-but-not-installed for the staleness
  /// bound; no-op if already pending.
  void MarkPending(const std::string& release, uint64_t epoch);
  void ClearPending(const std::string& release, uint64_t epoch);
  void ClearPendingRelease(const std::string& release);
  /// Sleeps the seeded backoff for `attempt`, in slices that notice Stop.
  void Backoff(int attempt);

  serve::ReleaseStore& store_;
  const ReplicatorOptions options_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;  ///< guards counters_, pending_, backoff_rng_
  client::ReplicationStats counters_;  ///< lag fields computed in Stats()
  /// Published-but-not-installed epochs and when each was first seen.
  std::map<std::pair<std::string, uint64_t>,
           std::chrono::steady_clock::time_point>
      pending_;
  Rng backoff_rng_;

  /// A fetch interrupted by a link failure, kept so the next session
  /// resumes at `image.size()`. Touched only from the follower thread (no
  /// lock); discarded on DATA_LOSS, retire, and drop.
  struct PartialFetch {
    std::vector<uint8_t> image;
    std::string declared_digest;
  };
  std::map<std::pair<std::string, uint64_t>, PartialFetch> partials_;
};

}  // namespace recpriv::repl
