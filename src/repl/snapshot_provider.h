// SnapshotProvider: serialized snapshot images for the replication wire.
//
// The primary's subscribe/fetch_snapshot ops need the *byte image* of a
// (release, epoch) — exactly what store::SerializeSnapshot produces — plus
// its content digest. Serializing a large release is not free, and one
// publish typically triggers several consumers (the pushed event's digest,
// then one fetch per follower), so the provider keeps a small LRU of
// recently packed images keyed by (release, epoch). Epochs are immutable
// and never reused (serve/release_store.h), which makes that cache safe:
// a (release, epoch) key can only ever map to one byte image.
//
// Thread-safe; shared by the server's store listener (which warms the
// cache via Pack at publish time) and the per-session fetch handlers.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "serve/release_store.h"

namespace recpriv::repl {

class SnapshotProvider {
 public:
  /// Images cached at once; the default covers the common fleet pattern of
  /// several followers fetching the same just-published epoch.
  static constexpr size_t kDefaultCacheEntries = 4;

  /// A serialized snapshot and its content digest (see repl/digest.h).
  struct Packed {
    std::shared_ptr<const std::vector<uint8_t>> bytes;
    uint64_t digest = 0;
  };

  explicit SnapshotProvider(const serve::ReleaseStore& store,
                            size_t cache_entries = kDefaultCacheEntries);

  /// The byte image of (release, epoch), from cache or by looking the
  /// epoch up in the store and serializing it. NotFound / FailedPrecondition
  /// propagate from the store when the release or epoch is gone.
  Result<Packed> Get(const std::string& release, uint64_t epoch);

  /// Packs a snapshot the caller already holds (the publish listener's
  /// path) — no store lookup, so it cannot race the retention window —
  /// and warms the cache for the fetches that follow.
  Result<Packed> Pack(const std::string& release, serve::SnapshotPtr snap);

 private:
  using Key = std::pair<std::string, uint64_t>;

  /// Cache lookup; promotes a hit to most-recently-used. Caller holds mu_.
  const Packed* FindLocked(const Key& key);
  /// Inserts (evicting LRU) unless the key is already present. Caller
  /// holds mu_.
  void InsertLocked(Key key, Packed packed);

  const serve::ReleaseStore& store_;
  const size_t cache_entries_;
  std::mutex mu_;
  /// MRU-first; small enough that linear scans beat a map.
  std::list<std::pair<Key, Packed>> cache_;
};

}  // namespace recpriv::repl
