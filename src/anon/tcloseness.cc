#include "anon/tcloseness.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace recpriv::anon {

using recpriv::table::GroupIndex;
using recpriv::table::Table;

double TotalVariationDistance(const std::vector<uint64_t>& counts,
                              const std::vector<uint64_t>& reference) {
  RECPRIV_CHECK(counts.size() == reference.size())
      << "TV distance needs equal-length histograms";
  uint64_t total_a = 0, total_b = 0;
  for (uint64_t c : counts) total_a += c;
  for (uint64_t c : reference) total_b += c;
  if (total_a == 0 || total_b == 0) return 0.0;
  double distance = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    distance += std::abs(double(counts[i]) / double(total_a) -
                         double(reference[i]) / double(total_b));
  }
  return distance / 2.0;
}

TClosenessReport CheckTCloseness(const GroupIndex& index, double t) {
  RECPRIV_CHECK(t >= 0.0 && t <= 1.0) << "t must be in [0,1]";
  TClosenessReport report;
  report.num_groups = index.num_groups();
  // Global SA histogram = sum of group histograms.
  const size_t m = index.schema()->sa_domain_size();
  std::vector<uint64_t> global(m, 0);
  for (const auto& g : index.groups()) {
    for (size_t i = 0; i < m; ++i) global[i] += g.sa_counts[i];
  }
  for (size_t gi = 0; gi < index.groups().size(); ++gi) {
    const double d = TotalVariationDistance(index.groups()[gi].sa_counts,
                                            global);
    report.max_distance = std::max(report.max_distance, d);
    if (d > t) {
      ++report.failing_groups;
      report.failing_group_ids.push_back(gi);
    }
  }
  return report;
}

namespace {

/// One smoothing pass: blends every group whose distance to the CURRENT
/// global distribution exceeds t. Returns the number of groups changed.
size_t SmoothingPass(Table& out, double t, bool force_full, Rng& rng) {
  const size_t m = out.schema()->sa_domain_size();
  const size_t sa_col = out.schema()->sensitive_index();
  GroupIndex index = GroupIndex::Build(out);

  std::vector<uint64_t> global(m, 0);
  for (const auto& g : index.groups()) {
    for (size_t i = 0; i < m; ++i) global[i] += g.sa_counts[i];
  }
  std::vector<double> global_freq(m, 0.0);
  const double total = double(out.num_rows());
  for (size_t i = 0; i < m; ++i) global_freq[i] = double(global[i]) / total;

  size_t changed = 0;
  for (const auto& g : index.groups()) {
    const double d = TotalVariationDistance(g.sa_counts, global);
    if (d <= t || g.size() == 0) continue;
    ++changed;
    // Blend: new = (1-alpha) group + alpha global with alpha = 1 - t/d,
    // which puts the blended distribution at TV distance exactly t
    // (TV is a metric induced by an L1 norm, so it scales linearly under
    // convex combination toward the reference).
    // force_full blends all the way to the global distribution — used in
    // late passes when integer rounding of small groups blocks convergence
    // at intermediate blends.
    const double alpha = force_full ? 1.0 : 1.0 - t / d;
    const double size = double(g.size());
    std::vector<double> blended(m);
    for (size_t i = 0; i < m; ++i) {
      blended[i] = (1.0 - alpha) * double(g.sa_counts[i]) / size +
                   alpha * global_freq[i];
    }
    // Largest-remainder apportionment of |g| records to the blended
    // distribution.
    std::vector<uint64_t> target(m, 0);
    std::vector<std::pair<double, size_t>> remainders;
    uint64_t assigned = 0;
    for (size_t i = 0; i < m; ++i) {
      const double exact = blended[i] * size;
      target[i] = uint64_t(std::floor(exact));
      assigned += target[i];
      remainders.emplace_back(exact - std::floor(exact), i);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (size_t i = 0; assigned < g.size(); ++i, ++assigned) {
      ++target[remainders[i % m].second];
    }
    // Rewrite the group's SA column: shuffle row order so which records
    // flip is random, then assign values to match `target`.
    std::vector<size_t> rows = g.rows;
    Shuffle(rng, rows);
    size_t cursor = 0;
    for (size_t sa = 0; sa < m; ++sa) {
      for (uint64_t k = 0; k < target[sa]; ++k) {
        out.set(rows[cursor++], sa_col, uint32_t(sa));
      }
    }
    RECPRIV_DCHECK(cursor == rows.size());
  }
  return changed;
}

}  // namespace

Result<Table> EnforceTClosenessBySmoothing(const Table& data, double t,
                                           Rng& rng) {
  if (t < 0.0 || t > 1.0) {
    return Status::InvalidArgument("t must be in [0,1]");
  }
  Table out = data.Clone();
  // Blending a group toward the global distribution also shifts the global
  // distribution, so one pass can leave residual violations; iterate to a
  // fixpoint (each pass contracts the per-group distances, convergence is
  // fast in practice). Rounding can leave a group a hair over t, so allow a
  // small slack on the final check.
  // Integer apportionment of small groups cannot hit t exactly, and
  // late-stage oscillation is possible (smoothing one group moves the
  // global reference of the others), so accept a small slack.
  const double slack = 0.01;
  for (int pass = 0; pass < 50; ++pass) {
    GroupIndex index = GroupIndex::Build(out);
    if (CheckTCloseness(index, std::min(1.0, t + slack)).satisfied()) {
      return out;
    }
    SmoothingPass(out, t, /*force_full=*/pass >= 25, rng);
  }
  GroupIndex index = GroupIndex::Build(out);
  TClosenessReport report = CheckTCloseness(index, std::min(1.0, t + slack));
  if (!report.satisfied()) {
    return Status::Internal(
        "t-closeness smoothing did not converge; worst distance " +
        std::to_string(report.max_distance));
  }
  return out;
}

}  // namespace recpriv::anon
