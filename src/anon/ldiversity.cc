#include "anon/ldiversity.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace recpriv::anon {

using recpriv::table::GroupIndex;

double HistogramEntropy(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  double entropy = 0.0;
  for (uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    entropy -= p * std::log(p);
  }
  return entropy;
}

DiversityReport CheckDistinctLDiversity(const GroupIndex& index, size_t l) {
  RECPRIV_CHECK(l >= 1) << "l must be >= 1";
  DiversityReport report;
  report.num_groups = index.num_groups();
  report.weakest = std::numeric_limits<double>::infinity();
  for (size_t gi = 0; gi < index.groups().size(); ++gi) {
    size_t distinct = 0;
    for (uint64_t c : index.groups()[gi].sa_counts) distinct += (c > 0);
    report.weakest = std::min(report.weakest, double(distinct));
    if (distinct < l) {
      ++report.failing_groups;
      report.failing_group_ids.push_back(gi);
    }
  }
  if (report.num_groups == 0) report.weakest = 0.0;
  return report;
}

DiversityReport CheckEntropyLDiversity(const GroupIndex& index, double l) {
  RECPRIV_CHECK(l >= 1.0) << "l must be >= 1";
  DiversityReport report;
  report.num_groups = index.num_groups();
  report.weakest = std::numeric_limits<double>::infinity();
  const double threshold = std::log(l);
  for (size_t gi = 0; gi < index.groups().size(); ++gi) {
    const double entropy = HistogramEntropy(index.groups()[gi].sa_counts);
    report.weakest = std::min(report.weakest, entropy);
    if (entropy < threshold) {
      ++report.failing_groups;
      report.failing_group_ids.push_back(gi);
    }
  }
  if (report.num_groups == 0) report.weakest = 0.0;
  return report;
}

}  // namespace recpriv::anon
