// l-diversity [4] over personal groups — one of the posterior/prior
// criteria the paper's introduction contrasts with reconstruction privacy
// ("consider NIR as a privacy violation ... limits the utility of learning
// statistical relationships").
//
// Implemented checks:
//  * distinct l-diversity — every group contains at least l distinct SA
//    values;
//  * entropy l-diversity — every group's SA entropy is at least log(l).
//
// These are *audits* over the raw (pre-perturbation) groups: the criteria
// family operates on published micro-data, so a table failing them would
// have to be generalized/suppressed/smoothed before publication.

#pragma once

#include <cstddef>
#include <vector>

#include "table/group_index.h"

namespace recpriv::anon {

/// Audit outcome for one diversity criterion.
struct DiversityReport {
  size_t num_groups = 0;
  size_t failing_groups = 0;
  std::vector<size_t> failing_group_ids;
  /// The weakest group's statistic: min #distinct values (distinct check)
  /// or min entropy in nats (entropy check).
  double weakest = 0.0;

  bool satisfied() const { return failing_groups == 0; }
  double FailingFraction() const {
    return num_groups == 0 ? 0.0
                           : static_cast<double>(failing_groups) /
                                 static_cast<double>(num_groups);
  }
};

/// Distinct l-diversity: each group has >= l SA values with count > 0.
/// Requires l >= 1.
DiversityReport CheckDistinctLDiversity(const recpriv::table::GroupIndex& index,
                                        size_t l);

/// Entropy l-diversity: each group's SA entropy >= ln(l). Requires l >= 1.
DiversityReport CheckEntropyLDiversity(const recpriv::table::GroupIndex& index,
                                       double l);

/// Shannon entropy (nats) of a count histogram; 0 for empty histograms.
double HistogramEntropy(const std::vector<uint64_t>& counts);

}  // namespace recpriv::anon
