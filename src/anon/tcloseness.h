// t-closeness [5] over personal groups, plus an enforcement-by-smoothing
// operator. t-closeness demands that every group's SA distribution be
// within distance t of the global SA distribution — the paper's example of
// a criterion that "requires to smooth the distribution in the published
// data" and thereby destroys the very statistical relationships an analyst
// wants (e.g. "smokers tend to have lung cancer" is EXACTLY a group
// distribution that deviates from the global one).
//
// For categorical SA with no ground distance, the EMD of [5] reduces to
// total variation distance: TV(P, Q) = (1/2) sum_i |P_i - Q_i|.

#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "table/group_index.h"
#include "table/table.h"

namespace recpriv::anon {

/// Audit outcome of a t-closeness check.
struct TClosenessReport {
  size_t num_groups = 0;
  size_t failing_groups = 0;
  std::vector<size_t> failing_group_ids;
  double max_distance = 0.0;  ///< worst group's TV distance to global

  bool satisfied() const { return failing_groups == 0; }
};

/// Total variation distance between two count histograms (as fractions).
double TotalVariationDistance(const std::vector<uint64_t>& counts,
                              const std::vector<uint64_t>& reference);

/// Checks t-closeness of every personal group against the global SA
/// distribution. Requires t in [0, 1].
TClosenessReport CheckTCloseness(const recpriv::table::GroupIndex& index,
                                 double t);

/// Enforces t-closeness by SMOOTHING: for each failing group, blends its SA
/// distribution toward the global one just enough to reach distance t, and
/// rewrites the group's SA values to realize the blended distribution
/// (largest-remainder apportionment; which records flip is random).
/// Returns the smoothed table. This is the utility-destroying alternative
/// the paper argues against; the bench suite quantifies the damage.
Result<recpriv::table::Table> EnforceTClosenessBySmoothing(
    const recpriv::table::Table& data, double t, Rng& rng);

}  // namespace recpriv::anon
