// Deterministic synthetic releases for the workload subsystem.
//
// A SyntheticReleaseSpec fully determines a raw (pre-perturbation) table:
// same spec, same bytes, on any machine — the determinism every scenario
// artifact in src/workload/ is built on. The publishable bundle is the raw
// table perturbed record-level with uniform perturbation (paper §3.1) under
// an explicit perturbation seed, so "republish" regenerates the SAME ground
// truth under FRESH noise — exactly what a consumer of a re-released table
// sees, and what lets the statistical acceptance tests compare MLE
// reconstructions against exact true counts with closed-form tolerances
// (the raw table never leaves the test harness; only the bundle is served).
//
// Attribute and value names are generated ("A0", "a0_3", "S", "s1"), so a
// workload generator can build string-level QuerySpecs from the spec alone,
// without materializing any table.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/release.h"
#include "common/result.h"
#include "table/table.h"

namespace recpriv::workload {

/// Shape of one synthetic release. Every field participates in generation
/// determinism; see ScenarioToJson for the file form.
struct SyntheticReleaseSpec {
  std::string name = "r0";
  uint64_t data_seed = 1;  ///< drives the raw table (NOT the perturbation)
  size_t records = 4000;
  /// Domain size of each public attribute A0..Ak; the NA cell space is
  /// their product (groups materialize only for cells that occur).
  std::vector<size_t> public_domains = {4, 8};
  size_t sa_domain = 3;  ///< m
  double retention_p = 0.5;
  /// Zipf exponent skewing public-attribute values toward low codes;
  /// 0 = uniform (hot-cell data under skew, scattered data without).
  double na_skew = 0.0;
  /// Zipf exponent of each group's SA distribution (rotated by the row's
  /// NA codes so groups genuinely differ); 0 = uniform SA.
  double sa_skew = 1.0;
};

/// Generated names: public attribute k is "A<k>", its value v "a<k>_<v>";
/// the sensitive attribute is "S" with values "s<v>".
std::string AttributeName(size_t k);
std::string AttributeValue(size_t k, size_t v);
inline constexpr const char* kSensitiveName = "S";
std::string SensitiveValue(size_t v);

/// Unnormalized Zipf weights 1/(i+1)^s over [0, n); all-ones when s == 0.
std::vector<double> ZipfWeights(size_t n, double s);

/// The deterministic raw table of `spec` — the workload ground truth.
/// Dictionaries carry the FULL declared domains (in code order), so the
/// schema is identical across republishes regardless of which values occur.
Result<recpriv::table::Table> MakeRawTable(const SyntheticReleaseSpec& spec);

/// A publishable bundle: MakeRawTable(spec) perturbed record-level with
/// UniformPerturbation(retention_p, sa_domain) seeded by `perturb_seed`.
Result<recpriv::analysis::ReleaseBundle> MakeBundle(
    const SyntheticReleaseSpec& spec, uint64_t perturb_seed);

/// `count` fresh raw rows drawn from the SAME distributions as
/// MakeRawTable(spec), under an independent Rng(delta_seed) — the insert
/// stream of an incremental-republish scenario. Deterministic in
/// (spec, delta_seed, count); rows are codes in schema order, ready for
/// core::StreamingPublisher::Insert.
Result<std::vector<std::vector<uint32_t>>> MakeDeltaRows(
    const SyntheticReleaseSpec& spec, uint64_t delta_seed, size_t count);

}  // namespace recpriv::workload
