// Workload generation: expands a ScenarioSpec into deterministic, typed op
// streams — one per simulated client plus an optional writer (churn)
// stream. Each stream gets its own forked Rng (common/random.h) in a fixed
// order, so the generated ops are a pure function of the spec: the same
// scenario file produces byte-identical streams on every machine, however
// the driver later interleaves their execution.
//
// Streams serialize to line-delimited JSON (one op per line, preceded by
// the scenario object), the record/replay artifact of workload/driver.h: a
// recorded run replays exactly, and a checked-in workload file is a
// regression scenario any future PR can re-run.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/api.h"
#include "common/result.h"
#include "workload/scenario.h"

namespace recpriv::workload {

enum class OpKind {
  kQuery,    ///< count-query request (reader streams)
  kPublish,  ///< (re)publish a release under a fresh perturbation seed
  kDrop      ///< retire a release (it 404s until its next republish)
};

/// One generated operation of one stream.
struct WorkloadOp {
  OpKind kind = OpKind::kQuery;
  std::string release;
  /// kQuery: answer from the epoch this client first observed (pinned
  /// readers); unpinned queries ride the current epoch.
  bool pin = false;
  std::vector<recpriv::client::QuerySpec> queries;  ///< kQuery only
  uint64_t publish_seed = 0;                        ///< kPublish only
};

/// The expanded scenario: per-client reader streams plus the writer stream.
struct GeneratedWorkload {
  ScenarioSpec spec;
  std::vector<std::vector<WorkloadOp>> client_ops;  ///< spec.clients streams
  std::vector<WorkloadOp> writer_ops;               ///< churn stream
};

/// Deterministic expansion of `spec` (see file comment).
Result<GeneratedWorkload> GenerateWorkload(const ScenarioSpec& spec);

/// Serializes a workload as JSONL: line 1 the scenario object, then one op
/// object per line ({"client":N,...} or {"writer":true,...}).
Status WriteWorkload(const GeneratedWorkload& workload,
                     const std::string& path);

/// Inverse of WriteWorkload.
Result<GeneratedWorkload> ReadWorkload(const std::string& path);

}  // namespace recpriv::workload
