#include "workload/driver.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "client/in_process_client.h"
#include "client/line_protocol_client.h"
#include "client/tcp_transport.h"
#include "common/timer.h"
#include "serve/server.h"
#include "workload/oracle.h"

namespace recpriv::workload {

using recpriv::client::BatchAnswer;
using recpriv::client::QueryRequest;

namespace {

/// The initial perturbation seed of a release (epoch 1): derived from the
/// data seed so a scenario file pins it without an extra field.
uint64_t InitialPerturbSeed(const SyntheticReleaseSpec& spec) {
  uint64_t state = spec.data_seed;
  return SplitMix64Next(state);
}

/// Per-thread tallies, merged after join (no contention while running).
struct ThreadTally {
  uint64_t requests = 0;
  uint64_t queries = 0;
  uint64_t verified = 0;
  uint64_t mismatches = 0;
  uint64_t unknown_epochs = 0;
  uint64_t hard_failures = 0;
  std::map<std::string, uint64_t> errors;
  std::vector<std::string> mismatch_details;
  std::vector<double> latencies_ms;  ///< one entry per query request
  uint64_t latency_errors = 0;       ///< requests whose outcome was an error
  recpriv::client::RetryStats retry;
};

void CountError(ThreadTally& tally, const Status& status) {
  const auto code = recpriv::client::ErrorCodeFromStatus(status);
  ++tally.errors[std::string(recpriv::client::ErrorCodeName(code))];
}

/// Percentile over a SORTED sample (nearest-rank on the closed index).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = size_t(p * double(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

Result<DriverReport> RunWorkload(const GeneratedWorkload& workload,
                                 const DriverOptions& options) {
  const ScenarioSpec& spec = workload.spec;
  if (workload.client_ops.size() != spec.clients) {
    return Status::InvalidArgument(
        "workload stream count does not match the scenario's clients");
  }
  std::map<std::string, const SyntheticReleaseSpec*> release_specs;
  for (const SyntheticReleaseSpec& r : spec.releases) {
    if (!release_specs.emplace(r.name, &r).second) {
      return Status::InvalidArgument("duplicate release name '" + r.name +
                                     "'");
    }
  }

  serve::ReleaseStore::Options store_options;
  store_options.retained_epochs = options.retained_epochs;
  store_options.snapshot_dir = options.snapshot_dir;
  auto store = std::make_shared<serve::ReleaseStore>(store_options);
  Oracle oracle;
  if (!options.snapshot_dir.empty()) {
    RECPRIV_RETURN_NOT_OK(store->RecoverFromDir());
    // Recovered snapshots are answerable immediately; register them so a
    // reader that pins a recovered epoch is still verified bit-exactly.
    for (const serve::ReleaseInfo& info : store->List()) {
      for (uint64_t e = info.oldest_epoch; e <= info.epoch; ++e) {
        auto snap = store->Get(info.name, e);
        if (snap.ok()) oracle.Register(info.name, std::move(*snap));
      }
    }
  }
  auto engine = std::make_shared<serve::QueryEngine>(store, options.engine);

  DriverReport report;
  // Incremental mode: one StreamingPublisher per release, seeded with the
  // same deterministic raw table the legacy path perturbs, plus a
  // per-release writer RNG that persists across republishes (the SPS draw
  // stream PublishIncremental keeps deterministic). The writer thread is
  // the only mutator once the run starts.
  struct IncrementalState {
    recpriv::core::StreamingPublisher publisher;
    Rng rng;
  };
  std::map<std::string, std::unique_ptr<IncrementalState>> incremental;
  for (const SyntheticReleaseSpec& r : spec.releases) {
    if (options.incremental_delta == 0) {
      RECPRIV_ASSIGN_OR_RETURN(recpriv::analysis::ReleaseBundle bundle,
                               MakeBundle(r, InitialPerturbSeed(r)));
      RECPRIV_ASSIGN_OR_RETURN(serve::SnapshotPtr snap,
                               store->Publish(r.name, std::move(bundle)));
      oracle.Register(r.name, std::move(snap));
      ++report.publishes;
      continue;
    }
    RECPRIV_ASSIGN_OR_RETURN(recpriv::table::Table raw, MakeRawTable(r));
    recpriv::core::PrivacyParams params;
    params.retention_p = r.retention_p;
    params.domain_m = r.sa_domain;
    RECPRIV_RETURN_NOT_OK(params.Validate());
    RECPRIV_ASSIGN_OR_RETURN(
        recpriv::core::StreamingPublisher publisher,
        recpriv::core::StreamingPublisher::Make(raw.schema(), params));
    std::vector<uint32_t> row(raw.num_columns());
    for (size_t i = 0; i < raw.num_rows(); ++i) {
      for (size_t c = 0; c < raw.num_columns(); ++c) row[c] = raw.at(i, c);
      RECPRIV_RETURN_NOT_OK(publisher.Insert(row));
    }
    auto state = std::make_unique<IncrementalState>(
        IncrementalState{std::move(publisher), Rng(InitialPerturbSeed(r))});
    RECPRIV_ASSIGN_OR_RETURN(
        serve::SnapshotPtr snap,
        store->PublishIncremental(r.name, state->publisher, state->rng,
                                  options.incremental_merge));
    oracle.RegisterRebuilt(r.name, snap);
    incremental.emplace(r.name, std::move(state));
    ++report.publishes;
  }

  std::unique_ptr<serve::Server> server;
  if (options.over_tcp) {
    RECPRIV_ASSIGN_OR_RETURN(server, serve::Server::Start(engine, {}));
  }
  auto make_client =
      [&]() -> Result<std::unique_ptr<recpriv::client::Client>> {
    if (options.over_tcp) {
      recpriv::client::TcpTransportOptions tcp_options;
      tcp_options.fault_injector = options.fault_injector;
      RECPRIV_ASSIGN_OR_RETURN(
          auto tcp, recpriv::client::ConnectTcp("127.0.0.1", server->port(),
                                                tcp_options));
      return std::unique_ptr<recpriv::client::Client>(std::move(tcp));
    }
    if (options.fault_injector != nullptr) {
      // In-process fault injection: the full wire round-trip over a
      // loopback transport, with the fault decorator in between — so
      // --faults exercises the retry path without a socket.
      auto faulty = std::make_unique<recpriv::client::FaultInjectingTransport>(
          std::make_unique<recpriv::client::LoopbackTransport>(*engine),
          options.fault_injector);
      return std::unique_ptr<recpriv::client::Client>(
          std::make_unique<recpriv::client::LineProtocolClient>(
              std::move(faulty)));
    }
    return std::unique_ptr<recpriv::client::Client>(
        std::make_unique<recpriv::client::InProcessClient>(engine));
  };

  std::vector<ThreadTally> tallies(spec.clients);
  ThreadTally writer_tally;
  uint64_t writer_publishes = 0;
  uint64_t writer_drops = 0;

  WallTimer timer;
  std::vector<std::thread> readers;
  readers.reserve(spec.clients);
  for (size_t c = 0; c < spec.clients; ++c) {
    readers.emplace_back([&, c] {
      ThreadTally& tally = tallies[c];
      // QoS identity: the leading abusive clients declare the abusive
      // tenant, flood at full speed (no pacing below), and are exactly the
      // traffic per-tenant quotas exist to contain.
      const bool abuser = c < spec.qos.abusive_clients;
      const std::string tenant =
          abuser ? spec.qos.abusive_tenant : spec.qos.tenant;
      std::unique_ptr<recpriv::client::Client> client;
      recpriv::client::RetryingClient* retrier = nullptr;
      if (options.retry) {
        auto created = recpriv::client::RetryingClient::Create(
            make_client, options.retry_policy);
        if (!created.ok()) {
          ++tally.hard_failures;
          return;
        }
        retrier = created->get();
        client = std::move(*created);
      } else {
        auto created = make_client();
        if (!created.ok()) {
          ++tally.hard_failures;
          return;
        }
        client = std::move(*created);
      }
      // A pinned reader pins the epoch it FIRST observes per release and
      // sticks to it; under churn that pin may age out (STALE_EPOCH) —
      // exactly the client behavior the retention window exists for.
      std::map<std::string, uint64_t> pins;
      size_t in_burst = 0;
      for (const WorkloadOp& op : workload.client_ops[c]) {
        QueryRequest request;
        request.release = op.release;
        request.queries = op.queries;
        request.tenant = tenant;
        if (spec.qos.deadline_ms > 0) {
          request.deadline_ms = spec.qos.deadline_ms;
        }
        if (op.pin) {
          auto it = pins.find(op.release);
          if (it == pins.end()) {
            auto snap = store->Get(op.release);
            if (snap.ok()) {
              it = pins.emplace(op.release, (*snap)->epoch).first;
            }
          }
          if (it != pins.end()) request.epoch = it->second;
        }
        ++tally.requests;
        tally.queries += request.queries.size();
        const auto issued = std::chrono::steady_clock::now();
        auto answer = client->Query(request);
        tally.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - issued)
                .count());
        if (!answer.ok()) {
          ++tally.latency_errors;
          CountError(tally, answer.status());
        } else if (options.verify) {
          std::string detail;
          auto verdict = oracle.Verify(op.release, op.queries, *answer,
                                       &detail);
          if (verdict == Oracle::Verdict::kUnknownEpoch) {
            // A reader can be answered from a fresh epoch in the instants
            // between the store's snapshot swap and the writer's
            // oracle.Register. The store retains the answered epoch's
            // immutable snapshot, so the reader registers it itself —
            // (name, epoch) identifies one snapshot, whoever files it.
            auto snap = store->Get(op.release, answer->epoch);
            if (snap.ok()) {
              oracle.Register(op.release, *std::move(snap));
              verdict =
                  oracle.Verify(op.release, op.queries, *answer, &detail);
            }
          }
          // Residual corner: the epoch already aged out of retention AND
          // the writer's Register has not landed yet — give it a bounded
          // moment before calling the epoch truly unknown.
          for (int retry = 0;
               verdict == Oracle::Verdict::kUnknownEpoch && retry < 200;
               ++retry) {
            std::this_thread::sleep_for(std::chrono::microseconds(500));
            verdict = oracle.Verify(op.release, op.queries, *answer, &detail);
          }
          switch (verdict) {
            case Oracle::Verdict::kVerified:
              ++tally.verified;
              break;
            case Oracle::Verdict::kMismatch:
              ++tally.mismatches;
              if (tally.mismatch_details.size() < 3) {
                tally.mismatch_details.push_back(std::move(detail));
              }
              break;
            case Oracle::Verdict::kUnknownEpoch:
              ++tally.unknown_epochs;
              break;
          }
        }
        if (!abuser && spec.pacing_us > 0 && ++in_burst >= spec.burst_size) {
          in_burst = 0;
          std::this_thread::sleep_for(
              std::chrono::microseconds(spec.pacing_us));
        }
      }
      if (retrier != nullptr) tally.retry = retrier->retry_stats();
    });
  }

  std::thread writer([&] {
    for (const WorkloadOp& op : workload.writer_ops) {
      auto it = release_specs.find(op.release);
      if (it == release_specs.end()) {
        ++writer_tally.hard_failures;
        continue;
      }
      if (op.kind == OpKind::kPublish) {
        serve::SnapshotPtr snap;
        if (options.incremental_delta > 0) {
          IncrementalState& state = *incremental.at(op.release);
          auto rows = MakeDeltaRows(*it->second, op.publish_seed,
                                    options.incremental_delta);
          bool inserted = rows.ok();
          for (size_t i = 0; inserted && i < rows->size(); ++i) {
            inserted = state.publisher.Insert((*rows)[i]).ok();
          }
          if (!inserted) {
            ++writer_tally.hard_failures;
            continue;
          }
          auto published = store->PublishIncremental(
              op.release, state.publisher, state.rng,
              options.incremental_merge);
          if (!published.ok()) {
            ++writer_tally.hard_failures;
            continue;
          }
          snap = *std::move(published);
        } else {
          auto bundle = MakeBundle(*it->second, op.publish_seed);
          if (!bundle.ok()) {
            ++writer_tally.hard_failures;
            continue;
          }
          auto published = store->Publish(op.release, *std::move(bundle));
          if (!published.ok()) {
            ++writer_tally.hard_failures;
            continue;
          }
          snap = *std::move(published);
        }
        // Register the WHOLE retention window, not just the snapshot this
        // publish handed back: Publish returns the epoch being served, so
        // under churn an intermediate epoch could otherwise stay
        // unregistered while still pinnable — a mid-churn pinned read must
        // verify too. Register is first-wins, so the sweep never displaces
        // an entry (in particular a RegisterRebuilt reference twin).
        if (auto window = store->Window(op.release); window.ok()) {
          for (const serve::SnapshotPtr& s : *window) {
            oracle.Register(op.release, s);
          }
        }
        if (options.incremental_delta > 0) {
          oracle.RegisterRebuilt(op.release, snap);
        } else {
          oracle.Register(op.release, std::move(snap));
        }
        ++writer_publishes;
      } else if (op.kind == OpKind::kDrop) {
        // Dropping an already-dropped release is a legal no-op race.
        auto dropped = store->Drop(op.release);
        if (dropped.ok()) ++writer_drops;
      } else {
        ++writer_tally.hard_failures;  // query ops never belong to the writer
      }
      if (spec.churn.pacing_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(spec.churn.pacing_us));
      }
    }
  });

  for (std::thread& t : readers) t.join();
  writer.join();
  report.elapsed_seconds = timer.Seconds();
  if (server != nullptr) server->Stop();

  report.publishes += writer_publishes;
  report.drops = writer_drops;

  // Per-tenant latency: pool each tenant's samples across its clients,
  // then take percentiles over the pooled (sorted) sample.
  std::map<std::string, std::vector<double>> samples_by_tenant;
  for (size_t c = 0; c < spec.clients; ++c) {
    const std::string tenant =
        c < spec.qos.abusive_clients ? spec.qos.abusive_tenant
                                     : spec.qos.tenant;
    TenantLatency& lat = report.tenant_latency[tenant];
    lat.requests += tallies[c].requests;
    lat.errors += tallies[c].latency_errors;
    auto& pooled = samples_by_tenant[tenant];
    pooled.insert(pooled.end(), tallies[c].latencies_ms.begin(),
                  tallies[c].latencies_ms.end());
  }
  for (auto& [tenant, samples] : samples_by_tenant) {
    std::sort(samples.begin(), samples.end());
    TenantLatency& lat = report.tenant_latency[tenant];
    lat.p50_ms = Percentile(samples, 0.5);
    lat.p99_ms = Percentile(samples, 0.99);
    lat.max_ms = samples.empty() ? 0.0 : samples.back();
  }

  if (options.retry) {
    recpriv::client::RetryStats retry;
    for (size_t c = 0; c < spec.clients; ++c) {
      retry.attempts += tallies[c].retry.attempts;
      retry.retries += tallies[c].retry.retries;
      retry.retried_ok += tallies[c].retry.retried_ok;
      retry.reconnects += tallies[c].retry.reconnects;
      retry.exhausted += tallies[c].retry.exhausted;
    }
    report.retry = retry;
  }
  if (options.fault_injector != nullptr) {
    report.faults = options.fault_injector->Stats();
  }

  tallies.push_back(std::move(writer_tally));
  for (const ThreadTally& tally : tallies) {
    report.requests += tally.requests;
    report.queries += tally.queries;
    report.verified += tally.verified;
    report.mismatches += tally.mismatches;
    report.unknown_epochs += tally.unknown_epochs;
    report.hard_failures += tally.hard_failures;
    for (const auto& [code, count] : tally.errors) {
      report.errors[code] += count;
    }
    for (const std::string& detail : tally.mismatch_details) {
      if (report.mismatch_details.size() < 5) {
        report.mismatch_details.push_back(detail);
      }
    }
  }
  if (report.elapsed_seconds > 0) {
    report.requests_per_second =
        double(report.requests) / report.elapsed_seconds;
    report.queries_per_second = double(report.queries) / report.elapsed_seconds;
  }
  report.scheduler = engine->scheduler_stats();
  report.tenants = engine->tenant_stats();
  return report;
}

Result<DriverReport> RunScenario(const ScenarioSpec& spec,
                                 const DriverOptions& options,
                                 const std::string& record_path) {
  RECPRIV_ASSIGN_OR_RETURN(GeneratedWorkload workload,
                           GenerateWorkload(spec));
  if (!record_path.empty()) {
    RECPRIV_RETURN_NOT_OK(WriteWorkload(workload, record_path));
  }
  return RunWorkload(workload, options);
}

}  // namespace recpriv::workload
