#include "workload/scenario.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace recpriv::workload {

namespace {

// Field access via the shared common/json.h Require* helpers: explicit
// errors per missing/mistyped field so a hand-edited scenario file fails
// loudly, with the same wording as every other codec in the tree.

Result<size_t> RequireSize(const JsonValue& obj, const std::string& key) {
  RECPRIV_ASSIGN_OR_RETURN(int64_t v, RequireInt(obj, key));
  if (v < 0) {
    return Status::InvalidArgument("'" + key + "' must be >= 0");
  }
  return size_t(v);
}

JsonValue ReleaseToJson(const SyntheticReleaseSpec& r) {
  JsonValue out = JsonValue::Object();
  out.Set("name", JsonValue::String(r.name));
  out.Set("data_seed", JsonValue::Int(int64_t(r.data_seed)));
  out.Set("records", JsonValue::Int(int64_t(r.records)));
  JsonValue domains = JsonValue::Array();
  for (size_t d : r.public_domains) domains.Append(JsonValue::Int(int64_t(d)));
  out.Set("public_domains", std::move(domains));
  out.Set("sa_domain", JsonValue::Int(int64_t(r.sa_domain)));
  out.Set("retention_p", JsonValue::Number(r.retention_p));
  out.Set("na_skew", JsonValue::Number(r.na_skew));
  out.Set("sa_skew", JsonValue::Number(r.sa_skew));
  return out;
}

Result<SyntheticReleaseSpec> ReleaseFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("release spec must be an object");
  }
  SyntheticReleaseSpec r;
  RECPRIV_ASSIGN_OR_RETURN(r.name, RequireString(json, "name"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t data_seed, RequireInt(json, "data_seed"));
  r.data_seed = uint64_t(data_seed);
  RECPRIV_ASSIGN_OR_RETURN(r.records, RequireSize(json, "records"));
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* domains,
                           json.Get("public_domains"));
  if (!domains->is_array()) {
    return Status::InvalidArgument("'public_domains' must be an array");
  }
  r.public_domains.clear();
  for (size_t i = 0; i < domains->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* d, domains->At(i));
    RECPRIV_ASSIGN_OR_RETURN(int64_t size, d->AsInt());
    if (size < 1) {
      return Status::InvalidArgument("public domain sizes must be >= 1");
    }
    r.public_domains.push_back(size_t(size));
  }
  RECPRIV_ASSIGN_OR_RETURN(r.sa_domain, RequireSize(json, "sa_domain"));
  RECPRIV_ASSIGN_OR_RETURN(r.retention_p, RequireDouble(json, "retention_p"));
  RECPRIV_ASSIGN_OR_RETURN(r.na_skew, RequireDouble(json, "na_skew"));
  RECPRIV_ASSIGN_OR_RETURN(r.sa_skew, RequireDouble(json, "sa_skew"));
  return r;
}

}  // namespace

JsonValue ScenarioToJson(const ScenarioSpec& spec) {
  JsonValue out = JsonValue::Object();
  out.Set("schema", JsonValue::String("recpriv_scenario/v1"));
  out.Set("name", JsonValue::String(spec.name));
  out.Set("seed", JsonValue::Int(int64_t(spec.seed)));
  JsonValue releases = JsonValue::Array();
  for (const SyntheticReleaseSpec& r : spec.releases) {
    releases.Append(ReleaseToJson(r));
  }
  out.Set("releases", std::move(releases));
  out.Set("clients", JsonValue::Int(int64_t(spec.clients)));
  out.Set("ops_per_client", JsonValue::Int(int64_t(spec.ops_per_client)));
  out.Set("queries_per_request",
          JsonValue::Int(int64_t(spec.queries_per_request)));
  out.Set("hot_release_zipf", JsonValue::Number(spec.hot_release_zipf));
  out.Set("pinned_fraction", JsonValue::Number(spec.pinned_fraction));
  out.Set("burst_size", JsonValue::Int(int64_t(spec.burst_size)));
  out.Set("pacing_us", JsonValue::Int(spec.pacing_us));

  JsonValue mix = JsonValue::Object();
  JsonValue weights = JsonValue::Array();
  for (double w : spec.mix.dimensionality_weights) {
    weights.Append(JsonValue::Number(w));
  }
  mix.Set("dimensionality_weights", std::move(weights));
  mix.Set("value_skew",
          JsonValue::String(spec.mix.value_skew == ValueSkew::kZipf
                                ? "zipf"
                                : "uniform"));
  mix.Set("zipf_s", JsonValue::Number(spec.mix.zipf_s));
  out.Set("mix", std::move(mix));

  JsonValue churn = JsonValue::Object();
  churn.Set("writer_ops", JsonValue::Int(int64_t(spec.churn.writer_ops)));
  churn.Set("drop_every", JsonValue::Int(int64_t(spec.churn.drop_every)));
  churn.Set("pacing_us", JsonValue::Int(spec.churn.pacing_us));
  out.Set("churn", std::move(churn));

  // Emitted only when the scenario actually uses QoS features, so files
  // written before this block and files written after are byte-identical
  // for QoS-free scenarios.
  if (spec.qos.abusive_clients > 0 || !spec.qos.tenant.empty() ||
      spec.qos.deadline_ms > 0) {
    JsonValue qos = JsonValue::Object();
    qos.Set("abusive_clients", JsonValue::Int(int64_t(spec.qos.abusive_clients)));
    qos.Set("abusive_ops_multiplier",
            JsonValue::Int(int64_t(spec.qos.abusive_ops_multiplier)));
    qos.Set("abusive_tenant", JsonValue::String(spec.qos.abusive_tenant));
    qos.Set("tenant", JsonValue::String(spec.qos.tenant));
    qos.Set("deadline_ms", JsonValue::Int(spec.qos.deadline_ms));
    out.Set("qos", std::move(qos));
  }
  return out;
}

Result<ScenarioSpec> ScenarioFromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("scenario must be a JSON object");
  }
  RECPRIV_ASSIGN_OR_RETURN(std::string schema, RequireString(json, "schema"));
  if (schema != "recpriv_scenario/v1") {
    return Status::InvalidArgument("unsupported scenario schema '" + schema +
                                   "'");
  }
  ScenarioSpec spec;
  RECPRIV_ASSIGN_OR_RETURN(spec.name, RequireString(json, "name"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t seed, RequireInt(json, "seed"));
  spec.seed = uint64_t(seed);
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* releases, json.Get("releases"));
  if (!releases->is_array() || releases->size() == 0) {
    return Status::InvalidArgument("'releases' must be a non-empty array");
  }
  spec.releases.clear();
  for (size_t i = 0; i < releases->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* r, releases->At(i));
    RECPRIV_ASSIGN_OR_RETURN(SyntheticReleaseSpec release,
                             ReleaseFromJson(*r));
    spec.releases.push_back(std::move(release));
  }
  RECPRIV_ASSIGN_OR_RETURN(spec.clients, RequireSize(json, "clients"));
  RECPRIV_ASSIGN_OR_RETURN(spec.ops_per_client,
                           RequireSize(json, "ops_per_client"));
  RECPRIV_ASSIGN_OR_RETURN(spec.queries_per_request,
                           RequireSize(json, "queries_per_request"));
  RECPRIV_ASSIGN_OR_RETURN(spec.hot_release_zipf,
                           RequireDouble(json, "hot_release_zipf"));
  RECPRIV_ASSIGN_OR_RETURN(spec.pinned_fraction,
                           RequireDouble(json, "pinned_fraction"));
  RECPRIV_ASSIGN_OR_RETURN(spec.burst_size, RequireSize(json, "burst_size"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t pacing, RequireInt(json, "pacing_us"));
  spec.pacing_us = int(pacing);

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* mix, json.Get("mix"));
  if (!mix->is_object()) {
    return Status::InvalidArgument("'mix' must be an object");
  }
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* weights,
                           mix->Get("dimensionality_weights"));
  if (!weights->is_array() || weights->size() == 0) {
    return Status::InvalidArgument(
        "'dimensionality_weights' must be a non-empty array");
  }
  spec.mix.dimensionality_weights.clear();
  for (size_t i = 0; i < weights->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* w, weights->At(i));
    RECPRIV_ASSIGN_OR_RETURN(double weight, w->AsDouble());
    spec.mix.dimensionality_weights.push_back(weight);
  }
  RECPRIV_ASSIGN_OR_RETURN(std::string skew, RequireString(*mix, "value_skew"));
  if (skew == "uniform") {
    spec.mix.value_skew = ValueSkew::kUniform;
  } else if (skew == "zipf") {
    spec.mix.value_skew = ValueSkew::kZipf;
  } else {
    return Status::InvalidArgument("'value_skew' must be uniform or zipf");
  }
  RECPRIV_ASSIGN_OR_RETURN(spec.mix.zipf_s, RequireDouble(*mix, "zipf_s"));

  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* churn, json.Get("churn"));
  if (!churn->is_object()) {
    return Status::InvalidArgument("'churn' must be an object");
  }
  RECPRIV_ASSIGN_OR_RETURN(spec.churn.writer_ops,
                           RequireSize(*churn, "writer_ops"));
  RECPRIV_ASSIGN_OR_RETURN(spec.churn.drop_every,
                           RequireSize(*churn, "drop_every"));
  RECPRIV_ASSIGN_OR_RETURN(int64_t churn_pacing,
                           RequireInt(*churn, "pacing_us"));
  spec.churn.pacing_us = int(churn_pacing);

  if (json.Has("qos")) {  // optional: pre-QoS scenario files lack it
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* qos, json.Get("qos"));
    if (!qos->is_object()) {
      return Status::InvalidArgument("'qos' must be an object");
    }
    RECPRIV_ASSIGN_OR_RETURN(spec.qos.abusive_clients,
                             RequireSize(*qos, "abusive_clients"));
    RECPRIV_ASSIGN_OR_RETURN(spec.qos.abusive_ops_multiplier,
                             RequireSize(*qos, "abusive_ops_multiplier"));
    if (spec.qos.abusive_ops_multiplier == 0) {
      return Status::InvalidArgument("'abusive_ops_multiplier' must be >= 1");
    }
    RECPRIV_ASSIGN_OR_RETURN(spec.qos.abusive_tenant,
                             RequireString(*qos, "abusive_tenant"));
    RECPRIV_ASSIGN_OR_RETURN(spec.qos.tenant, RequireString(*qos, "tenant"));
    RECPRIV_ASSIGN_OR_RETURN(spec.qos.deadline_ms,
                             RequireInt(*qos, "deadline_ms"));
    if (spec.qos.deadline_ms < 0) {
      return Status::InvalidArgument("'deadline_ms' must be >= 0");
    }
  }
  return spec;
}

Status SaveScenario(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot write scenario file " + path);
  }
  out << ScenarioToJson(spec).ToString(2) << "\n";
  return out.good() ? Status::OK()
                    : Status::IOError("write failed for " + path);
}

Result<ScenarioSpec> LoadScenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot read scenario file " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  RECPRIV_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(text.str()));
  return ScenarioFromJson(json);
}

std::vector<std::string> BuiltinScenarioNames() {
  return {"steady_uniform", "hot_release_zipf", "burst_same_release",
          "republish_churn", "pin_heavy", "abusive_tenant"};
}

Result<ScenarioSpec> BuiltinScenario(const std::string& name, uint64_t seed) {
  ScenarioSpec spec;
  spec.name = name;
  spec.seed = seed;

  SyntheticReleaseSpec base;
  base.records = 3000;
  base.public_domains = {4, 8};
  base.sa_domain = 3;

  if (name == "steady_uniform") {
    for (size_t i = 0; i < 2; ++i) {
      SyntheticReleaseSpec r = base;
      r.name = "r" + std::to_string(i);
      r.data_seed = seed + i;
      spec.releases.push_back(std::move(r));
    }
    spec.clients = 4;
    spec.ops_per_client = 40;
    return spec;
  }
  if (name == "hot_release_zipf") {
    for (size_t i = 0; i < 4; ++i) {
      SyntheticReleaseSpec r = base;
      r.name = "r" + std::to_string(i);
      r.data_seed = seed + i;
      r.na_skew = 1.0;  // hot cells inside the releases, too
      spec.releases.push_back(std::move(r));
    }
    spec.clients = 6;
    spec.ops_per_client = 40;
    spec.hot_release_zipf = 1.5;
    spec.mix.value_skew = ValueSkew::kZipf;
    return spec;
  }
  if (name == "burst_same_release") {
    SyntheticReleaseSpec r = base;
    r.name = "hot";
    r.data_seed = seed;
    r.records = 20000;
    r.public_domains = {8, 32, 16};
    spec.releases.push_back(std::move(r));
    spec.clients = 8;
    spec.ops_per_client = 60;
    spec.burst_size = 16;
    spec.pacing_us = 200;
    // Broad queries: mostly 0- and 1-dimensional predicates, the regime
    // where fusing a burst into one index pass pays the most.
    spec.mix.dimensionality_weights = {3.0, 2.0, 1.0};
    return spec;
  }
  if (name == "republish_churn") {
    for (size_t i = 0; i < 2; ++i) {
      SyntheticReleaseSpec r = base;
      r.name = "r" + std::to_string(i);
      r.data_seed = seed + i;
      spec.releases.push_back(std::move(r));
    }
    spec.clients = 6;
    spec.ops_per_client = 50;
    spec.pinned_fraction = 0.5;
    spec.churn.writer_ops = 30;
    spec.churn.drop_every = 5;
    spec.churn.pacing_us = 300;
    return spec;
  }
  if (name == "abusive_tenant") {
    // One shared release everyone hammers: two "abuser" clients at 6x
    // volume with no pacing, four paced "victim" clients. Without quotas
    // the abusers monopolize the pool; with tenant_quota_qps set their
    // excess is rejected RESOURCE_EXHAUSTED and victim latency recovers
    // (bench/bench_serve_qos.cc gates exactly that).
    SyntheticReleaseSpec r = base;
    r.name = "shared";
    r.data_seed = seed;
    r.records = 10000;
    r.public_domains = {8, 16};
    spec.releases.push_back(std::move(r));
    spec.clients = 6;
    spec.ops_per_client = 30;
    spec.pacing_us = 200;
    spec.mix.dimensionality_weights = {2.0, 2.0, 1.0};
    spec.qos.abusive_clients = 2;
    spec.qos.abusive_ops_multiplier = 6;
    spec.qos.abusive_tenant = "abuser";
    spec.qos.tenant = "victim";
    return spec;
  }
  if (name == "pin_heavy") {
    SyntheticReleaseSpec r = base;
    r.name = "pinned";
    r.data_seed = seed;
    spec.releases.push_back(std::move(r));
    spec.clients = 6;
    spec.ops_per_client = 50;
    spec.pinned_fraction = 1.0;
    spec.churn.writer_ops = 25;
    spec.churn.pacing_us = 300;
    return spec;
  }
  return Status::NotFound("unknown builtin scenario '" + name +
                          "' (see BuiltinScenarioNames)");
}

}  // namespace recpriv::workload
