#include "workload/generator.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "common/random.h"

namespace recpriv::workload {

using recpriv::client::QuerySpec;

namespace {

/// Per-release sampling machinery shared by every client stream.
struct ReleaseSamplers {
  const SyntheticReleaseSpec* spec = nullptr;
  std::vector<AliasSampler> value_samplers;  ///< one per public attribute
  AliasSampler sa_sampler{std::vector<double>{1.0}};
  AliasSampler dim_sampler{std::vector<double>{1.0}};
};

size_t SampleValue(const AliasSampler& sampler, Rng& rng) {
  return sampler.Sample(rng);
}

QuerySpec MakeQuerySpec(const ReleaseSamplers& samplers, Rng& rng) {
  const SyntheticReleaseSpec& release = *samplers.spec;
  const size_t num_public = release.public_domains.size();
  size_t d = samplers.dim_sampler.Sample(rng);
  d = std::min(d, num_public);

  QuerySpec spec;
  if (d > 0) {
    std::vector<uint64_t> attrs = SampleWithoutReplacement(rng, num_public, d);
    std::sort(attrs.begin(), attrs.end());  // canonical order for replay diffs
    for (uint64_t k : attrs) {
      const size_t v = SampleValue(samplers.value_samplers[k], rng);
      spec.where.emplace_back(AttributeName(k), AttributeValue(k, v));
    }
  }
  spec.sa = SensitiveValue(SampleValue(samplers.sa_sampler, rng));
  return spec;
}

}  // namespace

Result<GeneratedWorkload> GenerateWorkload(const ScenarioSpec& spec) {
  if (spec.releases.empty()) {
    return Status::InvalidArgument("scenario has no releases");
  }
  if (spec.queries_per_request == 0) {
    return Status::InvalidArgument("queries_per_request must be >= 1");
  }

  // One sampler set per release; skew policy comes from the mix.
  std::vector<ReleaseSamplers> samplers(spec.releases.size());
  for (size_t i = 0; i < spec.releases.size(); ++i) {
    const SyntheticReleaseSpec& release = spec.releases[i];
    samplers[i].spec = &release;
    const double skew =
        spec.mix.value_skew == ValueSkew::kZipf ? spec.mix.zipf_s : 0.0;
    for (size_t domain : release.public_domains) {
      samplers[i].value_samplers.emplace_back(ZipfWeights(domain, skew));
    }
    samplers[i].sa_sampler = AliasSampler(ZipfWeights(release.sa_domain, skew));
    samplers[i].dim_sampler =
        AliasSampler(spec.mix.dimensionality_weights);
  }
  const AliasSampler release_sampler(
      ZipfWeights(spec.releases.size(), spec.hot_release_zipf));

  GeneratedWorkload out;
  out.spec = spec;
  out.client_ops.resize(spec.clients);

  // Fork order defines the determinism contract: clients first (stream c
  // gets the c-th fork), writer last.
  Rng master(spec.seed);
  const size_t pinned_clients =
      size_t(spec.pinned_fraction * double(spec.clients) + 0.5);
  for (size_t c = 0; c < spec.clients; ++c) {
    Rng rng = master.Fork();
    const bool pin = c < pinned_clients;
    // An abusive client draws extra ops from its OWN fork, so the other
    // streams (and the writer) stay byte-identical to the same scenario
    // without the qos block.
    const size_t ops_for_client =
        c < spec.qos.abusive_clients
            ? spec.ops_per_client * spec.qos.abusive_ops_multiplier
            : spec.ops_per_client;
    auto& ops = out.client_ops[c];
    ops.reserve(ops_for_client);
    for (size_t i = 0; i < ops_for_client; ++i) {
      WorkloadOp op;
      op.kind = OpKind::kQuery;
      const size_t r = release_sampler.Sample(rng);
      op.release = spec.releases[r].name;
      op.pin = pin;
      op.queries.reserve(spec.queries_per_request);
      for (size_t q = 0; q < spec.queries_per_request; ++q) {
        op.queries.push_back(MakeQuerySpec(samplers[r], rng));
      }
      ops.push_back(std::move(op));
    }
  }

  Rng writer_rng = master.Fork();
  out.writer_ops.reserve(spec.churn.writer_ops);
  for (size_t i = 0; i < spec.churn.writer_ops; ++i) {
    WorkloadOp op;
    op.release = spec.releases[i % spec.releases.size()].name;
    if (spec.churn.drop_every > 0 && (i + 1) % spec.churn.drop_every == 0) {
      op.kind = OpKind::kDrop;
    } else {
      op.kind = OpKind::kPublish;
      // Masked to 53 bits: record files carry seeds as JSON numbers
      // (IEEE double mantissa), and a seed that rounds in serialization
      // would make a replay republish different data than the live run.
      op.publish_seed = writer_rng() & ((uint64_t{1} << 53) - 1);
    }
    out.writer_ops.push_back(std::move(op));
  }
  return out;
}

// --- record / replay --------------------------------------------------------

namespace {

JsonValue OpToJson(const WorkloadOp& op) {
  JsonValue out = JsonValue::Object();
  switch (op.kind) {
    case OpKind::kQuery: {
      out.Set("op", JsonValue::String("query"));
      out.Set("release", JsonValue::String(op.release));
      if (op.pin) out.Set("pin", JsonValue::Bool(true));
      JsonValue queries = JsonValue::Array();
      for (const QuerySpec& q : op.queries) {
        JsonValue spec = JsonValue::Object();
        JsonValue where = JsonValue::Object();
        for (const auto& [attr, value] : q.where) {
          where.Set(attr, JsonValue::String(value));
        }
        spec.Set("where", std::move(where));
        spec.Set("sa", JsonValue::String(q.sa));
        queries.Append(std::move(spec));
      }
      out.Set("queries", std::move(queries));
      break;
    }
    case OpKind::kPublish:
      out.Set("op", JsonValue::String("publish"));
      out.Set("release", JsonValue::String(op.release));
      out.Set("seed", JsonValue::Int(int64_t(op.publish_seed)));
      break;
    case OpKind::kDrop:
      out.Set("op", JsonValue::String("drop"));
      out.Set("release", JsonValue::String(op.release));
      break;
  }
  return out;
}

Result<WorkloadOp> OpFromJson(const JsonValue& json) {
  WorkloadOp op;
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* kind, json.Get("op"));
  RECPRIV_ASSIGN_OR_RETURN(std::string kind_str, kind->AsString());
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* release, json.Get("release"));
  RECPRIV_ASSIGN_OR_RETURN(op.release, release->AsString());
  if (kind_str == "publish") {
    op.kind = OpKind::kPublish;
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* seed, json.Get("seed"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t seed_val, seed->AsInt());
    op.publish_seed = uint64_t(seed_val);
    return op;
  }
  if (kind_str == "drop") {
    op.kind = OpKind::kDrop;
    return op;
  }
  if (kind_str != "query") {
    return Status::InvalidArgument("unknown workload op '" + kind_str + "'");
  }
  op.kind = OpKind::kQuery;
  if (json.Has("pin")) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* pin, json.Get("pin"));
    RECPRIV_ASSIGN_OR_RETURN(op.pin, pin->AsBool());
  }
  RECPRIV_ASSIGN_OR_RETURN(const JsonValue* queries, json.Get("queries"));
  if (!queries->is_array()) {
    return Status::InvalidArgument("'queries' must be an array");
  }
  for (size_t i = 0; i < queries->size(); ++i) {
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* q, queries->At(i));
    QuerySpec spec;
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* where, q->Get("where"));
    if (!where->is_object()) {
      return Status::InvalidArgument("'where' must be an object");
    }
    for (const std::string& attr : where->Keys()) {
      RECPRIV_ASSIGN_OR_RETURN(const JsonValue* value, where->Get(attr));
      RECPRIV_ASSIGN_OR_RETURN(std::string value_str, value->AsString());
      spec.where.emplace_back(attr, std::move(value_str));
    }
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* sa, q->Get("sa"));
    RECPRIV_ASSIGN_OR_RETURN(spec.sa, sa->AsString());
    op.queries.push_back(std::move(spec));
  }
  return op;
}

}  // namespace

Status WriteWorkload(const GeneratedWorkload& workload,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot write workload file " + path);
  }
  out << ScenarioToJson(workload.spec).ToString() << "\n";
  for (size_t c = 0; c < workload.client_ops.size(); ++c) {
    for (const WorkloadOp& op : workload.client_ops[c]) {
      JsonValue line = OpToJson(op);
      line.Set("client", JsonValue::Int(int64_t(c)));
      out << line.ToString() << "\n";
    }
  }
  for (const WorkloadOp& op : workload.writer_ops) {
    JsonValue line = OpToJson(op);
    line.Set("writer", JsonValue::Bool(true));
    out << line.ToString() << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::IOError("write failed for " + path);
}

Result<GeneratedWorkload> ReadWorkload(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot read workload file " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("workload file is empty: " + path);
  }
  RECPRIV_ASSIGN_OR_RETURN(JsonValue scenario_json, JsonValue::Parse(line));
  GeneratedWorkload out;
  RECPRIV_ASSIGN_OR_RETURN(out.spec, ScenarioFromJson(scenario_json));
  out.client_ops.resize(out.spec.clients);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    RECPRIV_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(line));
    RECPRIV_ASSIGN_OR_RETURN(WorkloadOp op, OpFromJson(json));
    if (json.Has("writer")) {
      out.writer_ops.push_back(std::move(op));
      continue;
    }
    RECPRIV_ASSIGN_OR_RETURN(const JsonValue* client, json.Get("client"));
    RECPRIV_ASSIGN_OR_RETURN(int64_t c, client->AsInt());
    if (c < 0 || size_t(c) >= out.client_ops.size()) {
      return Status::InvalidArgument("op client id out of range");
    }
    out.client_ops[size_t(c)].push_back(std::move(op));
  }
  return out;
}

}  // namespace recpriv::workload
