// Scenario specifications: the typed, serializable description of one
// multi-tenant workload — which synthetic releases exist, how many client
// streams query them with what mix (dimensionality distribution,
// uniform/Zipf value skew, hot-release concentration), which clients pin
// epochs, how requests burst, and how a writer stream churns releases with
// republishes and drops.
//
// A ScenarioSpec plus its seed fully determines the generated op streams
// (workload/generator.h): scenarios are executable artifacts, not prose.
// They round-trip through JSON (ScenarioToJson/ScenarioFromJson) so a
// scenario file checked into a repo replays identically forever, and a set
// of builtin profiles covers the standard shapes (BuiltinScenario).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "workload/synthetic.h"

namespace recpriv::workload {

/// How attribute/SA values are picked when building query predicates.
enum class ValueSkew {
  kUniform,  ///< every domain value equally likely
  kZipf      ///< low-code values hot (exponent QueryMix::zipf_s)
};

/// The per-client query profile.
struct QueryMix {
  /// Weight of dimensionality d = index (0 = unconstrained COUNT per SA
  /// value, 1 = one NA condition, ...). Clipped to the release's public
  /// attribute count at generation time.
  std::vector<double> dimensionality_weights = {1.0, 2.0, 1.0};
  ValueSkew value_skew = ValueSkew::kUniform;
  double zipf_s = 1.1;  ///< skew exponent when value_skew == kZipf
};

/// The writer stream: republish/drop churn over the scenario's releases,
/// round-robin. Every `drop_every`-th op drops the target instead of
/// republishing it (the release then 404s until its next republish turn).
struct ChurnSpec {
  size_t writer_ops = 0;  ///< 0 = no writer stream
  size_t drop_every = 0;  ///< 0 = never drop
  int pacing_us = 500;    ///< pause between writer ops at run time
};

/// Multi-tenant QoS shape: which clients misbehave and under what tenant
/// id. The leading `abusive_clients` clients issue `abusive_ops_multiplier`
/// times the normal op count and ignore pacing at run time — a noisy
/// neighbor the server's per-tenant quotas (serve/admission.h) must
/// contain. Serialized as an optional "qos" object, so scenario files from
/// before this block parse unchanged.
struct QosSpec {
  size_t abusive_clients = 0;         ///< leading clients that misbehave
  size_t abusive_ops_multiplier = 4;  ///< op-count multiplier for abusers
  std::string abusive_tenant = "abuser";  ///< tenant id abusers declare
  std::string tenant;        ///< tenant id of well-behaved clients
                             ///< ("" = the server's default tenant)
  int64_t deadline_ms = 0;   ///< per-request deadline; 0 = none attached
};

/// One complete workload scenario.
struct ScenarioSpec {
  std::string name = "scenario";
  uint64_t seed = 2015;
  std::vector<SyntheticReleaseSpec> releases;
  size_t clients = 4;
  size_t ops_per_client = 50;
  size_t queries_per_request = 1;
  /// Release choice across client requests: 0 = uniform, > 0 = Zipf
  /// exponent concentrating traffic on releases[0] (hot-release tenants).
  double hot_release_zipf = 0.0;
  /// Leading fraction of clients that pin the epoch they first observe and
  /// query it for their whole stream (pin-heavy readers).
  double pinned_fraction = 0.0;
  /// Requests issued back-to-back before a `pacing_us` pause (burst
  /// arrivals when > 1).
  size_t burst_size = 1;
  int pacing_us = 0;  ///< pause between bursts at run time
  QueryMix mix;
  ChurnSpec churn;
  QosSpec qos;
};

JsonValue ScenarioToJson(const ScenarioSpec& spec);
Result<ScenarioSpec> ScenarioFromJson(const JsonValue& json);

/// File forms of the above (one pretty-printed JSON object).
Status SaveScenario(const ScenarioSpec& spec, const std::string& path);
Result<ScenarioSpec> LoadScenario(const std::string& path);

/// Names accepted by BuiltinScenario, in documentation order.
std::vector<std::string> BuiltinScenarioNames();

/// A builtin profile, reseeded with `seed`:
///   steady_uniform      uniform mix over two releases, steady arrivals
///   hot_release_zipf    Zipf-skewed values, traffic concentrated on one
///                       hot release across four tenants
///   burst_same_release  many clients bursting broad queries at one
///                       release (the micro-batching showcase)
///   republish_churn     readers (half pinned) racing a writer that
///                       republishes and drops releases
///   pin_heavy           every reader pins its first-seen epoch under
///                       republish churn (no drops)
///   abusive_tenant      two "abuser" clients flooding a shared release at
///                       6x volume with no pacing while four "victim"
///                       clients query politely — the per-tenant quota
///                       showcase (run it with tenant_quota_qps set)
Result<ScenarioSpec> BuiltinScenario(const std::string& name,
                                     uint64_t seed = 2015);

}  // namespace recpriv::workload
