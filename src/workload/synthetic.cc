#include "workload/synthetic.h"

#include <cmath>
#include <utility>

#include "common/random.h"
#include "core/reconstruction_privacy.h"
#include "perturb/uniform_perturbation.h"
#include "table/dictionary.h"
#include "table/schema.h"

namespace recpriv::workload {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::Schema;
using recpriv::table::SchemaPtr;
using recpriv::table::Table;

std::string AttributeName(size_t k) { return "A" + std::to_string(k); }

std::string AttributeValue(size_t k, size_t v) {
  return "a" + std::to_string(k) + "_" + std::to_string(v);
}

std::string SensitiveValue(size_t v) { return "s" + std::to_string(v); }

std::vector<double> ZipfWeights(size_t n, double s) {
  std::vector<double> w(n, 1.0);
  if (s > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      w[i] = 1.0 / std::pow(double(i + 1), s);
    }
  }
  return w;
}

namespace {

Result<SchemaPtr> MakeSchema(const SyntheticReleaseSpec& spec) {
  if (spec.public_domains.empty()) {
    return Status::InvalidArgument("spec needs at least one public attribute");
  }
  if (spec.sa_domain < 2) {
    return Status::InvalidArgument("SA domain must have m >= 2 values");
  }
  std::vector<Attribute> attributes;
  attributes.reserve(spec.public_domains.size() + 1);
  for (size_t k = 0; k < spec.public_domains.size(); ++k) {
    if (spec.public_domains[k] == 0) {
      return Status::InvalidArgument("public domain sizes must be >= 1");
    }
    std::vector<std::string> values;
    values.reserve(spec.public_domains[k]);
    for (size_t v = 0; v < spec.public_domains[k]; ++v) {
      values.push_back(AttributeValue(k, v));
    }
    RECPRIV_ASSIGN_OR_RETURN(Dictionary domain, Dictionary::FromValues(values));
    attributes.push_back(Attribute{AttributeName(k), std::move(domain)});
  }
  std::vector<std::string> sa_values;
  sa_values.reserve(spec.sa_domain);
  for (size_t v = 0; v < spec.sa_domain; ++v) {
    sa_values.push_back(SensitiveValue(v));
  }
  RECPRIV_ASSIGN_OR_RETURN(Dictionary sa_domain,
                           Dictionary::FromValues(sa_values));
  attributes.push_back(Attribute{kSensitiveName, std::move(sa_domain)});
  RECPRIV_ASSIGN_OR_RETURN(
      Schema schema, Schema::Make(std::move(attributes),
                                  /*sensitive_index=*/spec.public_domains.size()));
  return std::make_shared<Schema>(std::move(schema));
}

}  // namespace

Result<Table> MakeRawTable(const SyntheticReleaseSpec& spec) {
  RECPRIV_ASSIGN_OR_RETURN(SchemaPtr schema, MakeSchema(spec));
  Table raw(schema);
  raw.Reserve(spec.records);

  Rng rng(spec.data_seed);
  const size_t m = spec.sa_domain;
  std::vector<AliasSampler> na_samplers;
  na_samplers.reserve(spec.public_domains.size());
  for (size_t domain : spec.public_domains) {
    na_samplers.emplace_back(ZipfWeights(domain, spec.na_skew));
  }
  const AliasSampler sa_sampler(ZipfWeights(m, spec.sa_skew));

  std::vector<uint32_t> row(spec.public_domains.size() + 1);
  for (size_t r = 0; r < spec.records; ++r) {
    uint32_t na_sum = 0;
    for (size_t k = 0; k < na_samplers.size(); ++k) {
      row[k] = uint32_t(na_samplers[k].Sample(rng));
      na_sum += row[k];
    }
    // Rotate the SA distribution by the NA codes: different personal
    // groups carry genuinely different SA mixes, so reconstruction has
    // structure to recover rather than one global histogram.
    row.back() = uint32_t((sa_sampler.Sample(rng) + na_sum) % m);
    raw.AppendRowUnchecked(row);
  }
  return raw;
}

Result<std::vector<std::vector<uint32_t>>> MakeDeltaRows(
    const SyntheticReleaseSpec& spec, uint64_t delta_seed, size_t count) {
  if (spec.public_domains.empty()) {
    return Status::InvalidArgument("spec needs at least one public attribute");
  }
  if (spec.sa_domain < 2) {
    return Status::InvalidArgument("SA domain must have m >= 2 values");
  }
  Rng rng(delta_seed);
  const size_t m = spec.sa_domain;
  std::vector<AliasSampler> na_samplers;
  na_samplers.reserve(spec.public_domains.size());
  for (size_t domain : spec.public_domains) {
    na_samplers.emplace_back(ZipfWeights(domain, spec.na_skew));
  }
  const AliasSampler sa_sampler(ZipfWeights(m, spec.sa_skew));

  std::vector<std::vector<uint32_t>> rows;
  rows.reserve(count);
  std::vector<uint32_t> row(spec.public_domains.size() + 1);
  for (size_t r = 0; r < count; ++r) {
    uint32_t na_sum = 0;
    for (size_t k = 0; k < na_samplers.size(); ++k) {
      row[k] = uint32_t(na_samplers[k].Sample(rng));
      na_sum += row[k];
    }
    row.back() = uint32_t((sa_sampler.Sample(rng) + na_sum) % m);
    rows.push_back(row);
  }
  return rows;
}

Result<recpriv::analysis::ReleaseBundle> MakeBundle(
    const SyntheticReleaseSpec& spec, uint64_t perturb_seed) {
  RECPRIV_ASSIGN_OR_RETURN(Table raw, MakeRawTable(spec));

  recpriv::core::PrivacyParams params;
  params.retention_p = spec.retention_p;
  params.domain_m = spec.sa_domain;
  RECPRIV_RETURN_NOT_OK(params.Validate());

  recpriv::perturb::UniformPerturbation up{spec.retention_p, spec.sa_domain};
  Rng rng(perturb_seed);
  RECPRIV_ASSIGN_OR_RETURN(Table perturbed,
                           recpriv::perturb::PerturbTable(up, raw, rng));
  return recpriv::analysis::ReleaseBundle{std::move(perturbed), params,
                                          kSensitiveName, {}};
}

}  // namespace recpriv::workload
