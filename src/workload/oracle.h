// Answer oracle: re-derives what every workload response MUST have been.
//
// The driver registers each published snapshot (the store hands back the
// exact immutable ReleaseSnapshot it now serves), so for any response the
// oracle can look up the snapshot of the answered (release, epoch), bind
// the request's string-level QuerySpecs against that snapshot's schema,
// and recompute each answer with the engine's reference evaluator
// (serve::EvaluateUncached). The comparison is BIT-exact on (observed,
// matched_size, estimate) — serving, transport, caching, and the
// micro-batching scheduler must all be answer-preserving, and any
// divergence under concurrency or churn is a mismatch, not noise.
//
// Publish never reuses an epoch per name (serve/release_store.h), so
// within one driver run a registered (release, epoch) key is unambiguous.
// (Drop + OpenSnapshot can reinstall an old epoch number, but the driver
// recovers snapshots before any of its own publishes — never mid-run.)
//
// For incrementally merged snapshots, Register alone would verify the
// serving stack against the SAME merged index that produced the answers —
// a correct merge and a wrong-but-consistent merge would both pass.
// RegisterRebuilt closes that hole: it re-indexes the snapshot's table
// from scratch through the full radix-sort build, so verification pits
// the merge path against an independently constructed reference.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "client/api.h"
#include "serve/release_store.h"

namespace recpriv::workload {

/// Thread-safe registry + verifier of served snapshots.
class Oracle {
 public:
  enum class Verdict {
    kVerified,     ///< every row matched the recomputation bit-for-bit
    kMismatch,     ///< at least one row diverged (details in *detail)
    kUnknownEpoch  ///< the answered epoch was never registered
  };

  /// Records the snapshot now served for its release/epoch. Called by the
  /// driver under the same ordering as the publishes themselves. First
  /// registration of a (release, epoch) wins — later calls are no-ops
  /// (within a run the pair names one immutable snapshot).
  void Register(const std::string& release, serve::SnapshotPtr snap);

  /// Registers an independently rebuilt twin of `snap`: same data, same
  /// epoch, but the group index reconstructed from the snapshot's table by
  /// the full radix-sort build — the reference an incrementally merged
  /// index must agree with bit-for-bit (see file comment). Falls back to
  /// registering `snap` itself if the rebuild fails.
  void RegisterRebuilt(const std::string& release,
                       const serve::SnapshotPtr& snap);

  /// Verifies one answered batch against the snapshot it claims to have
  /// been served from. `specs` are the request's queries, parallel to
  /// `answer.answers`. On kMismatch, `detail` (when non-null) receives a
  /// human-readable description of the first diverging row.
  Verdict Verify(const std::string& release,
                 const std::vector<recpriv::client::QuerySpec>& specs,
                 const recpriv::client::BatchAnswer& answer,
                 std::string* detail = nullptr) const;

  /// Number of registered snapshots (across all releases and epochs).
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, uint64_t>, serve::SnapshotPtr> snapshots_;
};

}  // namespace recpriv::workload
