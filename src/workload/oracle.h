// Answer oracle: re-derives what every workload response MUST have been.
//
// The driver registers each published snapshot (the store hands back the
// exact immutable ReleaseSnapshot it now serves), so for any response the
// oracle can look up the snapshot of the answered (release, epoch), bind
// the request's string-level QuerySpecs against that snapshot's schema,
// and recompute each answer with the engine's reference evaluator
// (serve::EvaluateUncached). The comparison is BIT-exact on (observed,
// matched_size, estimate) — serving, transport, caching, and the
// micro-batching scheduler must all be answer-preserving, and any
// divergence under concurrency or churn is a mismatch, not noise.
//
// Epochs are never reused per name (serve/release_store.h), so a
// registered (release, epoch) key can never be ambiguous.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "client/api.h"
#include "serve/release_store.h"

namespace recpriv::workload {

/// Thread-safe registry + verifier of served snapshots.
class Oracle {
 public:
  enum class Verdict {
    kVerified,     ///< every row matched the recomputation bit-for-bit
    kMismatch,     ///< at least one row diverged (details in *detail)
    kUnknownEpoch  ///< the answered epoch was never registered
  };

  /// Records the snapshot now served for its release/epoch. Called by the
  /// driver under the same ordering as the publishes themselves.
  void Register(const std::string& release, serve::SnapshotPtr snap);

  /// Verifies one answered batch against the snapshot it claims to have
  /// been served from. `specs` are the request's queries, parallel to
  /// `answer.answers`. On kMismatch, `detail` (when non-null) receives a
  /// human-readable description of the first diverging row.
  Verdict Verify(const std::string& release,
                 const std::vector<recpriv::client::QuerySpec>& specs,
                 const recpriv::client::BatchAnswer& answer,
                 std::string* detail = nullptr) const;

  /// Number of registered snapshots (across all releases and epochs).
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, uint64_t>, serve::SnapshotPtr> snapshots_;
};

}  // namespace recpriv::workload
