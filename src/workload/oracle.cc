#include "workload/oracle.h"

#include <utility>

#include "query/count_query.h"
#include "serve/query_engine.h"
#include "table/predicate.h"

namespace recpriv::workload {

using recpriv::client::BatchAnswer;
using recpriv::client::QuerySpec;
using recpriv::query::CountQuery;
using recpriv::table::Predicate;
using recpriv::table::Schema;

void Oracle::Register(const std::string& release, serve::SnapshotPtr snap) {
  std::lock_guard<std::mutex> lock(mu_);
  // First registration wins: within a run, (release, epoch) names one
  // immutable snapshot, so a re-registration (the writer's retention-window
  // sweep, a reader's self-registration) carries the same content — and
  // keeping the first entry preserves a RegisterRebuilt reference twin.
  const uint64_t epoch = snap->epoch;
  snapshots_.emplace(std::make_pair(release, epoch), std::move(snap));
}

void Oracle::RegisterRebuilt(const std::string& release,
                             const serve::SnapshotPtr& snap) {
  recpriv::analysis::ReleaseBundle copy{snap->bundle.data.Clone(),
                                        snap->bundle.params,
                                        snap->bundle.sensitive_attribute,
                                        snap->bundle.generalization};
  auto rebuilt =
      recpriv::analysis::SnapshotRelease(std::move(copy), snap->epoch);
  std::lock_guard<std::mutex> lock(mu_);
  // Unlike Register, the rebuilt twin REPLACES any earlier entry (a reader
  // may have self-registered the served snapshot first): verification must
  // run against the independent rebuild whenever one exists.
  snapshots_[{release, snap->epoch}] =
      rebuilt.ok() ? *std::move(rebuilt) : snap;
}

size_t Oracle::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.size();
}

Oracle::Verdict Oracle::Verify(const std::string& release,
                               const std::vector<QuerySpec>& specs,
                               const BatchAnswer& answer,
                               std::string* detail) const {
  serve::SnapshotPtr snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = snapshots_.find({release, answer.epoch});
    if (it == snapshots_.end()) return Verdict::kUnknownEpoch;
    snap = it->second;
  }
  if (answer.answers.size() != specs.size()) {
    if (detail != nullptr) {
      *detail = "answer row count " + std::to_string(answer.answers.size()) +
                " != request query count " + std::to_string(specs.size());
    }
    return Verdict::kMismatch;
  }
  const Schema& schema = *snap->bundle.data.schema();
  for (size_t i = 0; i < specs.size(); ++i) {
    // Re-bind against the answered snapshot's own schema, exactly as the
    // service layer did.
    auto pred = Predicate::FromBindings(schema, specs[i].where);
    auto sa = schema.sensitive().domain.GetCode(specs[i].sa);
    if (!pred.ok() || !sa.ok()) {
      if (detail != nullptr) {
        *detail = "query " + std::to_string(i) +
                  " does not bind against the answered snapshot's schema";
      }
      return Verdict::kMismatch;
    }
    CountQuery q(schema.num_attributes());
    q.na_predicate = *std::move(pred);
    q.sa_code = *sa;
    const serve::Answer expected = serve::EvaluateUncached(*snap, q);
    const recpriv::client::AnswerRow& got = answer.answers[i];
    if (got.observed != expected.observed ||
        got.matched_size != expected.matched_size ||
        got.estimate != expected.estimate) {
      if (detail != nullptr) {
        *detail = "query " + std::to_string(i) + " @" + release + "/" +
                  std::to_string(answer.epoch) + ": got (" +
                  std::to_string(got.observed) + ", " +
                  std::to_string(got.matched_size) + ", " +
                  std::to_string(got.estimate) + ") expected (" +
                  std::to_string(expected.observed) + ", " +
                  std::to_string(expected.matched_size) + ", " +
                  std::to_string(expected.estimate) + ")";
      }
      return Verdict::kMismatch;
    }
  }
  return Verdict::kVerified;
}

}  // namespace recpriv::workload
