// Workload driver: executes a generated workload against a live serving
// stack and verifies every successful answer against the Oracle.
//
// The driver hosts the stack itself — ReleaseStore + QueryEngine (with
// whatever QueryEngineOptions the caller wants to exercise, including the
// micro-batching scheduler), and optionally a real TCP Server — then runs
// one thread per reader stream plus a writer thread for the churn stream.
// Reader threads talk through the public client::Client interface
// (InProcessClient, or LineProtocolClient over loopback TCP when
// options.over_tcp), so a scenario exercises exactly the code path a real
// consumer uses. Writer ops go through the store directly: publishing
// hands back the exact snapshot now served, which the writer registers
// with the oracle right after the swap; a reader that observes a fresh
// epoch before that registration lands self-registers the snapshot from
// the store's retention window — (name, epoch) identifies one immutable
// snapshot, whoever files it — so every answered epoch is verifiable.
//
// Error taxonomy under churn is part of the contract: a dropped release
// answers NOT_FOUND, an aged-out pin STALE_EPOCH; both are counted per
// code in the report, while transport failures and oracle mismatches are
// hard failures a test asserts to be zero.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "client/api.h"
#include "client/retry.h"
#include "common/result.h"
#include "net/fault_injector.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "workload/generator.h"

namespace recpriv::workload {

struct DriverOptions {
  /// Engine under test (threads, cache, micro_batch_window_us, ...;
  /// tenant_quota_qps > 0 turns on per-tenant admission).
  serve::QueryEngineOptions engine;
  size_t retained_epochs = serve::ReleaseStore::kDefaultRetainedEpochs;
  /// Verify every successful answer against the oracle (bit-exact).
  bool verify = true;
  /// Drive readers through a real TCP server over loopback instead of
  /// in-process clients.
  bool over_tcp = false;
  /// When non-empty, the store persists every publish as a binary snapshot
  /// under this directory and recovers any snapshots already there before
  /// the scenario's own publishes — the restart path of
  /// `recpriv_serve --snapshot-dir`, driven under workload.
  std::string snapshot_dir;
  /// When set, every reader's transport draws from this seeded fault
  /// schedule (net/fault_injector.h): byte-level faults over TCP, dead
  /// transports in-process. Pair it with `retry` or expect UNAVAILABLE in
  /// the report.
  std::shared_ptr<net::FaultInjector> fault_injector;
  /// Wrap every reader in a RetryingClient (client/retry.h): transient
  /// failures are retried with seeded backoff and a dead transport is
  /// rebuilt, so a faulted run still completes answer-clean.
  bool retry = false;
  recpriv::client::RetryPolicy retry_policy;
  /// When > 0 the writer republishes through the store's incremental path
  /// (serve::ReleaseStore::PublishIncremental): each publish op inserts
  /// this many fresh raw rows (MakeDeltaRows, seeded by the op's
  /// publish_seed) into the release's StreamingPublisher and republishes
  /// by delta merge, and the oracle verifies against an independently
  /// rebuilt index (Oracle::RegisterRebuilt). 0 keeps the legacy
  /// record-level full-perturb republish.
  size_t incremental_delta = 0;
  /// Incremental mode only: assemble each republished index by run merge
  /// (true) or by the bit-identical full radix-sort reference build
  /// (false) — the comparison arm CI runs with identical expected answers.
  bool incremental_merge = true;
};

/// Latency profile of one tenant's requests (successful or not), as
/// observed by the clients themselves.
struct TenantLatency {
  uint64_t requests = 0;
  uint64_t errors = 0;  ///< requests whose final outcome was an error
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// What one run did and found.
struct DriverReport {
  uint64_t requests = 0;   ///< query requests issued
  uint64_t queries = 0;    ///< count queries across those requests
  uint64_t publishes = 0;  ///< writer republishes (incl. the initial ones)
  uint64_t drops = 0;
  uint64_t verified = 0;       ///< answers that matched the oracle
  uint64_t mismatches = 0;     ///< answers that diverged — MUST stay 0
  uint64_t unknown_epochs = 0; ///< answered epoch never registered — MUST stay 0
  uint64_t hard_failures = 0;  ///< transport/setup failures — MUST stay 0
  /// Error responses by stable wire code name (e.g. "NOT_FOUND",
  /// "STALE_EPOCH") — expected under churn, asserted by scenario tests.
  std::map<std::string, uint64_t> errors;
  std::vector<std::string> mismatch_details;  ///< first few, for diagnosis
  double elapsed_seconds = 0.0;
  double requests_per_second = 0.0;
  double queries_per_second = 0.0;
  /// Scheduler counters when the engine ran with micro-batching.
  std::optional<recpriv::client::SchedulerStats> scheduler;
  /// Server-side admission counters when the engine ran with quotas.
  std::optional<recpriv::client::TenantStats> tenants;
  /// Client-observed latency per tenant id ("" = the default tenant),
  /// keyed the way requests declared themselves.
  std::map<std::string, TenantLatency> tenant_latency;
  /// Aggregated retry counters when options.retry was on.
  std::optional<recpriv::client::RetryStats> retry;
  /// The fault schedule's tally when options.fault_injector was set.
  std::optional<net::FaultStats> faults;
};

/// Executes `workload` (see file comment). Errors only on setup failure —
/// runtime trouble lands in the report.
Result<DriverReport> RunWorkload(const GeneratedWorkload& workload,
                                 const DriverOptions& options);

/// GenerateWorkload + optional record + RunWorkload. When `record_path` is
/// non-empty the generated workload is written there first (the artifact
/// ReadWorkload + RunWorkload replays identically).
Result<DriverReport> RunScenario(const ScenarioSpec& spec,
                                 const DriverOptions& options,
                                 const std::string& record_path = "");

}  // namespace recpriv::workload
