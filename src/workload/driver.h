// Workload driver: executes a generated workload against a live serving
// stack and verifies every successful answer against the Oracle.
//
// The driver hosts the stack itself — ReleaseStore + QueryEngine (with
// whatever QueryEngineOptions the caller wants to exercise, including the
// micro-batching scheduler), and optionally a real TCP Server — then runs
// one thread per reader stream plus a writer thread for the churn stream.
// Reader threads talk through the public client::Client interface
// (InProcessClient, or LineProtocolClient over loopback TCP when
// options.over_tcp), so a scenario exercises exactly the code path a real
// consumer uses. Writer ops go through the store directly: publishing
// hands back the exact snapshot now served, which the writer registers
// with the oracle right after the swap; a reader that observes a fresh
// epoch before that registration lands self-registers the snapshot from
// the store's retention window — (name, epoch) identifies one immutable
// snapshot, whoever files it — so every answered epoch is verifiable.
//
// Error taxonomy under churn is part of the contract: a dropped release
// answers NOT_FOUND, an aged-out pin STALE_EPOCH; both are counted per
// code in the report, while transport failures and oracle mismatches are
// hard failures a test asserts to be zero.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "client/api.h"
#include "common/result.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "workload/generator.h"

namespace recpriv::workload {

struct DriverOptions {
  /// Engine under test (threads, cache, micro_batch_window_us, ...).
  serve::QueryEngineOptions engine;
  size_t retained_epochs = serve::ReleaseStore::kDefaultRetainedEpochs;
  /// Verify every successful answer against the oracle (bit-exact).
  bool verify = true;
  /// Drive readers through a real TCP server over loopback instead of
  /// in-process clients.
  bool over_tcp = false;
  /// When non-empty, the store persists every publish as a binary snapshot
  /// under this directory and recovers any snapshots already there before
  /// the scenario's own publishes — the restart path of
  /// `recpriv_serve --snapshot-dir`, driven under workload.
  std::string snapshot_dir;
};

/// What one run did and found.
struct DriverReport {
  uint64_t requests = 0;   ///< query requests issued
  uint64_t queries = 0;    ///< count queries across those requests
  uint64_t publishes = 0;  ///< writer republishes (incl. the initial ones)
  uint64_t drops = 0;
  uint64_t verified = 0;       ///< answers that matched the oracle
  uint64_t mismatches = 0;     ///< answers that diverged — MUST stay 0
  uint64_t unknown_epochs = 0; ///< answered epoch never registered — MUST stay 0
  uint64_t hard_failures = 0;  ///< transport/setup failures — MUST stay 0
  /// Error responses by stable wire code name (e.g. "NOT_FOUND",
  /// "STALE_EPOCH") — expected under churn, asserted by scenario tests.
  std::map<std::string, uint64_t> errors;
  std::vector<std::string> mismatch_details;  ///< first few, for diagnosis
  double elapsed_seconds = 0.0;
  double requests_per_second = 0.0;
  double queries_per_second = 0.0;
  /// Scheduler counters when the engine ran with micro-batching.
  std::optional<recpriv::client::SchedulerStats> scheduler;
};

/// Executes `workload` (see file comment). Errors only on setup failure —
/// runtime trouble lands in the report.
Result<DriverReport> RunWorkload(const GeneratedWorkload& workload,
                                 const DriverOptions& options);

/// GenerateWorkload + optional record + RunWorkload. When `record_path` is
/// non-empty the generated workload is written there first (the artifact
/// ReadWorkload + RunWorkload replays identically).
Result<DriverReport> RunScenario(const ScenarioSpec& spec,
                                 const DriverOptions& options,
                                 const std::string& record_path = "");

}  // namespace recpriv::workload
