// Personal-group index (paper §3.2, §5 preprocessing) — row-oriented
// legacy layout.
//
// A *personal group* D(x1,...,xn) is the set of records agreeing on every
// public attribute. The paper's SPS algorithm sorts D by NA then SA to form
// all personal groups with per-SA-value frequencies; this index is exactly
// that sorted pass, materialized. It also serves aggregate groups: a
// predicate with wildcards matches a union of personal groups, and SA
// histograms add up.
//
// Scan-bound workloads (serving, query evaluation, pool generation) use the
// columnar FlatGroupIndex in table/flat_group_index.h instead; this layout
// remains for consumers that want per-group PersonalGroup objects (the
// violation audit, the anonymity checkers, the experiment harness). Both
// indexes sort groups in NA-lexicographic order, so group ids are
// interchangeable between them.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/predicate.h"
#include "table/schema.h"
#include "table/table.h"

namespace recpriv::table {

/// One personal group: its NA key, its rows, and its SA histogram.
struct PersonalGroup {
  /// Codes of the public attributes, in schema public-index order.
  std::vector<uint32_t> na_codes;
  /// Row indices of the group's records in the indexed table.
  std::vector<size_t> rows;
  /// Count of each SA value among the group's records (length m).
  std::vector<uint64_t> sa_counts;

  uint64_t size() const { return rows.size(); }

  /// Frequency (fraction) of SA value `sa` in the group.
  double Frequency(size_t sa) const {
    return rows.empty() ? 0.0
                        : static_cast<double>(sa_counts[sa]) /
                              static_cast<double>(rows.size());
  }

  /// Max over SA values of Frequency — the `f` of Eq. (10).
  double MaxFrequency() const;
};

/// Sort-based index of all personal groups of a table.
class GroupIndex {
 public:
  /// Builds the index with one O(|D| log |D|) sort pass (paper §5).
  static GroupIndex Build(const Table& t);

  const std::vector<PersonalGroup>& groups() const { return groups_; }
  size_t num_groups() const { return groups_.size(); }
  size_t num_records() const { return num_records_; }
  /// |D| / |G| as reported in Tables 4-5.
  double AverageGroupSize() const;

  /// Group ids whose NA key satisfies the NA conditions of `pred`
  /// (SA condition, if any, is ignored here — it selects histogram bins).
  std::vector<size_t> MatchingGroups(const Predicate& pred) const;

  /// Batched-evaluation entry point: fills `out` with the matching group
  /// ids, clearing it first. Reusing `out` across the queries of a batch
  /// amortizes the allocation that MatchingGroups pays per call — the
  /// query-evaluation and serving hot paths go through this.
  void MatchingGroupsInto(const Predicate& pred,
                          std::vector<size_t>& out) const;

  /// Group with exactly this NA key (public-index order), or NotFound.
  /// Groups come out of Build sorted by NA key, so this is a binary
  /// search: O(log |G|) key comparisons.
  Result<size_t> FindGroup(const std::vector<uint32_t>& na_codes) const;

  const SchemaPtr& schema() const { return schema_; }
  /// Attribute indices (schema order) of the public attributes.
  const std::vector<size_t>& public_indices() const { return public_idx_; }

 private:
  SchemaPtr schema_;
  std::vector<size_t> public_idx_;
  std::vector<PersonalGroup> groups_;
  size_t num_records_ = 0;
};

}  // namespace recpriv::table
