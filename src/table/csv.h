// CSV import/export so that real data files (e.g. the UCI ADULT extract)
// can be dropped in place of the synthetic generators.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace recpriv::table {

/// Options controlling CSV import.
struct CsvReadOptions {
  char delimiter = ',';
  bool has_header = true;
  /// Column names to keep, in the order they should appear in the schema;
  /// empty means keep all columns. Requires has_header when non-empty.
  std::vector<std::string> keep_columns;
  /// Name of the sensitive attribute among the kept columns.
  std::string sensitive_attribute;
  /// Rows containing this token in any kept cell are skipped (UCI ADULT
  /// marks missing values with "?"). Empty disables the filter.
  std::string missing_token = "?";
  /// Trim ASCII whitespace around each cell.
  bool trim_whitespace = true;
};

/// Reads a CSV file into a Table, building attribute dictionaries from the
/// data. Fails on ragged rows, unknown kept columns, or a missing/unkept
/// sensitive attribute.
Result<Table> ReadCsv(const std::string& path, const CsvReadOptions& options);

/// Parses CSV text (same semantics as ReadCsv; used by tests).
Result<Table> ReadCsvFromString(const std::string& text,
                                const CsvReadOptions& options);

/// Writes `t` as CSV with a header row of attribute names.
Status WriteCsv(const Table& t, const std::string& path, char delimiter = ',');

}  // namespace recpriv::table
