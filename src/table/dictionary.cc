#include "table/dictionary.h"

namespace recpriv::table {

Result<Dictionary> Dictionary::FromValues(
    const std::vector<std::string>& values) {
  Dictionary d;
  for (const auto& v : values) {
    if (d.Contains(v)) {
      return Status::AlreadyExists("duplicate dictionary value: " + v);
    }
    d.GetOrAdd(v);
  }
  return d;
}

uint32_t Dictionary::GetOrAdd(std::string_view value) {
  auto it = codes_.find(std::string(value));
  if (it != codes_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.emplace_back(value);
  codes_.emplace(values_.back(), code);
  return code;
}

Result<uint32_t> Dictionary::GetCode(std::string_view value) const {
  auto it = codes_.find(std::string(value));
  if (it == codes_.end()) {
    return Status::NotFound("dictionary value not found: " +
                            std::string(value));
  }
  return it->second;
}

bool Dictionary::Contains(std::string_view value) const {
  return codes_.count(std::string(value)) > 0;
}

Result<std::string> Dictionary::GetValue(uint32_t code) const {
  if (code >= values_.size()) {
    return Status::OutOfRange("dictionary code out of range: " +
                              std::to_string(code));
  }
  return values_[code];
}

}  // namespace recpriv::table
