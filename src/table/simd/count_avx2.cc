// AVX2 level of the fused count kernel: 8 groups per iteration, windowed
// match-then-accumulate.
//
// Matching takes the packed 64-bit key stream when the caller provides
// one ((key & mask) == want over two contiguous 256-bit loads per 8-group
// block — no gathers, and far less key traffic than the row-major
// na_codes matrix). Without packed keys, per 8-group block each bound
// (key column, code) pair gathers the 8 groups' codes on that column
// (stride n_pub) and compares against the broadcast code; the per-pair
// equality masks AND together into one 8-lane match mask, with an
// all-lanes-dead early exit so selective predicates cost one gather per
// block.
//
// Accumulation is deliberately NOT fused into the match block. The sums
//
//   observed     += sa_counts[g*m + sa]
//   matched_size += row_offsets[g+1] - row_offsets[g]
//
// read the histogram matrix at stride m*8 bytes on an irregular (matched-
// only) subset — on any release whose matrix has left L2, that is one
// full memory latency per matched group, and it dominates the query. So
// the kernel runs in windows: it first sweeps a window of groups
// collecting matched ids and issuing a prefetch for each id's histogram
// line the moment its match bit is known, then walks the collected ids
// accumulating from lines whose fetches have had the rest of the window's
// match work to complete behind. The miss cost overlaps across the whole
// window instead of serializing block by block (the old masked-gather
// form measured *slower* than scalar at CENSUS-300k scale for exactly
// that reason).
//
// Sums are unsigned-integer adds in ascending group order, so the result
// is bit-identical to the scalar reference regardless of this schedule; a
// scalar tail handles num_groups % 8.
//
// The function carries target("avx2") instead of the whole file being
// compiled with -mavx2: the compiler may only use AVX2 inside this one
// function, which is reached strictly behind the HostSupportsAvx2() check
// in dispatch.cc.

#include "table/simd/dispatch.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>
#include <limits>

namespace recpriv::table::simd {

__attribute__((target("avx2"))) void FusedCountSumsAvx2(
    const FusedCountArgs& args, uint64_t* observed, uint64_t* matched_size) {
  const size_t n_pub = args.n_pub;
  const size_t m = args.m;
  // The 32-bit NA-code gather indexes up to (num_groups-1)*n_pub + k; an
  // index column that large cannot happen for any real release (it means
  // >2^31 NA codes, an 8 GiB column), but degrade to scalar rather than
  // trust the impossible.
  if (args.num_groups * n_pub >
      size_t(std::numeric_limits<int32_t>::max())) {
    FusedCountSumsScalar(args, observed, matched_size);
    return;
  }
  const uint32_t* nk = args.na_codes.data();
  const uint64_t* counts = args.sa_counts.data();
  const uint64_t* offsets = args.row_offsets.data();
  const size_t sa = size_t(args.sa);

  // Matched group ids of the current window. Sized so the id buffer stays
  // a few pages of stack while giving each prefetch thousands of cycles
  // of match work to complete behind.
  constexpr size_t kWindowGroups = 2048;
  uint32_t matched[kWindowGroups];

  // Lane l of a block handles group g+l; its NA-code row starts at
  // (g+l)*n_pub, so the per-lane index offsets are l*n_pub.
  const __m256i lane_row = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(int32_t(n_pub)));

  uint64_t obs = 0;
  uint64_t size = 0;
  size_t g = 0;
  const size_t vec_end = args.num_groups & ~size_t(7);
  if (!args.packed_keys.empty()) {
    // Packed-key match: one contiguous 64-bit stream, (key & mask) ==
    // want, 8 groups per two 256-bit loads — no gathers at all, and 2.5x
    // less key traffic than the row-major na_codes matrix on a 5-column
    // schema.
    const uint64_t* pk = args.packed_keys.data();
    const __m256i vmask = _mm256_set1_epi64x(int64_t(args.packed_mask));
    const __m256i vwant = _mm256_set1_epi64x(int64_t(args.packed_want));
    while (g < vec_end) {
      const size_t window_end = std::min(vec_end, g + kWindowGroups);
      size_t n = 0;
      for (; g < window_end; g += 8) {
        const __m256i k0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pk + g));
        const __m256i k1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(pk + g + 4));
        const __m256i m0 =
            _mm256_cmpeq_epi64(_mm256_and_si256(k0, vmask), vwant);
        const __m256i m1 =
            _mm256_cmpeq_epi64(_mm256_and_si256(k1, vmask), vwant);
        uint32_t lanes =
            uint32_t(_mm256_movemask_pd(_mm256_castsi256_pd(m0))) |
            (uint32_t(_mm256_movemask_pd(_mm256_castsi256_pd(m1))) << 4);
        while (lanes != 0) {
          const uint32_t l = uint32_t(__builtin_ctz(lanes));
          lanes &= lanes - 1;
          const uint32_t id = uint32_t(g) + l;
          matched[n++] = id;
          _mm_prefetch(
              reinterpret_cast<const char*>(counts + size_t(id) * m + sa),
              _MM_HINT_T0);
          _mm_prefetch(reinterpret_cast<const char*>(offsets + id),
                       _MM_HINT_T0);
        }
      }
      for (size_t i = 0; i < n; ++i) {
        const size_t id = matched[i];
        obs += counts[id * m + sa];
        size += offsets[id + 1] - offsets[id];
      }
    }
  } else
  while (g < vec_end) {
    const size_t window_end = std::min(vec_end, g + kWindowGroups);
    size_t n = 0;
    for (; g < window_end; g += 8) {
      __m256i match = _mm256_set1_epi32(-1);
      const __m256i row0 = _mm256_add_epi32(
          lane_row, _mm256_set1_epi32(int32_t(g * n_pub)));
      for (const auto& [k, code] : args.bound) {
        const __m256i idx = _mm256_add_epi32(row0,
                                             _mm256_set1_epi32(int32_t(k)));
        const __m256i codes = _mm256_i32gather_epi32(
            reinterpret_cast<const int*>(nk), idx, 4);
        match = _mm256_and_si256(
            match,
            _mm256_cmpeq_epi32(codes, _mm256_set1_epi32(int32_t(code))));
        if (_mm256_testz_si256(match, match)) break;
      }
      if (_mm256_testz_si256(match, match)) continue;
      uint32_t lanes =
          uint32_t(_mm256_movemask_ps(_mm256_castsi256_ps(match)));
      while (lanes != 0) {
        const uint32_t l = uint32_t(__builtin_ctz(lanes));
        lanes &= lanes - 1;
        const uint32_t id = uint32_t(g) + l;
        matched[n++] = id;
        _mm_prefetch(
            reinterpret_cast<const char*>(counts + size_t(id) * m + sa),
            _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(offsets + id),
                     _MM_HINT_T0);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t id = matched[i];
      obs += counts[id * m + sa];
      size += offsets[id + 1] - offsets[id];
    }
  }

  // Scalar tail: the last num_groups % 8 groups.
  for (; g < args.num_groups; ++g) {
    const uint32_t* gk = nk + g * n_pub;
    bool group_matches = true;
    for (const auto& [k, code] : args.bound) {
      if (gk[k] != code) {
        group_matches = false;
        break;
      }
    }
    if (group_matches) {
      obs += counts[g * m + sa];
      size += offsets[g + 1] - offsets[g];
    }
  }
  *observed = obs;
  *matched_size = size;
}

}  // namespace recpriv::table::simd

#else  // non-x86: the symbol must exist for dispatch.cc, but it is never
       // selected (HostSupportsAvx2() is false), so scalar semantics are
       // both safe and correct.

namespace recpriv::table::simd {

void FusedCountSumsAvx2(const FusedCountArgs& args, uint64_t* observed,
                        uint64_t* matched_size) {
  FusedCountSumsScalar(args, observed, matched_size);
}

}  // namespace recpriv::table::simd

#endif
