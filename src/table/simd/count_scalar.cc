// Portable reference implementation of the fused count kernel. This is the
// semantics contract: every SIMD level must produce bit-identical
// (observed, matched_size) for the same FusedCountArgs.

#include "table/simd/dispatch.h"

namespace recpriv::table::simd {

void FusedCountSumsScalar(const FusedCountArgs& args, uint64_t* observed,
                          uint64_t* matched_size) {
  const uint32_t* nk = args.na_codes.data();
  const uint64_t* counts = args.sa_counts.data();
  const uint64_t* offsets = args.row_offsets.data();
  uint64_t obs = 0, size = 0;
  for (size_t g = 0; g < args.num_groups; ++g) {
    const uint32_t* gk = nk + g * args.n_pub;
    bool match = true;
    for (const auto& [k, code] : args.bound) {
      if (gk[k] != code) {
        match = false;
        break;
      }
    }
    if (match) {
      obs += counts[g * args.m + args.sa];
      size += offsets[g + 1] - offsets[g];
    }
  }
  *observed = obs;
  *matched_size = size;
}

}  // namespace recpriv::table::simd
