#include "table/simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.h"

namespace recpriv::table::simd {

namespace {

/// The override set via SetDispatchLevel; kAuto means "resolve from host".
std::atomic<DispatchLevel> g_requested{DispatchLevel::kAuto};
/// One-time warning latch for an unparseable RECPRIV_SIMD value.
std::atomic<bool> g_env_warned{false};

bool HostSupportsNeon() {
#if defined(__aarch64__) || defined(__ARM_NEON)
  return true;
#else
  return false;
#endif
}

/// kAuto -> the best level the host supports; RECPRIV_SIMD, when set,
/// replaces kAuto as the request (so a programmatic SetDispatchLevel still
/// wins over the environment).
DispatchLevel ResolveAuto() {
  if (const char* env = std::getenv("RECPRIV_SIMD")) {
    const Result<DispatchLevel> parsed = ParseDispatchLevel(env);
    if (parsed.ok()) {
      if (*parsed != DispatchLevel::kAuto) return *parsed;
    } else if (!g_env_warned.exchange(true)) {
      RECPRIV_LOG(Warning) << "ignoring RECPRIV_SIMD='" << env
                           << "': " << parsed.status().message();
    }
  }
  if (HostSupportsAvx2()) return DispatchLevel::kAvx2;
  if (HostSupportsNeon()) return DispatchLevel::kNeon;
  return DispatchLevel::kScalar;
}

/// Degrades a requested level to one the host can actually execute.
DispatchLevel Executable(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kAvx2:
      return HostSupportsAvx2() ? level : DispatchLevel::kScalar;
    case DispatchLevel::kNeon:
      return HostSupportsNeon() ? level : DispatchLevel::kScalar;
    default:
      return DispatchLevel::kScalar;
  }
}

}  // namespace

const char* LevelName(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kAuto: return "auto";
    case DispatchLevel::kScalar: return "scalar";
    case DispatchLevel::kAvx2: return "avx2";
    case DispatchLevel::kNeon: return "neon";
  }
  return "unknown";
}

Result<DispatchLevel> ParseDispatchLevel(std::string_view name) {
  if (name == "auto") return DispatchLevel::kAuto;
  if (name == "scalar") return DispatchLevel::kScalar;
  if (name == "avx2") return DispatchLevel::kAvx2;
  if (name == "neon") return DispatchLevel::kNeon;
  return Status::InvalidArgument(
      "unknown SIMD dispatch level '" + std::string(name) +
      "' (expected auto, scalar, avx2, or neon)");
}

bool HostSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

DispatchLevel ActiveLevel() {
  const DispatchLevel requested = g_requested.load(std::memory_order_relaxed);
  return Executable(requested == DispatchLevel::kAuto ? ResolveAuto()
                                                      : requested);
}

void SetDispatchLevel(DispatchLevel level) {
  g_requested.store(level, std::memory_order_relaxed);
}

void FusedCountSums(const FusedCountArgs& args, uint64_t* observed,
                    uint64_t* matched_size) {
  switch (ActiveLevel()) {
    case DispatchLevel::kAvx2:
      FusedCountSumsAvx2(args, observed, matched_size);
      return;
    case DispatchLevel::kNeon:
      FusedCountSumsNeon(args, observed, matched_size);
      return;
    default:
      FusedCountSumsScalar(args, observed, matched_size);
      return;
  }
}

}  // namespace recpriv::table::simd
