// Runtime SIMD dispatch for the fused count kernel (paper §5's dominant
// serving cost: predicate-match + SA-histogram-column sum over the flat
// group index's columns).
//
// Levels:
//   kScalar  portable reference implementation — always available, and the
//            semantics every other level must reproduce bit-identically
//   kAvx2    x86-64 AVX2: 8 groups per iteration, gathered NA-code
//            compares, masked 64-bit gathers for the histogram column
//   kNeon    aarch64 stub — currently forwards to scalar (the columns and
//            contract are in place; the intrinsics are future work)
//
// Bit-identity across levels is by construction: every kernel computes the
// same two uint64 sums with integer arithmetic only, and unsigned addition
// is associative/commutative mod 2^64 — no float rounding, no
// order-dependence. tests/simd_kernel_test.cc enforces this differentially.
//
// Selection: the first call resolves kAuto from the host CPU, overridable
// by the RECPRIV_SIMD environment variable ("auto", "scalar", "avx2",
// "neon") or programmatically via SetDispatchLevel (tests, benches). A
// requested level the host cannot run falls back to scalar rather than
// faulting.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <utility>

#include "common/result.h"

namespace recpriv::table::simd {

enum class DispatchLevel { kAuto, kScalar, kAvx2, kNeon };

/// Human-readable level name ("auto", "scalar", "avx2", "neon").
const char* LevelName(DispatchLevel level);

/// Parses a level name (case-sensitive, as documented for RECPRIV_SIMD).
Result<DispatchLevel> ParseDispatchLevel(std::string_view name);

/// The level the fused kernel will actually run at: never kAuto, never a
/// level the host cannot execute. Resolved once (RECPRIV_SIMD consulted)
/// unless overridden via SetDispatchLevel.
DispatchLevel ActiveLevel();

/// Overrides the dispatch level (kAuto re-resolves from the host CPU and
/// environment). An unsupported level degrades to scalar at call time.
/// Not thread-safe against in-flight kernels — set it during test/bench
/// setup, not while a serving pool is live.
void SetDispatchLevel(DispatchLevel level);

/// True when the host can execute AVX2 kernels.
bool HostSupportsAvx2();

/// Inputs of the fused count kernel, as raw columns — the kernel is a free
/// function over spans so every level (and the differential test) sees
/// exactly the same data layout as FlatGroupIndex::AnswerInto.
struct FusedCountArgs {
  /// Group NA keys, row-major: num_groups x n_pub.
  std::span<const uint32_t> na_codes;
  /// SA histograms, row-major: num_groups x m.
  std::span<const uint64_t> sa_counts;
  /// CSR row offsets: num_groups + 1.
  std::span<const uint64_t> row_offsets;
  size_t num_groups = 0;
  size_t n_pub = 0;
  size_t m = 0;
  /// Histogram column to sum (the query's SA code), < m.
  uint32_t sa = 0;
  /// Bound (key column, code) pairs of the predicate; a group matches when
  /// every pair agrees with its NA key.
  std::span<const std::pair<uint32_t, uint32_t>> bound;
  /// Optional packed-key representation of the same match (the flat
  /// index's sorted 64-bit keys): when non-empty, group g matches iff
  /// (packed_keys[g] & packed_mask) == packed_want. The caller guarantees
  /// this is equivalent to the bound-pair compare over na_codes; levels
  /// may match through either representation (the packed one replaces d
  /// strided gathers per block with one contiguous 64-bit stream).
  std::span<const uint64_t> packed_keys;
  uint64_t packed_mask = 0;
  uint64_t packed_want = 0;
};

/// Accumulates observed += sum of sa_counts[g*m + sa] and matched_size +=
/// group size over all matching groups, at ActiveLevel(). `*observed` and
/// `*matched_size` are overwritten, not accumulated into.
void FusedCountSums(const FusedCountArgs& args, uint64_t* observed,
                    uint64_t* matched_size);

/// Single-level entry points, exposed for the differential kernel test.
/// FusedCountSumsAvx2 must only be called when HostSupportsAvx2().
void FusedCountSumsScalar(const FusedCountArgs& args, uint64_t* observed,
                          uint64_t* matched_size);
void FusedCountSumsAvx2(const FusedCountArgs& args, uint64_t* observed,
                        uint64_t* matched_size);
void FusedCountSumsNeon(const FusedCountArgs& args, uint64_t* observed,
                        uint64_t* matched_size);

}  // namespace recpriv::table::simd
