// NEON level of the fused count kernel — currently a stub that forwards to
// the scalar reference. The dispatch plumbing, level negotiation, and the
// differential test all treat kNeon as a first-class level already, so
// landing real aarch64 intrinsics later is a one-file change with the
// bit-identity contract pre-enforced.

#include "table/simd/dispatch.h"

namespace recpriv::table::simd {

void FusedCountSumsNeon(const FusedCountArgs& args, uint64_t* observed,
                        uint64_t* matched_size) {
  FusedCountSumsScalar(args, observed, matched_size);
}

}  // namespace recpriv::table::simd
