#include "table/predicate.h"

namespace recpriv::table {

Result<Predicate> Predicate::FromBindings(
    const Schema& schema,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  Predicate p(schema.num_attributes());
  for (const auto& [name, value] : bindings) {
    RECPRIV_ASSIGN_OR_RETURN(size_t attr, schema.IndexOf(name));
    RECPRIV_ASSIGN_OR_RETURN(uint32_t code,
                             schema.attribute(attr).domain.GetCode(value));
    p.Bind(attr, code);
  }
  return p;
}

size_t Predicate::num_bound() const {
  size_t n = 0;
  for (const auto& c : conditions_) n += c.has_value();
  return n;
}

bool Predicate::Matches(const Table& t, size_t row) const {
  for (size_t a = 0; a < conditions_.size(); ++a) {
    if (conditions_[a] && t.at(row, a) != *conditions_[a]) return false;
  }
  return true;
}

std::vector<size_t> Predicate::MatchingRows(const Table& t) const {
  std::vector<size_t> out;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (Matches(t, r)) out.push_back(r);
  }
  return out;
}

uint64_t Predicate::CountMatches(const Table& t) const {
  uint64_t n = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) n += Matches(t, r);
  return n;
}

std::string Predicate::ToString(const Schema& schema) const {
  std::string out;
  for (size_t a = 0; a < conditions_.size(); ++a) {
    if (!out.empty()) out += " AND ";
    out += schema.attribute(a).name;
    out += "=";
    if (conditions_[a]) {
      out += schema.attribute(a).domain.GetValue(*conditions_[a]).ValueOr("?");
    } else {
      out += "*";
    }
  }
  return out;
}

}  // namespace recpriv::table
