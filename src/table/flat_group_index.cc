#include "table/flat_group_index.h"

#include <algorithm>
#include <bit>
#include <iterator>
#include <numeric>
#include <utility>

#include "common/logging.h"
#include "table/simd/dispatch.h"

namespace recpriv::table {

namespace {

/// One row's packed NA key paired with its row id.
struct KeyRow {
  uint64_t key;
  uint32_t row;
};

/// LSD radix sort of `a` by key, one byte per pass, skipping passes whose
/// byte is constant and everything above `total_bits`. Stable, so rows stay
/// ascending within each group. Small inputs fall back to std::sort.
void RadixSortKeys(std::vector<KeyRow>& a, uint32_t total_bits) {
  const size_t n = a.size();
  if (n < 2 || total_bits == 0) return;
  if (n < 4096) {
    std::sort(a.begin(), a.end(), [](const KeyRow& x, const KeyRow& y) {
      return x.key != y.key ? x.key < y.key : x.row < y.row;
    });
    return;
  }
  std::vector<KeyRow> b(n);
  const uint32_t passes = (total_bits + 7) / 8;
  for (uint32_t p = 0; p < passes; ++p) {
    const uint32_t shift = p * 8;
    size_t count[256] = {0};
    for (const KeyRow& kr : a) ++count[(kr.key >> shift) & 0xFF];
    if (count[(a[0].key >> shift) & 0xFF] == n) continue;  // constant byte
    size_t pos[256];
    size_t acc = 0;
    for (size_t i = 0; i < 256; ++i) {
      pos[i] = acc;
      acc += count[i];
    }
    for (const KeyRow& kr : a) b[pos[(kr.key >> shift) & 0xFF]++] = kr;
    a.swap(b);
  }
}

/// The one thread-local scratch left in this file: backs the scratch-less
/// kernel overloads for cold callers (tests, analysis tools, one-shot
/// evaluation). Hot paths — the serving engine, pool generation — own an
/// AnswerScratch and thread it through explicitly, so this instance only
/// ever holds cold-path working sets and its never-shrinking capacity is
/// bounded by them.
AnswerScratch& SharedScratch() {
  static thread_local AnswerScratch scratch;
  return scratch;
}

}  // namespace

bool FlatGroupIndex::DeriveKeyLayout(bool want_packed) {
  public_idx_ = schema_->public_indices();
  m_ = schema_->sa_domain_size();
  const size_t n_pub = public_idx_.size();

  // Bit widths of the public domains; their sum decides the key layout.
  key_bits_.assign(n_pub, 0);
  uint32_t total_bits = 0;
  for (size_t k = 0; k < n_pub; ++k) {
    const size_t dom = schema_->attribute(public_idx_[k]).domain.size();
    key_bits_[k] = dom <= 1 ? 0u : uint32_t(std::bit_width(uint64_t(dom - 1)));
    total_bits += key_bits_[k];
  }
  packed_ = want_packed && total_bits <= 64;
  if (packed_) {
    // Attribute 0 occupies the highest bits so that numeric key order is
    // the NA-lexicographic order of GroupIndex::Build.
    key_shifts_.assign(n_pub, 0);
    uint32_t below = total_bits;
    for (size_t k = 0; k < n_pub; ++k) {
      below -= key_bits_[k];
      key_shifts_[k] = below;
    }
  }
  return packed_ == want_packed;
}

void FlatGroupIndex::BindOwnedStorage() {
  packed_keys_ = packed_keys_own_;
  na_codes_ = na_codes_own_;
  sa_counts_ = sa_counts_own_;
  row_offsets_ = row_offsets_own_;
  row_values_ = row_values_own_;
}

FlatGroupIndex FlatGroupIndex::Build(const Table& t, KeyMode mode) {
  FlatGroupIndex idx;
  idx.schema_ = t.schema();
  idx.DeriveKeyLayout(mode == KeyMode::kAuto);
  idx.num_records_ = t.num_rows();

  const size_t n = t.num_rows();
  const size_t n_pub = idx.public_idx_.size();
  uint32_t total_bits = 0;
  for (const uint32_t b : idx.key_bits_) total_bits += b;

  // Raw column pointers: the build touches each public column once to pack
  // keys, instead of gathering per comparison like the legacy sort.
  std::vector<const uint32_t*> cols(n_pub);
  for (size_t k = 0; k < n_pub; ++k) {
    cols[k] = t.column(idx.public_idx_[k]).data();
  }
  const uint32_t* sa_col = t.column(t.schema()->sensitive_index()).data();

  idx.row_values_own_.resize(n);
  idx.row_offsets_own_.push_back(0);
  idx.na_codes_own_.reserve(n_pub * 16);

  auto open_group = [&](uint32_t first_row) {
    for (size_t k = 0; k < n_pub; ++k) {
      idx.na_codes_own_.push_back(cols[k][first_row]);
    }
    idx.sa_counts_own_.resize(idx.sa_counts_own_.size() + idx.m_, 0);
  };
  auto add_row = [&](size_t pos, uint32_t row) {
    idx.row_values_own_[pos] = row;
    const uint32_t sa = sa_col[row];
    RECPRIV_DCHECK(sa < idx.m_);
    ++idx.sa_counts_own_[idx.sa_counts_own_.size() - idx.m_ + sa];
  };

  if (idx.packed_) {
    std::vector<KeyRow> kr(n);
    for (size_t r = 0; r < n; ++r) {
      uint64_t key = 0;
      for (size_t k = 0; k < n_pub; ++k) {
        if (idx.key_bits_[k] == 0) continue;
        key |= uint64_t(cols[k][r]) << idx.key_shifts_[k];
      }
      kr[r] = KeyRow{key, uint32_t(r)};
    }
    RadixSortKeys(kr, total_bits);
    for (size_t i = 0; i < n;) {
      size_t j = i + 1;
      while (j < n && kr[j].key == kr[i].key) ++j;
      open_group(kr[i].row);
      idx.packed_keys_own_.push_back(kr[i].key);
      for (size_t r = i; r < j; ++r) add_row(r, kr[r].row);
      idx.row_offsets_own_.push_back(j);
      i = j;
    }
  } else {
    // Wide path: contiguous row-major keys, lexicographic index sort. The
    // stable sort keeps rows ascending within each group, matching the
    // radix path.
    std::vector<uint32_t> wide(n * n_pub);
    for (size_t r = 0; r < n; ++r) {
      for (size_t k = 0; k < n_pub; ++k) wide[r * n_pub + k] = cols[k][r];
    }
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    auto key_less = [&](uint32_t x, uint32_t y) {
      const uint32_t* kx = wide.data() + size_t(x) * n_pub;
      const uint32_t* ky = wide.data() + size_t(y) * n_pub;
      for (size_t k = 0; k < n_pub; ++k) {
        if (kx[k] != ky[k]) return kx[k] < ky[k];
      }
      return false;
    };
    auto key_equal = [&](uint32_t x, uint32_t y) {
      return std::equal(wide.data() + size_t(x) * n_pub,
                        wide.data() + size_t(x + 1) * n_pub,
                        wide.data() + size_t(y) * n_pub);
    };
    std::stable_sort(order.begin(), order.end(), key_less);
    for (size_t i = 0; i < n;) {
      size_t j = i + 1;
      while (j < n && key_equal(order[i], order[j])) ++j;
      open_group(order[i]);
      for (size_t r = i; r < j; ++r) add_row(r, order[r]);
      idx.row_offsets_own_.push_back(j);
      i = j;
    }
  }
  idx.num_groups_ = idx.row_offsets_own_.size() - 1;
  idx.BindOwnedStorage();
  return idx;
}

Result<FlatGroupIndex> FlatGroupIndex::FromStorage(SchemaPtr schema,
                                                   const Storage& s) {
  if (schema == nullptr) {
    return Status::DataLoss("snapshot index: null schema");
  }
  FlatGroupIndex idx;
  idx.schema_ = std::move(schema);
  if (!idx.DeriveKeyLayout(s.packed)) {
    return Status::DataLoss(
        "snapshot index: packed key layout does not fit the schema's "
        "public domains");
  }
  const size_t n_pub = idx.public_idx_.size();
  const size_t m = idx.m_;
  const uint64_t g = s.num_groups;
  const uint64_t n = s.num_records;
  idx.num_groups_ = size_t(g);
  idx.num_records_ = size_t(n);

  // Section sizes must agree with the manifest's dimensions exactly.
  if (s.na_codes.size() != g * n_pub) {
    return Status::DataLoss("snapshot index: na_codes size mismatch");
  }
  if (s.sa_counts.size() != g * m) {
    return Status::DataLoss("snapshot index: sa_counts size mismatch");
  }
  if (s.row_offsets.size() != g + 1) {
    return Status::DataLoss("snapshot index: row_offsets size mismatch");
  }
  if (s.row_values.size() != n) {
    return Status::DataLoss("snapshot index: row_values size mismatch");
  }
  if (s.packed_keys.size() != (s.packed ? g : 0)) {
    return Status::DataLoss("snapshot index: packed_keys size mismatch");
  }

  // NA codes must lie inside their attribute domains (the posting index
  // and FindGroup index by code) and group keys must be strictly
  // ascending in NA-lexicographic order (binary search depends on it).
  for (size_t k = 0; k < n_pub; ++k) {
    const uint32_t dom =
        uint32_t(idx.schema_->attribute(idx.public_idx_[k]).domain.size());
    for (uint64_t gi = 0; gi < g; ++gi) {
      if (s.na_codes[gi * n_pub + k] >= dom) {
        return Status::DataLoss("snapshot index: NA code outside its domain");
      }
    }
  }
  for (uint64_t gi = 0; gi + 1 < g; ++gi) {
    const uint32_t* a = s.na_codes.data() + gi * n_pub;
    const uint32_t* b = a + n_pub;
    if (!std::lexicographical_compare(a, a + n_pub, b, b + n_pub)) {
      return Status::DataLoss("snapshot index: group keys not ascending");
    }
  }
  if (s.packed) {
    // Packed keys must be exactly the packs of the NA-code rows; the
    // ascending check above then makes them strictly sorted too.
    for (uint64_t gi = 0; gi < g; ++gi) {
      uint64_t key = 0;
      if (!idx.PackKey({s.na_codes.data() + gi * n_pub, n_pub}, &key) ||
          key != s.packed_keys[gi]) {
        return Status::DataLoss(
            "snapshot index: packed key disagrees with NA codes");
      }
    }
  }

  // CSR offsets: zero-based, monotone, covering all records.
  if (g == 0 ? (s.row_offsets[0] != 0 || n != 0)
             : (s.row_offsets[0] != 0 || s.row_offsets[g] != n)) {
    return Status::DataLoss("snapshot index: CSR offsets do not cover rows");
  }
  for (uint64_t gi = 0; gi < g; ++gi) {
    if (s.row_offsets[gi] >= s.row_offsets[gi + 1]) {
      return Status::DataLoss("snapshot index: empty or descending group");
    }
  }

  // Row values must be a permutation of [0, n) — a duplicated or
  // out-of-range row would silently distort every count answer.
  std::vector<bool> seen(size_t(n), false);
  for (const uint32_t r : s.row_values) {
    if (r >= n || seen[r]) {
      return Status::DataLoss("snapshot index: rows are not a permutation");
    }
    seen[r] = true;
  }

  // Each histogram row must sum to its group's size.
  for (uint64_t gi = 0; gi < g; ++gi) {
    uint64_t sum = 0;
    for (size_t sa = 0; sa < m; ++sa) sum += s.sa_counts[gi * m + sa];
    if (sum != s.row_offsets[gi + 1] - s.row_offsets[gi]) {
      return Status::DataLoss(
          "snapshot index: SA histogram disagrees with group size");
    }
  }

  idx.packed_keys_ = s.packed_keys;
  idx.na_codes_ = s.na_codes;
  idx.sa_counts_ = s.sa_counts;
  idx.row_offsets_ = s.row_offsets;
  idx.row_values_ = s.row_values;
  return idx;
}

Result<FlatGroupIndex> FlatGroupIndex::MergeRuns(SchemaPtr schema,
                                                 const GroupRun& base,
                                                 const GroupRun& overlay,
                                                 KeyMode mode) {
  if (schema == nullptr) {
    return Status::InvalidArgument("MergeRuns: null schema");
  }
  FlatGroupIndex idx;
  idx.schema_ = std::move(schema);
  idx.DeriveKeyLayout(mode == KeyMode::kAuto);
  const size_t n_pub = idx.public_idx_.size();
  const size_t m = idx.m_;

  // Both runs are caller-assembled (the overlay from freshly perturbed
  // histograms, the base possibly from borrowed index sections), so their
  // invariants are re-checked before any section is trusted: consistent
  // sizes, in-domain codes, strictly ascending keys.
  for (const GroupRun* run : {&base, &overlay}) {
    if (run->na_codes.size() != run->num_groups * n_pub ||
        run->sa_counts.size() != run->num_groups * m) {
      return Status::InvalidArgument(
          "MergeRuns: run sections disagree with the group count");
    }
    for (size_t k = 0; k < n_pub; ++k) {
      const uint32_t dom =
          uint32_t(idx.schema_->attribute(idx.public_idx_[k]).domain.size());
      for (uint64_t gi = 0; gi < run->num_groups; ++gi) {
        if (run->na_codes[gi * n_pub + k] >= dom) {
          return Status::InvalidArgument(
              "MergeRuns: NA code outside its domain");
        }
      }
    }
    for (uint64_t gi = 0; gi + 1 < run->num_groups; ++gi) {
      const uint32_t* a = run->na_codes.data() + gi * n_pub;
      const uint32_t* b = a + n_pub;
      if (!std::lexicographical_compare(a, a + n_pub, b, b + n_pub)) {
        return Status::InvalidArgument(
            "MergeRuns: run keys not strictly ascending");
      }
    }
  }

  auto key_at = [n_pub](const GroupRun& run, uint64_t gi) {
    return run.na_codes.data() + gi * n_pub;
  };
  auto lex_cmp = [n_pub](const uint32_t* a, const uint32_t* b) {
    for (size_t k = 0; k < n_pub; ++k) {
      if (a[k] != b[k]) return a[k] < b[k] ? -1 : 1;
    }
    return 0;
  };

  idx.row_offsets_own_.push_back(0);
  const size_t expect_groups = size_t(base.num_groups + overlay.num_groups);
  idx.na_codes_own_.reserve(expect_groups * n_pub);
  idx.sa_counts_own_.reserve(expect_groups * m);
  auto emit = [&](const GroupRun& run, uint64_t gi) {
    const uint64_t* hist = run.sa_counts.data() + gi * m;
    uint64_t size = 0;
    for (size_t sa = 0; sa < m; ++sa) size += hist[sa];
    if (size == 0) return;  // tombstone: the group vanishes from the output
    const uint32_t* key = key_at(run, gi);
    if (idx.packed_) {
      uint64_t packed = 0;
      // Cannot fail: the domain check above bounds every code by its
      // attribute's bit field.
      const bool fits = idx.PackKey({key, n_pub}, &packed);
      RECPRIV_DCHECK(fits);
      (void)fits;
      idx.packed_keys_own_.push_back(packed);
    }
    idx.na_codes_own_.insert(idx.na_codes_own_.end(), key, key + n_pub);
    idx.sa_counts_own_.insert(idx.sa_counts_own_.end(), hist, hist + m);
    idx.row_offsets_own_.push_back(idx.row_offsets_own_.back() + size);
  };

  uint64_t i = 0, j = 0;
  while (i < base.num_groups || j < overlay.num_groups) {
    int cmp;
    if (i == base.num_groups) {
      cmp = 1;
    } else if (j == overlay.num_groups) {
      cmp = -1;
    } else {
      cmp = lex_cmp(key_at(base, i), key_at(overlay, j));
    }
    if (cmp < 0) {
      emit(base, i);
      ++i;
    } else {
      emit(overlay, j);  // on a collision the overlay replaces the base group
      ++j;
      if (cmp == 0) ++i;
    }
  }

  idx.num_groups_ = idx.row_offsets_own_.size() - 1;
  idx.num_records_ = size_t(idx.row_offsets_own_.back());
  idx.row_values_own_.resize(idx.num_records_);
  std::iota(idx.row_values_own_.begin(), idx.row_values_own_.end(), 0u);
  idx.BindOwnedStorage();
  return idx;
}

double FlatGroupIndex::AverageGroupSize() const {
  if (num_groups_ == 0) return 0.0;
  return static_cast<double>(num_records_) / static_cast<double>(num_groups_);
}

double FlatGroupIndex::Frequency(size_t g, size_t sa) const {
  const uint64_t size = group_size(g);
  return size == 0 ? 0.0
                   : static_cast<double>(sa_count(g, sa)) /
                         static_cast<double>(size);
}

double FlatGroupIndex::MaxFrequency(size_t g) const {
  const uint64_t size = group_size(g);
  if (size == 0) return 0.0;
  uint64_t max_count = 0;
  for (uint64_t c : sa_counts(g)) max_count = std::max(max_count, c);
  return static_cast<double>(max_count) / static_cast<double>(size);
}

bool FlatGroupIndex::PackKey(std::span<const uint32_t> na,
                             uint64_t* key) const {
  uint64_t k = 0;
  for (size_t i = 0; i < na.size(); ++i) {
    if (key_bits_[i] == 0) {
      if (na[i] != 0) return false;  // single-value domain: only code 0
      continue;
    }
    if ((uint64_t(na[i]) >> key_bits_[i]) != 0) return false;  // overflow
    k |= uint64_t(na[i]) << key_shifts_[i];
  }
  *key = k;
  return true;
}

int FlatGroupIndex::CompareKeyAt(size_t g,
                                 std::span<const uint32_t> na) const {
  const uint32_t* gk = na_codes_.data() + g * public_idx_.size();
  for (size_t k = 0; k < na.size(); ++k) {
    if (gk[k] != na[k]) return gk[k] < na[k] ? -1 : 1;
  }
  return 0;
}

Result<size_t> FlatGroupIndex::FindGroup(
    std::span<const uint32_t> na_codes) const {
  if (na_codes.size() != public_idx_.size() || num_groups_ == 0) {
    return Status::NotFound("no personal group with the given NA key");
  }
  if (packed_) {
    uint64_t key = 0;
    if (PackKey(na_codes, &key)) {
      const auto it =
          std::lower_bound(packed_keys_.begin(), packed_keys_.end(), key);
      if (it != packed_keys_.end() && *it == key) {
        return size_t(it - packed_keys_.begin());
      }
    }
  } else {
    size_t lo = 0, hi = num_groups_;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (CompareKeyAt(mid, na_codes) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < num_groups_ && CompareKeyAt(lo, na_codes) == 0) return lo;
  }
  return Status::NotFound("no personal group with the given NA key");
}

std::vector<uint32_t> FlatGroupIndex::MatchingGroups(
    const Predicate& pred) const {
  std::vector<uint32_t> out;
  MatchingGroupsInto(pred, out);
  return out;
}

void FlatGroupIndex::MatchingGroupsInto(const Predicate& pred,
                                        std::vector<uint32_t>& out) const {
  MatchingGroupsInto(pred, SharedScratch(), out);
}

void FlatGroupIndex::MatchingGroupsInto(const Predicate& pred,
                                        AnswerScratch& scratch,
                                        std::vector<uint32_t>& out) const {
  RECPRIV_CHECK(pred.num_attributes() == schema_->num_attributes())
      << "predicate arity mismatch";
  out.clear();
  const size_t n_pub = public_idx_.size();
  CollectBound(pred, scratch);
  if (scratch.bound.size() == n_pub && n_pub > 0) {
    // Fully bound: at most one group — binary search instead of a scan.
    scratch.key.resize(n_pub);
    for (const auto& [k, code] : scratch.bound) scratch.key[k] = code;
    const Result<size_t> found = FindGroup(scratch.key);
    if (found.ok()) out.push_back(uint32_t(*found));
    return;
  }
  const uint32_t* nk = na_codes_.data();
  for (size_t g = 0; g < num_groups_; ++g) {
    const uint32_t* gk = nk + g * n_pub;
    bool match = true;
    for (const auto& [k, code] : scratch.bound) {
      if (gk[k] != code) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(uint32_t(g));
  }
}

uint64_t FlatGroupIndex::CountAnswer(const Predicate& pred,
                                     uint32_t sa) const {
  uint64_t observed = 0, matched_size = 0;
  AnswerInto(pred, sa, &observed, &matched_size);
  return observed;
}

void FlatGroupIndex::CollectBound(const Predicate& pred,
                                  AnswerScratch& scratch) const {
  scratch.bound.clear();
  const size_t n_pub = public_idx_.size();
  for (size_t k = 0; k < n_pub; ++k) {
    const size_t attr = public_idx_[k];
    if (pred.is_bound(attr)) {
      scratch.bound.emplace_back(uint32_t(k), pred.code(attr));
    }
  }
}

void FlatGroupIndex::AnswerInto(const Predicate& pred, uint32_t sa,
                                uint64_t* observed,
                                uint64_t* matched_size) const {
  AnswerInto(pred, sa, SharedScratch(), observed, matched_size);
}

void FlatGroupIndex::AnswerInto(const Predicate& pred, uint32_t sa,
                                AnswerScratch& scratch, uint64_t* observed,
                                uint64_t* matched_size) const {
  RECPRIV_CHECK(pred.num_attributes() == schema_->num_attributes())
      << "predicate arity mismatch";
  RECPRIV_DCHECK(sa < m_);
  *observed = 0;
  *matched_size = 0;
  const size_t n_pub = public_idx_.size();
  CollectBound(pred, scratch);
  if (scratch.bound.size() == n_pub && n_pub > 0) {
    scratch.key.resize(n_pub);
    for (const auto& [k, code] : scratch.bound) scratch.key[k] = code;
    const Result<size_t> found = FindGroup(scratch.key);
    if (found.ok()) {
      *observed = sa_count(*found, sa);
      *matched_size = group_size(*found);
    }
    return;
  }
  // The scan body dispatches to the best SIMD level the host supports;
  // every level is bit-identical to the scalar reference by construction
  // (integer sums only — see table/simd/dispatch.h).
  simd::FusedCountArgs fused;
  fused.na_codes = na_codes_;
  fused.sa_counts = sa_counts_;
  fused.row_offsets = row_offsets_;
  fused.num_groups = num_groups_;
  fused.n_pub = n_pub;
  fused.m = m_;
  fused.sa = sa;
  fused.bound = scratch.bound;
  if (packed_) {
    // Equivalent packed-key spelling of the same match: attribute k's
    // code sits in its own bit field, so the bound compare collapses to
    // one masked 64-bit equality per group over the contiguous sorted
    // keys (the layout Build sorted by).
    uint64_t mask = 0, want = 0;
    bool fits = true;
    for (const auto& [k, code] : scratch.bound) {
      const uint32_t bits = key_bits_[k];
      const uint64_t field =
          bits >= 64 ? ~uint64_t(0) : (uint64_t(1) << bits) - 1;
      if (uint64_t(code) > field) {
        // The code overflows its field, so no group's key can carry it:
        // the zero-initialized outputs are already the answer.
        fits = false;
        break;
      }
      mask |= field << key_shifts_[k];
      want |= uint64_t(code) << key_shifts_[k];
    }
    if (!fits) return;
    fused.packed_keys = packed_keys_;
    fused.packed_mask = mask;
    fused.packed_want = want;
  }
  simd::FusedCountSums(fused, observed, matched_size);
}

GroupPostingIndex::GroupPostingIndex(const FlatGroupIndex& index)
    : index_(&index) {
  const auto& pub = index.public_indices();
  postings_.resize(pub.size());
  for (size_t k = 0; k < pub.size(); ++k) {
    postings_[k].resize(index.schema()->attribute(pub[k]).domain.size());
  }
  for (size_t gi = 0; gi < index.num_groups(); ++gi) {
    for (size_t k = 0; k < pub.size(); ++k) {
      postings_[k][index.na_code(gi, k)].push_back(uint32_t(gi));
    }
  }
}

std::vector<uint32_t> GroupPostingIndex::MatchingGroups(
    const Predicate& pred) const {
  std::vector<uint32_t> scratch;
  std::vector<uint32_t> out;
  MatchingGroupsInto(pred, scratch, out);
  return out;
}

void GroupPostingIndex::MatchingGroupsInto(const Predicate& pred,
                                           std::vector<uint32_t>& scratch,
                                           std::vector<uint32_t>& out) const {
  out.clear();
  const auto& pub = index_->public_indices();
  // Collect the posting lists of the bound conditions, smallest first.
  std::vector<const std::vector<uint32_t>*> lists;
  for (size_t k = 0; k < pub.size(); ++k) {
    if (pred.is_bound(pub[k])) {
      const uint32_t code = pred.code(pub[k]);
      if (code >= postings_[k].size()) return;
      lists.push_back(&postings_[k][code]);
    }
  }
  if (lists.empty()) {
    out.resize(index_->num_groups());
    for (size_t gi = 0; gi < out.size(); ++gi) {
      out[gi] = static_cast<uint32_t>(gi);
    }
    return;
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  out.assign(lists[0]->begin(), lists[0]->end());
  for (size_t li = 1; li < lists.size() && !out.empty(); ++li) {
    scratch.clear();
    std::set_intersection(out.begin(), out.end(), lists[li]->begin(),
                          lists[li]->end(), std::back_inserter(scratch));
    std::swap(out, scratch);
  }
}

uint64_t GroupPostingIndex::CountAnswer(const Predicate& pred,
                                        uint32_t sa) const {
  return CountAnswer(pred, sa, SharedScratch());
}

uint64_t GroupPostingIndex::CountAnswer(const Predicate& pred, uint32_t sa,
                                        AnswerScratch& scratch) const {
  // Pool generation makes millions of these calls; the threaded scratch
  // keeps them allocation-free after warmup without a per-kernel
  // thread_local.
  MatchingGroupsInto(pred, scratch.intersect, scratch.groups);
  uint64_t ans = 0;
  for (const uint32_t gi : scratch.groups) ans += index_->sa_count(gi, sa);
  return ans;
}

}  // namespace recpriv::table
