// Dictionary encoding for categorical attribute domains.
//
// Every attribute in recpriv is categorical (the paper's model is a table of
// discrete public attributes NA plus one discrete sensitive attribute SA).
// A Dictionary maps domain strings <-> dense uint32 codes; tables store
// codes only.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace recpriv::table {

/// Bidirectional string <-> code mapping with insertion-order codes.
class Dictionary {
 public:
  Dictionary() = default;

  /// Builds a dictionary from `values` (must be distinct).
  static Result<Dictionary> FromValues(const std::vector<std::string>& values);

  /// Returns the code of `value`, inserting it if absent.
  uint32_t GetOrAdd(std::string_view value);

  /// Returns the code of `value` or NotFound.
  Result<uint32_t> GetCode(std::string_view value) const;

  /// True if `value` is present.
  bool Contains(std::string_view value) const;

  /// Returns the string for `code`; OutOfRange if code >= size().
  Result<std::string> GetValue(uint32_t code) const;

  /// Unchecked accessor for hot paths (code must be < size()).
  const std::string& value(uint32_t code) const { return values_[code]; }

  size_t size() const { return values_.size(); }
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> codes_;
};

}  // namespace recpriv::table
