// Columnar personal-group index — the cache-friendly successor to
// GroupIndex (paper §3.2, §5 preprocessing) for every scan-bound workload.
//
// GroupIndex stores one PersonalGroup struct per group, each carrying three
// separately heap-allocated vectors; a group scan is a pointer-chasing walk.
// FlatGroupIndex stores the same information in four contiguous columns:
//
//   na_codes_     num_groups x num_public   NA key of each group, row-major
//   sa_counts_    num_groups x m            SA histogram matrix, row-major
//   row_offsets_  num_groups + 1            CSR offsets into row_values_
//   row_values_   num_records               group members, group-major
//
// Build() replaces the legacy comparator sort (one multi-attribute column
// gather per comparison) with a pack-keys-then-sort pass: when the public
// domains fit 64 bits, each row's NA key is bit-packed into a uint64_t
// (attribute 0 in the highest bits, so numeric order == lexicographic
// order), the (packed_key, row) pairs are radix-sorted, and groups fall out
// of one run-length pass. Domains too wide for 64 bits take a fallback path
// over contiguous row-major wide keys. Either way the group order is the
// NA-lexicographic order of GroupIndex::Build, so group ids are
// interchangeable between the two layouts.
//
// FindGroup is a binary search over the sorted keys; AnswerInto fuses
// predicate matching with the histogram-column sum so a count query needs
// no materialized match list at all.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "table/predicate.h"
#include "table/schema.h"
#include "table/table.h"

namespace recpriv::table {

/// Reusable per-call scratch for the count-answer kernels. Previously each
/// kernel kept its own `static thread_local` vectors, which were duplicated
/// per kernel and never shrank; callers on a hot path now own one of these
/// and thread it through, so every kernel (scalar and SIMD) shares one
/// audited scratch path and the owner controls the memory's lifetime.
/// Cold callers may use the zero-argument kernel overloads, which route
/// through a single shared thread-local instance.
struct AnswerScratch {
  /// Bound (key column, code) pairs of the current predicate.
  std::vector<std::pair<uint32_t, uint32_t>> bound;
  /// NA-key probe buffer for the fully-bound binary-search fast path.
  std::vector<uint32_t> key;
  /// Matching group ids (GroupPostingIndex::CountAnswer).
  std::vector<uint32_t> groups;
  /// Ping-pong space for posting-list intersection.
  std::vector<uint32_t> intersect;

  /// Returns all capacity to the allocator — for owners that batch bursts
  /// of large queries and then go idle.
  void Release() {
    bound = {};
    key = {};
    groups = {};
    intersect = {};
  }
};

/// Sort-based columnar index of all personal groups of a table.
///
/// Storage ownership: the query kernels read the columns through
/// std::span views. After Build the views alias vectors owned by the
/// index itself; after FromStorage they alias caller-provided memory
/// (typically an mmap'd snapshot section — see store/snapshot_reader.h),
/// which the caller must keep alive for the index's lifetime. The hot
/// path is identical either way.
class FlatGroupIndex {
 public:
  /// Key layout chosen by Build: packed 64-bit keys when the public
  /// domains fit, wide row-major uint32 keys otherwise. kForceWide exists
  /// so tests can exercise the wide path on narrow schemas.
  enum class KeyMode { kAuto, kForceWide };

  /// The columnar arrays of a built index, viewed as borrowable storage —
  /// exactly the sections a persisted snapshot stores. `packed_keys` is
  /// empty unless `packed`.
  struct Storage {
    bool packed = false;
    uint64_t num_groups = 0;
    uint64_t num_records = 0;
    std::span<const uint64_t> packed_keys;  ///< num_groups (packed only)
    std::span<const uint32_t> na_codes;     ///< num_groups x num_public
    std::span<const uint64_t> sa_counts;    ///< num_groups x m
    std::span<const uint64_t> row_offsets;  ///< num_groups + 1 (CSR)
    std::span<const uint32_t> row_values;   ///< num_records, group-major
  };

  /// Builds the index with one pack + sort + run-length pass.
  static FlatGroupIndex Build(const Table& t, KeyMode mode = KeyMode::kAuto);

  /// One sorted run of groups for MergeRuns: NA keys in strictly ascending
  /// lexicographic order, each paired with its SA histogram row. The spans
  /// typically borrow the `na_codes` / `sa_counts` sections of a built
  /// index's Storage (see RunOf) — the borrow seam that lets a merged
  /// index read base sections without copying them first.
  struct GroupRun {
    std::span<const uint32_t> na_codes;   ///< num_groups x num_public
    std::span<const uint64_t> sa_counts;  ///< num_groups x m
    uint64_t num_groups = 0;
  };

  /// Views the group sections of built storage as a run (borrows `s`).
  static GroupRun RunOf(const Storage& s) {
    return GroupRun{s.na_codes, s.sa_counts, s.num_groups};
  }

  /// Two-level (LSM-style) run-merge build: produces the index of the
  /// canonical group-major table assembled from `base` with `overlay`
  /// applied on top. On a key collision the overlay's histogram replaces
  /// the base group's; an overlay histogram summing to zero is a tombstone
  /// that deletes the group. The output describes a table whose rows are
  /// group-major in ascending key order with each group's SA values in
  /// ascending-value runs, so `row_values` is the identity permutation and
  /// the result is bit-identical to `Build` over that table — without the
  /// O(n log n) sort. Cost is O(|base| + |overlay| + n_out). The run spans
  /// are only read during the call; the result owns all of its storage.
  static Result<FlatGroupIndex> MergeRuns(SchemaPtr schema,
                                          const GroupRun& base,
                                          const GroupRun& overlay,
                                          KeyMode mode = KeyMode::kAuto);

  /// Reconstructs an index over borrowed columns without copying them.
  /// Every structural invariant Build guarantees is re-validated here —
  /// the spans typically come from a file — and any violation returns
  /// kDataLoss rather than an index that could crash or answer wrongly.
  /// The caller keeps the spanned memory alive for the index's lifetime.
  static Result<FlatGroupIndex> FromStorage(SchemaPtr schema,
                                            const Storage& storage);

  /// This index's columns as borrowable storage (aliases live memory).
  Storage storage() const {
    return Storage{packed_,    num_groups_, num_records_, packed_keys_,
                   na_codes_,  sa_counts_,  row_offsets_, row_values_};
  }

  /// An empty index (no schema); overwrite via move before use.
  FlatGroupIndex() = default;
  FlatGroupIndex(FlatGroupIndex&&) = default;
  FlatGroupIndex& operator=(FlatGroupIndex&&) = default;
  // The views would alias the source's buffers after a member-wise copy,
  // so copying is forbidden rather than silently wrong.
  FlatGroupIndex(const FlatGroupIndex&) = delete;
  FlatGroupIndex& operator=(const FlatGroupIndex&) = delete;

  size_t num_groups() const { return num_groups_; }
  size_t num_records() const { return num_records_; }
  /// Number of public attributes (columns of the NA key).
  size_t num_public() const { return public_idx_.size(); }
  /// SA domain size m (columns of the histogram matrix).
  size_t sa_domain() const { return m_; }
  /// |D| / |G| as reported in Tables 4-5.
  double AverageGroupSize() const;
  /// True when the packed-key fast path was taken.
  bool packed() const { return packed_; }

  /// NA key of group `g`, in schema public-index order.
  std::span<const uint32_t> na_codes(size_t g) const {
    return {na_codes_.data() + g * public_idx_.size(), public_idx_.size()};
  }
  uint32_t na_code(size_t g, size_t k) const {
    return na_codes_[g * public_idx_.size() + k];
  }

  /// SA histogram row of group `g` (length m).
  std::span<const uint64_t> sa_counts(size_t g) const {
    return {sa_counts_.data() + g * m_, m_};
  }
  uint64_t sa_count(size_t g, size_t sa) const {
    return sa_counts_[g * m_ + sa];
  }

  /// Row indices of group `g`'s records in the indexed table.
  std::span<const uint32_t> rows(size_t g) const {
    return {row_values_.data() + row_offsets_[g],
            row_offsets_[g + 1] - row_offsets_[g]};
  }
  uint64_t group_size(size_t g) const {
    return row_offsets_[g + 1] - row_offsets_[g];
  }

  /// Frequency (fraction) of SA value `sa` in group `g`.
  double Frequency(size_t g, size_t sa) const;
  /// Max over SA values of Frequency — the `f` of Eq. (10).
  double MaxFrequency(size_t g) const;

  /// Group ids whose NA key satisfies the NA conditions of `pred`
  /// (SA condition, if any, is ignored here — it selects histogram bins).
  std::vector<uint32_t> MatchingGroups(const Predicate& pred) const;

  /// Batched entry point: fills `out` with the matching group ids, clearing
  /// it first. A fully-bound predicate short-circuits to a key binary
  /// search; otherwise one cache-linear scan of the NA-key column.
  /// The scratch-less overload uses the shared thread-local scratch.
  void MatchingGroupsInto(const Predicate& pred,
                          std::vector<uint32_t>& out) const;
  void MatchingGroupsInto(const Predicate& pred, AnswerScratch& scratch,
                          std::vector<uint32_t>& out) const;

  /// Group with exactly this NA key (public-index order), or NotFound.
  /// Binary search over the sorted keys: O(log |G|).
  Result<size_t> FindGroup(std::span<const uint32_t> na_codes) const;

  /// Sum of sa_counts[sa] over matching groups (a count-query answer),
  /// without materializing the match list.
  uint64_t CountAnswer(const Predicate& pred, uint32_t sa) const;

  /// Fused count-query kernel: one scan accumulating both the observed
  /// count O* = sum sa_counts[sa] and the matched size |S*| over the
  /// groups matching `pred`. The serving engine's uncached path. The scan
  /// body is dispatched to the best SIMD kernel the host supports (see
  /// table/simd/dispatch.h); every level is bit-identical by construction
  /// (integer sums only). The scratch-less overload uses the shared
  /// thread-local scratch.
  void AnswerInto(const Predicate& pred, uint32_t sa, uint64_t* observed,
                  uint64_t* matched_size) const;
  void AnswerInto(const Predicate& pred, uint32_t sa, AnswerScratch& scratch,
                  uint64_t* observed, uint64_t* matched_size) const;

  const SchemaPtr& schema() const { return schema_; }
  /// Attribute indices (schema order) of the public attributes.
  const std::vector<size_t>& public_indices() const { return public_idx_; }

 private:
  /// Fills `scratch.bound` with the predicate's bound (key column, code)
  /// pairs, collected once per call so the scan does not re-probe the
  /// predicate per group.
  void CollectBound(const Predicate& pred, AnswerScratch& scratch) const;
  /// Packs `na` into a 64-bit key; false when a code overflows its
  /// attribute's bit field (no group can carry it).
  bool PackKey(std::span<const uint32_t> na, uint64_t* key) const;
  /// Three-way lexicographic compare of group `g`'s NA key against `na`.
  int CompareKeyAt(size_t g, std::span<const uint32_t> na) const;
  /// Derives public_idx_ / m_ / key_bits_ / key_shifts_ from schema_.
  /// False when the packed layout is requested but does not fit 64 bits.
  bool DeriveKeyLayout(bool want_packed);
  /// Points the view members at the owned vectors (the Build path).
  void BindOwnedStorage();

  SchemaPtr schema_;
  std::vector<size_t> public_idx_;
  size_t m_ = 0;
  size_t num_records_ = 0;
  size_t num_groups_ = 0;
  bool packed_ = false;

  /// Per-public-attribute bit widths and shifts of the packed layout
  /// (valid only when packed_).
  std::vector<uint32_t> key_bits_;
  std::vector<uint32_t> key_shifts_;

  /// Owned storage — empty when the index reads borrowed storage.
  std::vector<uint64_t> packed_keys_own_;
  std::vector<uint32_t> na_codes_own_;
  std::vector<uint64_t> sa_counts_own_;
  std::vector<uint64_t> row_offsets_own_;
  std::vector<uint32_t> row_values_own_;

  /// The views every accessor and kernel reads, aliasing either the owned
  /// vectors above or borrowed memory. Moving a vector keeps its heap
  /// buffer's address, so the defaulted move leaves the views valid.
  std::span<const uint64_t> packed_keys_;  // sorted keys (packed_ only)
  std::span<const uint32_t> na_codes_;     // num_groups x num_public
  std::span<const uint64_t> sa_counts_;    // num_groups x m
  std::span<const uint64_t> row_offsets_;  // num_groups + 1 (CSR)
  std::span<const uint32_t> row_values_;   // num_records, group-major
};

/// Inverted index over a FlatGroupIndex: for each (public attribute, value),
/// the sorted list of group ids carrying that value. Speeds up group
/// matching for low-dimensionality predicates from O(|G|) to the size of
/// the smallest posting list (used by query-pool generation, where millions
/// of candidate selectivity checks are made, and by the serving engine's
/// per-query strategy).
class GroupPostingIndex {
 public:
  explicit GroupPostingIndex(const FlatGroupIndex& index);

  /// Same contract as FlatGroupIndex::MatchingGroups, computed by
  /// posting-list intersection. An unbound predicate returns all group ids.
  std::vector<uint32_t> MatchingGroups(const Predicate& pred) const;

  /// Allocation-free variant for batched evaluation: `out` receives the
  /// matching group ids (cleared first) and `scratch` is ping-pong space
  /// for the intersection; both retain capacity across calls.
  void MatchingGroupsInto(const Predicate& pred, std::vector<uint32_t>& scratch,
                          std::vector<uint32_t>& out) const;

  /// Sum of sa_counts[sa] over matching groups (a count-query answer).
  /// The scratch-threaded overload allocates nothing after warmup; the
  /// scratch-less one reuses the shared thread-local scratch.
  uint64_t CountAnswer(const Predicate& pred, uint32_t sa) const;
  uint64_t CountAnswer(const Predicate& pred, uint32_t sa,
                       AnswerScratch& scratch) const;

 private:
  const FlatGroupIndex* index_;
  /// postings_[k][v] = group ids with value v on the k-th public attribute.
  std::vector<std::vector<std::vector<uint32_t>>> postings_;
};

}  // namespace recpriv::table
