// Conjunctive equality predicates with wildcards over table attributes —
// the D(x1, ..., xn) notation of paper §3.2 and the WHERE clause of the
// count queries in §6.1 (Eq. 11).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/schema.h"
#include "table/table.h"

namespace recpriv::table {

/// A conjunction of per-attribute equality conditions; absent entries are
/// wildcards (the paper's `*`). May constrain SA as well (used by queries);
/// personal/aggregate groups constrain NA only.
class Predicate {
 public:
  /// All-wildcard predicate for `num_attributes` attributes.
  explicit Predicate(size_t num_attributes)
      : conditions_(num_attributes) {}

  /// Builds from (attribute name, value string) pairs against `schema`.
  static Result<Predicate> FromBindings(
      const Schema& schema,
      const std::vector<std::pair<std::string, std::string>>& bindings);

  /// Sets attribute `attr` to require code `code`.
  void Bind(size_t attr, uint32_t code) { conditions_[attr] = code; }
  void Unbind(size_t attr) { conditions_[attr].reset(); }

  bool is_bound(size_t attr) const { return conditions_[attr].has_value(); }
  uint32_t code(size_t attr) const { return *conditions_[attr]; }
  size_t num_attributes() const { return conditions_.size(); }

  /// Number of non-wildcard conditions.
  size_t num_bound() const;

  /// True if `row` of `t` satisfies every bound condition.
  bool Matches(const Table& t, size_t row) const;

  /// Indices of all matching rows.
  std::vector<size_t> MatchingRows(const Table& t) const;

  /// Count of matching rows (no materialization).
  uint64_t CountMatches(const Table& t) const;

  /// Human-readable form, e.g. "Gender=male AND Job=*".
  std::string ToString(const Schema& schema) const;

 private:
  std::vector<std::optional<uint32_t>> conditions_;
};

}  // namespace recpriv::table
