// Columnar table of dictionary codes — the data substrate for D and D*.
//
// Storage is one uint32 vector per attribute. Rows are appended; cells are
// the dictionary codes of the schema's attributes. The sensitive column is
// mutable in place (perturbation rewrites SA codes only, never NA — paper
// §3.1 keeps NA unchanged).

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/schema.h"

namespace recpriv::table {

/// In-memory categorical table over a shared schema.
class Table {
 public:
  explicit Table(SchemaPtr schema);

  /// Builds a table by adopting whole columns (one per attribute, schema
  /// order) instead of appending row by row — the bulk-load path of the
  /// snapshot reader. Errors when the column count, column lengths, or any
  /// code disagrees with the schema.
  static Result<Table> FromColumns(SchemaPtr schema,
                                   std::vector<std::vector<uint32_t>> columns);

  const SchemaPtr& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Validates one row of codes against the schema (arity + domains)
  /// without appending it — exactly the check AppendRow performs before it
  /// mutates anything. Lets callers that must interleave validation with
  /// other side effects (e.g. RNG draws) reject a row with zero state
  /// change of their own.
  Status ValidateRow(std::span<const uint32_t> codes) const;

  /// Appends one row of codes (one per attribute, schema order). Codes must
  /// be valid for their attribute domains.
  Status AppendRow(std::span<const uint32_t> codes);

  /// Unchecked append for hot paths (datagen); caller guarantees validity.
  void AppendRowUnchecked(std::span<const uint32_t> codes);

  /// Cell accessors.
  uint32_t at(size_t row, size_t col) const { return columns_[col][row]; }
  void set(size_t row, size_t col, uint32_t code) {
    columns_[col][row] = code;
  }

  /// Whole-column view.
  const std::vector<uint32_t>& column(size_t col) const {
    return columns_[col];
  }
  std::vector<uint32_t>& mutable_column(size_t col) { return columns_[col]; }

  /// Decoded cell (string); errors on out-of-range row/col.
  Result<std::string> ValueAt(size_t row, size_t col) const;

  /// Per-value counts of the SA column ("global distribution" of SA).
  std::vector<uint64_t> SaHistogram() const;

  /// Copies rows with the given indices into a new table (same schema).
  Table Select(std::span<const size_t> row_indices) const;

  /// Deep copy.
  Table Clone() const;

  void Reserve(size_t rows);

 private:
  SchemaPtr schema_;
  std::vector<std::vector<uint32_t>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace recpriv::table
