#include "table/schema.h"

namespace recpriv::table {

Result<Schema> Schema::Make(std::vector<Attribute> attributes,
                            size_t sensitive_index) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  if (sensitive_index >= attributes.size()) {
    return Status::OutOfRange("sensitive_index out of range");
  }
  for (size_t i = 0; i < attributes.size(); ++i) {
    for (size_t j = i + 1; j < attributes.size(); ++j) {
      if (attributes[i].name == attributes[j].name) {
        return Status::AlreadyExists("duplicate attribute name: " +
                                     attributes[i].name);
      }
    }
  }
  Schema s;
  s.attributes_ = std::move(attributes);
  s.sensitive_index_ = sensitive_index;
  return s;
}

std::vector<size_t> Schema::public_indices() const {
  std::vector<size_t> out;
  out.reserve(num_public());
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i != sensitive_index_) out.push_back(i);
  }
  return out;
}

Result<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named " + std::string(name));
}

}  // namespace recpriv::table
