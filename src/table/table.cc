#include "table/table.h"

#include "common/logging.h"

namespace recpriv::table {

Table::Table(SchemaPtr schema) : schema_(std::move(schema)) {
  RECPRIV_CHECK(schema_ != nullptr) << "Table requires a schema";
  columns_.resize(schema_->num_attributes());
}

Result<Table> Table::FromColumns(SchemaPtr schema,
                                 std::vector<std::vector<uint32_t>> columns) {
  if (schema == nullptr) return Status::InvalidArgument("null schema");
  if (columns.size() != schema->num_attributes()) {
    return Status::InvalidArgument(
        "column count mismatch: got " + std::to_string(columns.size()) +
        ", schema has " + std::to_string(schema->num_attributes()));
  }
  const size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].size() != rows) {
      return Status::InvalidArgument("ragged columns: attribute " +
                                     schema->attribute(c).name);
    }
    const uint32_t dom = uint32_t(schema->attribute(c).domain.size());
    for (const uint32_t code : columns[c]) {
      if (code >= dom) {
        return Status::OutOfRange("code " + std::to_string(code) +
                                  " out of domain for attribute " +
                                  schema->attribute(c).name);
      }
    }
  }
  Table out(std::move(schema));
  out.columns_ = std::move(columns);
  out.num_rows_ = rows;
  return out;
}

Status Table::ValidateRow(std::span<const uint32_t> codes) const {
  if (codes.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity mismatch: got " + std::to_string(codes.size()) +
        ", schema has " + std::to_string(columns_.size()));
  }
  for (size_t c = 0; c < codes.size(); ++c) {
    if (codes[c] >= schema_->attribute(c).domain.size()) {
      return Status::OutOfRange("code " + std::to_string(codes[c]) +
                                " out of domain for attribute " +
                                schema_->attribute(c).name);
    }
  }
  return Status::OK();
}

Status Table::AppendRow(std::span<const uint32_t> codes) {
  RECPRIV_RETURN_NOT_OK(ValidateRow(codes));
  AppendRowUnchecked(codes);
  return Status::OK();
}

void Table::AppendRowUnchecked(std::span<const uint32_t> codes) {
  RECPRIV_DCHECK(codes.size() == columns_.size());
  for (size_t c = 0; c < codes.size(); ++c) columns_[c].push_back(codes[c]);
  ++num_rows_;
}

Result<std::string> Table::ValueAt(size_t row, size_t col) const {
  if (col >= columns_.size()) return Status::OutOfRange("column out of range");
  if (row >= num_rows_) return Status::OutOfRange("row out of range");
  return schema_->attribute(col).domain.GetValue(columns_[col][row]);
}

std::vector<uint64_t> Table::SaHistogram() const {
  std::vector<uint64_t> hist(schema_->sa_domain_size(), 0);
  const auto& sa = columns_[schema_->sensitive_index()];
  for (uint32_t code : sa) {
    RECPRIV_DCHECK(code < hist.size());
    ++hist[code];
  }
  return hist;
}

Table Table::Select(std::span<const size_t> row_indices) const {
  Table out(schema_);
  out.Reserve(row_indices.size());
  std::vector<uint32_t> row(columns_.size());
  for (size_t r : row_indices) {
    RECPRIV_DCHECK(r < num_rows_);
    for (size_t c = 0; c < columns_.size(); ++c) row[c] = columns_[c][r];
    out.AppendRowUnchecked(row);
  }
  return out;
}

Table Table::Clone() const {
  Table out(schema_);
  out.columns_ = columns_;
  out.num_rows_ = num_rows_;
  return out;
}

void Table::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

}  // namespace recpriv::table
