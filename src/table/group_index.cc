#include "table/group_index.h"

#include <algorithm>
#include <iterator>
#include <numeric>

#include "common/logging.h"

namespace recpriv::table {

double PersonalGroup::MaxFrequency() const {
  if (rows.empty()) return 0.0;
  uint64_t max_count = 0;
  for (uint64_t c : sa_counts) max_count = std::max(max_count, c);
  return static_cast<double>(max_count) / static_cast<double>(rows.size());
}

GroupIndex GroupIndex::Build(const Table& t) {
  GroupIndex idx;
  idx.schema_ = t.schema();
  idx.public_idx_ = t.schema()->public_indices();
  idx.num_records_ = t.num_rows();

  // Sort row ids by the NA columns (paper: sort by NA then SA; the SA
  // ordering is irrelevant for grouping, we histogram SA per run instead).
  std::vector<size_t> order(t.num_rows());
  std::iota(order.begin(), order.end(), 0);
  const auto& pub = idx.public_idx_;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t attr : pub) {
      uint32_t va = t.at(a, attr);
      uint32_t vb = t.at(b, attr);
      if (va != vb) return va < vb;
    }
    return false;
  });

  const size_t sa_col = t.schema()->sensitive_index();
  const size_t m = t.schema()->sa_domain_size();
  auto same_key = [&](size_t a, size_t b) {
    for (size_t attr : pub) {
      if (t.at(a, attr) != t.at(b, attr)) return false;
    }
    return true;
  };

  for (size_t i = 0; i < order.size();) {
    size_t j = i;
    while (j < order.size() && same_key(order[i], order[j])) ++j;
    PersonalGroup g;
    g.na_codes.reserve(pub.size());
    for (size_t attr : pub) g.na_codes.push_back(t.at(order[i], attr));
    g.sa_counts.assign(m, 0);
    g.rows.reserve(j - i);
    for (size_t k = i; k < j; ++k) {
      g.rows.push_back(order[k]);
      uint32_t sa = t.at(order[k], sa_col);
      RECPRIV_DCHECK(sa < m);
      ++g.sa_counts[sa];
    }
    idx.groups_.push_back(std::move(g));
    i = j;
  }
  return idx;
}

double GroupIndex::AverageGroupSize() const {
  if (groups_.empty()) return 0.0;
  return static_cast<double>(num_records_) /
         static_cast<double>(groups_.size());
}

std::vector<size_t> GroupIndex::MatchingGroups(const Predicate& pred) const {
  std::vector<size_t> out;
  MatchingGroupsInto(pred, out);
  return out;
}

void GroupIndex::MatchingGroupsInto(const Predicate& pred,
                                    std::vector<size_t>& out) const {
  RECPRIV_CHECK(pred.num_attributes() == schema_->num_attributes())
      << "predicate arity mismatch";
  out.clear();
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    bool match = true;
    for (size_t k = 0; k < public_idx_.size(); ++k) {
      size_t attr = public_idx_[k];
      if (pred.is_bound(attr) &&
          pred.code(attr) != groups_[gi].na_codes[k]) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(gi);
  }
}

Result<size_t> GroupIndex::FindGroup(
    const std::vector<uint32_t>& na_codes) const {
  // Build emits groups in NA-lexicographic order: binary search.
  const auto it = std::lower_bound(
      groups_.begin(), groups_.end(), na_codes,
      [](const PersonalGroup& g, const std::vector<uint32_t>& key) {
        return std::lexicographical_compare(g.na_codes.begin(),
                                            g.na_codes.end(), key.begin(),
                                            key.end());
      });
  if (it != groups_.end() && it->na_codes == na_codes) {
    return size_t(it - groups_.begin());
  }
  return Status::NotFound("no personal group with the given NA key");
}

}  // namespace recpriv::table
