#include "table/csv.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace recpriv::table {

namespace {

Result<Table> ParseCsv(std::istream& in, const CsvReadOptions& opt) {
  std::string line;
  std::vector<std::string> header;
  if (opt.has_header) {
    if (!std::getline(in, line)) {
      return Status::IOError("CSV input is empty (expected header)");
    }
    for (const auto& cell : Split(line, opt.delimiter)) {
      header.emplace_back(opt.trim_whitespace ? std::string(Trim(cell))
                                              : cell);
    }
  }

  // Resolve which source columns to keep and in what order.
  std::vector<size_t> src_cols;
  std::vector<std::string> names;
  if (!opt.keep_columns.empty()) {
    if (!opt.has_header) {
      return Status::InvalidArgument(
          "keep_columns requires has_header = true");
    }
    for (const auto& want : opt.keep_columns) {
      bool found = false;
      for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == want) {
          src_cols.push_back(i);
          names.push_back(want);
          found = true;
          break;
        }
      }
      if (!found) return Status::NotFound("CSV has no column: " + want);
    }
  } else if (opt.has_header) {
    for (size_t i = 0; i < header.size(); ++i) {
      src_cols.push_back(i);
      names.push_back(header[i]);
    }
  }

  // First data row fixes the arity for header-less input.
  std::vector<std::vector<std::string>> pending_rows;
  if (!opt.has_header) {
    if (!std::getline(in, line)) return Status::IOError("CSV input is empty");
    auto cells = Split(line, opt.delimiter);
    for (size_t i = 0; i < cells.size(); ++i) {
      src_cols.push_back(i);
      names.push_back("col" + std::to_string(i));
    }
    pending_rows.push_back(std::move(cells));
  }

  if (opt.sensitive_attribute.empty()) {
    return Status::InvalidArgument("sensitive_attribute must be set");
  }
  size_t sa_index = names.size();
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == opt.sensitive_attribute) {
      sa_index = i;
      break;
    }
  }
  if (sa_index == names.size()) {
    return Status::NotFound("sensitive attribute not among kept columns: " +
                            opt.sensitive_attribute);
  }

  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& n : names) attrs.push_back(Attribute{n, Dictionary()});
  RECPRIV_ASSIGN_OR_RETURN(Schema schema,
                           Schema::Make(std::move(attrs), sa_index));
  auto schema_ptr = std::make_shared<Schema>(std::move(schema));
  Table t(schema_ptr);

  size_t line_no = opt.has_header ? 1 : 0;
  std::vector<uint32_t> codes(names.size());
  auto ingest = [&](const std::vector<std::string>& cells) -> Status {
    ++line_no;
    bool skip = false;
    std::vector<std::string> kept(names.size());
    for (size_t k = 0; k < src_cols.size(); ++k) {
      if (src_cols[k] >= cells.size()) {
        return Status::IOError("ragged CSV row at line " +
                               std::to_string(line_no));
      }
      std::string cell = opt.trim_whitespace
                             ? std::string(Trim(cells[src_cols[k]]))
                             : cells[src_cols[k]];
      if (!opt.missing_token.empty() && cell == opt.missing_token) {
        skip = true;
        break;
      }
      kept[k] = std::move(cell);
    }
    if (skip) return Status::OK();
    for (size_t k = 0; k < kept.size(); ++k) {
      codes[k] = schema_ptr->attribute(k).domain.GetOrAdd(kept[k]);
    }
    t.AppendRowUnchecked(codes);
    return Status::OK();
  };

  for (auto& row : pending_rows) RECPRIV_RETURN_NOT_OK(ingest(row));
  while (std::getline(in, line)) {
    if (Trim(line).empty()) {
      ++line_no;
      continue;
    }
    RECPRIV_RETURN_NOT_OK(ingest(Split(line, opt.delimiter)));
  }
  return t;
}

}  // namespace

Result<Table> ReadCsv(const std::string& path, const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open CSV file: " + path);
  return ParseCsv(in, options);
}

Result<Table> ReadCsvFromString(const std::string& text,
                                const CsvReadOptions& options) {
  std::istringstream in(text);
  return ParseCsv(in, options);
}

Status WriteCsv(const Table& t, const std::string& path, char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open CSV file for write: " + path);
  const Schema& schema = *t.schema();
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (c > 0) out << delimiter;
    out << schema.attribute(c).name;
  }
  out << "\n";
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      if (c > 0) out << delimiter;
      out << schema.attribute(c).domain.value(t.at(r, c));
    }
    out << "\n";
  }
  if (!out) return Status::IOError("short write to CSV file: " + path);
  return Status::OK();
}

}  // namespace recpriv::table
