// Schema: ordered list of categorical attributes, one of which is the
// sensitive attribute SA; all others are the public attributes NA
// (paper §3.1).

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/dictionary.h"

namespace recpriv::table {

/// One categorical attribute: a name plus its (growable) value dictionary.
struct Attribute {
  std::string name;
  Dictionary domain;
};

/// Table schema with a designated sensitive attribute.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; `sensitive_index` selects SA among the attributes.
  static Result<Schema> Make(std::vector<Attribute> attributes,
                             size_t sensitive_index);

  size_t num_attributes() const { return attributes_.size(); }
  /// Number of public (NA) attributes.
  size_t num_public() const { return attributes_.size() - 1; }
  size_t sensitive_index() const { return sensitive_index_; }

  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  Attribute& attribute(size_t i) { return attributes_[i]; }
  const Attribute& sensitive() const { return attributes_[sensitive_index_]; }
  Attribute& sensitive() { return attributes_[sensitive_index_]; }

  /// Domain size m of SA.
  size_t sa_domain_size() const { return sensitive().domain.size(); }

  /// Indices of the public attributes, in schema order.
  std::vector<size_t> public_indices() const;

  /// Index of the attribute named `name`, or NotFound.
  Result<size_t> IndexOf(std::string_view name) const;

  bool is_sensitive(size_t i) const { return i == sensitive_index_; }

 private:
  std::vector<Attribute> attributes_;
  size_t sensitive_index_ = 0;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace recpriv::table
