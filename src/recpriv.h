// Umbrella header for the recpriv library — a from-scratch C++20
// implementation of "Reconstruction Privacy: Enabling Statistical Learning"
// (Wang, Han, Fu, Wong, Yu — EDBT 2015).
//
// Module map:
//   common/   Status/Result, logging, deterministic PRNG and samplers,
//             JSON, flags, work-stealing thread pool
//   stats/    special functions, chi-squared tests, Chernoff bounds,
//             descriptive stats, ratio-estimator approximations
//   table/    dictionary-encoded categorical tables, CSV I/O, predicates,
//             personal-group indexing (with batched evaluation entry points)
//   datagen/  calibrated synthetic ADULT / CENSUS generators
//   perturb/  uniform perturbation (Eq. 3) and MLE reconstruction (Lemma 2)
//   core/     reconstruction privacy (Def. 3 / Cor. 4), violation audits,
//             the SPS enforcement algorithm (§5), chi-squared value
//             generalization (§3.4), streaming publication
//   dp/       Laplace mechanism baseline and the Section-2 NIR ratio attack
//   query/    count-query pools (Eq. 11), relative-error evaluation, and
//             canonical query encoding/hashing
//   analysis/ self-describing release bundles, immutable release snapshots,
//             and the consumer-side reconstructor
//   store/    persistent binary snapshot store: the paged .rps on-disk
//             release format (checksummed sections, 64-byte aligned) and
//             its mmap'd zero-parse reader
//   serve/    the release-serving subsystem: ReleaseStore (named, versioned
//             copy-on-publish snapshots with a retained-epoch window),
//             QueryEngine (parallel batched count-query answering with an
//             LRU answer cache), the typed service layer, and the versioned
//             line-delimited JSON wire protocol behind tools/recpriv_serve
//   client/   the typed consumer surface: request/response structs with a
//             stable error-code taxonomy, and the Client interface with
//             in-process and line-protocol backends
//   repl/     read-scaling replication: content digests, the primary's
//             serialized-snapshot provider behind subscribe/fetch_snapshot,
//             and the follower Replicator that mirrors a primary's
//             releases bit for bit (tools/recpriv_serve --follow)
//   exp/      experiment harness reproducing the paper's tables & figures

#pragma once

#include "common/flags.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/union_find.h"

#include "stats/chernoff.h"
#include "stats/tail_bounds.h"
#include "stats/chi_squared.h"
#include "stats/descriptive.h"
#include "stats/ratio_estimator.h"
#include "stats/special_functions.h"

#include "table/csv.h"
#include "table/dictionary.h"
#include "table/flat_group_index.h"
#include "table/group_index.h"
#include "table/predicate.h"
#include "table/schema.h"
#include "table/table.h"

#include "datagen/adult.h"
#include "datagen/census.h"
#include "datagen/effective_model.h"
#include "datagen/simple.h"

#include "perturb/matrix_perturbation.h"
#include "perturb/mle.h"
#include "perturb/perturbation_matrix.h"
#include "perturb/uniform_perturbation.h"

#include "core/generalization.h"
#include "core/rho_privacy.h"
#include "core/streaming.h"
#include "core/reconstruction_privacy.h"
#include "core/sps.h"
#include "core/violation.h"

#include "dp/count_query_engine.h"
#include "dp/gaussian_mechanism.h"
#include "dp/laplace_mechanism.h"
#include "dp/nir_attack.h"

#include "query/canonical.h"
#include "query/count_query.h"
#include "query/evaluation.h"
#include "query/query_pool.h"

#include "analysis/demo.h"
#include "analysis/reconstructor.h"
#include "analysis/release.h"

#include "net/line_channel.h"
#include "net/socket.h"

#include "store/snapshot_format.h"
#include "store/snapshot_reader.h"
#include "store/snapshot_writer.h"

#include "serve/answer_cache.h"
#include "serve/micro_batcher.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/wire.h"

#include "workload/driver.h"
#include "workload/generator.h"
#include "workload/oracle.h"
#include "workload/scenario.h"
#include "workload/synthetic.h"

#include "client/api.h"
#include "client/client.h"
#include "client/in_process_client.h"
#include "client/line_protocol_client.h"
#include "client/retry.h"
#include "client/tcp_transport.h"

#include "repl/digest.h"
#include "repl/replicator.h"
#include "repl/snapshot_provider.h"

#include "anon/ldiversity.h"
#include "anon/tcloseness.h"

#include "exp/experiment.h"
#include "exp/reporting.h"
#include "exp/sweeps.h"
