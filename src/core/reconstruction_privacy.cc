#include "core/reconstruction_privacy.h"

#include <cmath>

namespace recpriv::core {

Status PrivacyParams::Validate() const {
  if (lambda <= 0.0) {
    return Status::InvalidArgument("lambda must be positive");
  }
  if (delta < 0.0 || delta > 1.0) {
    return Status::InvalidArgument("delta must be in [0,1]");
  }
  if (retention_p <= 0.0 || retention_p >= 1.0) {
    return Status::InvalidArgument("retention probability must be in (0,1)");
  }
  if (domain_m < 2) {
    return Status::InvalidArgument("SA domain size m must be >= 2");
  }
  return Status::OK();
}

double MaxGroupSize(const PrivacyParams& params, double max_frequency) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (max_frequency <= 0.0) return kInf;  // nothing to reconstruct
  if (params.delta <= 0.0) return kInf;   // any bound >= 0 suffices
  if (params.delta >= 1.0) return 0.0;    // only a trivial bound passes

  stats::GroupBoundParams g;
  g.group_size = 1.0;  // unused by the omega conversion
  g.frequency = max_frequency;
  g.retention = params.retention_p;
  g.domain_size = static_cast<double>(params.domain_m);

  const double omega = stats::OmegaForLambda(g, params.lambda);
  const double mu_per_record =
      max_frequency * params.retention_p +
      (1.0 - params.retention_p) / static_cast<double>(params.domain_m);
  const double neg_log_delta = -std::log(params.delta);

  if (omega <= 1.0) {
    // Lower-tail bound is the smaller one (Eq. 10):
    //   delta <= exp(-omega^2 mu / 2)  <=>  mu <= 2 |ln delta| / omega^2.
    return 2.0 * neg_log_delta / (omega * omega * mu_per_record);
  }
  // Only the upper tail applies: delta <= exp(-omega^2 mu / (2 + omega)).
  return (2.0 + omega) * neg_log_delta / (omega * omega * mu_per_record);
}

bool ValueIsPrivate(const PrivacyParams& params, uint64_t group_size,
                    double frequency) {
  if (frequency <= 0.0) return true;
  return static_cast<double>(group_size) <= MaxGroupSize(params, frequency);
}

bool GroupIsPrivate(const PrivacyParams& params, uint64_t group_size,
                    double max_frequency) {
  return ValueIsPrivate(params, group_size, max_frequency);
}

bool GroupIsPrivate(const PrivacyParams& params,
                    const recpriv::table::PersonalGroup& group) {
  return GroupIsPrivate(params, group.size(), group.MaxFrequency());
}

double BestTailBound(const PrivacyParams& params, uint64_t group_size,
                     double frequency) {
  if (frequency <= 0.0) return 1.0;
  stats::GroupBoundParams g;
  g.group_size = static_cast<double>(group_size);
  g.frequency = frequency;
  g.retention = params.retention_p;
  g.domain_size = static_cast<double>(params.domain_m);
  return stats::MleBestTailBound(g, params.lambda);
}

}  // namespace recpriv::core
