// SPS — the Sampling-Perturbing-Scaling enforcement algorithm (paper §5).
//
// For each personal group g with max SA frequency f:
//   s_g = -2 (f p + (1-p)/m) ln(delta) / (lambda p f)^2          (Eq. 10)
//   if |g| <= s_g: plain uniform perturbation (no sampling needed);
//   else:
//     1. Sampling   — frequency-preserving sample g1 of size ~s_g
//                     (per SA value: floor(|g_sa| tau) records plus one more
//                     with probability frac(|g_sa| tau), tau = s_g/|g|);
//     2. Perturbing — uniform perturbation of g1 at retention p;
//     3. Scaling    — duplicate each perturbed record floor(tau') times plus
//                     one more with probability frac(tau'), tau' = |g|/|g1*|.
//
// Privacy: g2* is (lambda,delta)-reconstruction-private (Theorem 4).
// Utility: reconstruction from unions of g2* is unbiased (Theorem 5).
// Complexity: one sort + one scan, O(|D| log |D| + |D|).
//
// Both a record-level path (Table -> Table, what a publisher releases) and
// a count-level fast path (SA histogram -> SA histogram, used by the
// experiment sweeps) are provided; they are identically distributed.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/reconstruction_privacy.h"
#include "table/group_index.h"
#include "table/table.h"

namespace recpriv::core {

/// Bookkeeping from one SPS run.
struct SpsStats {
  size_t num_groups = 0;
  size_t groups_sampled = 0;      ///< groups where |g| > s_g
  uint64_t records_in = 0;
  uint64_t records_sampled = 0;   ///< total |g1| over sampled groups
  uint64_t records_out = 0;       ///< |D*_2|

  /// Fraction of groups that required sampling.
  double SampledGroupFraction() const {
    return num_groups == 0 ? 0.0
                           : static_cast<double>(groups_sampled) /
                                 static_cast<double>(num_groups);
  }
};

/// Result of the record-level algorithm: the publishable D*_2.
struct SpsTableResult {
  recpriv::table::Table table;
  SpsStats stats;
};

/// Count-level result for one personal group.
struct SpsCountsResult {
  std::vector<uint64_t> observed;  ///< O* of g2* per SA value
  bool sampled = false;            ///< whether Sampling kicked in
  uint64_t sample_size = 0;        ///< |g1| (0 if not sampled)
};

/// Runs SPS on a whole table; output rows are grouped by personal group
/// (sorted NA order), matching the paper's sort-then-scan pipeline.
Result<SpsTableResult> SpsPerturbTable(const PrivacyParams& params,
                                       const recpriv::table::Table& input,
                                       Rng& rng);

/// Runs SPS for one group given its per-SA-value counts (count-level
/// path). Takes a span so FlatGroupIndex histogram rows feed it without a
/// copy (vectors convert implicitly).
Result<SpsCountsResult> SpsPerturbGroupCounts(
    const PrivacyParams& params, std::span<const uint64_t> counts, Rng& rng);

/// Frequency-preserving sample sizes (Sampling step): per SA value,
/// floor(c_i * tau) plus a Bernoulli(frac) extra. Exposed for testing and
/// for the ablation bench.
std::vector<uint64_t> FrequencyPreservingSample(
    std::span<const uint64_t> counts, double tau, Rng& rng);

/// Scaling step on observed counts: each of the o_i records duplicated
/// floor(tau') times plus Binomial(o_i, frac(tau')) extras.
std::vector<uint64_t> ScaleCounts(const std::vector<uint64_t>& observed,
                                  double tau_prime, Rng& rng);

}  // namespace recpriv::core
