#include "core/generalization.h"

#include <memory>

#include "common/union_find.h"
#include "stats/chi_squared.h"

namespace recpriv::core {

using recpriv::table::Attribute;
using recpriv::table::Dictionary;
using recpriv::table::Predicate;
using recpriv::table::Schema;
using recpriv::table::Table;

Result<Generalization> ComputeGeneralization(
    const Table& t, const GeneralizationOptions& options) {
  const Schema& schema = *t.schema();
  const size_t m = schema.sa_domain_size();
  const size_t sa_col = schema.sensitive_index();

  Generalization plan;
  plan.merges.resize(schema.num_attributes());

  for (size_t attr = 0; attr < schema.num_attributes(); ++attr) {
    AttributeMerge& merge = plan.merges[attr];
    merge.attribute = attr;
    const size_t k = schema.attribute(attr).domain.size();
    merge.domain_before = k;

    if (attr == sa_col) {
      // SA is never generalized: identity mapping.
      merge.code_mapping.resize(k);
      for (uint32_t v = 0; v < k; ++v) {
        merge.code_mapping[v] = v;
        merge.merged_names.push_back(schema.attribute(attr).domain.value(v));
      }
      merge.domain_after = k;
      continue;
    }

    // SA histogram conditioned on each value of this attribute: O_i of §3.4.
    std::vector<std::vector<uint64_t>> cond(k, std::vector<uint64_t>(m, 0));
    std::vector<uint64_t> totals(k, 0);
    for (size_t r = 0; r < t.num_rows(); ++r) {
      uint32_t v = t.at(r, attr);
      ++cond[v][t.at(r, sa_col)];
      ++totals[v];
    }

    // Pairwise chi-squared tests; link when we fail to disprove the null.
    UnionFind uf(k);
    for (size_t a = 0; a < k; ++a) {
      if (totals[a] == 0) continue;  // no evidence: leave singleton
      for (size_t b = a + 1; b < k; ++b) {
        if (totals[b] == 0) continue;
        if (uf.Connected(a, b)) continue;  // already one component
        RECPRIV_ASSIGN_OR_RETURN(
            bool same, stats::SameImpactOnSA(cond[a], cond[b],
                                             options.significance));
        if (same) uf.Union(a, b);
      }
    }

    merge.code_mapping = uf.DenseLabels();
    merge.domain_after = uf.NumComponents();
    // Generalized value names: members joined with '|', in code order.
    merge.merged_names.assign(merge.domain_after, "");
    for (uint32_t v = 0; v < k; ++v) {
      std::string& name = merge.merged_names[merge.code_mapping[v]];
      if (!name.empty()) name += "|";
      name += schema.attribute(attr).domain.value(v);
    }
  }
  return plan;
}

Result<Table> ApplyGeneralization(const Generalization& plan, const Table& t) {
  const Schema& schema = *t.schema();
  if (plan.merges.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "generalization plan arity does not match table schema");
  }
  std::vector<Attribute> attrs;
  attrs.reserve(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    RECPRIV_ASSIGN_OR_RETURN(
        Dictionary dom, Dictionary::FromValues(plan.merges[a].merged_names));
    attrs.push_back(Attribute{schema.attribute(a).name, std::move(dom)});
  }
  RECPRIV_ASSIGN_OR_RETURN(
      Schema gen_schema, Schema::Make(std::move(attrs),
                                      schema.sensitive_index()));
  Table out(std::make_shared<Schema>(std::move(gen_schema)));
  out.Reserve(t.num_rows());
  std::vector<uint32_t> row(schema.num_attributes());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      row[a] = plan.MapCode(a, t.at(r, a));
    }
    out.AppendRowUnchecked(row);
  }
  return out;
}

Result<Predicate> MapPredicate(const Generalization& plan,
                               const Predicate& original) {
  if (plan.merges.size() != original.num_attributes()) {
    return Status::InvalidArgument(
        "generalization plan arity does not match predicate");
  }
  Predicate mapped(original.num_attributes());
  for (size_t a = 0; a < original.num_attributes(); ++a) {
    if (original.is_bound(a)) {
      if (original.code(a) >= plan.merges[a].code_mapping.size()) {
        return Status::OutOfRange("predicate code outside plan domain");
      }
      mapped.Bind(a, plan.MapCode(a, original.code(a)));
    }
  }
  return mapped;
}

}  // namespace recpriv::core
