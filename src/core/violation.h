// Violation audit: the v_g / v_r measurements of the paper's Figures 2 & 4.
//
// v_g = fraction of personal groups violating (lambda,delta)-reconstruction
//       privacy under plain uniform perturbation;
// v_r = fraction of records contained in a violating group ("coverage":
//       every record of a violating group is exposed to the same accurate
//       personal reconstruction).

#pragma once

#include <cstdint>
#include <vector>

#include "core/reconstruction_privacy.h"
#include "table/group_index.h"

namespace recpriv::core {

/// Result of auditing one dataset against one privacy specification.
struct ViolationReport {
  size_t num_groups = 0;
  size_t num_records = 0;
  size_t violating_groups = 0;
  uint64_t violating_records = 0;
  std::vector<size_t> violating_group_ids;  ///< indices into the GroupIndex

  /// v_g: fraction of groups violating.
  double GroupViolationRate() const {
    return num_groups == 0
               ? 0.0
               : static_cast<double>(violating_groups) /
                     static_cast<double>(num_groups);
  }
  /// v_r: fraction of records in violating groups.
  double RecordViolationRate() const {
    return num_records == 0
               ? 0.0
               : static_cast<double>(violating_records) /
                     static_cast<double>(num_records);
  }
};

/// Audits every personal group of `index` against `params` (Corollary 4).
/// This asks: if D* were produced by plain UP at params.retention_p, which
/// groups would admit an accurate personal reconstruction?
ViolationReport AuditViolations(const recpriv::table::GroupIndex& index,
                                const PrivacyParams& params);

/// Audit over raw (group size, max frequency) pairs — used by the count-path
/// experiment harness.
ViolationReport AuditViolations(
    const std::vector<std::pair<uint64_t, double>>& group_profiles,
    const PrivacyParams& params);

}  // namespace recpriv::core
