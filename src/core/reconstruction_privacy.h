// (lambda, delta)-reconstruction privacy: the paper's central criterion
// (Definition 3) and its efficient closed-form test (Corollary 4 / Eq. 10).
//
// A SA value with frequency f in a personal group g is (lambda,delta)-
// reconstruction-private iff the best (Chernoff-derived) upper bound on
// Pr[(F'-f)/f > lambda] / Pr[(F'-f)/f < -lambda] is at least delta — i.e.
// the adversary cannot certify a small reconstruction error. Closed form,
// for lambda in (0, 1 + ((1-p)/m)/(p f)]:
//
//   private  <=>  |g| <= s = -2 (f p + (1-p)/m) ln(delta) / (lambda p f)^2
//
// The group-level test uses f = max frequency of any SA value in g
// (Eq. 10): s is decreasing in f, so the most frequent value binds.

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "stats/chernoff.h"
#include "table/group_index.h"

namespace recpriv::core {

/// The privacy specification (lambda, delta) plus the perturbation setting.
struct PrivacyParams {
  double lambda = 0.3;  ///< relative-error threshold, > 0
  double delta = 0.3;   ///< minimum tail-probability bound, in [0, 1]
  double retention_p = 0.5;  ///< perturbation retention probability p
  size_t domain_m = 2;       ///< SA domain size m (>= 2)

  Status Validate() const;
};

/// Maximum group size s_g (Eq. 10) for a group whose max SA frequency is f.
/// Returns +infinity when f == 0 (no SA value to reconstruct). Handles both
/// tail regimes: the closed form above when omega(lambda) <= 1, and the
/// upper-tail-only bound (2 + omega) |ln delta| / (omega^2 (f p + (1-p)/m))
/// when lambda exceeds the lower-tail range. delta == 0 or 1 yield the
/// natural limits (+infinity / 0 trials allowed... see .cc).
double MaxGroupSize(const PrivacyParams& params, double max_frequency);

/// Corollary 4 test for one SA value: is `sa frequency f` (lambda,delta)-
/// reconstruction-private in a group of `group_size` perturbed records?
bool ValueIsPrivate(const PrivacyParams& params, uint64_t group_size,
                    double frequency);

/// Group-level test: every SA value private <=> |g| <= s_g with f = max
/// frequency (Eq. 10 discussion).
bool GroupIsPrivate(const PrivacyParams& params, uint64_t group_size,
                    double max_frequency);

/// Convenience overload over an indexed personal group.
bool GroupIsPrivate(const PrivacyParams& params,
                    const recpriv::table::PersonalGroup& group);

/// Diagnostic: the best (smallest) Chernoff upper bound min{U, L} the
/// adversary can put on a lambda-relative error for this value; the value
/// is private iff this is >= delta.
double BestTailBound(const PrivacyParams& params, uint64_t group_size,
                     double frequency);

}  // namespace recpriv::core
