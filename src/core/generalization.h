// Generalized personal groups (paper §3.4): merge public-attribute values
// with the same impact on SA so that aggregate groups cannot be used as
// surrogate personal groups.
//
// For each public attribute Ai and each pair of its values (x, x'), run the
// two-binned-distribution chi-squared test of Eq. (4) on the SA histograms
// conditioned on Ai = x and Ai = x' (df = m, significance 0.05). Failing to
// reject the null links x and x' in a merge graph; every connected component
// becomes one generalized value. After this preprocessing every generalized
// value of Ai has a (statistically) different impact on SA.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/predicate.h"
#include "table/schema.h"
#include "table/table.h"

namespace recpriv::core {

/// Merge plan for one attribute.
struct AttributeMerge {
  size_t attribute = 0;                ///< schema index
  std::vector<uint32_t> code_mapping;  ///< old code -> new (generalized) code
  std::vector<std::string> merged_names;  ///< names of generalized values
  size_t domain_before = 0;
  size_t domain_after = 0;
};

/// Full generalization plan: one AttributeMerge per attribute (identity for
/// SA). Produced against a specific schema; Apply/Map must use tables and
/// predicates over the same schema.
struct Generalization {
  std::vector<AttributeMerge> merges;  ///< indexed by attribute

  /// Generalized value code of (attribute, old code).
  uint32_t MapCode(size_t attribute, uint32_t code) const {
    return merges[attribute].code_mapping[code];
  }
};

/// Options for the merge procedure.
struct GeneralizationOptions {
  double significance = 0.05;  ///< chi-squared significance level (paper)
};

/// Computes the merge plan from the raw table D. Values that never occur in
/// D carry no evidence and are left as singleton generalized values.
Result<Generalization> ComputeGeneralization(
    const recpriv::table::Table& t,
    const GeneralizationOptions& options = GeneralizationOptions{});

/// Rewrites `t` onto the generalized schema (new dictionaries, mapped codes;
/// SA untouched). The result's personal groups are the paper's generalized
/// personal groups.
Result<recpriv::table::Table> ApplyGeneralization(
    const Generalization& plan, const recpriv::table::Table& t);

/// Maps a predicate stated over original values onto the generalized schema
/// (paper §6.1: the query pool is generated from original NA values, then
/// NA values are replaced with their aggregated values).
Result<recpriv::table::Predicate> MapPredicate(
    const Generalization& plan, const recpriv::table::Predicate& original);

}  // namespace recpriv::core
