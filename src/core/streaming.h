// Streaming publication (paper §3.1): "data perturbation is more amendable
// to record insertion because each record is perturbed independently and
// the reconstruction is performed by the user himself."
//
// StreamingPublisher supports two publication styles over a growing table:
//
//  * append-only UP: InsertAndRelease perturbs each arriving record
//    immediately (independent coin toss) and returns the publishable row —
//    no previously released row ever changes. This is the insert-friendly
//    mode the paper contrasts with output perturbation (where a new record
//    changes many published query answers at once).
//  * snapshot SPS: Publish() re-runs the full SPS pipeline on the current
//    buffered data, enforcing (lambda, delta)-reconstruction-privacy for
//    the groups as they stand now. As groups grow past s_g, append-only UP
//    alone starts violating — Audit() exposes exactly when.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/reconstruction_privacy.h"
#include "core/sps.h"
#include "core/violation.h"
#include "table/table.h"

namespace recpriv::core {

/// Accepts record inserts and publishes perturbed releases.
class StreamingPublisher {
 public:
  /// The schema's SA domain size must match params.domain_m.
  static Result<StreamingPublisher> Make(recpriv::table::SchemaPtr schema,
                                         PrivacyParams params);

  /// Buffers a raw record (codes in schema order, validated).
  Status Insert(std::span<const uint32_t> row);

  /// Buffers a raw record AND returns its uniformly perturbed publishable
  /// form (append-only UP mode). NA columns pass through; SA is perturbed
  /// with an independent coin.
  Result<std::vector<uint32_t>> InsertAndRelease(std::span<const uint32_t> row,
                                                 Rng& rng);

  /// Audits the buffered data: which personal groups would violate
  /// (lambda, delta)-reconstruction privacy under plain UP right now.
  ViolationReport Audit() const;

  /// Full SPS snapshot of the current buffer (Theorem 4/5 guarantees).
  Result<SpsTableResult> Publish(Rng& rng) const;

  size_t num_records() const { return buffer_.num_rows(); }
  const recpriv::table::Table& buffered() const { return buffer_; }
  const PrivacyParams& params() const { return params_; }

 private:
  StreamingPublisher(recpriv::table::SchemaPtr schema, PrivacyParams params)
      : params_(params), buffer_(std::move(schema)) {}

  PrivacyParams params_;
  recpriv::table::Table buffer_;
};

}  // namespace recpriv::core
