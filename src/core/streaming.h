// Streaming publication (paper §3.1): "data perturbation is more amendable
// to record insertion because each record is perturbed independently and
// the reconstruction is performed by the user himself."
//
// StreamingPublisher supports three publication styles over a growing table:
//
//  * append-only UP: InsertAndRelease perturbs each arriving record
//    immediately (independent coin toss) and returns the publishable row —
//    no previously released row ever changes. This is the insert-friendly
//    mode the paper contrasts with output perturbation (where a new record
//    changes many published query answers at once).
//  * snapshot SPS: Publish() re-runs the full SPS pipeline on the current
//    buffered data, enforcing (lambda, delta)-reconstruction-privacy for
//    the groups as they stand now. As groups grow past s_g, append-only UP
//    alone starts violating — Audit() exposes exactly when.
//  * incremental SPS: PublishIncremental() republishes by delta, not by
//    rebuild. Rows inserted since the previous incremental publish form the
//    delta; a small side FlatGroupIndex over just those rows names the
//    personal groups the delta touched. Only touched groups are re-run
//    through count-level SPS (on their full raw histogram, base + delta);
//    every untouched group carries its previous perturbation forward
//    bit-identically. The next index is then assembled by merging the
//    sorted key runs of the base release and the touched-group overlay
//    (FlatGroupIndex::MergeRuns, two-level LSM-style) instead of sorting
//    the whole table — republish cost scales with the delta, not the table.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/reconstruction_privacy.h"
#include "core/sps.h"
#include "core/violation.h"
#include "table/flat_group_index.h"
#include "table/table.h"

namespace recpriv::core {

/// Bookkeeping from one incremental republish.
struct IncrementalPublishStats {
  size_t delta_rows = 0;      ///< raw rows inserted since the last publish
  size_t groups_touched = 0;  ///< groups the delta hit — re-run through SPS
  size_t groups_carried = 0;  ///< base groups carried forward bit-identically
  SpsStats sps;               ///< SPS bookkeeping over the touched groups only
};

/// One incremental release: the publishable table D*_2 in canonical
/// group-major form, its index, and the publish bookkeeping.
struct IncrementalPublishResult {
  recpriv::table::Table table;
  recpriv::table::FlatGroupIndex index;
  IncrementalPublishStats stats;
};

/// Accepts record inserts and publishes perturbed releases.
class StreamingPublisher {
 public:
  /// The schema's SA domain size must match params.domain_m.
  static Result<StreamingPublisher> Make(recpriv::table::SchemaPtr schema,
                                         PrivacyParams params);

  /// Buffers a raw record (codes in schema order, validated).
  Status Insert(std::span<const uint32_t> row);

  /// Buffers a raw record AND returns its uniformly perturbed publishable
  /// form (append-only UP mode). NA columns pass through; SA is perturbed
  /// with an independent coin. The row is validated fully before the first
  /// Rng draw, so a rejected row leaves both the buffer and the caller's
  /// RNG stream untouched — record/replay byte-equality depends on it.
  Result<std::vector<uint32_t>> InsertAndRelease(std::span<const uint32_t> row,
                                                 Rng& rng);

  /// Audits the buffered data: which personal groups would violate
  /// (lambda, delta)-reconstruction privacy under plain UP right now.
  ViolationReport Audit() const;

  /// Same audit computed from the incremental representation (the
  /// cumulative raw-group run plus the not-yet-published delta rows)
  /// instead of re-grouping the whole buffer — agrees with Audit() on
  /// every aggregate (group/record counts and rates; the reported group
  /// ids are in key order rather than first-occurrence order), in
  /// O(groups + delta) after the side grouping.
  ViolationReport AuditFromRuns() const;

  /// Full SPS snapshot of the current buffer (Theorem 4/5 guarantees).
  /// Stateless with respect to the incremental pipeline below.
  Result<SpsTableResult> Publish(Rng& rng) const;

  /// Incremental SPS republish (see the file comment). The first call
  /// treats the whole buffer as the delta; later calls re-perturb only
  /// groups touched by rows inserted since the previous call, drawing from
  /// `rng` once per touched group in ascending key order (deterministic
  /// for a given insert/publish history). With `merge_index` the returned
  /// index is built by the run-merge path; without it, by a full
  /// radix-sort Build over the same table — the two are bit-identical, so
  /// the flag only selects the build algorithm (the reference arm for
  /// tests, benches and CI).
  Result<IncrementalPublishResult> PublishIncremental(Rng& rng,
                                                      bool merge_index = true);

  size_t num_records() const { return buffer_.num_rows(); }
  const recpriv::table::Table& buffered() const { return buffer_; }
  const PrivacyParams& params() const { return params_; }
  /// Rows covered by the last incremental publish (0 before the first).
  size_t published_rows() const { return published_rows_; }
  /// Rows inserted since the last incremental publish.
  size_t pending_delta_rows() const {
    return buffer_.num_rows() - published_rows_;
  }

 private:
  StreamingPublisher(recpriv::table::SchemaPtr schema, PrivacyParams params)
      : params_(params), buffer_(std::move(schema)) {}

  PrivacyParams params_;
  recpriv::table::Table buffer_;

  /// Incremental pipeline state. The raw run accumulates the grouped SA
  /// histograms of every row covered by an incremental publish (keys
  /// strictly ascending, NA-lex order); the base run is the previous
  /// incremental release's groups with their published (perturbed)
  /// histograms — the sections MergeRuns borrows as its base level.
  size_t published_rows_ = 0;
  std::vector<uint32_t> raw_na_;       ///< G_raw x num_public
  std::vector<uint64_t> raw_counts_;   ///< G_raw x m, raw histograms
  std::vector<uint32_t> base_na_;      ///< G_base x num_public
  std::vector<uint64_t> base_counts_;  ///< G_base x m, published histograms
};

}  // namespace recpriv::core
