#include "core/sps.h"

#include <cmath>

#include "perturb/uniform_perturbation.h"

namespace recpriv::core {

using recpriv::perturb::PerturbCounts;
using recpriv::perturb::PerturbValue;
using recpriv::perturb::UniformPerturbation;
using recpriv::table::GroupIndex;
using recpriv::table::PersonalGroup;
using recpriv::table::Table;

std::vector<uint64_t> FrequencyPreservingSample(
    std::span<const uint64_t> counts, double tau, Rng& rng) {
  std::vector<uint64_t> sample(counts.size(), 0);
  for (size_t i = 0; i < counts.size(); ++i) {
    const double target = static_cast<double>(counts[i]) * tau;
    uint64_t base = static_cast<uint64_t>(std::floor(target));
    if (rng.NextBernoulli(target - std::floor(target))) ++base;
    sample[i] = std::min<uint64_t>(base, counts[i]);
  }
  return sample;
}

std::vector<uint64_t> ScaleCounts(const std::vector<uint64_t>& observed,
                                  double tau_prime, Rng& rng) {
  std::vector<uint64_t> out(observed.size(), 0);
  const uint64_t whole = static_cast<uint64_t>(std::floor(tau_prime));
  const double frac = tau_prime - std::floor(tau_prime);
  for (size_t i = 0; i < observed.size(); ++i) {
    out[i] = observed[i] * whole + SampleBinomial(rng, observed[i], frac);
  }
  return out;
}

Result<SpsCountsResult> SpsPerturbGroupCounts(
    const PrivacyParams& params, std::span<const uint64_t> counts, Rng& rng) {
  RECPRIV_RETURN_NOT_OK(params.Validate());
  if (counts.size() != params.domain_m) {
    return Status::InvalidArgument("counts length must equal m");
  }
  const UniformPerturbation up{params.retention_p, params.domain_m};

  uint64_t group_size = 0;
  uint64_t max_count = 0;
  for (uint64_t c : counts) {
    group_size += c;
    max_count = std::max(max_count, c);
  }
  SpsCountsResult result;
  if (group_size == 0) {
    result.observed.assign(params.domain_m, 0);
    return result;
  }
  const double max_f = static_cast<double>(max_count) /
                       static_cast<double>(group_size);
  const double s_g = MaxGroupSize(params, max_f);

  if (static_cast<double>(group_size) <= s_g) {
    // Group already satisfies reconstruction privacy: plain UP, no sampling.
    RECPRIV_ASSIGN_OR_RETURN(result.observed, PerturbCounts(up, counts, rng));
    return result;
  }

  // 1. Sampling.
  const double tau = s_g / static_cast<double>(group_size);
  std::vector<uint64_t> g1 = FrequencyPreservingSample(counts, tau, rng);
  uint64_t sample_size = 0;
  for (uint64_t c : g1) sample_size += c;
  result.sampled = true;
  result.sample_size = sample_size;
  if (sample_size == 0) {
    // Degenerate: s_g < 1 and every Bernoulli came up empty. Nothing can be
    // published for this group without violating privacy.
    result.observed.assign(params.domain_m, 0);
    return result;
  }

  // 2. Perturbing.
  RECPRIV_ASSIGN_OR_RETURN(std::vector<uint64_t> g1_star,
                           PerturbCounts(up, g1, rng));

  // 3. Scaling back to the original group size.
  const double tau_prime = static_cast<double>(group_size) /
                           static_cast<double>(sample_size);
  result.observed = ScaleCounts(g1_star, tau_prime, rng);
  return result;
}

Result<SpsTableResult> SpsPerturbTable(const PrivacyParams& params,
                                       const Table& input, Rng& rng) {
  RECPRIV_RETURN_NOT_OK(params.Validate());
  if (params.domain_m != input.schema()->sa_domain_size()) {
    return Status::InvalidArgument(
        "params.domain_m does not match table SA domain size");
  }
  const UniformPerturbation up{params.retention_p, params.domain_m};
  const size_t sa_col = input.schema()->sensitive_index();
  const size_t num_attrs = input.schema()->num_attributes();

  // Preprocessing: sort into personal groups (one O(|D| log |D|) pass).
  GroupIndex index = GroupIndex::Build(input);

  SpsTableResult result{Table(input.schema()), SpsStats{}};
  result.stats.num_groups = index.num_groups();
  result.stats.records_in = input.num_rows();
  result.table.Reserve(input.num_rows());

  std::vector<uint32_t> row(num_attrs);
  auto emit = [&](size_t src_row, uint32_t perturbed_sa, uint64_t copies) {
    if (copies == 0) return;
    for (size_t c = 0; c < num_attrs; ++c) row[c] = input.at(src_row, c);
    row[sa_col] = perturbed_sa;
    for (uint64_t k = 0; k < copies; ++k) {
      result.table.AppendRowUnchecked(row);
    }
    result.stats.records_out += copies;
  };

  for (const PersonalGroup& g : index.groups()) {
    const double s_g = MaxGroupSize(params, g.MaxFrequency());
    if (static_cast<double>(g.size()) <= s_g) {
      // No sampling: perturb every record in place.
      for (size_t r : g.rows) {
        emit(r, PerturbValue(up, input.at(r, sa_col), rng), 1);
      }
      continue;
    }
    ++result.stats.groups_sampled;

    // 1. Sampling: per SA value take floor(c tau) + Bernoulli(frac) records.
    // Records within a (group, SA value) bucket are identical, so taking a
    // prefix of the bucket is "pick any".
    const double tau = s_g / static_cast<double>(g.size());
    std::vector<std::vector<size_t>> buckets(params.domain_m);
    for (size_t r : g.rows) buckets[input.at(r, sa_col)].push_back(r);

    std::vector<size_t> sampled_rows;
    for (const auto& bucket : buckets) {
      const double target = static_cast<double>(bucket.size()) * tau;
      uint64_t take = static_cast<uint64_t>(std::floor(target));
      if (rng.NextBernoulli(target - std::floor(target))) ++take;
      take = std::min<uint64_t>(take, bucket.size());
      for (uint64_t k = 0; k < take; ++k) sampled_rows.push_back(bucket[k]);
    }
    result.stats.records_sampled += sampled_rows.size();
    if (sampled_rows.empty()) continue;  // degenerate tiny s_g

    // 2+3. Perturb each sampled record, then scale by duplication. The
    // single fused scan the paper describes: sample -> perturb -> duplicate.
    const double tau_prime = static_cast<double>(g.size()) /
                             static_cast<double>(sampled_rows.size());
    const uint64_t whole = static_cast<uint64_t>(std::floor(tau_prime));
    const double frac = tau_prime - std::floor(tau_prime);
    for (size_t r : sampled_rows) {
      uint32_t perturbed = PerturbValue(up, input.at(r, sa_col), rng);
      uint64_t copies = whole + (rng.NextBernoulli(frac) ? 1 : 0);
      emit(r, perturbed, copies);
    }
  }
  return result;
}

}  // namespace recpriv::core
