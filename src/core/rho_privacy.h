// rho1-rho2 privacy for randomization operators (Evfimievski, Gehrke,
// Srikant [6] — the criterion the paper names in §3.1/§3.3 as enforceable
// "through a proper choice of p", with reconstruction privacy layered on
// top as additional protection).
//
// An adversary with prior belief Pr[property Q(u)] <= rho1 suffers an
// *upward (rho1, rho2) privacy breach* if some observed output w pushes the
// posterior Pr[Q(u) | w] above rho2. The amplification result of [6] states
// that a randomization operator with amplification factor
//
//     gamma = max_w max_{u, v} Pr[w | u] / Pr[w | v]
//
// permits no upward (rho1, rho2) breach whenever
//
//     gamma <= ( rho2 (1 - rho1) ) / ( rho1 (1 - rho2) )      (breach bound)
//
// For the uniform perturbation of Eq. (3), gamma = 1 + p m / (1 - p), which
// yields a closed-form maximum retention probability for a target
// (rho1, rho2):  p <= (B - 1) / (m + B - 1)  with B the breach bound above.

#pragma once

#include <cstddef>

#include "common/result.h"

namespace recpriv::core {

/// A (rho1, rho2) privacy target with 0 < rho1 < rho2 < 1.
struct RhoPrivacy {
  double rho1 = 0.1;
  double rho2 = 0.5;

  Status Validate() const;

  /// The breach bound B = rho2 (1 - rho1) / (rho1 (1 - rho2)); an operator
  /// with amplification gamma <= B admits no upward (rho1, rho2) breach.
  double BreachBound() const;
};

/// Amplification factor of the Eq. (3) uniform operator:
/// gamma = (p + (1-p)/m) / ((1-p)/m) = 1 + p m / (1 - p).
/// Requires m >= 2 and p in (0, 1).
double UniformAmplificationGamma(double retention_p, size_t domain_m);

/// True iff uniform perturbation at `retention_p` over an m-value domain
/// satisfies the (rho1, rho2) target (gamma <= breach bound).
Result<bool> UniformSatisfiesRho(const RhoPrivacy& target, double retention_p,
                                 size_t domain_m);

/// The largest retention probability p for which uniform perturbation over
/// an m-value domain meets the (rho1, rho2) target:
/// p_max = (B - 1) / (m + B - 1). This is the paper's "proper choice of p"
/// input to the reconstruction-privacy problem (Definition 4).
Result<double> MaxRetentionForRho(const RhoPrivacy& target, size_t domain_m);

}  // namespace recpriv::core
