#include "core/streaming.h"

#include "perturb/uniform_perturbation.h"
#include "table/group_index.h"

namespace recpriv::core {

using recpriv::perturb::PerturbValue;
using recpriv::perturb::UniformPerturbation;
using recpriv::table::GroupIndex;
using recpriv::table::SchemaPtr;

Result<StreamingPublisher> StreamingPublisher::Make(SchemaPtr schema,
                                                    PrivacyParams params) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  RECPRIV_RETURN_NOT_OK(params.Validate());
  if (schema->sa_domain_size() != params.domain_m) {
    return Status::InvalidArgument(
        "params.domain_m does not match the schema's SA domain size");
  }
  return StreamingPublisher(std::move(schema), params);
}

Status StreamingPublisher::Insert(std::span<const uint32_t> row) {
  return buffer_.AppendRow(row);
}

Result<std::vector<uint32_t>> StreamingPublisher::InsertAndRelease(
    std::span<const uint32_t> row, Rng& rng) {
  RECPRIV_RETURN_NOT_OK(buffer_.AppendRow(row));
  const UniformPerturbation up{params_.retention_p, params_.domain_m};
  std::vector<uint32_t> released(row.begin(), row.end());
  const size_t sa_col = buffer_.schema()->sensitive_index();
  released[sa_col] = PerturbValue(up, released[sa_col], rng);
  return released;
}

ViolationReport StreamingPublisher::Audit() const {
  return AuditViolations(GroupIndex::Build(buffer_), params_);
}

Result<SpsTableResult> StreamingPublisher::Publish(Rng& rng) const {
  return SpsPerturbTable(params_, buffer_, rng);
}

}  // namespace recpriv::core
