#include "core/streaming.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "perturb/uniform_perturbation.h"
#include "table/group_index.h"

namespace recpriv::core {

using recpriv::perturb::PerturbValue;
using recpriv::perturb::UniformPerturbation;
using recpriv::table::FlatGroupIndex;
using recpriv::table::GroupIndex;
using recpriv::table::SchemaPtr;
using recpriv::table::Table;

namespace {

/// One sorted run of raw groups: NA keys ascending with SA histograms.
struct SideRun {
  std::vector<uint32_t> na;      ///< num_groups x num_public
  std::vector<uint64_t> counts;  ///< num_groups x m
  uint64_t num_groups = 0;
};

/// Groups the rows [begin, num_rows) of `t` — the delta of an incremental
/// publish — with a small side FlatGroupIndex build and keeps its (key,
/// raw histogram) run. Cost is the side build over the delta only.
SideRun BuildSideRun(const Table& t, size_t begin) {
  std::vector<size_t> rows(t.num_rows() - begin);
  std::iota(rows.begin(), rows.end(), begin);
  const Table delta = t.Select(rows);
  const FlatGroupIndex side = FlatGroupIndex::Build(delta);
  const FlatGroupIndex::Storage s = side.storage();
  SideRun run;
  run.na.assign(s.na_codes.begin(), s.na_codes.end());
  run.counts.assign(s.sa_counts.begin(), s.sa_counts.end());
  run.num_groups = s.num_groups;
  return run;
}

/// Three-way NA-lexicographic key compare (n_pub == 0 compares equal:
/// every row belongs to the single empty-key group).
int LexCompare(const uint32_t* a, const uint32_t* b, size_t n_pub) {
  for (size_t k = 0; k < n_pub; ++k) {
    if (a[k] != b[k]) return a[k] < b[k] ? -1 : 1;
  }
  return 0;
}

/// Folds `delta` into the cumulative raw run (histograms summed on key
/// collisions) and collects the touched groups — every delta key with its
/// full merged histogram — in ascending key order.
void MergeIntoRawRun(size_t n_pub, size_t m, std::vector<uint32_t>& raw_na,
                     std::vector<uint64_t>& raw_counts, const SideRun& delta,
                     std::vector<uint32_t>* touched_na,
                     std::vector<uint64_t>* touched_counts) {
  const uint64_t gr = m == 0 ? 0 : raw_counts.size() / m;
  std::vector<uint32_t> new_na;
  std::vector<uint64_t> new_counts;
  new_na.reserve(raw_na.size() + delta.na.size());
  new_counts.reserve(raw_counts.size() + delta.counts.size());

  uint64_t i = 0, j = 0;
  while (i < gr || j < delta.num_groups) {
    int cmp;
    if (i == gr) {
      cmp = 1;
    } else if (j == delta.num_groups) {
      cmp = -1;
    } else {
      cmp = LexCompare(raw_na.data() + i * n_pub,
                       delta.na.data() + j * n_pub, n_pub);
    }
    if (cmp < 0) {
      new_na.insert(new_na.end(), raw_na.data() + i * n_pub,
                    raw_na.data() + (i + 1) * n_pub);
      new_counts.insert(new_counts.end(), raw_counts.data() + i * m,
                        raw_counts.data() + (i + 1) * m);
      ++i;
      continue;
    }
    const uint32_t* key = delta.na.data() + j * n_pub;
    new_na.insert(new_na.end(), key, key + n_pub);
    touched_na->insert(touched_na->end(), key, key + n_pub);
    const size_t hist_at = new_counts.size();
    new_counts.insert(new_counts.end(), delta.counts.data() + j * m,
                      delta.counts.data() + (j + 1) * m);
    if (cmp == 0) {
      for (size_t sa = 0; sa < m; ++sa) {
        new_counts[hist_at + sa] += raw_counts[i * m + sa];
      }
      ++i;
    }
    touched_counts->insert(touched_counts->end(),
                           new_counts.begin() + hist_at, new_counts.end());
    ++j;
  }
  raw_na.swap(new_na);
  raw_counts.swap(new_counts);
}

/// The canonical group-major table an index describes: groups in key
/// order, each row carrying its group's NA key, with the group's SA values
/// laid out in ascending-value runs — the table whose Build is the
/// identity row permutation, i.e. exactly what MergeRuns's output indexes.
Result<Table> MaterializeTable(const FlatGroupIndex& idx) {
  const SchemaPtr& schema = idx.schema();
  const size_t n = idx.num_records();
  const std::vector<size_t>& pub = idx.public_indices();
  const size_t sa_col = schema->sensitive_index();
  const FlatGroupIndex::Storage st = idx.storage();

  std::vector<std::vector<uint32_t>> cols(schema->num_attributes());
  for (std::vector<uint32_t>& c : cols) c.resize(n);
  for (size_t g = 0; g < idx.num_groups(); ++g) {
    const size_t off = size_t(st.row_offsets[g]);
    const size_t size = size_t(st.row_offsets[g + 1]) - off;
    const std::span<const uint32_t> key = idx.na_codes(g);
    for (size_t k = 0; k < pub.size(); ++k) {
      std::fill_n(cols[pub[k]].begin() + off, size, key[k]);
    }
    size_t pos = off;
    const std::span<const uint64_t> hist = idx.sa_counts(g);
    for (uint32_t v = 0; v < hist.size(); ++v) {
      std::fill_n(cols[sa_col].begin() + pos, size_t(hist[v]), v);
      pos += size_t(hist[v]);
    }
  }
  return Table::FromColumns(schema, std::move(cols));
}

}  // namespace

Result<StreamingPublisher> StreamingPublisher::Make(SchemaPtr schema,
                                                    PrivacyParams params) {
  if (schema == nullptr) {
    return Status::InvalidArgument("schema must not be null");
  }
  RECPRIV_RETURN_NOT_OK(params.Validate());
  if (schema->sa_domain_size() != params.domain_m) {
    return Status::InvalidArgument(
        "params.domain_m does not match the schema's SA domain size");
  }
  return StreamingPublisher(std::move(schema), params);
}

Status StreamingPublisher::Insert(std::span<const uint32_t> row) {
  return buffer_.AppendRow(row);
}

Result<std::vector<uint32_t>> StreamingPublisher::InsertAndRelease(
    std::span<const uint32_t> row, Rng& rng) {
  // Validate fully BEFORE the first Rng draw: a rejected row must leave
  // the caller's RNG stream untouched, or every release after it shifts
  // and record/replay byte-equality breaks.
  RECPRIV_RETURN_NOT_OK(buffer_.ValidateRow(row));
  const UniformPerturbation up{params_.retention_p, params_.domain_m};
  std::vector<uint32_t> released(row.begin(), row.end());
  const size_t sa_col = buffer_.schema()->sensitive_index();
  released[sa_col] = PerturbValue(up, released[sa_col], rng);
  buffer_.AppendRowUnchecked(row);
  return released;
}

ViolationReport StreamingPublisher::Audit() const {
  return AuditViolations(GroupIndex::Build(buffer_), params_);
}

ViolationReport StreamingPublisher::AuditFromRuns() const {
  const size_t n_pub = buffer_.schema()->public_indices().size();
  const size_t m = params_.domain_m;
  SideRun pending;
  if (pending_delta_rows() > 0) {
    pending = BuildSideRun(buffer_, published_rows_);
  }

  // (size, max frequency) profile of every group of raw run ⊕ pending
  // delta, merged by key — the same groups Audit() builds from the buffer.
  const uint64_t gr = raw_counts_.size() / m;
  std::vector<std::pair<uint64_t, double>> profiles;
  uint64_t i = 0, j = 0;
  std::vector<uint64_t> hist(m);
  while (i < gr || j < pending.num_groups) {
    int cmp;
    if (i == gr) {
      cmp = 1;
    } else if (j == pending.num_groups) {
      cmp = -1;
    } else {
      cmp = LexCompare(raw_na_.data() + i * n_pub,
                       pending.na.data() + j * n_pub, n_pub);
    }
    std::fill(hist.begin(), hist.end(), 0);
    if (cmp <= 0) {
      for (size_t sa = 0; sa < m; ++sa) hist[sa] += raw_counts_[i * m + sa];
      ++i;
    }
    if (cmp >= 0) {
      for (size_t sa = 0; sa < m; ++sa) hist[sa] += pending.counts[j * m + sa];
      ++j;
    }
    uint64_t size = 0, max_count = 0;
    for (const uint64_t c : hist) {
      size += c;
      max_count = std::max(max_count, c);
    }
    profiles.emplace_back(
        size, size == 0 ? 0.0 : double(max_count) / double(size));
  }
  return AuditViolations(profiles, params_);
}

Result<SpsTableResult> StreamingPublisher::Publish(Rng& rng) const {
  return SpsPerturbTable(params_, buffer_, rng);
}

Result<IncrementalPublishResult> StreamingPublisher::PublishIncremental(
    Rng& rng, bool merge_index) {
  const size_t n_pub = buffer_.schema()->public_indices().size();
  const size_t m = params_.domain_m;
  IncrementalPublishStats stats;
  stats.delta_rows = pending_delta_rows();

  // Group the delta with a small side index and fold its raw histograms
  // into the cumulative raw run; the fold yields the touched groups with
  // their full (base + delta) raw histograms in ascending key order.
  std::vector<uint32_t> touched_na;
  std::vector<uint64_t> touched_raw;
  if (stats.delta_rows > 0) {
    const SideRun side = BuildSideRun(buffer_, published_rows_);
    MergeIntoRawRun(n_pub, m, raw_na_, raw_counts_, side, &touched_na,
                    &touched_raw);
  }
  const size_t touched = touched_raw.size() / m;
  stats.groups_touched = touched;

  // SPS privacy re-check on the touched groups only, in ascending key
  // order — the draw order is part of the publish's deterministic
  // contract. Untouched groups keep their previous observed histogram.
  std::vector<uint64_t> overlay_counts(touched * m, 0);
  for (size_t g = 0; g < touched; ++g) {
    const std::span<const uint64_t> raw{touched_raw.data() + g * m, m};
    RECPRIV_ASSIGN_OR_RETURN(const SpsCountsResult res,
                             SpsPerturbGroupCounts(params_, raw, rng));
    for (size_t sa = 0; sa < m; ++sa) {
      stats.sps.records_in += raw[sa];
      stats.sps.records_out += res.observed[sa];
      overlay_counts[g * m + sa] = res.observed[sa];
    }
    ++stats.sps.num_groups;
    if (res.sampled) {
      ++stats.sps.groups_sampled;
      stats.sps.records_sampled += res.sample_size;
    }
  }

  // Carried groups: base groups the overlay does not replace.
  const uint64_t base_groups = base_counts_.size() / m;
  {
    uint64_t overlap = 0, i = 0, j = 0;
    while (i < base_groups && j < touched) {
      const int cmp = LexCompare(base_na_.data() + i * n_pub,
                                 touched_na.data() + j * n_pub, n_pub);
      if (cmp == 0) {
        ++overlap;
        ++i;
        ++j;
      } else if (cmp < 0) {
        ++i;
      } else {
        ++j;
      }
    }
    stats.groups_carried = size_t(base_groups - overlap);
  }

  const FlatGroupIndex::GroupRun base_run{base_na_, base_counts_, base_groups};
  const FlatGroupIndex::GroupRun overlay{touched_na, overlay_counts,
                                         uint64_t(touched)};
  RECPRIV_ASSIGN_OR_RETURN(
      FlatGroupIndex merged,
      FlatGroupIndex::MergeRuns(buffer_.schema(), base_run, overlay));
  RECPRIV_ASSIGN_OR_RETURN(Table table, MaterializeTable(merged));

  // Adopt the merged release as the next base level.
  const FlatGroupIndex::Storage ms = merged.storage();
  base_na_.assign(ms.na_codes.begin(), ms.na_codes.end());
  base_counts_.assign(ms.sa_counts.begin(), ms.sa_counts.end());
  published_rows_ = buffer_.num_rows();

  // Both build paths describe the same canonical table bit-identically;
  // the flag selects run-merge (O(groups + delta)) vs the radix-sort
  // reference (O(n log n)) — see the header.
  FlatGroupIndex index =
      merge_index ? std::move(merged) : FlatGroupIndex::Build(table);
  return IncrementalPublishResult{std::move(table), std::move(index), stats};
}

}  // namespace recpriv::core
