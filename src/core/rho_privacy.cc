#include "core/rho_privacy.h"

namespace recpriv::core {

Status RhoPrivacy::Validate() const {
  if (!(rho1 > 0.0 && rho1 < 1.0) || !(rho2 > 0.0 && rho2 < 1.0)) {
    return Status::InvalidArgument("rho1 and rho2 must be in (0,1)");
  }
  if (rho1 >= rho2) {
    return Status::InvalidArgument("rho1 must be strictly below rho2");
  }
  return Status::OK();
}

double RhoPrivacy::BreachBound() const {
  return rho2 * (1.0 - rho1) / (rho1 * (1.0 - rho2));
}

double UniformAmplificationGamma(double retention_p, size_t domain_m) {
  return 1.0 + retention_p * static_cast<double>(domain_m) /
                   (1.0 - retention_p);
}

Result<bool> UniformSatisfiesRho(const RhoPrivacy& target, double retention_p,
                                 size_t domain_m) {
  RECPRIV_RETURN_NOT_OK(target.Validate());
  if (retention_p <= 0.0 || retention_p >= 1.0) {
    return Status::InvalidArgument("retention probability must be in (0,1)");
  }
  if (domain_m < 2) {
    return Status::InvalidArgument("domain size m must be >= 2");
  }
  return UniformAmplificationGamma(retention_p, domain_m) <=
         target.BreachBound();
}

Result<double> MaxRetentionForRho(const RhoPrivacy& target, size_t domain_m) {
  RECPRIV_RETURN_NOT_OK(target.Validate());
  if (domain_m < 2) {
    return Status::InvalidArgument("domain size m must be >= 2");
  }
  const double bound = target.BreachBound();
  // gamma(p) = 1 + p m / (1-p) is increasing in p; solve gamma(p) = bound.
  const double p_max =
      (bound - 1.0) / (static_cast<double>(domain_m) + bound - 1.0);
  return p_max;
}

}  // namespace recpriv::core
