#include "core/violation.h"

namespace recpriv::core {

ViolationReport AuditViolations(const recpriv::table::GroupIndex& index,
                                const PrivacyParams& params) {
  ViolationReport report;
  report.num_groups = index.num_groups();
  report.num_records = index.num_records();
  for (size_t gi = 0; gi < index.groups().size(); ++gi) {
    const auto& g = index.groups()[gi];
    if (!GroupIsPrivate(params, g)) {
      ++report.violating_groups;
      report.violating_records += g.size();
      report.violating_group_ids.push_back(gi);
    }
  }
  return report;
}

ViolationReport AuditViolations(
    const std::vector<std::pair<uint64_t, double>>& group_profiles,
    const PrivacyParams& params) {
  ViolationReport report;
  report.num_groups = group_profiles.size();
  for (size_t gi = 0; gi < group_profiles.size(); ++gi) {
    const auto& [size, max_f] = group_profiles[gi];
    report.num_records += size;
    if (!GroupIsPrivate(params, size, max_f)) {
      ++report.violating_groups;
      report.violating_records += size;
      report.violating_group_ids.push_back(gi);
    }
  }
  return report;
}

}  // namespace recpriv::core
