// recpriv_snapshot — offline tooling for persisted release snapshots
// (.rps files, src/store/snapshot_format.h):
//
//   recpriv_snapshot pack --release BASE --output FILE.rps [--name NAME]
//       convert a CSV release bundle (BASE.csv + BASE.manifest.json, as
//       written by recpriv_publish --manifest) into a binary snapshot
//   recpriv_snapshot inspect FILE.rps
//       print the superblock, section table and manifest identity after
//       verifying every checksum
//   recpriv_snapshot verify FILE.rps [FILE.rps ...]
//       fully open each snapshot (checksums + every structural invariant
//       of the index arrays) and report OK / the structured error
//   recpriv_snapshot digest FILE.rps [FILE.rps ...]
//       print each file's replication content digest ("xxh64:<hex>",
//       src/repl/digest.h) with its release identity — compare a
//       follower's on-disk epoch against the primary's advertisement
//
// A snapshot packs the complete release: schema and dictionaries, the
// perturbed table, the FlatGroupIndex arrays, and the privacy parameters.
// recpriv_serve --snapshot-dir serves these files directly via mmap.

#include <iomanip>
#include <iostream>
#include <set>

#include "recpriv.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr const char* kUsage = R"(usage: recpriv_snapshot COMMAND [options]

commands:
  pack --release BASE --output FILE.rps [--name NAME] [--epoch N]
                      convert BASE.csv + BASE.manifest.json into a binary
                      snapshot named NAME [default "default"] at epoch N
                      [default 1]
  inspect FILE.rps    print header, section table and identity (verifies
                      all checksums)
  verify FILE.rps...  fully open each file; exit non-zero on the first
                      corrupt or unreadable snapshot
  digest FILE.rps...  print each file's replication content digest
                      ("xxh64:<16 hex>", the XXH64 of the file bytes —
                      exactly what the subscribe stream advertises), plus
                      release name and epoch from its manifest
)";

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

const char* SectionKindName(uint32_t kind) {
  switch (store::SectionKind(kind)) {
    case store::SectionKind::kManifestJson: return "manifest_json";
    case store::SectionKind::kTableColumns: return "table_columns";
    case store::SectionKind::kNaCodes: return "na_codes";
    case store::SectionKind::kSaCounts: return "sa_counts";
    case store::SectionKind::kRowOffsets: return "row_offsets";
    case store::SectionKind::kRowValues: return "row_values";
    case store::SectionKind::kPackedKeys: return "packed_keys";
  }
  return "unknown";
}

int Pack(const FlagSet& flags) {
  if (!flags.Has("release") || !flags.Has("output")) {
    std::cerr << "pack needs --release BASE and --output FILE.rps\n"
              << kUsage;
    return 1;
  }
  auto epoch = flags.GetInt("epoch", 1);
  if (!epoch.ok()) return Fail(epoch.status());
  if (*epoch < 1) {
    return Fail(Status::InvalidArgument("--epoch must be >= 1"));
  }
  auto bundle = analysis::LoadRelease(flags.GetString("release"));
  if (!bundle.ok()) return Fail(bundle.status());
  auto snap = analysis::SnapshotRelease(std::move(*bundle),
                                        uint64_t(*epoch));
  if (!snap.ok()) return Fail(snap.status());
  const std::string name = flags.GetString("name", "default");
  const std::string output = flags.GetString("output");
  auto written = store::WriteSnapshot(**snap, name, output);
  if (!written.ok()) return Fail(written);
  std::cout << "wrote " << output << ": release '" << name << "' epoch "
            << *epoch << ", "
            << FormatWithCommas(int64_t((*snap)->index.num_records()))
            << " records, "
            << FormatWithCommas(int64_t((*snap)->index.num_groups()))
            << " groups\n";
  return 0;
}

int Inspect(const std::string& path) {
  auto info = store::InspectSnapshot(path);
  if (!info.ok()) return Fail(info.status());
  const store::Superblock& sb = info->superblock;
  std::cout << path << ":\n"
            << "  format version " << sb.version << ", "
            << FormatWithCommas(int64_t(sb.file_bytes)) << " bytes, "
            << sb.section_count << " sections ("
            << sb.alignment << "-byte aligned)\n"
            << "  release '" << info->release << "' epoch " << info->epoch
            << ": " << FormatWithCommas(int64_t(info->num_records))
            << " records, " << FormatWithCommas(int64_t(info->num_groups))
            << " groups, " << (info->packed ? "packed" : "wide")
            << " group keys\n"
            << "  header crc " << std::hex << std::setw(16)
            << std::setfill('0') << sb.header_crc << std::dec
            << std::setfill(' ') << " (verified)\n";
  for (const store::SectionEntry& e : info->sections) {
    std::cout << "  section " << std::left << std::setw(14)
              << SectionKindName(e.kind) << std::right << " offset "
              << std::setw(10) << e.offset << "  "
              << std::setw(12) << FormatWithCommas(int64_t(e.bytes))
              << " bytes  (" << FormatWithCommas(int64_t(e.count)) << " x "
              << e.elem_bytes << "B, crc verified)\n";
  }
  return 0;
}

int Verify(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    auto opened = store::OpenSnapshot(path);
    if (!opened.ok()) return Fail(opened.status());
    std::cout << path << ": OK (release '" << opened->release << "' epoch "
              << opened->snapshot->epoch << ", "
              << FormatWithCommas(
                     int64_t(opened->snapshot->index.num_records()))
              << " records)\n";
  }
  return 0;
}

int Digest(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    auto digest = repl::FileDigest(path);
    if (!digest.ok()) return Fail(digest.status());
    // Checksum-verified identity, so a digest is never printed for a file
    // that is not actually a readable snapshot.
    auto info = store::InspectSnapshot(path);
    if (!info.ok()) return Fail(info.status());
    std::cout << path << ": " << repl::FormatDigest(*digest) << " (release '"
              << info->release << "' epoch " << info->epoch << ")\n";
  }
  return 0;
}

int Run(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagSet& flags = *flags_or;

  const std::set<std::string> known = {"release", "output", "name", "epoch",
                                       "help"};
  for (const auto& name : flags.FlagNames()) {
    if (!known.count(name)) {
      std::cerr << "unknown flag --" << name << "\n" << kUsage;
      return 1;
    }
  }
  const std::vector<std::string>& positional = flags.positional();
  if (flags.Has("help") || positional.empty()) {
    std::cout << kUsage;
    return flags.Has("help") ? 0 : 1;
  }

  const std::string& command = positional[0];
  std::vector<std::string> rest(positional.begin() + 1, positional.end());
  if (command == "pack") {
    if (!rest.empty()) {
      std::cerr << "pack takes no positional arguments\n" << kUsage;
      return 1;
    }
    return Pack(flags);
  }
  if (command == "inspect") {
    if (rest.size() != 1) {
      std::cerr << "inspect takes exactly one FILE.rps\n" << kUsage;
      return 1;
    }
    return Inspect(rest[0]);
  }
  if (command == "verify") {
    if (rest.empty()) {
      std::cerr << "verify takes one or more FILE.rps\n" << kUsage;
      return 1;
    }
    return Verify(rest);
  }
  if (command == "digest") {
    if (rest.empty()) {
      std::cerr << "digest takes one or more FILE.rps\n" << kUsage;
      return 1;
    }
    return Digest(rest);
  }
  std::cerr << "unknown command '" << command << "'\n" << kUsage;
  return 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
