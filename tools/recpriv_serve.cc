// recpriv_serve — the release-serving front end: loads self-describing
// release bundles (see analysis/release.h), registers them through the
// typed client API (client/in_process_client.h), and answers
// line-delimited JSON count-query requests from stdin on stdout
// (protocol v1 + v2: src/serve/wire.h).
//
//   recpriv_publish --input patients.csv --sensitive Disease
//                   --output release.csv --manifest release
//   recpriv_serve --release release --name patients
//   > {"v":2,"id":1,"op":"query","release":"patients","queries":[{"where":{"Job":"eng"},"sa":"flu"}]}
//
// Multiple releases: positional NAME=BASENAME arguments. --demo publishes a
// small synthetic release named "demo" for protocol experiments without any
// input files. Republishing (wire op "publish") retains a bounded window of
// recent epochs per release (--retain) so pinned-epoch sessions stay
// consistent across republishes.

#include <iostream>
#include <set>

#include "recpriv.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr const char* kUsage = R"(usage: recpriv_serve [options] [NAME=BASENAME ...]

Serves count queries over published releases: line-delimited JSON requests
on stdin, one JSON response per line on stdout. See src/serve/wire.h for
the protocol (v1 legacy + v2 with ids, structured errors, epoch pinning,
and publish/drop/schema admin ops).

release sources (at least one, unless --demo):
  --release BASE      load BASE.csv + BASE.manifest.json (written by
                      recpriv_publish --manifest) and serve it
  --name NAME         name for the --release bundle     [default "default"]
  NAME=BASENAME       additional positional releases, each a manifest base
                      (place before bare boolean flags or after "--", since
                      "--demo NAME=BASENAME" parses as a flag value)

options:
  --threads N         worker threads for batch evaluation  [default: cores]
  --cache N           answer-cache capacity (entries)      [default 65536]
  --retain N          retained epochs per release for pinned queries
                      [default 4]
  --demo              publish a built-in synthetic release named "demo"
  --help              print this help and exit
)";

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

Result<analysis::ReleaseBundle> MakeDemoBundle() {
  datagen::SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back(
      datagen::GroupSpec{{"eng", "north"}, 4000, {70, 20, 10}});
  spec.groups.push_back(
      datagen::GroupSpec{{"eng", "south"}, 3000, {70, 20, 10}});
  spec.groups.push_back(
      datagen::GroupSpec{{"law", "north"}, 2000, {20, 30, 50}});
  spec.groups.push_back(
      datagen::GroupSpec{{"law", "south"}, 1000, {20, 30, 50}});
  RECPRIV_ASSIGN_OR_RETURN(table::Table raw,
                           datagen::GenerateSimpleExact(spec));

  core::PrivacyParams params;
  params.domain_m = raw.schema()->sa_domain_size();
  Rng rng(2015);
  RECPRIV_ASSIGN_OR_RETURN(core::SpsTableResult sps,
                           core::SpsPerturbTable(params, raw, rng));
  return analysis::ReleaseBundle{std::move(sps.table), params,
                                 spec.sensitive_attribute, {}};
}

void PrintServing(const client::ReleaseDescriptor& desc) {
  std::cerr << "serving '" << desc.name << "' (epoch " << desc.epoch << "): "
            << FormatWithCommas(int64_t(desc.num_records)) << " records, "
            << FormatWithCommas(int64_t(desc.num_groups)) << " groups\n";
}

int Run(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagSet& flags = *flags_or;

  const std::set<std::string> known = {"release", "name",   "threads", "cache",
                                       "retain",  "demo",   "help"};
  for (const auto& name : flags.FlagNames()) {
    if (!known.count(name)) {
      std::cerr << "unknown flag --" << name << "\n" << kUsage;
      return 1;
    }
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }

  serve::QueryEngineOptions options;
  auto threads = flags.GetInt("threads", 0);
  auto cache = flags.GetInt("cache", int64_t(options.cache_capacity));
  auto retain =
      flags.GetInt("retain", int64_t(serve::ReleaseStore::kDefaultRetainedEpochs));
  if (!threads.ok()) return Fail(threads.status());
  if (!cache.ok()) return Fail(cache.status());
  if (!retain.ok()) return Fail(retain.status());
  if (*threads < 0 || *cache < 0 || *retain < 1) {
    return Fail(Status::InvalidArgument(
        "--threads/--cache must be >= 0 and --retain >= 1"));
  }
  options.num_threads = size_t(*threads);
  options.cache_capacity = size_t(*cache);

  auto store = std::make_shared<serve::ReleaseStore>(size_t(*retain));
  auto engine = std::make_shared<serve::QueryEngine>(store, options);
  client::InProcessClient admin(engine);

  if (flags.Has("release")) {
    auto desc = admin.Publish(flags.GetString("name", "default"),
                              flags.GetString("release"));
    if (!desc.ok()) return Fail(desc.status());
    PrintServing(*desc);
  }
  for (const std::string& arg : flags.positional()) {
    auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
      std::cerr << "positional argument must be NAME=BASENAME: " << arg
                << "\n" << kUsage;
      return 1;
    }
    auto desc = admin.Publish(arg.substr(0, eq), arg.substr(eq + 1));
    if (!desc.ok()) return Fail(desc.status());
    PrintServing(*desc);
  }
  auto demo = flags.GetBool("demo", false);
  if (!demo.ok()) return Fail(demo.status());
  if (*demo) {
    auto bundle = MakeDemoBundle();
    if (!bundle.ok()) return Fail(bundle.status());
    auto desc = admin.PublishBundle("demo", std::move(*bundle));
    if (!desc.ok()) return Fail(desc.status());
    std::cerr << "serving synthetic release 'demo'\n";
  }
  if (store->size() == 0) {
    std::cerr << "no releases to serve (use --release, NAME=BASENAME, or "
                 "--demo)\n"
              << kUsage;
    return 1;
  }

  const size_t handled = serve::ServeLines(std::cin, std::cout, *engine);
  std::cerr << "served " << FormatWithCommas(int64_t(handled))
            << " requests (cache: " << engine->cache().hits() << " hits, "
            << engine->cache().misses() << " misses)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
