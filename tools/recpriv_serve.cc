// recpriv_serve — the release-serving front end: loads self-describing
// release bundles (see analysis/release.h), registers them through the
// typed client API (client/in_process_client.h), and answers
// line-delimited JSON count-query requests from stdin on stdout
// (protocol v1 + v2: src/serve/wire.h).
//
//   recpriv_publish --input patients.csv --sensitive Disease
//                   --output release.csv --manifest release
//   recpriv_serve --release release --name patients
//   > {"v":2,"id":1,"op":"query","release":"patients","queries":[{"where":{"Job":"eng"},"sa":"flu"}]}
//
// Multiple releases: positional NAME=BASENAME arguments. --demo publishes a
// small synthetic release named "demo" for protocol experiments without any
// input files. Republishing (wire op "publish") retains a bounded window of
// recent epochs per release (--retain) so pinned-epoch sessions stay
// consistent across republishes.
//
// Replication: every --port server is a potential primary (it answers the
// subscribe/fetch_snapshot ops of src/repl), and --follow HOST:PORT turns
// this process into a follower that mirrors that primary's releases and
// serves reads from the local copies — the read-scaling fleet topology.

#include <unistd.h>

#include <csignal>
#include <chrono>
#include <filesystem>
#include <iostream>
#include <set>
#include <thread>

#include "recpriv.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr const char* kUsage = R"(usage: recpriv_serve [options] [NAME=BASENAME ...]

Serves count queries over published releases as line-delimited JSON (the
wire protocol of src/serve/wire.h: v1 legacy + v2 with ids, structured
errors, epoch pinning, and publish/drop/schema/stats admin ops).

Two transports share the same protocol byte stream:
  default             one session on stdin/stdout
  --port N            concurrent sessions over TCP (src/serve/server.h);
                      N=0 binds a kernel-assigned port, printed on stderr
                      as "listening on HOST:PORT". SIGINT/SIGTERM drains
                      in-flight requests and exits cleanly.

release sources (at least one, unless --demo):
  --release BASE      load BASE.csv + BASE.manifest.json (written by
                      recpriv_publish --manifest) and serve it
  --name NAME         name for the --release bundle     [default "default"]
  NAME=BASENAME       additional positional releases, each a manifest base

options:
  --threads N         worker threads for batch evaluation  [default: cores]
  --cache N           answer-cache capacity (entries)      [default 65536]
  --retain N          retained epochs per release for pinned queries
                      [default 4]
  --snapshot-dir DIR  persist every publish as a binary snapshot under DIR
                      (src/store format, one .rps file per epoch) and, at
                      startup, recover the retained-epoch window from DIR;
                      a server restarted with the same DIR serves the same
                      releases without re-parsing any CSV
  --batch-window-us N micro-batch scheduler: fuse same-snapshot queries
                      arriving within N microseconds into one evaluation
                      (stats op reports a "scheduler" section) [default 0:
                      disabled]
  --quota-qps X       per-tenant admission quota in queries/second (token
                      bucket, keyed by the request's "tenant" field; the
                      stats op reports a "tenants" section). Over-quota
                      requests get RESOURCE_EXHAUSTED.  [default 0: off]
  --quota-burst X     token-bucket burst capacity     [default: max(qps,1)]
  --host HOST         TCP bind address                [default 127.0.0.1]
  --max-conns N       concurrent TCP sessions; further connections get one
                      UNAVAILABLE error line            [default 64]
  --idle-timeout-ms N drop a TCP session silent this long  [default: never]
  --demo              publish a built-in synthetic release named "demo"
  --help              print this help and exit

replication (read-scaling fleet, src/repl):
  Every --port server answers the replication ops ("subscribe",
  "fetch_snapshot"), so any recpriv_serve can be a primary.

  --follow HOST:PORT  follow that primary instead of publishing: mirror its
                      releases into the local store (every fetched snapshot
                      is digest-verified and persisted before install, under
                      --snapshot-dir or a temp directory) and serve reads
                      from the local copies. Staleness is bounded and
                      observable: the stats op reports a "replication"
                      section with lag_epochs / lag_ms. Mutually exclusive
                      with --release, --demo, and NAME=BASENAME.
  --follow-binary     negotiate binary wire frames on the replication link
                      (snapshot chunks ride as raw bytes, no base64). Best
                      effort: a primary that does not speak frames leaves
                      the link on JSON lines and replication is unchanged.
  --follow-faults R   inject seeded byte-level faults on the replication
                      link, rate R per fault kind (testing: proves a
                      follower that dies mid-transfer converges clean)
  --follow-fault-seed N  fault schedule seed               [default 2015]
)";

/// Boolean flags, declared so "--demo NAME=BASENAME" keeps NAME=BASENAME
/// positional instead of mis-parsing it as --demo's value.
const std::vector<std::string> kBooleanFlags = {"demo", "help",
                                                "follow-binary"};

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int sig) { g_signal = sig; }

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

void PrintServing(const client::ReleaseDescriptor& desc) {
  std::cerr << "serving '" << desc.name << "' (epoch " << desc.epoch << "): "
            << FormatWithCommas(int64_t(desc.num_records)) << " records, "
            << FormatWithCommas(int64_t(desc.num_groups)) << " groups\n";
}

int Run(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv, kBooleanFlags);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagSet& flags = *flags_or;

  const std::set<std::string> known = {
      "release", "name", "threads",   "cache",           "retain", "demo",
      "help",    "host", "port",      "max-conns",       "idle-timeout-ms",
      "batch-window-us",  "snapshot-dir",  "quota-qps",  "quota-burst",
      "follow",  "follow-binary",  "follow-faults",  "follow-fault-seed"};
  for (const auto& name : flags.FlagNames()) {
    if (!known.count(name)) {
      std::cerr << "unknown flag --" << name << "\n" << kUsage;
      return 1;
    }
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }

  serve::QueryEngineOptions options;
  auto threads = flags.GetInt("threads", 0);
  auto cache = flags.GetInt("cache", int64_t(options.cache_capacity));
  auto retain =
      flags.GetInt("retain", int64_t(serve::ReleaseStore::kDefaultRetainedEpochs));
  auto batch_window = flags.GetInt("batch-window-us", 0);
  if (!threads.ok()) return Fail(threads.status());
  if (!cache.ok()) return Fail(cache.status());
  if (!retain.ok()) return Fail(retain.status());
  if (!batch_window.ok()) return Fail(batch_window.status());
  // The window caps at 10s: far beyond any sane coalescing window, and
  // safely inside int range (a silent int narrowing could wrap a huge
  // value to 0 and turn batching OFF while the operator believes it's on).
  if (*threads < 0 || *cache < 0 || *retain < 1 || *batch_window < 0 ||
      *batch_window > 10000000) {
    return Fail(Status::InvalidArgument(
        "--threads/--cache must be >= 0, --retain >= 1, and "
        "--batch-window-us in [0, 10000000]"));
  }
  options.num_threads = size_t(*threads);
  options.cache_capacity = size_t(*cache);
  options.micro_batch_window_us = int(*batch_window);

  auto quota_qps = flags.GetDouble("quota-qps", 0.0);
  auto quota_burst = flags.GetDouble("quota-burst", 0.0);
  if (!quota_qps.ok()) return Fail(quota_qps.status());
  if (!quota_burst.ok()) return Fail(quota_burst.status());
  if (*quota_qps < 0 || *quota_burst < 0) {
    return Fail(Status::InvalidArgument(
        "--quota-qps and --quota-burst must be >= 0"));
  }
  options.tenant_quota_qps = *quota_qps;
  options.tenant_quota_burst = *quota_burst;

  // --follow HOST:PORT — follower mode (replication, src/repl).
  const std::string follow = flags.GetString("follow", "");
  std::string follow_host;
  uint16_t follow_port = 0;
  if (!follow.empty()) {
    const auto colon = follow.rfind(':');
    int64_t parsed_port = 0;
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == follow.size()) {
      return Fail(Status::InvalidArgument("--follow must be HOST:PORT"));
    }
    try {
      parsed_port = std::stoll(follow.substr(colon + 1));
    } catch (...) {
      parsed_port = -1;
    }
    if (parsed_port < 1 || parsed_port > 65535) {
      return Fail(Status::InvalidArgument("--follow port must be 1..65535"));
    }
    follow_host = follow.substr(0, colon);
    follow_port = uint16_t(parsed_port);
    if (flags.Has("release") || flags.Has("demo") ||
        !flags.positional().empty()) {
      return Fail(Status::InvalidArgument(
          "--follow is mutually exclusive with --release/--demo/"
          "NAME=BASENAME: a follower serves only what its primary "
          "publishes"));
    }
  }
  auto follow_faults = flags.GetDouble("follow-faults", 0.0);
  auto follow_fault_seed = flags.GetInt("follow-fault-seed", 2015);
  if (!follow_faults.ok()) return Fail(follow_faults.status());
  if (!follow_fault_seed.ok()) return Fail(follow_fault_seed.status());
  if (*follow_faults < 0.0 || *follow_faults > 1.0) {
    return Fail(
        Status::InvalidArgument("--follow-faults must be in [0, 1]"));
  }

  serve::ReleaseStore::Options store_options;
  store_options.retained_epochs = size_t(*retain);
  store_options.snapshot_dir = flags.GetString("snapshot-dir", "");
  if (!follow.empty() && store_options.snapshot_dir.empty()) {
    // Persist-before-install needs a durable store; a follower without an
    // explicit --snapshot-dir gets a per-process scratch directory.
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() /
                         ("recpriv_follow_" + std::to_string(getpid()));
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Fail(Status::IOError("cannot create follower snapshot dir " +
                                  dir.string() + ": " + ec.message()));
    }
    store_options.snapshot_dir = dir.string();
    std::cerr << "follower snapshots under " << store_options.snapshot_dir
              << " (use --snapshot-dir to keep them across restarts)\n";
  }
  auto store = std::make_shared<serve::ReleaseStore>(store_options);
  if (!store->snapshot_dir().empty()) {
    // Recover before any --release/--demo publish: recovered epochs must
    // precede this run's epochs in every release window.
    auto recovered = store->RecoverFromDir();
    if (!recovered.ok()) return Fail(recovered);
    for (const serve::ReleaseInfo& info : store->List()) {
      std::cerr << "recovered '" << info.name << "' from snapshots (epochs "
                << info.oldest_epoch << ".." << info.epoch << ")\n";
    }
  }
  auto engine = std::make_shared<serve::QueryEngine>(store, options);
  client::InProcessClient admin(engine);

  // Always available: any serving process can hand its snapshots to
  // followers (the TCP server enables subscribe/fetch_snapshot with it,
  // and the stdin front end at least answers fetch_snapshot).
  repl::SnapshotProvider snapshot_provider(*store);

  std::unique_ptr<repl::Replicator> replicator;
  std::function<client::ReplicationStats()> replication_stats;
  if (!follow.empty()) {
    repl::ReplicatorOptions repl_options;
    repl_options.primary_host = follow_host;
    repl_options.primary_port = follow_port;
    repl_options.binary_frame = *flags.GetBool("follow-binary", false);
    if (*follow_faults > 0.0) {
      net::FaultOptions fault_options;
      fault_options.seed = uint64_t(*follow_fault_seed);
      fault_options.drop_rate = *follow_faults;
      fault_options.disconnect_rate = *follow_faults;
      fault_options.truncate_rate = *follow_faults;
      fault_options.short_write_rate = *follow_faults;
      fault_options.delay_rate = *follow_faults;
      repl_options.fault_injector =
          std::make_shared<net::FaultInjector>(fault_options);
    }
    auto started = repl::Replicator::Start(*store, repl_options);
    if (!started.ok()) return Fail(started.status());
    replicator = std::move(*started);
    replication_stats = [r = replicator.get()] { return r->Stats(); };
    std::cerr << "following " << follow_host << ":" << follow_port << "\n";
  }

  if (flags.Has("release")) {
    auto desc = admin.Publish(flags.GetString("name", "default"),
                              flags.GetString("release"));
    if (!desc.ok()) return Fail(desc.status());
    PrintServing(*desc);
  }
  for (const std::string& arg : flags.positional()) {
    auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
      std::cerr << "positional argument must be NAME=BASENAME: " << arg
                << "\n" << kUsage;
      return 1;
    }
    auto desc = admin.Publish(arg.substr(0, eq), arg.substr(eq + 1));
    if (!desc.ok()) return Fail(desc.status());
    PrintServing(*desc);
  }
  auto demo = flags.GetBool("demo", false);
  if (!demo.ok()) return Fail(demo.status());
  if (*demo) {
    // Seed 2015, 10k records: the shape the golden transcripts pin.
    auto bundle = analysis::MakeDemoReleaseBundle(2015);
    if (!bundle.ok()) return Fail(bundle.status());
    auto desc = admin.PublishBundle("demo", std::move(*bundle));
    if (!desc.ok()) return Fail(desc.status());
    std::cerr << "serving synthetic release 'demo'\n";
  }
  if (store->size() == 0 && follow.empty()) {
    std::cerr << "no releases to serve (use --release, NAME=BASENAME, "
                 "--demo, or --follow)\n"
              << kUsage;
    return 1;
  }

  if (!flags.Has("port")) {
    // stdin/stdout single-session mode (the PR-1 transport, and still the
    // golden-test reference). No push stream here, but fetch_snapshot and
    // follower stats work.
    serve::RequestContext context;
    context.snapshots = &snapshot_provider;
    context.replication_stats = replication_stats;
    const size_t handled =
        serve::ServeLines(std::cin, std::cout, *engine, context);
    std::cerr << "served " << FormatWithCommas(int64_t(handled))
              << " requests (cache: " << engine->cache().hits() << " hits, "
              << engine->cache().misses() << " misses)\n";
    return 0;
  }

  auto port = flags.GetInt("port", 0);
  auto max_conns = flags.GetInt("max-conns", 64);
  auto idle_timeout = flags.GetInt("idle-timeout-ms", 0);
  if (!port.ok()) return Fail(port.status());
  if (!max_conns.ok()) return Fail(max_conns.status());
  if (!idle_timeout.ok()) return Fail(idle_timeout.status());
  if (*port < 0 || *port > 65535 || *max_conns < 1 || *idle_timeout < 0) {
    return Fail(Status::InvalidArgument(
        "--port must be 0..65535, --max-conns >= 1, --idle-timeout-ms >= 0"));
  }

  serve::ServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = uint16_t(*port);
  server_options.max_connections = size_t(*max_conns);
  server_options.idle_timeout_ms = int(*idle_timeout);
  server_options.snapshot_provider = &snapshot_provider;
  server_options.replication_stats = replication_stats;
  auto server = serve::Server::Start(engine, server_options);
  if (!server.ok()) return Fail(server.status());

  std::cerr << "listening on " << server_options.host << ":"
            << (*server)->port() << " (max " << *max_conns
            << " connections)\n";
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cerr << "signal " << int(g_signal) << ": draining...\n";
  if (replicator != nullptr) replicator->Stop();
  (*server)->Stop();

  // One structured line, machine-greppable from the service log: what was
  // drained, what was shed, and every error code's count. Keys are stable;
  // supervisors can parse this instead of scraping the prose above.
  const client::TransportStats metrics = (*server)->Metrics();
  JsonValue summary = JsonValue::Object();
  summary.Set("event", JsonValue::String("recpriv_serve_shutdown"));
  summary.Set("signal", JsonValue::Int(int64_t(g_signal)));
  summary.Set("sessions_drained",
              JsonValue::Int(int64_t(metrics.connections_accepted)));
  summary.Set("connections_rejected",
              JsonValue::Int(int64_t(metrics.connections_rejected)));
  summary.Set("requests", JsonValue::Int(int64_t(metrics.requests)));
  summary.Set("errors", JsonValue::Int(int64_t(metrics.errors)));
  JsonValue by_code = JsonValue::Object();
  for (const auto& [code, count] : (*server)->ErrorCodeCounts()) {
    by_code.Set(code, JsonValue::Int(int64_t(count)));
  }
  summary.Set("errors_by_code", std::move(by_code));
  if (auto tenants = engine->tenant_stats(); tenants.has_value()) {
    uint64_t rejected = 0, shed = 0;
    for (const auto& [name, c] : tenants->tenants) {
      rejected += c.rejected;
      shed += c.shed;
    }
    summary.Set("quota_rejections", JsonValue::Int(int64_t(rejected)));
    summary.Set("requests_shed", JsonValue::Int(int64_t(shed)));
  }
  summary.Set("cache_hits", JsonValue::Int(int64_t(engine->cache().hits())));
  summary.Set("cache_misses",
              JsonValue::Int(int64_t(engine->cache().misses())));
  if (replicator != nullptr) {
    summary.Set("replication",
                serve::wire::EncodeReplicationStats(replicator->Stats()));
  }
  std::cerr << summary.ToString() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
