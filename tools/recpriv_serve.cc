// recpriv_serve — the release-serving front end: loads self-describing
// release bundles (see analysis/release.h), registers them through the
// typed client API (client/in_process_client.h), and answers
// line-delimited JSON count-query requests from stdin on stdout
// (protocol v1 + v2: src/serve/wire.h).
//
//   recpriv_publish --input patients.csv --sensitive Disease
//                   --output release.csv --manifest release
//   recpriv_serve --release release --name patients
//   > {"v":2,"id":1,"op":"query","release":"patients","queries":[{"where":{"Job":"eng"},"sa":"flu"}]}
//
// Multiple releases: positional NAME=BASENAME arguments. --demo publishes a
// small synthetic release named "demo" for protocol experiments without any
// input files. Republishing (wire op "publish") retains a bounded window of
// recent epochs per release (--retain) so pinned-epoch sessions stay
// consistent across republishes.

#include <csignal>
#include <chrono>
#include <iostream>
#include <set>
#include <thread>

#include "recpriv.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr const char* kUsage = R"(usage: recpriv_serve [options] [NAME=BASENAME ...]

Serves count queries over published releases as line-delimited JSON (the
wire protocol of src/serve/wire.h: v1 legacy + v2 with ids, structured
errors, epoch pinning, and publish/drop/schema/stats admin ops).

Two transports share the same protocol byte stream:
  default             one session on stdin/stdout
  --port N            concurrent sessions over TCP (src/serve/server.h);
                      N=0 binds a kernel-assigned port, printed on stderr
                      as "listening on HOST:PORT". SIGINT/SIGTERM drains
                      in-flight requests and exits cleanly.

release sources (at least one, unless --demo):
  --release BASE      load BASE.csv + BASE.manifest.json (written by
                      recpriv_publish --manifest) and serve it
  --name NAME         name for the --release bundle     [default "default"]
  NAME=BASENAME       additional positional releases, each a manifest base

options:
  --threads N         worker threads for batch evaluation  [default: cores]
  --cache N           answer-cache capacity (entries)      [default 65536]
  --retain N          retained epochs per release for pinned queries
                      [default 4]
  --snapshot-dir DIR  persist every publish as a binary snapshot under DIR
                      (src/store format, one .rps file per epoch) and, at
                      startup, recover the retained-epoch window from DIR;
                      a server restarted with the same DIR serves the same
                      releases without re-parsing any CSV
  --batch-window-us N micro-batch scheduler: fuse same-snapshot queries
                      arriving within N microseconds into one evaluation
                      (stats op reports a "scheduler" section) [default 0:
                      disabled]
  --quota-qps X       per-tenant admission quota in queries/second (token
                      bucket, keyed by the request's "tenant" field; the
                      stats op reports a "tenants" section). Over-quota
                      requests get RESOURCE_EXHAUSTED.  [default 0: off]
  --quota-burst X     token-bucket burst capacity     [default: max(qps,1)]
  --host HOST         TCP bind address                [default 127.0.0.1]
  --max-conns N       concurrent TCP sessions; further connections get one
                      UNAVAILABLE error line            [default 64]
  --idle-timeout-ms N drop a TCP session silent this long  [default: never]
  --demo              publish a built-in synthetic release named "demo"
  --help              print this help and exit
)";

/// Boolean flags, declared so "--demo NAME=BASENAME" keeps NAME=BASENAME
/// positional instead of mis-parsing it as --demo's value.
const std::vector<std::string> kBooleanFlags = {"demo", "help"};

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int sig) { g_signal = sig; }

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

void PrintServing(const client::ReleaseDescriptor& desc) {
  std::cerr << "serving '" << desc.name << "' (epoch " << desc.epoch << "): "
            << FormatWithCommas(int64_t(desc.num_records)) << " records, "
            << FormatWithCommas(int64_t(desc.num_groups)) << " groups\n";
}

int Run(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv, kBooleanFlags);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagSet& flags = *flags_or;

  const std::set<std::string> known = {
      "release", "name", "threads",   "cache",           "retain", "demo",
      "help",    "host", "port",      "max-conns",       "idle-timeout-ms",
      "batch-window-us",  "snapshot-dir",  "quota-qps",  "quota-burst"};
  for (const auto& name : flags.FlagNames()) {
    if (!known.count(name)) {
      std::cerr << "unknown flag --" << name << "\n" << kUsage;
      return 1;
    }
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }

  serve::QueryEngineOptions options;
  auto threads = flags.GetInt("threads", 0);
  auto cache = flags.GetInt("cache", int64_t(options.cache_capacity));
  auto retain =
      flags.GetInt("retain", int64_t(serve::ReleaseStore::kDefaultRetainedEpochs));
  auto batch_window = flags.GetInt("batch-window-us", 0);
  if (!threads.ok()) return Fail(threads.status());
  if (!cache.ok()) return Fail(cache.status());
  if (!retain.ok()) return Fail(retain.status());
  if (!batch_window.ok()) return Fail(batch_window.status());
  // The window caps at 10s: far beyond any sane coalescing window, and
  // safely inside int range (a silent int narrowing could wrap a huge
  // value to 0 and turn batching OFF while the operator believes it's on).
  if (*threads < 0 || *cache < 0 || *retain < 1 || *batch_window < 0 ||
      *batch_window > 10000000) {
    return Fail(Status::InvalidArgument(
        "--threads/--cache must be >= 0, --retain >= 1, and "
        "--batch-window-us in [0, 10000000]"));
  }
  options.num_threads = size_t(*threads);
  options.cache_capacity = size_t(*cache);
  options.micro_batch_window_us = int(*batch_window);

  auto quota_qps = flags.GetDouble("quota-qps", 0.0);
  auto quota_burst = flags.GetDouble("quota-burst", 0.0);
  if (!quota_qps.ok()) return Fail(quota_qps.status());
  if (!quota_burst.ok()) return Fail(quota_burst.status());
  if (*quota_qps < 0 || *quota_burst < 0) {
    return Fail(Status::InvalidArgument(
        "--quota-qps and --quota-burst must be >= 0"));
  }
  options.tenant_quota_qps = *quota_qps;
  options.tenant_quota_burst = *quota_burst;

  serve::ReleaseStore::Options store_options;
  store_options.retained_epochs = size_t(*retain);
  store_options.snapshot_dir = flags.GetString("snapshot-dir", "");
  auto store = std::make_shared<serve::ReleaseStore>(store_options);
  if (!store->snapshot_dir().empty()) {
    // Recover before any --release/--demo publish: recovered epochs must
    // precede this run's epochs in every release window.
    auto recovered = store->RecoverFromDir();
    if (!recovered.ok()) return Fail(recovered);
    for (const serve::ReleaseInfo& info : store->List()) {
      std::cerr << "recovered '" << info.name << "' from snapshots (epochs "
                << info.oldest_epoch << ".." << info.epoch << ")\n";
    }
  }
  auto engine = std::make_shared<serve::QueryEngine>(store, options);
  client::InProcessClient admin(engine);

  if (flags.Has("release")) {
    auto desc = admin.Publish(flags.GetString("name", "default"),
                              flags.GetString("release"));
    if (!desc.ok()) return Fail(desc.status());
    PrintServing(*desc);
  }
  for (const std::string& arg : flags.positional()) {
    auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
      std::cerr << "positional argument must be NAME=BASENAME: " << arg
                << "\n" << kUsage;
      return 1;
    }
    auto desc = admin.Publish(arg.substr(0, eq), arg.substr(eq + 1));
    if (!desc.ok()) return Fail(desc.status());
    PrintServing(*desc);
  }
  auto demo = flags.GetBool("demo", false);
  if (!demo.ok()) return Fail(demo.status());
  if (*demo) {
    // Seed 2015, 10k records: the shape the golden transcripts pin.
    auto bundle = analysis::MakeDemoReleaseBundle(2015);
    if (!bundle.ok()) return Fail(bundle.status());
    auto desc = admin.PublishBundle("demo", std::move(*bundle));
    if (!desc.ok()) return Fail(desc.status());
    std::cerr << "serving synthetic release 'demo'\n";
  }
  if (store->size() == 0) {
    std::cerr << "no releases to serve (use --release, NAME=BASENAME, or "
                 "--demo)\n"
              << kUsage;
    return 1;
  }

  if (!flags.Has("port")) {
    // stdin/stdout single-session mode (the PR-1 transport, and still the
    // golden-test reference).
    const size_t handled = serve::ServeLines(std::cin, std::cout, *engine);
    std::cerr << "served " << FormatWithCommas(int64_t(handled))
              << " requests (cache: " << engine->cache().hits() << " hits, "
              << engine->cache().misses() << " misses)\n";
    return 0;
  }

  auto port = flags.GetInt("port", 0);
  auto max_conns = flags.GetInt("max-conns", 64);
  auto idle_timeout = flags.GetInt("idle-timeout-ms", 0);
  if (!port.ok()) return Fail(port.status());
  if (!max_conns.ok()) return Fail(max_conns.status());
  if (!idle_timeout.ok()) return Fail(idle_timeout.status());
  if (*port < 0 || *port > 65535 || *max_conns < 1 || *idle_timeout < 0) {
    return Fail(Status::InvalidArgument(
        "--port must be 0..65535, --max-conns >= 1, --idle-timeout-ms >= 0"));
  }

  serve::ServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = uint16_t(*port);
  server_options.max_connections = size_t(*max_conns);
  server_options.idle_timeout_ms = int(*idle_timeout);
  auto server = serve::Server::Start(engine, server_options);
  if (!server.ok()) return Fail(server.status());

  std::cerr << "listening on " << server_options.host << ":"
            << (*server)->port() << " (max " << *max_conns
            << " connections)\n";
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cerr << "signal " << int(g_signal) << ": draining...\n";
  (*server)->Stop();

  // One structured line, machine-greppable from the service log: what was
  // drained, what was shed, and every error code's count. Keys are stable;
  // supervisors can parse this instead of scraping the prose above.
  const client::TransportStats metrics = (*server)->Metrics();
  JsonValue summary = JsonValue::Object();
  summary.Set("event", JsonValue::String("recpriv_serve_shutdown"));
  summary.Set("signal", JsonValue::Int(int64_t(g_signal)));
  summary.Set("sessions_drained",
              JsonValue::Int(int64_t(metrics.connections_accepted)));
  summary.Set("connections_rejected",
              JsonValue::Int(int64_t(metrics.connections_rejected)));
  summary.Set("requests", JsonValue::Int(int64_t(metrics.requests)));
  summary.Set("errors", JsonValue::Int(int64_t(metrics.errors)));
  JsonValue by_code = JsonValue::Object();
  for (const auto& [code, count] : (*server)->ErrorCodeCounts()) {
    by_code.Set(code, JsonValue::Int(int64_t(count)));
  }
  summary.Set("errors_by_code", std::move(by_code));
  if (auto tenants = engine->tenant_stats(); tenants.has_value()) {
    uint64_t rejected = 0, shed = 0;
    for (const auto& [name, c] : tenants->tenants) {
      rejected += c.rejected;
      shed += c.shed;
    }
    summary.Set("quota_rejections", JsonValue::Int(int64_t(rejected)));
    summary.Set("requests_shed", JsonValue::Int(int64_t(shed)));
  }
  summary.Set("cache_hits", JsonValue::Int(int64_t(engine->cache().hits())));
  summary.Set("cache_misses",
              JsonValue::Int(int64_t(engine->cache().misses())));
  std::cerr << summary.ToString() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
