// recpriv_serve — the release-serving front end: loads self-describing
// release bundles (see analysis/release.h), registers them in a
// ReleaseStore, and answers line-delimited JSON count-query requests from
// stdin on stdout (protocol: src/serve/wire.h).
//
//   recpriv_publish --input patients.csv --sensitive Disease
//                   --output release.csv --manifest release
//   recpriv_serve --release release --name patients
//   > {"op":"query","release":"patients","queries":[{"where":{"Job":"eng"},"sa":"flu"}]}
//
// Multiple releases: positional NAME=BASENAME arguments. --demo publishes a
// small synthetic release named "demo" for protocol experiments without any
// input files.

#include <iostream>
#include <set>

#include "recpriv.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr const char* kUsage = R"(usage: recpriv_serve [options] [NAME=BASENAME ...]

Serves count queries over published releases: line-delimited JSON requests
on stdin, one JSON response per line on stdout. See src/serve/wire.h for
the protocol.

release sources (at least one, unless --demo):
  --release BASE      load BASE.csv + BASE.manifest.json (written by
                      recpriv_publish --manifest) and serve it
  --name NAME         name for the --release bundle     [default "default"]
  NAME=BASENAME       additional positional releases, each a manifest base
                      (place before bare boolean flags or after "--", since
                      "--demo NAME=BASENAME" parses as a flag value)

options:
  --threads N         worker threads for batch evaluation  [default: cores]
  --cache N           answer-cache capacity (entries)      [default 65536]
  --demo              publish a built-in synthetic release named "demo"
  --help              print this help and exit
)";

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

Status PublishDemo(serve::ReleaseStore& store) {
  datagen::SimpleDatasetSpec spec;
  spec.public_attributes = {"Job", "City"};
  spec.sensitive_attribute = "Disease";
  spec.sa_domain = {"flu", "hiv", "bc"};
  spec.groups.push_back(
      datagen::GroupSpec{{"eng", "north"}, 4000, {70, 20, 10}});
  spec.groups.push_back(
      datagen::GroupSpec{{"eng", "south"}, 3000, {70, 20, 10}});
  spec.groups.push_back(
      datagen::GroupSpec{{"law", "north"}, 2000, {20, 30, 50}});
  spec.groups.push_back(
      datagen::GroupSpec{{"law", "south"}, 1000, {20, 30, 50}});
  auto raw = datagen::GenerateSimpleExact(spec);
  RECPRIV_RETURN_NOT_OK(raw.status());

  core::PrivacyParams params;
  params.domain_m = raw->schema()->sa_domain_size();
  Rng rng(2015);
  auto sps = core::SpsPerturbTable(params, *raw, rng);
  RECPRIV_RETURN_NOT_OK(sps.status());
  analysis::ReleaseBundle bundle{std::move(sps->table), params,
                                 spec.sensitive_attribute, {}};
  auto snap = store.Publish("demo", std::move(bundle));
  return snap.ok() ? Status::OK() : snap.status();
}

Status LoadAndPublish(serve::ReleaseStore& store, const std::string& name,
                      const std::string& basename) {
  auto bundle = analysis::LoadRelease(basename);
  RECPRIV_RETURN_NOT_OK(bundle.status());
  auto snap = store.Publish(name, std::move(*bundle));
  RECPRIV_RETURN_NOT_OK(snap.status());
  std::cerr << "serving '" << name << "' (epoch " << (*snap)->epoch << "): "
            << FormatWithCommas(int64_t((*snap)->index.num_records()))
            << " records, "
            << FormatWithCommas(int64_t((*snap)->index.num_groups()))
            << " groups\n";
  return Status::OK();
}

int Run(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagSet& flags = *flags_or;

  const std::set<std::string> known = {"release", "name", "threads", "cache",
                                       "demo", "help"};
  for (const auto& name : flags.FlagNames()) {
    if (!known.count(name)) {
      std::cerr << "unknown flag --" << name << "\n" << kUsage;
      return 1;
    }
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }

  auto store = std::make_shared<serve::ReleaseStore>();
  if (flags.Has("release")) {
    if (auto st = LoadAndPublish(*store, flags.GetString("name", "default"),
                                 flags.GetString("release"));
        !st.ok()) {
      return Fail(st);
    }
  }
  for (const std::string& arg : flags.positional()) {
    auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
      std::cerr << "positional argument must be NAME=BASENAME: " << arg
                << "\n" << kUsage;
      return 1;
    }
    if (auto st = LoadAndPublish(*store, arg.substr(0, eq),
                                 arg.substr(eq + 1));
        !st.ok()) {
      return Fail(st);
    }
  }
  auto demo = flags.GetBool("demo", false);
  if (!demo.ok()) return Fail(demo.status());
  if (*demo) {
    if (auto st = PublishDemo(*store); !st.ok()) return Fail(st);
    std::cerr << "serving synthetic release 'demo'\n";
  }
  if (store->size() == 0) {
    std::cerr << "no releases to serve (use --release, NAME=BASENAME, or "
                 "--demo)\n"
              << kUsage;
    return 1;
  }

  serve::QueryEngineOptions options;
  auto threads = flags.GetInt("threads", 0);
  auto cache = flags.GetInt("cache", int64_t(options.cache_capacity));
  if (!threads.ok()) return Fail(threads.status());
  if (!cache.ok()) return Fail(cache.status());
  if (*threads < 0 || *cache < 0) {
    return Fail(Status::InvalidArgument("--threads/--cache must be >= 0"));
  }
  options.num_threads = size_t(*threads);
  options.cache_capacity = size_t(*cache);
  serve::QueryEngine engine(store, options);

  const size_t handled = serve::ServeLines(std::cin, std::cout, engine);
  std::cerr << "served " << FormatWithCommas(int64_t(handled))
            << " requests (cache: " << engine.cache().hits() << " hits, "
            << engine.cache().misses() << " misses)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
