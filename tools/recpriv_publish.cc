// recpriv_publish — the command-line publisher: CSV in, privacy-enforced
// CSV out. This is the complete pipeline a data owner would run:
//
//   recpriv_publish --input patients.csv --sensitive Disease
//                   --output release.csv
//                   [--p 0.5] [--lambda 0.3] [--delta 0.3]
//                   [--rho1 0.1 --rho2 0.5]   (derive p from a rho target)
//                   [--no-generalize] [--report report.csv] [--seed N]
//
// Steps: read CSV -> (optionally derive p from a rho1-rho2 target, §3.1)
// -> chi-squared generalization of NA values (§3.4) -> violation audit
// (Cor. 4) -> SPS release (§5) -> write CSV (+ optional audit report CSV).

#include <iostream>
#include <set>

#include "recpriv.h"
#include "common/flags.h"
#include "core/rho_privacy.h"
#include "analysis/release.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr const char* kUsage = R"(usage: recpriv_publish --input FILE --sensitive ATTR --output FILE [options]

required:
  --input FILE        input CSV with a header row
  --sensitive ATTR    name of the sensitive attribute (SA)
  --output FILE       where to write the privacy-enforced release CSV

options:
  --p P               retention probability in (0,1)        [default 0.5]
  --rho1 R --rho2 R   derive p from a rho1-rho2 target instead of --p
  --lambda L          reconstruction-privacy lambda          [default 0.3]
  --delta D           reconstruction-privacy delta           [default 0.3]
  --no-generalize     skip the chi-squared NA-value merge (not recommended:
                      aggregate groups may then act as personal groups)
  --report FILE       also write a per-group audit report CSV
  --manifest BASE     also write BASE.csv + BASE.manifest.json (a
                      self-describing release; see analysis/release.h)
  --missing TOKEN     rows containing TOKEN are skipped      [default "?"]
  --seed N            RNG seed for the release               [default 2015]
)";

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Run(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagSet& flags = *flags_or;

  const std::set<std::string> known = {
      "input",  "sensitive", "output",  "p",     "rho1", "rho2",
      "lambda", "delta",     "generalize", "report", "missing", "seed",
      "manifest", "help"};
  for (const auto& name : flags.FlagNames()) {
    if (!known.count(name)) {
      std::cerr << "unknown flag --" << name << "\n" << kUsage;
      return 1;
    }
  }
  if (flags.Has("help") || !flags.Has("input") || !flags.Has("sensitive") ||
      !flags.Has("output")) {
    std::cerr << kUsage;
    return flags.Has("help") ? 0 : 1;
  }

  // --- read ---
  table::CsvReadOptions read_options;
  read_options.sensitive_attribute = flags.GetString("sensitive");
  read_options.missing_token = flags.GetString("missing", "?");
  auto data = table::ReadCsv(flags.GetString("input"), read_options);
  if (!data.ok()) return Fail(data.status());
  std::cout << "read " << FormatWithCommas(int64_t(data->num_rows()))
            << " records, " << data->num_columns() << " attributes, SA = "
            << data->schema()->sensitive().name << " (m = "
            << data->schema()->sa_domain_size() << ")\n";
  if (data->schema()->sa_domain_size() < 2) {
    return Fail(Status::InvalidArgument(
        "the sensitive attribute needs at least 2 distinct values"));
  }

  // --- parameters ---
  core::PrivacyParams params;
  auto lambda = flags.GetDouble("lambda", 0.3);
  auto delta = flags.GetDouble("delta", 0.3);
  auto p_flag = flags.GetDouble("p", 0.5);
  if (!lambda.ok()) return Fail(lambda.status());
  if (!delta.ok()) return Fail(delta.status());
  if (!p_flag.ok()) return Fail(p_flag.status());
  params.lambda = *lambda;
  params.delta = *delta;
  params.retention_p = *p_flag;
  params.domain_m = data->schema()->sa_domain_size();

  if (flags.Has("rho1") || flags.Has("rho2")) {
    core::RhoPrivacy target;
    auto rho1 = flags.GetDouble("rho1", target.rho1);
    auto rho2 = flags.GetDouble("rho2", target.rho2);
    if (!rho1.ok()) return Fail(rho1.status());
    if (!rho2.ok()) return Fail(rho2.status());
    target.rho1 = *rho1;
    target.rho2 = *rho2;
    auto p_max = core::MaxRetentionForRho(target, params.domain_m);
    if (!p_max.ok()) return Fail(p_max.status());
    params.retention_p = *p_max;
    std::cout << "rho-derived retention: p = " << FormatDouble(*p_max, 4)
              << " (gamma bound " << FormatDouble(target.BreachBound(), 4)
              << ")\n";
  }
  if (auto st = params.Validate(); !st.ok()) return Fail(st);

  // --- generalize ---
  auto generalize = flags.GetBool("generalize", true);
  if (!generalize.ok()) return Fail(generalize.status());
  table::Table publishable = data->Clone();
  core::Generalization plan;
  if (*generalize) {
    auto plan_or = core::ComputeGeneralization(*data);
    if (!plan_or.ok()) return Fail(plan_or.status());
    plan = std::move(*plan_or);
    auto generalized = core::ApplyGeneralization(plan, *data);
    if (!generalized.ok()) return Fail(generalized.status());
    publishable = std::move(*generalized);
    for (size_t a = 0; a < plan.merges.size(); ++a) {
      if (a == data->schema()->sensitive_index()) continue;
      std::cout << "  " << data->schema()->attribute(a).name << ": "
                << plan.merges[a].domain_before << " -> "
                << plan.merges[a].domain_after << " generalized values\n";
    }
  }

  // --- audit ---
  table::GroupIndex index = table::GroupIndex::Build(publishable);
  core::ViolationReport audit = core::AuditViolations(index, params);
  std::cout << "audit: " << index.num_groups() << " personal groups; "
            << audit.violating_groups << " would violate ("
            << FormatPercent(audit.RecordViolationRate())
            << " of records) under plain perturbation at p = "
            << FormatDouble(params.retention_p, 4) << "\n";

  // --- enforce + write ---
  auto seed = flags.GetInt("seed", 2015);
  if (!seed.ok()) return Fail(seed.status());
  Rng rng{uint64_t(*seed)};
  auto release = core::SpsPerturbTable(params, publishable, rng);
  if (!release.ok()) return Fail(release.status());
  if (auto st = table::WriteCsv(release->table, flags.GetString("output"));
      !st.ok()) {
    return Fail(st);
  }
  std::cout << "wrote " << FormatWithCommas(int64_t(release->table.num_rows()))
            << " records to " << flags.GetString("output") << " ("
            << release->stats.groups_sampled << " groups sampled)\n";

  // --- optional self-describing release bundle ---
  if (flags.Has("manifest")) {
    analysis::ReleaseBundle bundle{release->table.Clone(), params,
                                   data->schema()->sensitive().name, {}};
    if (*generalize) {
      for (const auto& merge : plan.merges) {
        bundle.generalization.push_back(merge.merged_names);
      }
    }
    if (auto st = analysis::WriteRelease(bundle, flags.GetString("manifest"));
        !st.ok()) {
      return Fail(st);
    }
    std::cout << "wrote release bundle " << flags.GetString("manifest")
              << ".csv + .manifest.json" << std::endl;

    // Serving self-check: reload the bundle through the typed client API —
    // exactly what recpriv_serve will do — so a publish that produced an
    // unservable bundle (manifest/CSV disagreement, unindexable schema)
    // fails here, not at serving time.
    serve::QueryEngineOptions check_options;
    check_options.num_threads = 1;
    check_options.cache_capacity = 0;
    client::InProcessClient check(std::make_shared<serve::ReleaseStore>(),
                                  check_options);
    auto desc = check.Publish("check", flags.GetString("manifest"));
    if (!desc.ok()) return Fail(desc.status());
    auto served_schema = check.GetSchema("check");
    if (!served_schema.ok()) return Fail(served_schema.status());
    std::cout << "serving self-check: "
              << FormatWithCommas(int64_t(desc->num_records)) << " records in "
              << FormatWithCommas(int64_t(desc->num_groups)) << " groups, "
              << served_schema->attributes.size() << " attributes — servable"
              << std::endl;
  }

  // --- optional per-group report ---
  if (flags.Has("report")) {
    exp::AsciiTable report({"group", "size", "max_frequency", "s_g",
                            "violates_under_plain_up"});
    for (const auto& g : index.groups()) {
      std::string key;
      for (size_t k = 0; k < g.na_codes.size(); ++k) {
        if (k > 0) key += "/";
        size_t attr = index.public_indices()[k];
        key += publishable.schema()->attribute(attr).domain.value(
            g.na_codes[k]);
      }
      const double s_g = core::MaxGroupSize(params, g.MaxFrequency());
      report.AddRow({key, std::to_string(g.size()),
                     FormatDouble(g.MaxFrequency(), 4),
                     FormatDouble(s_g, 6),
                     core::GroupIsPrivate(params, g) ? "no" : "yes"});
    }
    if (auto st = report.WriteCsv(flags.GetString("report")); !st.ok()) {
      return Fail(st);
    }
    std::cout << "wrote audit report to " << flags.GetString("report") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
