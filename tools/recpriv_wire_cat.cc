// recpriv_wire_cat — netcat for the wire protocol: connects to a
// recpriv_serve TCP front end, sends each stdin line as one request, and
// prints the server's response line on stdout. One synchronous round trip
// per line, so a scripted session produces responses in request order —
// which is exactly what the golden-transcript test needs to prove the TCP
// transport is byte-identical to the stdin transport.
//
//   recpriv_serve --demo --port 7411 &
//   echo '{"v":2,"id":1,"op":"list"}' | recpriv_wire_cat --port 7411

#include <iostream>

#include "recpriv.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr const char* kUsage = R"(usage: recpriv_wire_cat [options]

Pipes stdin request lines to a recpriv_serve TCP front end, one synchronous
round trip per line, responses to stdout.

options:
  --host HOST        server address            [default 127.0.0.1]
  --port N           server port               (required)
  --timeout-ms N     per-response timeout      [default 30000]
  --help             print this help and exit
)";

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Run(int argc, char** argv) {
  auto flags_or = FlagSet::Parse(argc, argv, {"help"});
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagSet& flags = *flags_or;
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }
  auto port = flags.GetInt("port", -1);
  auto timeout = flags.GetInt("timeout-ms", 30000);
  if (!port.ok()) return Fail(port.status());
  if (!timeout.ok()) return Fail(timeout.status());
  if (*port < 1 || *port > 65535) {
    std::cerr << "a --port in 1..65535 is required\n" << kUsage;
    return 1;
  }

  client::TcpTransportOptions options;
  options.response_timeout_ms = int(*timeout);
  auto transport = client::TcpTransport::Connect(
      flags.GetString("host", "127.0.0.1"), uint16_t(*port), options);
  if (!transport.ok()) return Fail(transport.status());

  std::string line;
  size_t handled = 0;
  while (std::getline(std::cin, line)) {
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;  // the server answers only non-blank lines
    auto response = (*transport)->RoundTrip(line);
    if (!response.ok()) return Fail(response.status());
    std::cout << *response << "\n" << std::flush;
    ++handled;
  }
  std::cerr << "round-tripped " << handled << " requests\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
