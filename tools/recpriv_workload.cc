// recpriv_workload — the deterministic workload runner: expands a scenario
// (builtin profile or JSON file) into seeded per-client op streams, drives
// them against a live serving stack (in-process clients or a real loopback
// TCP server), verifies every answer against the oracle, and reports
// throughput, the error-code histogram, and the micro-batching scheduler's
// counters.
//
//   recpriv_workload --profile burst_same_release --batch-window-us 200
//   recpriv_workload --profile republish_churn --tcp --record run.jsonl
//   recpriv_workload --replay run.jsonl
//   recpriv_workload --print-profile steady_uniform > my_scenario.json
//   recpriv_workload --scenario my_scenario.json
//
// Exit status is 0 only when the run had no oracle mismatches, no unknown
// epochs, and no transport failures — so a workload run is a CI check, not
// just a load generator.

#include <fstream>
#include <iostream>
#include <set>

#include "recpriv.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr const char* kUsage = R"(usage: recpriv_workload [options]

scenario source (exactly one):
  --profile NAME        run a builtin profile (see --list-profiles)
  --scenario FILE       run a scenario JSON file (recpriv_scenario/v1)
  --replay FILE         re-run a workload recorded with --record
  --print-profile NAME  write a builtin profile's scenario JSON to stdout
  --list-profiles       list builtin profile names

options:
  --seed N              reseed the profile/scenario          [default 2015]
  --tcp                 drive readers through a loopback TCP server
  --no-verify           skip oracle verification of answers
  --record FILE         write the generated op streams (JSONL) before running
  --threads N           engine worker threads                [default: cores]
  --cache N             answer-cache capacity                [default 65536]
  --retain N            retained epochs per release          [default 4]
  --batch-window-us N   micro-batch scheduler window; 0 = off [default 0]
  --snapshot-dir DIR    run against a persistent snapshot store: recover
                        any .rps snapshots in DIR first, persist every
                        publish there (the recpriv_serve restart path)
  --incremental-delta N republish incrementally: every writer publish
                        inserts N fresh raw rows and republishes by delta
                        merge (store PublishIncremental), verified against
                        an independently rebuilt index; 0 = legacy
                        full-perturb republish                [default 0]
  --full-rebuild        with --incremental-delta: build each republished
                        index by the full radix-sort reference path
                        instead of the run merge (bit-identical answers —
                        CI compares the two)
  --quota-qps X         per-tenant admission quota (queries/s); 0 = off
                        (over quota: RESOURCE_EXHAUSTED)      [default 0]
  --quota-burst X       token-bucket burst; 0 = max(qps, 1)   [default 0]
  --deadline-ms N       attach an N ms deadline to every request; work
                        past it is shed DEADLINE_EXCEEDED     [default 0]
  --faults RATE         inject seeded transport faults: each fault kind
                        (drop, disconnect, truncate, short write, delay)
                        fires independently with probability RATE per
                        request; pair with --retry to stay answer-clean
  --fault-seed N        seed of the fault schedule            [default 2015]
  --retry               wrap every reader in bounded retry with seeded
                        exponential backoff (reconnects dead transports)
  --max-retries N       retry budget per request              [default 3]
  --json FILE           write the run report as JSON
  --help                print this help and exit
)";

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 2;
}

JsonValue ReportToJson(const workload::DriverReport& report) {
  JsonValue out = JsonValue::Object();
  out.Set("schema", JsonValue::String("recpriv_workload_report/v1"));
  out.Set("requests", JsonValue::Int(int64_t(report.requests)));
  out.Set("queries", JsonValue::Int(int64_t(report.queries)));
  out.Set("publishes", JsonValue::Int(int64_t(report.publishes)));
  out.Set("drops", JsonValue::Int(int64_t(report.drops)));
  out.Set("verified", JsonValue::Int(int64_t(report.verified)));
  out.Set("mismatches", JsonValue::Int(int64_t(report.mismatches)));
  out.Set("unknown_epochs", JsonValue::Int(int64_t(report.unknown_epochs)));
  out.Set("hard_failures", JsonValue::Int(int64_t(report.hard_failures)));
  JsonValue errors = JsonValue::Object();
  for (const auto& [code, count] : report.errors) {
    errors.Set(code, JsonValue::Int(int64_t(count)));
  }
  out.Set("errors", std::move(errors));
  out.Set("elapsed_seconds", JsonValue::Number(report.elapsed_seconds));
  out.Set("requests_per_second",
          JsonValue::Number(report.requests_per_second));
  out.Set("queries_per_second", JsonValue::Number(report.queries_per_second));
  if (report.scheduler.has_value()) {
    // The wire codec's encoder, so the report section and the protocol's
    // stats section can never drift apart.
    out.Set("scheduler", serve::wire::EncodeSchedulerStats(*report.scheduler));
  }
  if (report.tenants.has_value()) {
    out.Set("tenants", serve::wire::EncodeTenantStats(*report.tenants));
  }
  if (!report.tenant_latency.empty()) {
    JsonValue latency = JsonValue::Object();
    for (const auto& [tenant, lat] : report.tenant_latency) {
      JsonValue entry = JsonValue::Object();
      entry.Set("requests", JsonValue::Int(int64_t(lat.requests)));
      entry.Set("errors", JsonValue::Int(int64_t(lat.errors)));
      entry.Set("p50_ms", JsonValue::Number(lat.p50_ms));
      entry.Set("p99_ms", JsonValue::Number(lat.p99_ms));
      entry.Set("max_ms", JsonValue::Number(lat.max_ms));
      // "" is the wire's implicit default tenant; name it for readability.
      latency.Set(tenant.empty() ? "(default)" : tenant, std::move(entry));
    }
    out.Set("tenant_latency", std::move(latency));
  }
  if (report.retry.has_value()) {
    JsonValue retry = JsonValue::Object();
    retry.Set("attempts", JsonValue::Int(int64_t(report.retry->attempts)));
    retry.Set("retries", JsonValue::Int(int64_t(report.retry->retries)));
    retry.Set("retried_ok", JsonValue::Int(int64_t(report.retry->retried_ok)));
    retry.Set("reconnects", JsonValue::Int(int64_t(report.retry->reconnects)));
    retry.Set("exhausted", JsonValue::Int(int64_t(report.retry->exhausted)));
    out.Set("retry", std::move(retry));
  }
  if (report.faults.has_value()) {
    JsonValue faults = JsonValue::Object();
    faults.Set("writes", JsonValue::Int(int64_t(report.faults->writes)));
    faults.Set("drops", JsonValue::Int(int64_t(report.faults->drops)));
    faults.Set("disconnects",
               JsonValue::Int(int64_t(report.faults->disconnects)));
    faults.Set("truncates", JsonValue::Int(int64_t(report.faults->truncates)));
    faults.Set("short_writes",
               JsonValue::Int(int64_t(report.faults->short_writes)));
    faults.Set("delays", JsonValue::Int(int64_t(report.faults->delays)));
    out.Set("faults", std::move(faults));
  }
  return out;
}

void PrintReport(const workload::DriverReport& report) {
  std::cout << "requests: " << FormatWithCommas(int64_t(report.requests))
            << " (" << FormatWithCommas(int64_t(report.queries))
            << " queries) in " << FormatDouble(report.elapsed_seconds, 3)
            << "s = " << FormatWithCommas(int64_t(report.requests_per_second))
            << " req/s, "
            << FormatWithCommas(int64_t(report.queries_per_second))
            << " q/s\n";
  std::cout << "publishes: " << report.publishes
            << ", drops: " << report.drops << "\n";
  std::cout << "verified: " << FormatWithCommas(int64_t(report.verified))
            << ", mismatches: " << report.mismatches
            << ", unknown epochs: " << report.unknown_epochs
            << ", hard failures: " << report.hard_failures << "\n";
  if (!report.errors.empty()) {
    std::cout << "error responses:";
    for (const auto& [code, count] : report.errors) {
      std::cout << "  " << code << "=" << count;
    }
    std::cout << "\n";
  }
  for (const std::string& detail : report.mismatch_details) {
    std::cout << "mismatch: " << detail << "\n";
  }
  if (report.scheduler.has_value()) {
    const client::SchedulerStats& s = *report.scheduler;
    const double avg =
        s.batches > 0 ? double(s.batched_queries) / double(s.batches) : 0.0;
    std::cout << "scheduler (window " << s.window_us << "us): " << s.batches
              << " fused batches, " << s.batched_queries << " queries ("
              << FormatDouble(avg, 2) << " avg/batch, max "
              << s.max_batch_queries << "), coalesced submissions: "
              << s.coalesced_submissions << "/" << s.submissions << "\n";
  }
  for (const auto& [tenant, lat] : report.tenant_latency) {
    std::cout << "tenant '" << (tenant.empty() ? "(default)" : tenant)
              << "': " << lat.requests << " requests (" << lat.errors
              << " errors), latency p50 " << FormatDouble(lat.p50_ms, 2)
              << "ms p99 " << FormatDouble(lat.p99_ms, 2) << "ms max "
              << FormatDouble(lat.max_ms, 2) << "ms\n";
  }
  if (report.tenants.has_value()) {
    std::cout << "admission (quota "
              << FormatDouble(report.tenants->quota_qps, 6) << " q/s, burst "
              << FormatDouble(report.tenants->quota_burst, 6) << "):";
    for (const auto& [name, c] : report.tenants->tenants) {
      std::cout << "  " << name << "=" << c.admitted << "/"
                << (c.admitted + c.rejected) << " admitted";
      if (c.shed > 0) std::cout << " (" << c.shed << " shed)";
    }
    std::cout << "\n";
  }
  if (report.retry.has_value()) {
    std::cout << "retry: " << report.retry->attempts << " attempts, "
              << report.retry->retries << " retries, "
              << report.retry->retried_ok << " recovered, "
              << report.retry->reconnects << " reconnects, "
              << report.retry->exhausted << " exhausted\n";
  }
  if (report.faults.has_value()) {
    const net::FaultStats& f = *report.faults;
    std::cout << "faults injected: " << f.total() << "/" << f.writes
              << " writes (drop " << f.drops << ", disconnect "
              << f.disconnects << ", truncate " << f.truncates
              << ", short-write " << f.short_writes << ", delay " << f.delays
              << ")\n";
  }
}

int Run(int argc, char** argv) {
  const std::vector<std::string> boolean_flags = {
      "tcp", "verify", "list-profiles", "retry", "full-rebuild", "help"};
  auto flags_or = FlagSet::Parse(argc, argv, boolean_flags);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const FlagSet& flags = *flags_or;

  const std::set<std::string> known = {
      "profile", "scenario", "replay",  "print-profile", "list-profiles",
      "seed",    "tcp",      "verify",  "record",        "threads",
      "cache",   "retain",   "batch-window-us",          "json",
      "snapshot-dir",        "quota-qps",   "quota-burst",
      "deadline-ms",         "faults",      "fault-seed",
      "retry",   "max-retries",             "help",
      "incremental-delta",   "full-rebuild"};
  for (const auto& name : flags.FlagNames()) {
    if (!known.count(name)) {
      std::cerr << "unknown flag --" << name << "\n" << kUsage;
      return 2;
    }
  }
  if (flags.Has("help")) {
    std::cout << kUsage;
    return 0;
  }
  if (flags.Has("list-profiles")) {
    for (const std::string& name : workload::BuiltinScenarioNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  auto seed = flags.GetInt("seed", 2015);
  if (!seed.ok()) return Fail(seed.status());

  if (flags.Has("print-profile")) {
    auto spec = workload::BuiltinScenario(flags.GetString("print-profile"),
                                          uint64_t(*seed));
    if (!spec.ok()) return Fail(spec.status());
    std::cout << workload::ScenarioToJson(*spec).ToString(2) << "\n";
    return 0;
  }

  const int sources = int(flags.Has("profile")) + int(flags.Has("scenario")) +
                      int(flags.Has("replay"));
  if (sources != 1) {
    std::cerr << "exactly one of --profile / --scenario / --replay is "
                 "required\n"
              << kUsage;
    return 2;
  }

  workload::DriverOptions options;
  auto threads = flags.GetInt("threads", 0);
  auto cache = flags.GetInt("cache", int64_t(options.engine.cache_capacity));
  auto retain = flags.GetInt("retain", int64_t(options.retained_epochs));
  auto window = flags.GetInt("batch-window-us", 0);
  auto verify = flags.GetBool("verify", true);
  auto tcp = flags.GetBool("tcp", false);
  if (!threads.ok()) return Fail(threads.status());
  if (!cache.ok()) return Fail(cache.status());
  if (!retain.ok()) return Fail(retain.status());
  if (!window.ok()) return Fail(window.status());
  if (!verify.ok()) return Fail(verify.status());
  if (!tcp.ok()) return Fail(tcp.status());
  // 10s window cap: matches recpriv_serve, and keeps the int narrowing
  // below from wrapping a huge value into "batching silently off".
  if (*threads < 0 || *cache < 0 || *retain < 1 || *window < 0 ||
      *window > 10000000) {
    return Fail(Status::InvalidArgument(
        "--threads/--cache must be >= 0, --retain >= 1, and "
        "--batch-window-us in [0, 10000000]"));
  }
  options.engine.num_threads = size_t(*threads);
  options.engine.cache_capacity = size_t(*cache);
  options.engine.micro_batch_window_us = int(*window);
  options.retained_epochs = size_t(*retain);
  options.verify = *verify;
  options.over_tcp = *tcp;
  options.snapshot_dir = flags.GetString("snapshot-dir", "");

  auto quota_qps = flags.GetDouble("quota-qps", 0.0);
  auto quota_burst = flags.GetDouble("quota-burst", 0.0);
  auto deadline_ms = flags.GetInt("deadline-ms", 0);
  auto fault_rate = flags.GetDouble("faults", 0.0);
  auto fault_seed = flags.GetInt("fault-seed", 2015);
  auto retry = flags.GetBool("retry", false);
  auto max_retries = flags.GetInt("max-retries", 3);
  if (!quota_qps.ok()) return Fail(quota_qps.status());
  if (!quota_burst.ok()) return Fail(quota_burst.status());
  if (!deadline_ms.ok()) return Fail(deadline_ms.status());
  if (!fault_rate.ok()) return Fail(fault_rate.status());
  if (!fault_seed.ok()) return Fail(fault_seed.status());
  if (!retry.ok()) return Fail(retry.status());
  if (!max_retries.ok()) return Fail(max_retries.status());
  if (*quota_qps < 0 || *quota_burst < 0 || *deadline_ms < 0 ||
      *fault_rate < 0 || *fault_rate > 1 || *max_retries < 0) {
    return Fail(Status::InvalidArgument(
        "--quota-qps/--quota-burst/--deadline-ms/--max-retries must be >= 0 "
        "and --faults in [0, 1]"));
  }
  options.engine.tenant_quota_qps = *quota_qps;
  options.engine.tenant_quota_burst = *quota_burst;
  if (*fault_rate > 0) {
    net::FaultOptions fault_options;
    fault_options.seed = uint64_t(*fault_seed);
    fault_options.drop_rate = *fault_rate;
    fault_options.disconnect_rate = *fault_rate;
    fault_options.truncate_rate = *fault_rate;
    fault_options.short_write_rate = *fault_rate;
    fault_options.delay_rate = *fault_rate;
    fault_options.delay_ms = 5;
    options.fault_injector =
        std::make_shared<net::FaultInjector>(fault_options);
  }
  options.retry = *retry;
  options.retry_policy.max_retries = int(*max_retries);

  auto incremental_delta = flags.GetInt("incremental-delta", 0);
  auto full_rebuild = flags.GetBool("full-rebuild", false);
  if (!incremental_delta.ok()) return Fail(incremental_delta.status());
  if (!full_rebuild.ok()) return Fail(full_rebuild.status());
  if (*incremental_delta < 0) {
    return Fail(Status::InvalidArgument("--incremental-delta must be >= 0"));
  }
  if (*full_rebuild && *incremental_delta == 0) {
    return Fail(Status::InvalidArgument(
        "--full-rebuild only applies with --incremental-delta > 0"));
  }
  options.incremental_delta = size_t(*incremental_delta);
  options.incremental_merge = !*full_rebuild;

  Result<workload::DriverReport> report = Status::Internal("unreachable");
  if (flags.Has("replay")) {
    auto workload_or = workload::ReadWorkload(flags.GetString("replay"));
    if (!workload_or.ok()) return Fail(workload_or.status());
    if (*deadline_ms > 0) workload_or->spec.qos.deadline_ms = *deadline_ms;
    std::cout << "replaying '" << workload_or->spec.name << "' ("
              << workload_or->spec.clients << " clients)\n";
    report = workload::RunWorkload(*workload_or, options);
  } else {
    Result<workload::ScenarioSpec> spec = Status::Internal("unreachable");
    if (flags.Has("profile")) {
      spec = workload::BuiltinScenario(flags.GetString("profile"),
                                       uint64_t(*seed));
    } else {
      spec = workload::LoadScenario(flags.GetString("scenario"));
      if (spec.ok() && flags.Has("seed")) spec->seed = uint64_t(*seed);
    }
    if (!spec.ok()) return Fail(spec.status());
    if (*deadline_ms > 0) spec->qos.deadline_ms = *deadline_ms;
    std::cout << "running '" << spec->name << "': " << spec->clients
              << " clients x " << spec->ops_per_client << " ops, "
              << spec->releases.size() << " release(s)"
              << (options.over_tcp ? ", over TCP" : ", in-process")
              << (options.engine.micro_batch_window_us > 0
                      ? ", micro-batching on"
                      : "")
              << "\n";
    report = workload::RunScenario(*spec, options, flags.GetString("record"));
  }
  if (!report.ok()) return Fail(report.status());

  PrintReport(*report);
  if (flags.Has("json")) {
    std::ofstream out(flags.GetString("json"));
    if (!out) return Fail(Status::IOError("cannot write report JSON"));
    out << ReportToJson(*report).ToString(2) << "\n";
  }
  const bool clean = report->mismatches == 0 && report->unknown_epochs == 0 &&
                     report->hard_failures == 0;
  if (!clean) std::cerr << "FAIL: run was not answer-clean\n";
  return clean ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
