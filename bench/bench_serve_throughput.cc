// Serving throughput: the parallel batched QueryEngine vs. a single-threaded
// loop over per-query evaluation (the offline EvaluatePool style: one
// allocating linear group scan per query), on the paper's workload — a
// 5,000-count-query pool (§6.1) against an SPS release of the synthetic
// CENSUS dataset served on its raw personal groups (~17k groups at 45k
// records; generalization would collapse them to a few hundred and make
// every strategy trivially fast — ungeneralized is the serving-relevant
// regime).
//
// Measures queries/sec vs. worker-thread count and vs. batch size, then the
// answer-cache effect: a repeated (warm) batch must be served at least an
// order of magnitude faster than the cold batch. Exits non-zero if batched
// serving fails to beat the baseline or the cache win is below 10x, so CI
// can gate on it.
//
// RECPRIV_FULL=1 doubles the dataset.

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/sps.h"
#include "datagen/census.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "query/evaluation.h"
#include "query/query_pool.h"
#include "serve/query_engine.h"
#include "serve/release_store.h"
#include "testing_util.h"

namespace {

using namespace recpriv;  // NOLINT

constexpr size_t kPoolSize = 5000;

struct Timed {
  double seconds = 0.0;
  double qps = 0.0;
};

Timed Time(size_t queries, const std::function<void()>& fn) {
  WallTimer timer;
  fn();
  Timed t;
  t.seconds = timer.Seconds();
  t.qps = t.seconds > 0 ? double(queries) / t.seconds : 0.0;
  return t;
}

int Run() {
  exp::PrintBanner(std::cout,
                   "Serving throughput: batched parallel engine vs "
                   "single-threaded query loop",
                   "workload of EDBT'15 §6.1 (5,000-query pool, Eq. 11)");

  const size_t num_records = exp::FullScale() ? 90444 : 45222;
  std::cout << "preparing CENSUS (" << FormatWithCommas(int64_t(num_records))
            << " records, pool " << kPoolSize << ")...\n";
  Rng rng(recpriv::testing::HarnessSeed(2015));
  auto raw = *datagen::GenerateCensus({.num_records = num_records}, rng);
  auto raw_index = table::FlatGroupIndex::Build(raw);
  query::QueryPoolConfig pool_config;
  pool_config.pool_size = kPoolSize;
  std::vector<query::CountQuery> pool =
      *query::GenerateQueryPool(raw_index, pool_config, rng);
  if (pool.size() < kPoolSize) {
    std::cerr << "pool generation fell short: " << pool.size() << "\n";
    return 1;
  }

  // The served artifact: an SPS release on the raw personal groups.
  auto params = exp::DefaultParams(raw.schema()->sa_domain_size());
  auto sps = *core::SpsPerturbTable(params, raw, rng);
  std::string sensitive = sps.table.schema()->sensitive().name;
  auto store = std::make_shared<serve::ReleaseStore>();
  auto snap = *store->Publish(
      "census", analysis::ReleaseBundle{std::move(sps.table), params,
                                       std::move(sensitive), {}});
  std::cout << "release: " << FormatWithCommas(int64_t(snap->index.num_records()))
            << " records, " << FormatWithCommas(int64_t(snap->index.num_groups()))
            << " groups\n\n";

  // --- baseline: single-threaded loop over per-query evaluation ----------
  // (what an offline EvaluatePool-style consumer does: one allocating
  // linear scan of all groups per query)
  std::vector<serve::Answer> baseline_answers(pool.size());
  const Timed baseline = Time(pool.size(), [&] {
    for (size_t i = 0; i < pool.size(); ++i) {
      baseline_answers[i] = serve::EvaluateUncached(*snap, pool[i]);
    }
  });
  std::cout << "single-threaded loop baseline:  "
            << FormatWithCommas(int64_t(baseline.qps)) << " q/s ("
            << FormatDouble(baseline.seconds * 1e3, 4) << " ms)\n\n";

  // --- engine: queries/sec vs thread count --------------------------------
  exp::AsciiTable by_threads(
      {"threads", "strategy", "cold_qps", "warm_qps", "speedup_vs_baseline"});
  double best_cold_qps = 0.0;
  double cold_1thread_seconds = 0.0;
  double warm_1thread_seconds = 0.0;
  for (size_t threads : {size_t(1), size_t(2), size_t(4)}) {
    serve::QueryEngineOptions options;
    options.num_threads = threads;
    serve::QueryEngine engine(store, options);

    serve::BatchResult cold_result;
    const Timed cold = Time(pool.size(), [&] {
      cold_result = *engine.AnswerBatch("census", pool);
    });
    serve::BatchResult warm_result;
    const Timed warm = Time(pool.size(), [&] {
      warm_result = *engine.AnswerBatch("census", pool);
    });
    if (warm_result.cache_hits != pool.size()) {
      std::cerr << "warm batch was not fully cached: "
                << warm_result.cache_hits << "\n";
      return 1;
    }
    // Answers must match the baseline exactly.
    for (size_t i = 0; i < pool.size(); ++i) {
      if (cold_result.answers[i].observed != baseline_answers[i].observed ||
          warm_result.answers[i].observed != baseline_answers[i].observed) {
        std::cerr << "answer mismatch at query " << i << "\n";
        return 1;
      }
    }
    best_cold_qps = std::max(best_cold_qps, cold.qps);
    if (threads == 1) {
      cold_1thread_seconds = cold.seconds;
      warm_1thread_seconds = warm.seconds;
    }
    by_threads.AddRow(
        {std::to_string(threads),
         cold_result.strategy_used == serve::EvalStrategy::kPostings
             ? "postings"
             : "group-shard",
         FormatWithCommas(int64_t(cold.qps)),
         FormatWithCommas(int64_t(warm.qps)),
         FormatDouble(cold.qps / baseline.qps, 3) + "x"});
  }
  std::cout << "queries/sec vs thread count (batch = " << kPoolSize << "):\n";
  by_threads.Print(std::cout);

  // --- engine: queries/sec vs batch size ----------------------------------
  exp::AsciiTable by_batch({"batch_size", "cold_qps", "warm_qps"});
  for (size_t batch_size : {size_t(64), size_t(512), kPoolSize}) {
    serve::QueryEngineOptions options;
    serve::QueryEngine engine(store, options);
    std::vector<std::vector<query::CountQuery>> batches;
    for (size_t lo = 0; lo < pool.size(); lo += batch_size) {
      const size_t hi = std::min(pool.size(), lo + batch_size);
      batches.emplace_back(pool.begin() + lo, pool.begin() + hi);
    }
    const Timed cold = Time(pool.size(), [&] {
      for (const auto& b : batches) {
        if (!engine.AnswerBatch("census", b).ok()) std::abort();
      }
    });
    const Timed warm = Time(pool.size(), [&] {
      for (const auto& b : batches) {
        if (!engine.AnswerBatch("census", b).ok()) std::abort();
      }
    });
    by_batch.AddRow({std::to_string(batch_size),
                     FormatWithCommas(int64_t(cold.qps)),
                     FormatWithCommas(int64_t(warm.qps))});
  }
  std::cout << "\nqueries/sec vs batch size (default threads):\n";
  by_batch.Print(std::cout);

  // --- verdicts ------------------------------------------------------------
  const double engine_speedup = best_cold_qps / baseline.qps;
  const double cache_speedup =
      warm_1thread_seconds > 0 ? cold_1thread_seconds / warm_1thread_seconds
                               : 0.0;
  std::cout << "\nbatched engine (best cold) vs single-threaded loop: "
            << FormatDouble(engine_speedup, 3) << "x  ["
            << (engine_speedup > 1.0 ? "PASS" : "FAIL") << "]\n";
  std::cout << "cached repeat batch vs cold batch (1 thread): "
            << FormatDouble(cache_speedup, 3) << "x  ["
            << (cache_speedup >= 10.0 ? "PASS" : "FAIL") << "]\n";
  return (engine_speedup > 1.0 && cache_speedup >= 10.0) ? 0 : 1;
}

}  // namespace

int main() { return Run(); }
