// Incremental-republish bench: delta-merge republish (StreamingPublisher::
// PublishIncremental — side index over the delta, SPS re-run on touched
// groups only, two-level run merge) vs the full rebuild it replaces
// (record-level SPS over the whole buffer + radix-sort index Build).
//
// Dataset: synthesized CENSUS at 300,000 records with a 1% insert delta —
// the regime the incremental path exists for: a large stable base touched
// by a small batch of fresh rows. Both arms start from the same published
// base and produce a query-ready (table, index) for the next epoch.
//
// Correctness is asserted, not assumed: the merge-built index must be
// bit-identical (array by array) to a full radix-sort Build over the same
// canonical table, and the merge_index=false reference arm — same inserts,
// same RNG seed — must produce the identical table AND index. A faster
// republish that changed one answer would be a bug, not a win.
//
// Results go to stdout and to --out (default BENCH_incremental_republish.json):
//
//   {
//     "schema": "bench_incremental_republish/v1",
//     "quick": false,
//     "dataset": {"rows": R, "delta_rows": D, "groups": G,
//                 "groups_touched": T, "groups_carried": C},
//     "benchmarks": {
//       "republish/incremental": {"ms": M, "iters": I},
//       "republish/full":        {"ms": M, "iters": I}
//     },
//     "speedup": full_ms / incremental_ms,
//     "identical": true
//   }
//
// Exits non-zero unless the incremental republish is >=5x faster than the
// full rebuild at the >=100k-row scale (the gate CI pins); --quick shrinks
// the dataset for smoke runs (gate skipped, identity still asserted).

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/sps.h"
#include "core/streaming.h"
#include "datagen/census.h"
#include "exp/reporting.h"
#include "table/flat_group_index.h"
#include "testing_util.h"

namespace {

using namespace recpriv;  // NOLINT

using recpriv::core::IncrementalPublishResult;
using recpriv::core::StreamingPublisher;
using recpriv::table::FlatGroupIndex;
using recpriv::table::Table;

template <typename A, typename B>
bool SpanEqual(A a, B b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

bool SameStorage(const FlatGroupIndex& a, const FlatGroupIndex& b) {
  const auto sa = a.storage();
  const auto sb = b.storage();
  return sa.packed == sb.packed && sa.num_groups == sb.num_groups &&
         sa.num_records == sb.num_records &&
         SpanEqual(sa.packed_keys, sb.packed_keys) &&
         SpanEqual(sa.na_codes, sb.na_codes) &&
         SpanEqual(sa.sa_counts, sb.sa_counts) &&
         SpanEqual(sa.row_offsets, sb.row_offsets) &&
         SpanEqual(sa.row_values, sb.row_values);
}

bool SameTable(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (!SpanEqual(a.column(c), b.column(c))) return false;
  }
  return true;
}

/// A publisher holding `base` published (one incremental publish behind it)
/// and `delta` inserted but pending — the state each timed republish starts
/// from. Draws its setup SPS stream from `seed`.
Result<StreamingPublisher> PreparePublisher(const Table& data, size_t base,
                                            size_t delta,
                                            const core::PrivacyParams& params,
                                            uint64_t seed) {
  RECPRIV_ASSIGN_OR_RETURN(StreamingPublisher publisher,
                           StreamingPublisher::Make(data.schema(), params));
  std::vector<uint32_t> row(data.num_columns());
  auto insert = [&](size_t r) -> Status {
    for (size_t c = 0; c < data.num_columns(); ++c) row[c] = data.at(r, c);
    return publisher.Insert(row);
  };
  for (size_t r = 0; r < base; ++r) {
    RECPRIV_RETURN_NOT_OK(insert(r));
  }
  Rng rng(seed);
  RECPRIV_RETURN_NOT_OK(
      publisher.PublishIncremental(rng, /*merge_index=*/true).status());
  for (size_t r = base; r < base + delta; ++r) {
    RECPRIV_RETURN_NOT_OK(insert(r));
  }
  return publisher;
}

int Run(int argc, char** argv) {
  auto flags = FlagSet::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  const bool quick = *flags->GetBool("quick", false);
  const std::string out_path =
      flags->GetString("out", "BENCH_incremental_republish.json");
  const size_t rows = quick ? 20000 : 300000;
  const size_t delta_rows = rows / 100;  // the 1% insert batch
  const size_t iters_inc = quick ? 1 : 3;
  const size_t iters_full = quick ? 1 : 2;

  exp::PrintBanner(std::cout,
                   "Incremental republish: delta merge vs full SPS rebuild",
                   quick ? "quick smoke size (gate skipped)"
                         : "CENSUS 300k base + 1% delta");

  // --- one CENSUS draw covers base and delta (same schema, same dicts) -----
  const uint64_t seed = recpriv::testing::HarnessSeed(20150315);
  Rng data_rng(seed);
  auto data =
      datagen::GenerateCensus({.num_records = rows + delta_rows}, data_rng);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  core::PrivacyParams params;
  params.lambda = 0.3;
  params.delta = 0.3;
  params.retention_p = 0.5;
  params.domain_m = data->schema()->sa_domain_size();

  // --- timed arm 1: incremental republish (merge path) ---------------------
  // Each iteration consumes its pending delta, so every iteration gets its
  // own prepared publisher; setup (inserts + base publish) is untimed, and
  // iteration 0 is a discarded warmup (page cache, allocator).
  double inc_ms_total = 0.0;
  Result<IncrementalPublishResult> merged = Status::Internal("never ran");
  for (size_t i = 0; i < iters_inc + 1; ++i) {
    auto publisher =
        PreparePublisher(*data, rows, delta_rows, params, seed + 1);
    if (!publisher.ok()) {
      std::cerr << publisher.status() << "\n";
      return 1;
    }
    Rng rng(seed + 2);
    WallTimer timer;
    merged = publisher->PublishIncremental(rng, /*merge_index=*/true);
    if (i > 0) inc_ms_total += timer.Millis();
    if (!merged.ok()) {
      std::cerr << merged.status() << "\n";
      return 1;
    }
  }
  const double inc_ms = inc_ms_total / double(iters_inc);

  // --- timed arm 2: the full rebuild it replaces ---------------------------
  // Record-level SPS over the whole base+delta buffer, then a radix-sort
  // index build — the cost Publish()+Build pays at every republish.
  auto full_publisher =
      PreparePublisher(*data, rows, delta_rows, params, seed + 1);
  if (!full_publisher.ok()) {
    std::cerr << full_publisher.status() << "\n";
    return 1;
  }
  double full_ms_total = 0.0;
  for (size_t i = 0; i < iters_full; ++i) {
    Rng rng(seed + 3);
    WallTimer timer;
    auto sps = full_publisher->Publish(rng);
    if (!sps.ok()) {
      std::cerr << sps.status() << "\n";
      return 1;
    }
    FlatGroupIndex index = FlatGroupIndex::Build(sps->table);
    full_ms_total += timer.Millis();
    if (index.num_records() != merged->index.num_records()) {
      std::cerr << "full rebuild released a different record count\n";
      return 1;
    }
  }
  const double full_ms = full_ms_total / double(iters_full);

  // --- bit-identity: merge path vs reference builds ------------------------
  // (a) the merged index vs a full Build over the same canonical table;
  // (b) the merge_index=false arm (same inserts, same seeds) — table and
  //     index both — so the flag provably selects only the algorithm.
  bool identical = SameStorage(merged->index,
                               FlatGroupIndex::Build(merged->table));
  {
    auto reference =
        PreparePublisher(*data, rows, delta_rows, params, seed + 1);
    if (!reference.ok()) {
      std::cerr << reference.status() << "\n";
      return 1;
    }
    Rng rng(seed + 2);
    auto rebuilt = reference->PublishIncremental(rng, /*merge_index=*/false);
    if (!rebuilt.ok()) {
      std::cerr << rebuilt.status() << "\n";
      return 1;
    }
    identical = identical && SameTable(merged->table, rebuilt->table) &&
                SameStorage(merged->index, rebuilt->index);
  }

  const double speedup = full_ms / std::max(inc_ms, 1e-9);
  std::cout << "\ncensus: " << FormatWithCommas(int64_t(rows)) << " base + "
            << FormatWithCommas(int64_t(delta_rows)) << " delta rows, "
            << FormatWithCommas(int64_t(merged->index.num_groups()))
            << " groups (" << merged->stats.groups_touched << " touched, "
            << merged->stats.groups_carried << " carried forward)\n\n";
  exp::AsciiTable table({"republish path", "ms", "iters"});
  table.AddRow({"incremental (delta merge)", FormatDouble(inc_ms, 4),
                std::to_string(iters_inc)});
  table.AddRow({"full SPS rebuild", FormatDouble(full_ms, 4),
                std::to_string(iters_full)});
  table.Print(std::cout);
  std::cout << "speedup: " << FormatDouble(speedup, 3)
            << "x, content identical: " << (identical ? "yes" : "NO") << "\n";

  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("bench_incremental_republish/v1"));
  doc.Set("quick", JsonValue::Bool(quick));
  JsonValue dataset = JsonValue::Object();
  dataset.Set("rows", JsonValue::Int(int64_t(rows)));
  dataset.Set("delta_rows", JsonValue::Int(int64_t(delta_rows)));
  dataset.Set("groups", JsonValue::Int(int64_t(merged->index.num_groups())));
  dataset.Set("groups_touched",
              JsonValue::Int(int64_t(merged->stats.groups_touched)));
  dataset.Set("groups_carried",
              JsonValue::Int(int64_t(merged->stats.groups_carried)));
  doc.Set("dataset", std::move(dataset));
  JsonValue benchmarks = JsonValue::Object();
  auto entry = [](double ms, size_t iters) {
    JsonValue e = JsonValue::Object();
    e.Set("ms", JsonValue::Number(ms));
    e.Set("iters", JsonValue::Int(int64_t(iters)));
    return e;
  };
  benchmarks.Set("republish/incremental", entry(inc_ms, iters_inc));
  benchmarks.Set("republish/full", entry(full_ms, iters_full));
  doc.Set("benchmarks", std::move(benchmarks));
  doc.Set("speedup", JsonValue::Number(speedup));
  doc.Set("identical", JsonValue::Bool(identical));
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.ToString(2) << "\n";
  }
  std::cout << "results written to " << out_path << "\n";

  if (!identical) {
    std::cout << "content equality: FAIL\n";
    return 1;
  }
  if (rows >= 100000) {
    const bool pass = speedup >= 5.0;
    std::cout << ">=5x incremental republish vs full rebuild at >=100k rows: "
              << (pass ? "PASS" : "FAIL") << "\n";
    return pass ? 0 : 1;
  }
  std::cout << "speedup gate skipped (below 100k rows at this size)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
