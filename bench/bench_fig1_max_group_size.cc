// Reproduces Figure 1 (paper §6.1): the maximum group size s_g (Eq. 10) as
// a function of the maximum SA frequency f, for p in {0.3, 0.5, 0.7}, at
// the default lambda = delta = 0.3.
//
//   (a) ADULT:  m = 2,  f in [0.5, 0.9] (income has 2 values, so f >= 0.5)
//   (b) CENSUS: m = 50, f in [0.1, 0.9]

#include <iostream>

#include "common/string_util.h"
#include "core/reconstruction_privacy.h"
#include "exp/reporting.h"

namespace {

using namespace recpriv;  // NOLINT

void Plot(const std::string& title, size_t m, double f_lo, double f_hi,
          double f_step) {
  std::cout << "\n--- " << title << " (m = " << m
            << ", lambda = delta = 0.3) ---\n";
  std::vector<std::string> labels;
  for (double f = f_lo; f <= f_hi + 1e-9; f += f_step) {
    labels.push_back(FormatDouble(f, 2));
  }
  std::vector<exp::Series> series;
  for (double p : {0.3, 0.5, 0.7}) {
    core::PrivacyParams params;
    params.lambda = 0.3;
    params.delta = 0.3;
    params.retention_p = p;
    params.domain_m = m;
    exp::Series s;
    s.name = "p=" + FormatDouble(p, 2) + " s_g";
    for (double f = f_lo; f <= f_hi + 1e-9; f += f_step) {
      s.values.push_back(core::MaxGroupSize(params, f));
    }
    series.push_back(std::move(s));
  }
  exp::PrintSeries(std::cout, "f", labels, series, 1);
}

int Run() {
  exp::PrintBanner(std::cout,
                   "Figure 1: maximum group size s_g vs max frequency f",
                   "EDBT'15 Figure 1 (Eq. 10)");
  Plot("(a) ADULT", 2, 0.5, 0.9, 0.1);
  Plot("(b) CENSUS", 50, 0.1, 0.9, 0.1);
  std::cout
      << "\npaper shape: s_g falls sharply as f grows; for small f (CENSUS) "
         "s_g explodes,\nso groups rarely violate; lower p raises s_g.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
