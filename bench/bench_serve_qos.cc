// Per-tenant QoS isolation: victim latency under an abusive tenant, with
// and without admission quotas (serve/admission.h).
//
// Three arms over the abusive_tenant workload profile, all in-process and
// oracle-verified:
//
//   baseline         4 paced "victim" clients, no abusers, no quotas —
//                    the latency victims deserve;
//   abuser           2 unpaced "abuser" clients at 6x volume join in, no
//                    quotas — the noisy-neighbor regime (reported, not
//                    gated: how bad it gets is hardware-dependent);
//   abuser+quota     same flood, but tenant_quota_qps set — the abuser's
//                    excess is rejected RESOURCE_EXHAUSTED at admission,
//                    before it can queue work behind the victims.
//
// Gate (CI, >= 4 hardware threads): with quotas on, victim p99 must stay
// within 2x the no-abuser baseline, the abuser must actually get rejected,
// and every arm must be answer-clean (zero mismatches / hard failures).
// The engine runs on 2 worker threads in every arm so the abuser genuinely
// contends for evaluation capacity rather than disappearing into a large
// pool. --quick shrinks the run and skips the latency gate.
//
// Results go to BENCH_serve_qos.json (--out to override).

#include <fstream>
#include <iostream>
#include <thread>

#include "common/flags.h"
#include "common/json.h"
#include "common/string_util.h"
#include "exp/reporting.h"
#include "workload/driver.h"
#include "workload/scenario.h"

namespace {

using namespace recpriv;  // NOLINT

JsonValue LatencyToJson(const workload::TenantLatency& lat) {
  JsonValue out = JsonValue::Object();
  out.Set("requests", JsonValue::Int(int64_t(lat.requests)));
  out.Set("errors", JsonValue::Int(int64_t(lat.errors)));
  out.Set("p50_ms", JsonValue::Number(lat.p50_ms));
  out.Set("p99_ms", JsonValue::Number(lat.p99_ms));
  out.Set("max_ms", JsonValue::Number(lat.max_ms));
  return out;
}

int Run(int argc, char** argv) {
  auto flags = FlagSet::Parse(argc, argv, {"quick"});
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 2;
  }
  const bool quick = *flags->GetBool("quick", false);
  const std::string out_path = flags->GetString("out", "BENCH_serve_qos.json");
  // Quota sizing: victims are paced to ~400 aggregate req/s (well under
  // the 1000 q/s quota, so the victim bucket never empties), while the
  // unpaced abusers demand orders of magnitude more than burst + refill
  // can cover — so rejections are guaranteed by arithmetic, not timing.
  const double quota_qps = *flags->GetDouble("quota-qps", 1000.0);
  const double quota_burst = *flags->GetDouble("quota-burst", 50.0);

  exp::PrintBanner(std::cout,
                   "Per-tenant QoS: victim latency vs an abusive tenant, "
                   "with and without admission quotas",
                   quick ? "quick smoke sizes (latency gate skipped)"
                         : "abusive_tenant profile, oracle-verified");

  auto spec_or = workload::BuiltinScenario("abusive_tenant", 2015);
  if (!spec_or.ok()) {
    std::cerr << spec_or.status() << "\n";
    return 1;
  }
  workload::ScenarioSpec abuse_spec = *spec_or;
  abuse_spec.ops_per_client = quick ? 30 : 200;
  abuse_spec.pacing_us = 10000;  // victims: a polite ~100 req/s per client
  workload::ScenarioSpec baseline_spec = abuse_spec;
  baseline_spec.clients = abuse_spec.clients - abuse_spec.qos.abusive_clients;
  baseline_spec.qos.abusive_clients = 0;

  workload::DriverOptions options;
  // Two workers in every arm: enough to serve the victims, small enough
  // that an unthrottled abuser visibly contends for them.
  options.engine.num_threads = 2;
  options.verify = true;

  auto run_arm = [&](const workload::ScenarioSpec& spec,
                     double qps) -> Result<workload::DriverReport> {
    workload::DriverOptions arm = options;
    arm.engine.tenant_quota_qps = qps;
    arm.engine.tenant_quota_burst = quota_burst;
    return workload::RunScenario(spec, arm);
  };

  auto baseline = run_arm(baseline_spec, 0.0);
  auto abuser = run_arm(abuse_spec, 0.0);
  auto quota = run_arm(abuse_spec, quota_qps);
  if (!baseline.ok() || !abuser.ok() || !quota.ok()) {
    std::cerr << "arm failed: "
              << (!baseline.ok()   ? baseline.status()
                  : !abuser.ok()   ? abuser.status()
                                   : quota.status())
              << "\n";
    return 1;
  }

  const workload::TenantLatency& v_base = baseline->tenant_latency["victim"];
  const workload::TenantLatency& v_abuse = abuser->tenant_latency["victim"];
  const workload::TenantLatency& v_quota = quota->tenant_latency["victim"];
  const workload::TenantLatency& a_quota = quota->tenant_latency["abuser"];

  uint64_t abuser_rejected = 0;
  if (quota->tenants.has_value()) {
    auto it = quota->tenants->tenants.find("abuser");
    if (it != quota->tenants->tenants.end()) {
      abuser_rejected = it->second.rejected;
    }
  }

  exp::AsciiTable table({"arm", "victim p50 ms", "victim p99 ms",
                         "abuser requests", "abuser rejected"});
  table.AddRow({"baseline (no abuser)", FormatDouble(v_base.p50_ms, 4),
                FormatDouble(v_base.p99_ms, 4), "-", "-"});
  table.AddRow({"abuser, no quota", FormatDouble(v_abuse.p50_ms, 4),
                FormatDouble(v_abuse.p99_ms, 4),
                std::to_string(abuser->tenant_latency["abuser"].requests),
                "0"});
  table.AddRow({"abuser, quota " + FormatDouble(quota_qps, 6) + " q/s",
                FormatDouble(v_quota.p50_ms, 4),
                FormatDouble(v_quota.p99_ms, 4),
                std::to_string(a_quota.requests),
                std::to_string(abuser_rejected)});
  table.Print(std::cout);

  const bool clean =
      baseline->mismatches == 0 && baseline->hard_failures == 0 &&
      abuser->mismatches == 0 && abuser->hard_failures == 0 &&
      quota->mismatches == 0 && quota->hard_failures == 0 &&
      baseline->unknown_epochs == 0 && abuser->unknown_epochs == 0 &&
      quota->unknown_epochs == 0;
  const double p99_ratio =
      v_base.p99_ms > 0 ? v_quota.p99_ms / v_base.p99_ms : 0.0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::cout << "\nanswer-clean in all arms: " << (clean ? "PASS" : "FAIL")
            << "\n";
  std::cout << "abuser rejections with quota: " << abuser_rejected << "  ["
            << (quick ? "gate skipped (--quick)"
                      : (abuser_rejected > 0 ? "PASS (> 0)" : "FAIL (== 0)"))
            << "]\n";
  std::cout << "victim p99 with quota vs baseline: "
            << FormatDouble(p99_ratio, 3) << "x at " << hw
            << " hardware threads  ";
  // The latency gate needs real parallel headroom: with < 4 hardware
  // threads the victims, the abusers, and the 2 engine workers all fight
  // for the same cores and the ratio measures the machine, not admission.
  const bool gate_latency = !quick && hw >= 4;
  bool latency_ok = true;
  if (gate_latency) {
    latency_ok = p99_ratio <= 2.0;
    std::cout << "(gate 2x)  [" << (latency_ok ? "PASS" : "FAIL") << "]\n";
  } else {
    std::cout << (quick ? "(gate skipped: --quick)"
                        : "(gate skipped: < 4 hardware threads)")
              << "  [PASS]\n";
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("bench_serve_qos/v1"));
  doc.Set("quick", JsonValue::Bool(quick));
  doc.Set("quota_qps", JsonValue::Number(quota_qps));
  doc.Set("quota_burst", JsonValue::Number(quota_burst));
  doc.Set("hardware_threads", JsonValue::Int(int64_t(hw)));
  JsonValue arms = JsonValue::Object();
  JsonValue arm_base = JsonValue::Object();
  arm_base.Set("victim", LatencyToJson(v_base));
  arms.Set("baseline", std::move(arm_base));
  JsonValue arm_abuse = JsonValue::Object();
  arm_abuse.Set("victim", LatencyToJson(v_abuse));
  arm_abuse.Set("abuser", LatencyToJson(abuser->tenant_latency["abuser"]));
  arms.Set("abuser_no_quota", std::move(arm_abuse));
  JsonValue arm_quota = JsonValue::Object();
  arm_quota.Set("victim", LatencyToJson(v_quota));
  arm_quota.Set("abuser", LatencyToJson(a_quota));
  arm_quota.Set("abuser_rejected", JsonValue::Int(int64_t(abuser_rejected)));
  arms.Set("abuser_quota", std::move(arm_quota));
  doc.Set("arms", std::move(arms));
  doc.Set("victim_p99_ratio", JsonValue::Number(p99_ratio));
  doc.Set("answers_clean", JsonValue::Bool(clean));
  doc.Set("latency_gated", JsonValue::Bool(gate_latency));
  {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << doc.ToString(2) << "\n";
  }
  std::cout << "results written to " << out_path << "\n";

  if (!clean) return 1;
  if (!quick && abuser_rejected == 0) return 1;
  if (gate_latency && !latency_ok) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
