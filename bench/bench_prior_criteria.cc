// Extra study (paper §1.1 motivation): posterior/prior criteria enable (B)
// — no sensitive NIR — by SMOOTHING group distributions, which destroys
// exactly the statistical relationships an analyst wants to learn (A).
// Reconstruction privacy achieves (B) while preserving (A).
//
// On the ADULT data we compare three releases:
//   * t-closeness-smoothed micro-data (t = 0.15, no perturbation),
//   * plain uniform perturbation (UP) — utility but personal disclosure,
//   * SPS — the paper's mechanism.
// and score each on:
//   * the headline statistical relationship (Example 1's rule confidence),
//   * per-education >50K rates (the "smokers tend to ..." signals),
//   * the personal-reconstruction risk of the largest personal group.

#include <cmath>
#include <iostream>

#include "anon/tcloseness.h"
#include "common/string_util.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "perturb/mle.h"
#include "perturb/uniform_perturbation.h"
#include "table/group_index.h"

namespace {

using namespace recpriv;  // NOLINT

/// >50K rate per education class, either raw (smoothed release) or
/// reconstructed (perturbed releases).
std::vector<double> EducationRates(const table::Table& t, bool reconstruct,
                                   double p) {
  const size_t m = t.schema()->sa_domain_size();
  const size_t edu = 0, sa_col = t.schema()->sensitive_index();
  const size_t k = t.schema()->attribute(edu).domain.size();
  std::vector<uint64_t> hi(k, 0), n(k, 0);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    uint32_t e = t.at(r, edu);
    ++n[e];
    hi[e] += (t.at(r, sa_col) == 1);
  }
  std::vector<double> rates(k, 0.0);
  const perturb::UniformPerturbation up{p, m};
  for (size_t e = 0; e < k; ++e) {
    if (n[e] == 0) continue;
    rates[e] = reconstruct ? perturb::MleFrequency(up, hi[e], n[e])
                           : double(hi[e]) / double(n[e]);
  }
  return rates;
}

double MeanAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) total += std::abs(a[i] - b[i]);
  return total / double(a.size());
}

int Run() {
  exp::PrintBanner(std::cout,
                   "Prior/posterior criteria vs reconstruction privacy",
                   "EDBT'15 Section 1.1 motivation (utility of statistical "
                   "learning)");

  auto ds = exp::PrepareAdult(45222, 0, 2015);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto params = exp::DefaultParams(2);
  const auto truth_rates = EducationRates(ds->generalized, false, 0);

  Rng rng(7);
  // t-closeness smoothing (no perturbation).
  auto smoothed =
      anon::EnforceTClosenessBySmoothing(ds->generalized, 0.15, rng);
  if (!smoothed.ok()) {
    std::cerr << smoothed.status() << "\n";
    return 1;
  }
  // UP and SPS releases.
  const perturb::UniformPerturbation up{params.retention_p, params.domain_m};
  auto up_release = *perturb::PerturbTable(up, ds->generalized, rng);
  auto sps_release = *core::SpsPerturbTable(params, ds->generalized, rng);

  // Headline relationship: rate in the advanced-degree professional class.
  auto conf_of = [&](const table::Table& t, bool reconstruct) {
    const size_t sa_col = t.schema()->sensitive_index();
    // The generalized Education/Occupation carry the merged class labels;
    // target the advanced-degree class (contains "Prof-school").
    uint32_t edu_code = 0, occ_code = 0;
    for (uint32_t v = 0; v < t.schema()->attribute(0).domain.size(); ++v) {
      if (t.schema()->attribute(0).domain.value(v).find("Prof-school") !=
          std::string::npos) {
        edu_code = v;
      }
    }
    for (uint32_t v = 0; v < t.schema()->attribute(1).domain.size(); ++v) {
      if (t.schema()->attribute(1).domain.value(v).find("Prof-specialty") !=
          std::string::npos) {
        occ_code = v;
      }
    }
    uint64_t n = 0, hi = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) {
      if (t.at(r, 0) == edu_code && t.at(r, 1) == occ_code) {
        ++n;
        hi += (t.at(r, sa_col) == 1);
      }
    }
    if (n == 0) return 0.0;
    return reconstruct ? perturb::MleFrequency(up, hi, n)
                       : double(hi) / double(n);
  };

  const double true_conf = conf_of(ds->generalized, false);
  exp::AsciiTable out({"release", "headline rule conf",
                       "mean |edu-rate error|", "protects personal recon?"});
  out.AddRow({"raw data (no protection)", FormatDouble(true_conf, 4),
              "0", "no"});
  out.AddRow({"t-closeness smoothed (t=0.15)",
              FormatDouble(conf_of(*smoothed, false), 4),
              FormatDouble(MeanAbsDiff(EducationRates(*smoothed, false, 0),
                                       truth_rates),
                           4),
              "yes (by destroying the signal)"});
  out.AddRow({"uniform perturbation (UP)",
              FormatDouble(conf_of(up_release, true), 4),
              FormatDouble(MeanAbsDiff(EducationRates(up_release, true,
                                                      params.retention_p),
                                       truth_rates),
                           4),
              "no (Cor. 4 violations)"});
  out.AddRow({"SPS (reconstruction privacy)",
              FormatDouble(conf_of(sps_release.table, true), 4),
              FormatDouble(MeanAbsDiff(EducationRates(sps_release.table, true,
                                                      params.retention_p),
                                       truth_rates),
                           4),
              "yes (Thm. 4)"});
  out.Print(std::cout);
  std::cout << "\ntrue headline conf = " << FormatDouble(true_conf, 4)
            << ". reading: smoothing pulls the rule confidence toward the "
               "24.78% base rate\n(the relationship becomes unlearnable); "
               "UP and SPS preserve it through\nreconstruction — and only "
               "SPS also blocks accurate personal reconstruction.\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
