// Ablation study of the SPS design choices (paper §5 discussion):
//
//   1. frequency-preserving sampling (SPS)  vs  uniform record sampling —
//      the paper requires the sample to preserve every SA frequency so that
//      s_{g1} = s_g and utility is unbiased; uniform sampling drifts the
//      per-group frequencies.
//   2. with vs without the Scaling step — scaling restores group sizes so
//      that |S*| f' estimates are on the original scale; without it, est
//      would be computed over shrunken groups (still unbiased but the
//      publisher leaks which groups were sampled and by how much).
//   3. SPS sampling  vs  the "reduce p" alternative the paper rejects:
//      per-dataset, choose the largest global p' that makes every group
//      private, then run plain UP at p'. This distorts every group to fix
//      the few violating ones.
//
// All variants are audited on the ADULT workload with the paper's default
// parameters; we report the mean relative query error and the violation
// status after enforcement.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/random.h"
#include "common/string_util.h"
#include "core/reconstruction_privacy.h"
#include "core/sps.h"
#include "core/violation.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "perturb/uniform_perturbation.h"
#include "query/evaluation.h"

namespace {

using namespace recpriv;  // NOLINT

/// Variant 1: uniform (non-frequency-preserving) sampling of s_g records,
/// then perturb and scale. Sampling is hypergeometric per SA value.
Result<std::vector<uint64_t>> UniformSampleSps(
    const core::PrivacyParams& params, const std::vector<uint64_t>& counts,
    Rng& rng) {
  const perturb::UniformPerturbation up{params.retention_p, params.domain_m};
  uint64_t size = 0, max_count = 0;
  for (uint64_t c : counts) {
    size += c;
    max_count = std::max(max_count, c);
  }
  if (size == 0) return std::vector<uint64_t>(params.domain_m, 0);
  const double f = double(max_count) / double(size);
  const double s_g = core::MaxGroupSize(params, f);
  if (double(size) <= s_g) return perturb::PerturbCounts(up, counts, rng);

  // Draw floor(s_g) records uniformly without regard to SA value:
  // sequential hypergeometric sampling.
  uint64_t want = uint64_t(std::min<double>(s_g, double(size)));
  std::vector<uint64_t> sample(params.domain_m, 0);
  uint64_t remaining_pop = size, remaining_want = want;
  for (size_t i = 0; i < counts.size(); ++i) {
    // Hypergeometric draw approximated by sequential Bernoulli; exact
    // enough for an ablation.
    uint64_t take = 0;
    for (uint64_t k = 0; k < counts[i] && remaining_want > 0; ++k) {
      if (rng.NextBernoulli(double(remaining_want) / double(remaining_pop))) {
        ++take;
        --remaining_want;
      }
      --remaining_pop;
    }
    sample[i] = take;
  }
  RECPRIV_ASSIGN_OR_RETURN(std::vector<uint64_t> perturbed,
                           perturb::PerturbCounts(up, sample, rng));
  return core::ScaleCounts(perturbed, double(size) / double(want), rng);
}

/// Variant 2: SPS without the Scaling step (publish the small sample).
Result<std::vector<uint64_t>> NoScalingSps(const core::PrivacyParams& params,
                                           const std::vector<uint64_t>& counts,
                                           Rng& rng) {
  const perturb::UniformPerturbation up{params.retention_p, params.domain_m};
  uint64_t size = 0, max_count = 0;
  for (uint64_t c : counts) {
    size += c;
    max_count = std::max(max_count, c);
  }
  if (size == 0) return std::vector<uint64_t>(params.domain_m, 0);
  const double f = double(max_count) / double(size);
  const double s_g = core::MaxGroupSize(params, f);
  if (double(size) <= s_g) return perturb::PerturbCounts(up, counts, rng);
  std::vector<uint64_t> sample = core::FrequencyPreservingSample(
      counts, s_g / double(size), rng);
  return perturb::PerturbCounts(up, sample, rng);
}

/// Variant 3: the rejected alternative — reduce the global retention p
/// until every group satisfies privacy, then plain UP.
double LargestPrivateP(const recpriv::table::GroupIndex& index,
                       const core::PrivacyParams& base) {
  double lo = 0.001, hi = base.retention_p;
  for (int iter = 0; iter < 60; ++iter) {
    double mid = 0.5 * (lo + hi);
    core::PrivacyParams params = base;
    params.retention_p = mid;
    if (core::AuditViolations(index, params).violating_groups == 0) {
      lo = mid;  // private: can afford more retention? No: larger p ->
                 // smaller s_g -> more violations. lo holds private side.
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<query::PerturbedGroups> RunVariant(
    const recpriv::table::GroupIndex& index,
    const core::PrivacyParams& params, int variant, Rng& rng) {
  query::PerturbedGroups out;
  for (const auto& g : index.groups()) {
    Result<std::vector<uint64_t>> observed =
        variant == 1 ? UniformSampleSps(params, g.sa_counts, rng)
                     : NoScalingSps(params, g.sa_counts, rng);
    RECPRIV_RETURN_NOT_OK(observed.status());
    uint64_t size = 0;
    for (uint64_t c : *observed) size += c;
    out.observed.push_back(std::move(*observed));
    out.sizes.push_back(size);
  }
  return out;
}

int Run() {
  exp::PrintBanner(std::cout, "Ablation: SPS design choices",
                   "EDBT'15 Section 5 design discussion");

  const size_t pool_size = exp::FullScale() ? 5000 : 2000;
  const size_t runs = exp::NumRuns(10);
  auto ds = exp::PrepareAdult(45222, pool_size, 2015);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }
  auto params = exp::DefaultParams(2);

  auto evaluate = [&](auto&& make_groups) -> Result<double> {
    double total = 0.0;
    Rng rng(31337);
    for (size_t i = 0; i < runs; ++i) {
      RECPRIV_ASSIGN_OR_RETURN(query::PerturbedGroups groups,
                               make_groups(rng));
      total += query::EvaluateRelativeError(ds->pool, ds->flat_index, groups,
                                            params.retention_p)
                   .mean_relative_error;
    }
    return total / double(runs);
  };

  exp::AsciiTable out({"variant", "mean relative error", "notes"});

  auto up_err = evaluate([&](Rng& rng) {
    return query::PerturbAllGroups(ds->flat_index, params.retention_p, rng);
  });
  out.AddRow({"UP (no enforcement)", FormatDouble(*up_err, 4),
              "violates reconstruction privacy"});

  auto sps_err = evaluate(
      [&](Rng& rng) { return query::SpsAllGroups(ds->flat_index, params, rng); });
  out.AddRow({"SPS (paper)", FormatDouble(*sps_err, 4),
              "frequency-preserving sample + scale"});

  auto uni_err = evaluate([&](Rng& rng) {
    return RunVariant(ds->index, params, 1, rng);
  });
  out.AddRow({"SPS w/ uniform sampling", FormatDouble(*uni_err, 4),
              "sample drifts per-group frequencies"});

  auto noscale_err = evaluate([&](Rng& rng) {
    return RunVariant(ds->index, params, 2, rng);
  });
  out.AddRow({"SPS w/o scaling", FormatDouble(*noscale_err, 4),
              "publishes shrunken groups"});

  const double p_prime = LargestPrivateP(ds->index, params);
  core::PrivacyParams reduced = params;
  reduced.retention_p = std::max(p_prime, 0.001);
  auto reduced_err = evaluate([&](Rng& rng) {
    return query::PerturbAllGroups(ds->flat_index, reduced.retention_p, rng);
  });
  out.AddRow({"reduce-p alternative (p'=" + FormatDouble(p_prime, 3) + ")",
              FormatDouble(*reduced_err, 4),
              "global noise to fix local violations"});

  out.Print(std::cout);
  std::cout << "\nreading: the paper's SPS should beat the reduce-p "
               "alternative (which makes the\nwhole dataset near-noise) "
               "while matching the uniform-sampling variant on error\n"
               "(whose drawback is bias/drift in small SA values, not mean "
               "error).\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
