// Reproduces Table 5 (paper §6.1): the impact of NA-value aggregation on
// CENSUS 300K — Age collapses 77 -> 1 (occupation is independent of age),
// every other public attribute keeps its full domain, and the group space
// shrinks to 1 x 2 x 14 x 6 x 9 = 1512.
//
// Paper values: 77/2/14/6/9 -> 1/2/14/6/9, |G| 116424 -> 1512.

#include <iostream>

#include "common/string_util.h"
#include "exp/experiment.h"
#include "exp/reporting.h"
#include "table/group_index.h"

namespace {

using namespace recpriv;  // NOLINT

int Run() {
  exp::PrintBanner(std::cout, "Table 5: NA aggregation impact on CENSUS 300K",
                   "EDBT'15 Table 5");

  const size_t records = exp::FullScale() ? 300000 : 300000;  // cheap enough
  auto ds = exp::PrepareCensus(records, /*pool_size=*/0, /*seed=*/2015);
  if (!ds.ok()) {
    std::cerr << ds.status() << "\n";
    return 1;
  }

  exp::AsciiTable out({"", "Age", "Gender", "Education", "Marital", "Race",
                       "|G|", "|D|/|G|"});
  auto domain_row = [&](const std::string& label, bool after) {
    std::vector<std::string> row{label};
    for (size_t a = 0; a < 5; ++a) {
      const auto& merge = ds->plan.merges[a];
      row.push_back(std::to_string(after ? merge.domain_after
                                         : merge.domain_before));
    }
    const table::GroupIndex& idx = after ? ds->index : ds->raw_index;
    row.push_back(std::to_string(idx.num_groups()));
    row.push_back(FormatDouble(idx.AverageGroupSize(), 4));
    out.AddRow(std::move(row));
  };
  domain_row("Before Aggregation", false);
  domain_row("After Aggregation", true);
  out.Print(std::cout);

  std::cout << "\npaper: 77/2/14/6/9 -> 1/2/14/6/9, |G| 116424 -> 1512, avg "
               "3 -> 331\n(Age merges to a single class because Occupation "
               "is independent of Age;\nempty (gender, education, marital, "
               "race) combos make |G| slightly < 1512).\n";
  return 0;
}

}  // namespace

int main() { return Run(); }
